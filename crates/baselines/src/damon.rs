//! A DAMON-like sampling offloading policy.
//!
//! DAMON monitors page-access frequency by periodic sampling and reclaims
//! regions that look cold. The paper's motivation experiment (Fig 2)
//! shows why this fails for serverless: sampling runs *constantly through
//! the keep-alive stage*, during which even the hottest pages are simply
//! not being accessed — so they are classified cold, offloaded, and the
//! next request faults its entire working set back from the pool,
//! inflating P95 latency by up to 14×.

use std::collections::HashMap;

use faasmem_faas::{ContainerId, MemoryPolicy, PolicyCtx};
use faasmem_mem::{PageId, RegionConfig, RegionMonitor};
use faasmem_sim::{SimDuration, SimRng};

/// How the policy estimates page hotness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DamonMode {
    /// Exact Access-bit walks (cheap in the simulator, an upper bound on
    /// DAMON's accuracy).
    ExactScan,
    /// PEBS-style per-access sampling (paper §9): each access is observed
    /// only with the given probability.
    PebsSampling(f64),
    /// DAMON's real design: adaptive regions, one sampled page standing
    /// in for each region, random split + similarity merge.
    RegionMonitor(RegionConfig),
}

/// Configuration of the DAMON-like policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DamonConfig {
    /// Aging-scan / aggregation period.
    pub sample_period: SimDuration,
    /// Windows a page (or region) must stay untouched before it is
    /// declared cold.
    pub idle_threshold: u8,
    /// Hotness-estimation mode.
    pub mode: DamonMode,
}

impl Default for DamonConfig {
    fn default() -> Self {
        DamonConfig {
            sample_period: SimDuration::from_secs(5),
            // 4 scans × 5 s = 20 s of idleness ⇒ cold. Aggressive, like
            // DAMON_RECLAIM's defaults relative to serverless idle gaps.
            idle_threshold: 4,
            mode: DamonMode::ExactScan,
        }
    }
}

impl DamonConfig {
    /// Convenience: PEBS-sampling mode with the given probability.
    pub fn with_pebs(sample_prob: f64) -> Self {
        DamonConfig {
            mode: DamonMode::PebsSampling(sample_prob),
            ..Self::default()
        }
    }

    /// Convenience: full region-monitoring mode with default regions.
    pub fn with_regions() -> Self {
        DamonConfig {
            mode: DamonMode::RegionMonitor(RegionConfig::default()),
            ..Self::default()
        }
    }
}

/// The DAMON-like policy: stage-agnostic sampling + immediate cold-page
/// offload. See the [module docs](self).
#[derive(Debug)]
pub struct DamonPolicy {
    config: DamonConfig,
    rng: SimRng,
    monitors: HashMap<ContainerId, RegionMonitor>,
    /// Reused cold-page buffer; keeps the per-tick scan allocation-free.
    scratch: Vec<PageId>,
}

impl Default for DamonPolicy {
    fn default() -> Self {
        Self::new(DamonConfig::default())
    }
}

impl DamonPolicy {
    /// Creates the policy.
    pub fn new(config: DamonConfig) -> Self {
        DamonPolicy {
            config,
            rng: SimRng::seed_from(0xDA30),
            monitors: HashMap::new(),
            scratch: Vec::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DamonConfig {
        &self.config
    }
}

impl MemoryPolicy for DamonPolicy {
    fn name(&self) -> &'static str {
        "DAMON"
    }

    fn tick_interval(&self) -> Option<SimDuration> {
        Some(self.config.sample_period)
    }

    fn on_tick(&mut self, ctx: &mut PolicyCtx<'_>) {
        // Sampling is container-stage agnostic: it runs during execution
        // and keep-alive alike — the design flaw the paper calls out.
        match self.config.mode {
            DamonMode::ExactScan => ctx
                .container
                .table_mut()
                .age_and_collect_idle_into(self.config.idle_threshold, &mut self.scratch),
            DamonMode::PebsSampling(p) => {
                let rng = &mut self.rng;
                ctx.container.table_mut().age_and_collect_idle_sampled_into(
                    self.config.idle_threshold,
                    p,
                    || rng.next_f64(),
                    &mut self.scratch,
                )
            }
            DamonMode::RegionMonitor(region_config) => {
                let monitor = self
                    .monitors
                    .entry(ctx.container.id())
                    .or_insert_with(|| RegionMonitor::new(region_config));
                let rng = &mut self.rng;
                monitor.aggregate(ctx.container.table_mut(), || rng.next_f64());
                monitor.cold_pages_into(
                    ctx.container.table(),
                    u32::from(self.config.idle_threshold),
                    &mut self.scratch,
                )
            }
        };
        if !self.scratch.is_empty() {
            ctx.offload_pages(&self.scratch);
        }
    }

    fn on_container_recycled(&mut self, ctx: &mut PolicyCtx<'_>) {
        self.monitors.remove(&ctx.container.id());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasmem_faas::{FunctionId, PlatformSim, RunReport};
    use faasmem_sim::SimTime;
    use faasmem_workload::{BenchmarkSpec, Invocation, InvocationTrace};

    fn trace(times_secs: &[u64]) -> InvocationTrace {
        let invs = times_secs
            .iter()
            .map(|&s| Invocation {
                at: SimTime::from_secs(s),
                function: FunctionId(0),
            })
            .collect();
        InvocationTrace::from_invocations(invs, SimTime::from_secs(3_000))
    }

    fn run_policy<P: MemoryPolicy + 'static>(policy: P, times: &[u64]) -> RunReport {
        let mut sim = PlatformSim::builder()
            .register_function(BenchmarkSpec::by_name("bert").unwrap())
            .policy(policy)
            .seed(5)
            .build();
        sim.run(&trace(times))
    }

    #[test]
    fn offloads_idle_memory_aggressively() {
        let report = run_policy(DamonPolicy::default(), &[10]);
        // Within the 10-minute keep-alive, nearly the whole container
        // goes remote.
        let offloaded_mib = report.pool_stats.bytes_out as f64 / (1024.0 * 1024.0);
        assert!(
            offloaded_mib > 500.0,
            "DAMON offloaded only {offloaded_mib} MiB"
        );
    }

    #[test]
    fn keepalive_sampling_destroys_warm_latency() {
        // Requests 60 s apart: far beyond the 20 s cold threshold, so
        // every warm request finds its hot set offloaded. Enough
        // requests that the single cold start drops out of the P95.
        let times: Vec<u64> = (0..40).map(|i| 10 + i * 60).collect();
        let mut damon = run_policy(DamonPolicy::default(), &times);
        let mut base = PlatformSim::builder()
            .register_function(BenchmarkSpec::by_name("bert").unwrap())
            .seed(5)
            .build();
        let mut base_report = base.run(&trace(&times));
        let p95_d = damon.p95_latency().as_secs_f64();
        let p95_b = base_report.p95_latency().as_secs_f64();
        assert!(
            p95_d > p95_b * 1.5,
            "DAMON P95 {p95_d} should blow up vs baseline {p95_b} (Fig 2)"
        );
        // Warm requests carry heavy fault counts.
        let warm_faults: u32 = damon
            .requests
            .iter()
            .filter(|r| !r.cold)
            .map(|r| r.faults)
            .sum();
        assert!(warm_faults > 1_000, "warm faults {warm_faults}");
    }

    #[test]
    fn rapid_requests_protect_the_hot_set() {
        // Requests every 5 s: the hot set never reaches the idle
        // threshold, so DAMON behaves tolerably.
        let times: Vec<u64> = (0..20).map(|i| 10 + i * 5).collect();
        let report = run_policy(DamonPolicy::default(), &times);
        let warm: Vec<_> = report.requests.iter().filter(|r| !r.cold).collect();
        let per_request = warm.iter().map(|r| r.faults as f64).sum::<f64>() / warm.len() as f64;
        // Bert's random slice still faults cold init pages occasionally,
        // but the ~6000-page fixed hot core must stay local.
        assert!(
            per_request < 1_500.0,
            "avg faults per warm request {per_request}"
        );
    }

    #[test]
    fn default_config_sane() {
        let c = DamonConfig::default();
        assert_eq!(c.sample_period, SimDuration::from_secs(5));
        assert_eq!(c.idle_threshold, 4);
        assert_eq!(c.mode, DamonMode::ExactScan);
    }

    #[test]
    fn region_monitor_mode_offloads_and_recalls() {
        // The faithful DAMON: regions + sampling. It must still offload
        // substantially and still hurt warm latency on sparse traffic.
        let times: Vec<u64> = (0..20).map(|i| 10 + i * 60).collect();
        let report = run_policy(DamonPolicy::new(DamonConfig::with_regions()), &times);
        let offloaded_mib = report.pool_stats.bytes_out as f64 / (1024.0 * 1024.0);
        assert!(
            offloaded_mib > 200.0,
            "regions offloaded only {offloaded_mib} MiB"
        );
        let warm_faults: u32 = report
            .requests
            .iter()
            .filter(|r| !r.cold)
            .map(|r| r.faults)
            .sum();
        assert!(warm_faults > 500, "warm faults {warm_faults}");
    }

    #[test]
    fn pebs_sampling_is_more_aggressive_than_exact() {
        // With rapid requests the exact scanner protects the hot set,
        // but a low-rate sampler misses accesses and evicts it anyway.
        let times: Vec<u64> = (0..20).map(|i| 10 + i * 5).collect();
        let exact = run_policy(DamonPolicy::default(), &times);
        let sampled = run_policy(DamonPolicy::new(DamonConfig::with_pebs(0.02)), &times);
        let faults = |r: &RunReport| -> u64 {
            r.requests
                .iter()
                .filter(|q| !q.cold)
                .map(|q| u64::from(q.faults))
                .sum()
        };
        assert!(
            faults(&sampled) > faults(&exact) * 2,
            "sampled {} vs exact {}",
            faults(&sampled),
            faults(&exact)
        );
    }
}
