#![warn(missing_docs)]

//! Baseline memory-offloading policies the paper compares against.
//!
//! * [`NoOffloadPolicy`] — the paper's "Baseline": FaaSMem's platform
//!   without any memory offloading (§8.1).
//! * [`TmoPolicy`] — a TMO-like feedback policy (Weiner et al., ASPLOS'22):
//!   offloads a tiny fixed fraction of memory on a slow period (0.05%
//!   every 6 s, §2.2) and backs off when the observed request slowdown
//!   crosses a pressure threshold. Safe, but far too slow for short-lived
//!   serverless containers — which is exactly what Fig 12 shows.
//! * [`DamonPolicy`] — a DAMON-like sampling policy: ages Access bits on a
//!   fixed period, declares pages cold after an idle threshold, and
//!   offloads them immediately — *stage-agnostically*. During keep-alive
//!   every hot page eventually looks cold, gets offloaded, and the next
//!   request pays a massive recall penalty (the up-to-14× P95 blow-up of
//!   Fig 2).
//!
//! All three run on the identical platform and
//! [`MemoryPolicy`](faasmem_faas::MemoryPolicy) interface as FaaSMem
//! itself.

pub mod damon;
pub mod tmo;

pub use damon::{DamonConfig, DamonMode, DamonPolicy};
pub use faasmem_faas::NullPolicy as NoOffloadPolicy;
pub use tmo::{TmoConfig, TmoPolicy};

use faasmem_faas::MemoryPolicy;

/// Convenience: the paper's comparison systems by name.
///
/// # Examples
///
/// ```
/// use faasmem_baselines::baseline_by_name;
///
/// assert!(baseline_by_name("TMO").is_some());
/// assert!(baseline_by_name("Baseline").is_some());
/// assert!(baseline_by_name("nope").is_none());
/// ```
pub fn baseline_by_name(name: &str) -> Option<Box<dyn MemoryPolicy>> {
    match name {
        "Baseline" => Some(Box::new(NoOffloadPolicy)),
        "TMO" => Some(Box::new(TmoPolicy::default())),
        "DAMON" => Some(Box::new(DamonPolicy::default())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for name in ["Baseline", "TMO", "DAMON"] {
            let p = baseline_by_name(name).expect(name);
            assert_eq!(p.name(), name);
        }
        assert!(
            baseline_by_name("FaaSMem").is_none(),
            "FaaSMem lives in faasmem-core"
        );
    }
}
