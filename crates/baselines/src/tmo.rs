//! A TMO-like feedback-based offloading policy.
//!
//! TMO ("Transparent Memory Offloading", Weiner et al., ASPLOS'22)
//! offloads memory *step by step* and uses Pressure Stall Information to
//! stop when applications slow down. The paper characterises it as
//! offloading "only 0.05% of the total memory every 6 seconds", capping a
//! 10-minute period at ~3% (§2.2) — safe for long-running services, far
//! too timid for serverless containers that live tens of minutes.

use std::collections::HashMap;

use faasmem_faas::{ContainerId, MemoryPolicy, PolicyCtx};
use faasmem_mem::PageId;
use faasmem_sim::{SimDuration, SimTime};

/// Configuration of the TMO-like policy.
#[derive(Debug, Clone, PartialEq)]
pub struct TmoConfig {
    /// Offload period (paper: 6 s).
    pub period: SimDuration,
    /// Fraction of resident memory offloaded per period (paper: 0.05%).
    pub step_fraction: f64,
    /// Pages must have been idle for this many aging scans before TMO
    /// considers them reclaimable.
    pub idle_threshold: u8,
    /// Pressure threshold: if the last request spent more than this
    /// fraction of its service time stalled on remote faults, offloading
    /// pauses.
    pub pressure_threshold: f64,
    /// How long offloading stays paused after a pressure event.
    pub backoff: SimDuration,
}

impl Default for TmoConfig {
    fn default() -> Self {
        TmoConfig {
            period: SimDuration::from_secs(6),
            step_fraction: 0.0005,
            idle_threshold: 2,
            pressure_threshold: 0.05,
            backoff: SimDuration::from_secs(60),
        }
    }
}

/// The TMO-like policy. See the [module docs](self) for behaviour.
#[derive(Debug, Default)]
pub struct TmoPolicy {
    config: TmoConfig,
    /// Per-container: paused-until timestamp and fractional-page carry.
    state: HashMap<ContainerId, TmoState>,
    /// Reused cold-page buffer; keeps the per-tick scan allocation-free.
    scratch: Vec<PageId>,
}

#[derive(Debug, Default, Clone, Copy)]
struct TmoState {
    paused_until: Option<SimTime>,
    carry: f64,
}

impl TmoPolicy {
    /// Creates the policy with the paper's constants.
    pub fn new(config: TmoConfig) -> Self {
        TmoPolicy {
            config,
            state: HashMap::new(),
            scratch: Vec::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &TmoConfig {
        &self.config
    }
}

impl MemoryPolicy for TmoPolicy {
    fn name(&self) -> &'static str {
        "TMO"
    }

    fn tick_interval(&self) -> Option<SimDuration> {
        Some(self.config.period)
    }

    fn on_request_end(&mut self, ctx: &mut PolicyCtx<'_>) {
        // Pressure feedback: a request that stalled too long on faults
        // pauses reclaim for this container.
        let spec_time = ctx.container.spec().exec_time.as_secs_f64();
        let stall = ctx.container.last_request_stall().as_secs_f64();
        if spec_time > 0.0 && stall / spec_time > self.config.pressure_threshold {
            let until = ctx.now + self.config.backoff;
            self.state
                .entry(ctx.container.id())
                .or_default()
                .paused_until = Some(until);
        }
    }

    fn on_tick(&mut self, ctx: &mut PolicyCtx<'_>) {
        let id = ctx.container.id();
        let entry = self.state.entry(id).or_default();
        if let Some(until) = entry.paused_until {
            if ctx.now < until {
                return;
            }
            entry.paused_until = None;
        }
        let resident = ctx.container.table().local_bytes() + ctx.container.table().remote_bytes();
        let page_size = ctx.container.table().page_size();
        let budget_bytes = resident as f64 * self.config.step_fraction + entry.carry;
        let budget_pages = (budget_bytes / page_size as f64).floor();
        entry.carry = budget_bytes - budget_pages * page_size as f64;
        // Age first so idleness accumulates even when the budget is zero.
        ctx.container
            .table_mut()
            .age_and_collect_idle_into(self.config.idle_threshold, &mut self.scratch);
        if budget_pages < 1.0 || self.scratch.is_empty() {
            return;
        }
        self.scratch.truncate(budget_pages as usize);
        ctx.offload_pages(&self.scratch);
    }

    fn on_container_recycled(&mut self, ctx: &mut PolicyCtx<'_>) {
        self.state.remove(&ctx.container.id());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasmem_faas::{FunctionId, PlatformSim};
    use faasmem_workload::{BenchmarkSpec, Invocation, InvocationTrace};

    fn trace(times_secs: &[u64]) -> InvocationTrace {
        let invs = times_secs
            .iter()
            .map(|&s| Invocation {
                at: SimTime::from_secs(s),
                function: FunctionId(0),
            })
            .collect();
        InvocationTrace::from_invocations(invs, SimTime::from_secs(3_000))
    }

    fn run(policy: TmoPolicy, times: &[u64]) -> faasmem_faas::RunReport {
        let mut sim = PlatformSim::builder()
            .register_function(BenchmarkSpec::by_name("bert").unwrap())
            .policy(policy)
            .seed(5)
            .build();
        sim.run(&trace(times))
    }

    #[test]
    fn offloads_slowly() {
        let report = run(TmoPolicy::default(), &[10]);
        assert!(
            report.pool_stats.bytes_out > 0,
            "TMO must offload something"
        );
        // 0.05%/6s over ~10 min keep-alive caps around 5% of resident.
        let resident = 1_200.0; // bert ≈ 1.1 GiB resident in MiB
        let offloaded_mib = report.pool_stats.bytes_out as f64 / (1024.0 * 1024.0);
        assert!(
            offloaded_mib < resident * 0.08,
            "TMO offloaded {offloaded_mib} MiB — too aggressive"
        );
    }

    #[test]
    fn latency_stays_at_baseline_level() {
        let times: Vec<u64> = (0..30).map(|i| 10 + i * 20).collect();
        let mut tmo_report = run(TmoPolicy::default(), &times);
        let mut base = PlatformSim::builder()
            .register_function(BenchmarkSpec::by_name("bert").unwrap())
            .seed(5)
            .build();
        let mut base_report = base.run(&trace(&times));
        let p95_t = tmo_report.p95_latency().as_secs_f64();
        let p95_b = base_report.p95_latency().as_secs_f64();
        assert!(p95_t <= p95_b * 1.1, "TMO P95 {p95_t} vs baseline {p95_b}");
    }

    #[test]
    fn pressure_pauses_reclaim() {
        // Any stall triggers a (practically permanent) pause, with
        // aggressive stepping so a stall actually occurs.
        let config = TmoConfig {
            pressure_threshold: 0.0,
            backoff: SimDuration::from_secs(10_000),
            step_fraction: 0.05,
            idle_threshold: 1,
            ..TmoConfig::default()
        };
        let report = run(TmoPolicy::new(config.clone()), &[10, 300, 600]);
        // After the first stalled request, reclaim pauses; compare with
        // the never-paused variant.
        let free_running = TmoConfig {
            pressure_threshold: 1.0,
            step_fraction: 0.05,
            idle_threshold: 1,
            ..TmoConfig::default()
        };
        let report_free = run(TmoPolicy::new(free_running), &[10, 300, 600]);
        assert!(
            report.pool_stats.bytes_out < report_free.pool_stats.bytes_out,
            "paused {} vs free {}",
            report.pool_stats.bytes_out,
            report_free.pool_stats.bytes_out
        );
    }

    #[test]
    fn default_config_matches_paper() {
        let c = TmoConfig::default();
        assert_eq!(c.period, SimDuration::from_secs(6));
        assert!((c.step_fraction - 0.0005).abs() < 1e-12);
    }
}
