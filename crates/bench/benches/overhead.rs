//! Criterion micro-benchmarks for the Fig 15 overhead analysis.
//!
//! Measures the cost of the FaaSMem primitives on 4 KiB-page tables sized
//! like the paper's benchmarks: time-barrier insertion, hot-pool
//! promotion scans, rollback, and the inactive-list collection behind the
//! reactive/window offloads. The paper's bounds: barrier insertion
//! ≤ 2.5 ms (micro) / ≤ 10 ms (apps), rollback ≤ 7.5 ms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faasmem_core::{PucketKind, Puckets};
use faasmem_mem::{mib_to_pages, PageTable, Segment, PAGE_SIZE_4K};
use faasmem_workload::BenchmarkSpec;

/// Builds a fully segregated table for a benchmark, with the working set
/// promoted to the hot pool.
fn build_table(spec: &BenchmarkSpec) -> (PageTable, Puckets) {
    let mut table = PageTable::new(PAGE_SIZE_4K);
    let runtime_pages = mib_to_pages(spec.runtime_mib, PAGE_SIZE_4K) as u32;
    let init_pages = mib_to_pages(spec.init_mib, PAGE_SIZE_4K) as u32;
    let hot_runtime = mib_to_pages(spec.runtime_hot_mib, PAGE_SIZE_4K) as u32;
    let r = table.alloc(Segment::Runtime, runtime_pages);
    let mut puckets = Puckets::new();
    puckets.insert_runtime_init_barrier(&mut table);
    let i = table.alloc(Segment::Init, init_pages);
    puckets.insert_init_exec_barrier(&mut table);
    table.scan_accessed();
    table.touch_range(r.take(hot_runtime));
    table.touch_range(i.take(init_pages / 2));
    puckets.promote_accessed(&mut table);
    (table, puckets)
}

fn bench_time_barrier(c: &mut Criterion) {
    let mut group = c.benchmark_group("time_barrier_insertion");
    for name in ["json", "web", "bert"] {
        let spec = BenchmarkSpec::by_name(name).expect("catalog");
        let runtime_pages = mib_to_pages(spec.runtime_mib, PAGE_SIZE_4K) as u32;
        group.bench_with_input(BenchmarkId::from_parameter(name), &runtime_pages, |b, &pages| {
            b.iter_with_setup(
                || {
                    let mut table = PageTable::new(PAGE_SIZE_4K);
                    table.alloc(Segment::Runtime, pages);
                    (table, Puckets::new())
                },
                |(mut table, mut puckets)| {
                    puckets.insert_runtime_init_barrier(&mut table);
                    std::hint::black_box(table.current_generation());
                },
            );
        });
    }
    group.finish();
}

fn bench_rollback(c: &mut Criterion) {
    let mut group = c.benchmark_group("hot_pool_rollback");
    for name in ["json", "web", "bert"] {
        let spec = BenchmarkSpec::by_name(name).expect("catalog");
        let (table, puckets) = build_table(&spec);
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter_with_setup(
                || table.clone(),
                |mut t| {
                    std::hint::black_box(puckets.rollback_hot_pool(&mut t));
                },
            );
        });
    }
    group.finish();
}

fn bench_promotion_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("promotion_scan");
    for name in ["json", "web", "bert"] {
        let spec = BenchmarkSpec::by_name(name).expect("catalog");
        let (mut table, puckets) = build_table(&spec);
        // Leave fresh Access bits for the scan to consume.
        let r = faasmem_mem::PageRange::new(faasmem_mem::PageId(0), 256.min(table.len() as u32));
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter(|| {
                table.touch_range(r);
                std::hint::black_box(puckets.promote_accessed(&mut table));
            });
        });
    }
    group.finish();
}

fn bench_inactive_collection(c: &mut Criterion) {
    let mut group = c.benchmark_group("inactive_list_collection");
    for name in ["json", "web", "bert"] {
        let spec = BenchmarkSpec::by_name(name).expect("catalog");
        let (table, puckets) = build_table(&spec);
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter(|| {
                std::hint::black_box(puckets.inactive_pages(&table, PucketKind::Runtime));
                std::hint::black_box(puckets.inactive_pages(&table, PucketKind::Init));
            });
        });
    }
    group.finish();
}

fn bench_aging_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("damon_aging_scan");
    for name in ["json", "bert"] {
        let spec = BenchmarkSpec::by_name(name).expect("catalog");
        let (table, _) = build_table(&spec);
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter_with_setup(
                || table.clone(),
                |mut t| {
                    std::hint::black_box(t.age_and_collect_idle(4));
                },
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_time_barrier,
    bench_rollback,
    bench_promotion_scan,
    bench_inactive_collection,
    bench_aging_scan
);
criterion_main!(benches);
