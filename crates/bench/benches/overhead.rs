//! Micro-benchmarks for the Fig 15 overhead analysis.
//!
//! Measures the cost of the FaaSMem primitives on 4 KiB-page tables sized
//! like the paper's benchmarks: time-barrier insertion, hot-pool
//! promotion scans, rollback, and the inactive-list collection behind the
//! reactive/window offloads. The paper's bounds: barrier insertion
//! ≤ 2.5 ms (micro) / ≤ 10 ms (apps), rollback ≤ 7.5 ms.
//!
//! Self-timed (`harness = false`): the workspace vendors no external
//! benchmarking framework, so each case reports min/mean over a fixed
//! iteration count, which is plenty to check the paper's millisecond
//! bounds.

use std::time::Instant;

use faasmem_core::{PucketKind, Puckets};
use faasmem_mem::{mib_to_pages, PageTable, Segment, PAGE_SIZE_4K};
use faasmem_workload::BenchmarkSpec;

/// Runs `f` `iters` times (after one warm-up), rebuilding its input with
/// `setup` outside the timed window, and prints min/mean microseconds.
fn bench<S, T>(
    group: &str,
    case: &str,
    iters: u32,
    mut setup: impl FnMut() -> S,
    mut f: impl FnMut(S) -> T,
) {
    let mut min = f64::INFINITY;
    let mut total = 0.0;
    std::hint::black_box(f(setup()));
    for _ in 0..iters {
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(f(input));
        let micros = start.elapsed().as_secs_f64() * 1e6;
        min = min.min(micros);
        total += micros;
    }
    println!(
        "{group:<28} {case:<8} min {min:>10.2} us   mean {:>10.2} us   ({iters} iters)",
        total / f64::from(iters)
    );
}

/// Builds a fully segregated table for a benchmark, with the working set
/// promoted to the hot pool.
fn build_table(spec: &BenchmarkSpec) -> (PageTable, Puckets) {
    let mut table = PageTable::new(PAGE_SIZE_4K);
    let runtime_pages = mib_to_pages(spec.runtime_mib, PAGE_SIZE_4K) as u32;
    let init_pages = mib_to_pages(spec.init_mib, PAGE_SIZE_4K) as u32;
    let hot_runtime = mib_to_pages(spec.runtime_hot_mib, PAGE_SIZE_4K) as u32;
    let r = table.alloc(Segment::Runtime, runtime_pages);
    let mut puckets = Puckets::new();
    puckets.insert_runtime_init_barrier(&mut table);
    let i = table.alloc(Segment::Init, init_pages);
    puckets.insert_init_exec_barrier(&mut table);
    table.scan_accessed();
    table.touch_range(r.take(hot_runtime));
    table.touch_range(i.take(init_pages / 2));
    puckets.promote_accessed(&mut table);
    (table, puckets)
}

fn main() {
    for name in ["json", "web", "bert"] {
        let spec = BenchmarkSpec::by_name(name).expect("catalog");
        let runtime_pages = mib_to_pages(spec.runtime_mib, PAGE_SIZE_4K) as u32;
        bench(
            "time_barrier_insertion",
            name,
            20,
            || {
                let mut table = PageTable::new(PAGE_SIZE_4K);
                table.alloc(Segment::Runtime, runtime_pages);
                (table, Puckets::new())
            },
            |(mut table, mut puckets)| {
                puckets.insert_runtime_init_barrier(&mut table);
                std::hint::black_box(table.current_generation());
            },
        );
    }

    for name in ["json", "web", "bert"] {
        let spec = BenchmarkSpec::by_name(name).expect("catalog");
        let (table, puckets) = build_table(&spec);
        bench(
            "hot_pool_rollback",
            name,
            20,
            || table.clone(),
            |mut t| {
                std::hint::black_box(puckets.rollback_hot_pool(&mut t));
            },
        );
    }

    for name in ["json", "web", "bert"] {
        let spec = BenchmarkSpec::by_name(name).expect("catalog");
        let (mut table, puckets) = build_table(&spec);
        // Leave fresh Access bits for the scan to consume.
        let r = faasmem_mem::PageRange::new(faasmem_mem::PageId(0), 256.min(table.len() as u32));
        bench(
            "promotion_scan",
            name,
            50,
            || (),
            |()| {
                table.touch_range(r);
                std::hint::black_box(puckets.promote_accessed(&mut table));
            },
        );
    }

    for name in ["json", "web", "bert"] {
        let spec = BenchmarkSpec::by_name(name).expect("catalog");
        let (table, puckets) = build_table(&spec);
        bench(
            "inactive_list_collection",
            name,
            50,
            || (),
            |()| {
                std::hint::black_box(puckets.inactive_pages(&table, PucketKind::Runtime));
                std::hint::black_box(puckets.inactive_pages(&table, PucketKind::Init));
            },
        );
    }

    for name in ["json", "bert"] {
        let spec = BenchmarkSpec::by_name(name).expect("catalog");
        let (table, _) = build_table(&spec);
        bench(
            "damon_aging_scan",
            name,
            20,
            || table.clone(),
            |mut t| {
                std::hint::black_box(t.age_and_collect_idle(4));
            },
        );
    }
}
