//! Benchmarks of the simulation substrate itself: event-queue
//! throughput, and whole-run throughput per policy.
//!
//! These guard the simulator's performance budget (hour-long Azure-style
//! traces must stay in the low seconds) and double as an ablation bench:
//! the per-policy group shows what each offloading mechanism costs in
//! simulation time relative to the no-offload baseline.
//!
//! Self-timed (`harness = false`): the workspace vendors no external
//! benchmarking framework; min/mean over fixed iterations is enough to
//! watch the budget.

use std::time::Instant;

use faasmem_baselines::{DamonPolicy, NoOffloadPolicy, TmoPolicy};
use faasmem_core::FaasMemPolicy;
use faasmem_faas::{MemoryPolicy, PlatformSim};
use faasmem_sim::{EventQueue, SimTime};
use faasmem_workload::{BenchmarkSpec, FunctionId, LoadClass, TraceSynthesizer};

/// Runs `f` `iters` times (after one warm-up) and prints min/mean.
fn bench<T>(group: &str, case: &str, iters: u32, mut f: impl FnMut() -> T) {
    let mut min = f64::INFINITY;
    let mut total = 0.0;
    std::hint::black_box(f());
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        let millis = start.elapsed().as_secs_f64() * 1e3;
        min = min.min(millis);
        total += millis;
    }
    println!(
        "{group:<24} {case:<20} min {min:>9.2} ms   mean {:>9.2} ms   ({iters} iters)",
        total / f64::from(iters)
    );
}

fn run_trace<P: MemoryPolicy + 'static>(policy: P) -> usize {
    let trace = TraceSynthesizer::new(42)
        .load_class(LoadClass::High)
        .duration(SimTime::from_mins(10))
        .synthesize_for(FunctionId(0));
    let mut sim = PlatformSim::builder()
        .register_function(BenchmarkSpec::by_name("web").expect("catalog"))
        .policy(policy)
        .seed(1)
        .build();
    sim.run(&trace).requests_completed
}

fn main() {
    for n in [1_000u64, 100_000] {
        bench("event_queue", &format!("push_pop_{n}"), 10, || {
            let mut q = EventQueue::with_capacity(n as usize);
            for i in 0..n {
                q.push(
                    SimTime::from_micros(i.wrapping_mul(2_654_435_761) % 1_000_000),
                    i,
                );
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            sum
        });
    }

    bench("ten_minute_web_trace", "baseline", 10, || {
        run_trace(NoOffloadPolicy)
    });
    bench("ten_minute_web_trace", "tmo", 10, || {
        run_trace(TmoPolicy::default())
    });
    bench("ten_minute_web_trace", "damon", 10, || {
        run_trace(DamonPolicy::default())
    });
    bench("ten_minute_web_trace", "faasmem", 10, || {
        run_trace(FaasMemPolicy::new())
    });
    bench("ten_minute_web_trace", "faasmem_no_pucket", 10, || {
        run_trace(FaasMemPolicy::builder().without_pucket().build())
    });
    bench("ten_minute_web_trace", "faasmem_no_semiwarm", 10, || {
        run_trace(FaasMemPolicy::builder().without_semiwarm().build())
    });
}
