//! Criterion benchmarks of the simulation substrate itself: event-queue
//! throughput, request execution, and whole-run throughput per policy.
//!
//! These guard the simulator's performance budget (hour-long Azure-style
//! traces must stay in the low seconds) and double as an ablation bench:
//! the per-policy group shows what each offloading mechanism costs in
//! simulation time relative to the no-offload baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faasmem_baselines::{DamonPolicy, NoOffloadPolicy, TmoPolicy};
use faasmem_core::FaasMemPolicy;
use faasmem_faas::{MemoryPolicy, PlatformSim};
use faasmem_sim::{EventQueue, SimTime};
use faasmem_workload::{BenchmarkSpec, FunctionId, LoadClass, TraceSynthesizer};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for n in [1_000u64, 100_000] {
        group.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::with_capacity(n as usize);
                for i in 0..n {
                    q.push(SimTime::from_micros(i.wrapping_mul(2_654_435_761) % 1_000_000), i);
                }
                let mut sum = 0u64;
                while let Some((_, v)) = q.pop() {
                    sum = sum.wrapping_add(v);
                }
                std::hint::black_box(sum)
            });
        });
    }
    group.finish();
}

fn run_trace<P: MemoryPolicy + 'static>(policy: P) -> usize {
    let trace = TraceSynthesizer::new(42)
        .load_class(LoadClass::High)
        .duration(SimTime::from_mins(10))
        .synthesize_for(FunctionId(0));
    let mut sim = PlatformSim::builder()
        .register_function(BenchmarkSpec::by_name("web").expect("catalog"))
        .policy(policy)
        .seed(1)
        .build();
    sim.run(&trace).requests_completed
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ten_minute_web_trace");
    group.sample_size(10);
    group.bench_function("baseline", |b| b.iter(|| run_trace(NoOffloadPolicy)));
    group.bench_function("tmo", |b| b.iter(|| run_trace(TmoPolicy::default())));
    group.bench_function("damon", |b| b.iter(|| run_trace(DamonPolicy::default())));
    group.bench_function("faasmem", |b| b.iter(|| run_trace(FaasMemPolicy::new())));
    group.bench_function("faasmem_no_pucket", |b| {
        b.iter(|| run_trace(FaasMemPolicy::builder().without_pucket().build()))
    });
    group.bench_function("faasmem_no_semiwarm", |b| {
        b.iter(|| run_trace(FaasMemPolicy::builder().without_semiwarm().build()))
    });
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_policies);
criterion_main!(benches);
