//! Ablation: adaptive request-window detection vs fixed windows.
//!
//! DESIGN.md decision 4: FaaSMem detects the Init-Pucket offload window
//! from the descent gradient of the inactive list (§5.2). This ablation
//! compares it against fixed windows of 1, 5 and 20 requests on the two
//! workloads the paper uses to motivate adaptivity: Bert (stable hot set
//! — a small window suffices) and Web (scattered Pareto objects — an
//! eager window causes recalls).

use faasmem_bench::{fmt_mib, fmt_secs, render_table};
use faasmem_core::{FaasMemConfigBuilder, FaasMemPolicy};
use faasmem_faas::PlatformSim;
use faasmem_sim::SimTime;
use faasmem_workload::{BenchmarkSpec, FunctionId, LoadClass, TraceSynthesizer};

fn main() {
    for app in ["bert", "web"] {
        let spec = BenchmarkSpec::by_name(app).expect("catalog");
        let trace = TraceSynthesizer::new(905)
            .load_class(LoadClass::High)
            .duration(SimTime::from_mins(60))
            .synthesize_for(FunctionId(0));
        println!("=== {app}: {} invocations ===", trace.len());
        let mut rows = Vec::new();
        for (label, fixed) in
            [("adaptive (gradient)", None), ("fixed w=1", Some(1)), ("fixed w=5", Some(5)), ("fixed w=20", Some(20))]
        {
            let mut cfg = FaasMemConfigBuilder::new();
            if let Some(w) = fixed {
                // A huge stability requirement disables the gradient;
                // only the cap closes the window, i.e. fixed size w.
                cfg = cfg.window_stable_rounds(u32::MAX).window_cap(w);
            }
            let policy = FaasMemPolicy::builder().config(cfg.build()).build();
            let stats = policy.stats();
            let mut sim = PlatformSim::builder()
                .register_function(spec.clone())
                .policy(policy)
                .seed(41)
                .build();
            let mut report = sim.run(&trace);
            let recalled = report.pool_stats.bytes_in as f64 / (1024.0 * 1024.0);
            let windows: Vec<u32> =
                stats.borrow().windows_chosen.iter().map(|&(_, w)| w).collect();
            rows.push(vec![
                label.to_string(),
                fmt_mib(report.avg_local_mib()),
                fmt_secs(report.p95_latency().as_secs_f64()),
                format!("{recalled:.0} MiB"),
                format!("{windows:?}"),
            ]);
        }
        println!(
            "{}",
            render_table(&["window policy", "avg mem", "P95", "recalled", "windows chosen"], &rows)
        );
        println!();
    }
    println!("Shape: w=1 offloads eagerly (lowest memory, most recalls for web);");
    println!("w=20 is prudent but slow for bert; the gradient adapts per workload (§5.2).");
}
