//! Ablation: adaptive request-window detection vs fixed windows.
//!
//! DESIGN.md decision 4: FaaSMem detects the Init-Pucket offload window
//! from the descent gradient of the inactive list (§5.2). This ablation
//! compares it against fixed windows of 1, 5 and 20 requests on the two
//! workloads the paper uses to motivate adaptivity: Bert (stable hot set
//! — a small window suffices) and Web (scattered Pareto objects — an
//! eager window causes recalls).
//!
//! Runs on the parallel harness (`--jobs`, `--quick`); the merged result
//! is exported to `results/abl01_window_policy.json`.

use faasmem_bench::harness::{
    self, BenchCase, ConfigCase, ExperimentGrid, HarnessOptions, PolicySpec, TraceSpec,
};
use faasmem_bench::{fmt_mib, fmt_secs, render_table};
use faasmem_core::{FaasMemConfigBuilder, FaasMemPolicy};
use faasmem_faas::PlatformConfig;
use faasmem_workload::{BenchmarkSpec, LoadClass};

fn window_policies() -> Vec<(&'static str, Option<u32>)> {
    vec![
        ("adaptive (gradient)", None),
        ("fixed w=1", Some(1)),
        ("fixed w=5", Some(5)),
        ("fixed w=20", Some(20)),
    ]
}

fn main() {
    let opts = HarnessOptions::from_env();
    let grid = ExperimentGrid::new("abl01_window_policy")
        .trace(TraceSpec::synth("high-60min", 905, LoadClass::High))
        .benches(
            ["bert", "web"]
                .map(|app| BenchCase::single(BenchmarkSpec::by_name(app).expect("catalog"))),
        )
        .config(ConfigCase::new(
            "s41",
            PlatformConfig {
                seed: 41,
                ..PlatformConfig::default()
            },
        ))
        .policies(window_policies().into_iter().map(|(label, fixed)| {
            PolicySpec::faasmem(label, move || {
                let mut cfg = FaasMemConfigBuilder::new();
                if let Some(w) = fixed {
                    // A huge stability requirement disables the gradient;
                    // only the cap closes the window, i.e. fixed size w.
                    cfg = cfg.window_stable_rounds(u32::MAX).window_cap(w);
                }
                FaasMemPolicy::builder().config(cfg.build()).build()
            })
        }));
    let run = harness::run_and_export(&grid, &opts);

    for app in ["bert", "web"] {
        let invocations = run
            .outcome("high-60min", app, "s41", "adaptive (gradient)")
            .trace_len;
        println!("=== {app}: {invocations} invocations ===");
        let mut rows = Vec::new();
        for (label, _) in window_policies() {
            let outcome = run.outcome("high-60min", app, "s41", label);
            let recalled = outcome.summary.pool_stats.bytes_in as f64 / (1024.0 * 1024.0);
            let stats = outcome.faasmem.as_ref().expect("FaaSMem exposes stats");
            let windows: Vec<u32> = stats.windows_chosen.iter().map(|&(_, w)| w).collect();
            rows.push(vec![
                label.to_string(),
                fmt_mib(outcome.summary.avg_local_mib),
                fmt_secs(outcome.summary.latency.p95.as_secs_f64()),
                format!("{recalled:.0} MiB"),
                format!("{windows:?}"),
            ]);
        }
        println!(
            "{}",
            render_table(
                &[
                    "window policy",
                    "avg mem",
                    "P95",
                    "recalled",
                    "windows chosen"
                ],
                &rows
            )
        );
        println!();
    }
    println!("Shape: w=1 offloads eagerly (lowest memory, most recalls for web);");
    println!("w=20 is prudent but slow for bert; the gradient adapts per workload (§5.2).");
}
