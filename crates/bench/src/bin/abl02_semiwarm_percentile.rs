//! Ablation: semi-warm start percentile (§6.2).
//!
//! Semi-warm offload begins once a container has idled past the
//! `start_percentile` of its observed reuse-interval distribution. An
//! eager percentile (p50) drains memory sooner but recalls hot pages for
//! requests that do arrive; a late one (p99) is safe but saves little.
//! The paper picks p95.
//!
//! Runs on the parallel harness (`--jobs`, `--quick`); the merged result
//! is exported to `results/abl02_semiwarm_percentile.json`.

use faasmem_bench::harness::{
    self, BenchCase, ConfigCase, ExperimentGrid, HarnessOptions, PolicySpec, TraceSpec,
};
use faasmem_bench::{fmt_mib, fmt_secs, render_table};
use faasmem_core::{FaasMemConfigBuilder, FaasMemPolicy, SemiWarmConfig};
use faasmem_faas::PlatformConfig;
use faasmem_workload::{BenchmarkSpec, LoadClass};

const PERCENTILES: [f64; 4] = [0.50, 0.90, 0.95, 0.99];

fn label(p: f64) -> String {
    format!("p{:.0}", p * 100.0)
}

fn main() {
    let opts = HarnessOptions::from_env();
    let grid = ExperimentGrid::new("abl02_semiwarm_percentile")
        .trace(TraceSpec::synth("high-bursty", 906, LoadClass::High).bursty(true))
        .bench(BenchCase::single(
            BenchmarkSpec::by_name("bert").expect("catalog"),
        ))
        .config(ConfigCase::new(
            "s51",
            PlatformConfig {
                seed: 51,
                ..PlatformConfig::default()
            },
        ))
        .policies(PERCENTILES.map(|p| {
            PolicySpec::faasmem(&label(p), move || {
                let cfg = FaasMemConfigBuilder::new()
                    .semiwarm(SemiWarmConfig {
                        start_percentile: p,
                        ..Default::default()
                    })
                    .build();
                FaasMemPolicy::builder().config(cfg).build()
            })
        }));
    let run = harness::run_and_export(&grid, &opts);

    let invocations = run.outcome("high-bursty", "bert", "s51", "p50").trace_len;
    println!("=== bert, bursty trace, {invocations} invocations ===");
    let mut rows = Vec::new();
    for p in PERCENTILES {
        let outcome = run.outcome("high-bursty", "bert", "s51", &label(p));
        let s = &outcome.summary;
        // A warm request that still demand-faults heavily hit a
        // container mid-drain: the semi-warm timer fired too early.
        let warm_recalls = outcome
            .report
            .requests
            .iter()
            .filter(|r| !r.cold && r.faults > 500)
            .count();
        rows.push(vec![
            label(p),
            fmt_mib(s.avg_local_mib),
            fmt_secs(s.latency.p95.as_secs_f64()),
            fmt_secs(s.latency.p99.as_secs_f64()),
            warm_recalls.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "start percentile",
                "avg mem",
                "P95",
                "P99",
                "warm requests mid-drain"
            ],
            &rows
        )
    );
    println!("Shape: p50 drains hardest but punishes warm tails; p95 (paper) balances both.");
}
