//! Ablation: the semi-warm start percentile (paper §6.1 / §8.3.2).
//!
//! FaaSMem pessimistically takes the 99th percentile of the reuse-
//! interval CDF to protect the 95th-percentile latency. This sweep shows
//! the trade-off directly: lower percentiles start semi-warm earlier —
//! more memory saved, more requests hitting semi-warm recalls.

use faasmem_bench::{fmt_mib, fmt_secs, render_table};
use faasmem_core::{FaasMemConfigBuilder, FaasMemPolicy, SemiWarmConfig};
use faasmem_faas::PlatformSim;
use faasmem_sim::SimTime;
use faasmem_workload::{BenchmarkSpec, FunctionId, LoadClass, TraceSynthesizer};

fn main() {
    let spec = BenchmarkSpec::by_name("bert").expect("catalog");
    let trace = TraceSynthesizer::new(906)
        .load_class(LoadClass::High)
        .bursty(true)
        .duration(SimTime::from_mins(60))
        .synthesize_for(FunctionId(0));
    println!("bert, bursty high-load, {} invocations\n", trace.len());

    let mut rows = Vec::new();
    for percentile in [0.50, 0.90, 0.95, 0.99] {
        let policy = FaasMemPolicy::builder()
            .config(
                FaasMemConfigBuilder::new()
                    .semiwarm(SemiWarmConfig {
                        start_percentile: percentile,
                        ..SemiWarmConfig::default()
                    })
                    .build(),
            )
            .build();
        let mut sim = PlatformSim::builder()
            .register_function(spec.clone())
            .policy(policy)
            .seed(51)
            .build();
        let mut report = sim.run(&trace);
        let s = report.latency.summary();
        let warm_recalls = report
            .requests
            .iter()
            .filter(|r| !r.cold && r.faults > 500)
            .count();
        rows.push(vec![
            format!("p{:.0}", percentile * 100.0),
            fmt_mib(report.avg_local_mib()),
            fmt_secs(s.p95.as_secs_f64()),
            fmt_secs(s.p99.as_secs_f64()),
            warm_recalls.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["start percentile", "avg mem", "P95", "P99", "semi-warm-hit requests"],
            &rows
        )
    );
    println!();
    println!("Paper reference (§6.1): the 99th percentile guards the P95 SLA; lower");
    println!("percentiles save memory but make more requests pay the recall penalty.");
}
