//! Ablation: rollback minimum interval (§5.3).
//!
//! When a request recalls pages out of the Init Pucket, FaaSMem rolls the
//! window decision back — but no more often than `rollback_min_interval`,
//! to keep a noisy function from thrashing between offload and recall.
//! This sweeps that interval on Web, whose Pareto object accesses trigger
//! rollbacks regularly.
//!
//! Runs on the parallel harness (`--jobs`, `--quick`); the merged result
//! is exported to `results/abl03_rollback_interval.json`.

use faasmem_bench::harness::{
    self, BenchCase, ConfigCase, ExperimentGrid, HarnessOptions, PolicySpec, TraceSpec,
};
use faasmem_bench::{fmt_mib, fmt_secs, render_table};
use faasmem_core::{FaasMemConfigBuilder, FaasMemPolicy};
use faasmem_faas::PlatformConfig;
use faasmem_sim::SimDuration;
use faasmem_workload::{BenchmarkSpec, LoadClass};

const INTERVALS_SECS: [u64; 4] = [1, 10, 60, 300];

fn label(t: u64) -> String {
    format!("t = {t}s")
}

fn main() {
    let opts = HarnessOptions::from_env();
    let grid = ExperimentGrid::new("abl03_rollback_interval")
        .trace(TraceSpec::synth("high-60min", 907, LoadClass::High))
        .bench(BenchCase::single(
            BenchmarkSpec::by_name("web").expect("catalog"),
        ))
        .config(ConfigCase::new(
            "s61",
            PlatformConfig {
                seed: 61,
                ..PlatformConfig::default()
            },
        ))
        .policies(INTERVALS_SECS.map(|t| {
            PolicySpec::faasmem(&label(t), move || {
                let cfg = FaasMemConfigBuilder::new()
                    .rollback_min_interval(SimDuration::from_secs(t))
                    .build();
                FaasMemPolicy::builder().config(cfg).build()
            })
        }));
    let run = harness::run_and_export(&grid, &opts);

    let invocations = run.outcome("high-60min", "web", "s61", &label(1)).trace_len;
    println!("=== web, {invocations} invocations ===");
    let mut rows = Vec::new();
    for t in INTERVALS_SECS {
        let outcome = run.outcome("high-60min", "web", "s61", &label(t));
        let s = &outcome.summary;
        let stats = outcome.faasmem.as_ref().expect("FaaSMem exposes stats");
        let recalled = s.pool_stats.bytes_in as f64 / (1024.0 * 1024.0);
        rows.push(vec![
            label(t),
            stats.rollbacks.to_string(),
            fmt_mib(s.avg_local_mib),
            fmt_secs(s.latency.p95.as_secs_f64()),
            format!("{recalled:.0} MiB"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["min interval", "rollbacks", "avg mem", "P95", "recalled"],
            &rows
        )
    );
    println!("Shape: a tiny interval rolls back often (higher memory, fewer recalls);");
    println!("a long one sticks with eager windows and pays recalls instead.");
}
