//! Ablation: the minimum rollback interval `t` (paper §5.3 / §8.5).
//!
//! Rollbacks re-validate the hot page pool; more frequent rollbacks catch
//! stale hot pages sooner (less memory) but cost more re-observation
//! faults and maintenance work. The paper recommends `t ≥ 10 s` to keep
//! overhead under 0.1%.

use faasmem_bench::{fmt_mib, fmt_secs, render_table};
use faasmem_core::{FaasMemConfigBuilder, FaasMemPolicy};
use faasmem_faas::PlatformSim;
use faasmem_sim::{SimDuration, SimTime};
use faasmem_workload::{BenchmarkSpec, FunctionId, LoadClass, TraceSynthesizer};

fn main() {
    let spec = BenchmarkSpec::by_name("web").expect("catalog");
    let trace = TraceSynthesizer::new(907)
        .load_class(LoadClass::High)
        .duration(SimTime::from_mins(60))
        .synthesize_for(FunctionId(0));
    println!("web, steady high-load, {} invocations\n", trace.len());

    let mut rows = Vec::new();
    for t_secs in [1u64, 10, 60, 300] {
        let policy = FaasMemPolicy::builder()
            .config(
                FaasMemConfigBuilder::new()
                    .rollback_min_interval(SimDuration::from_secs(t_secs))
                    .build(),
            )
            .build();
        let stats = policy.stats();
        let mut sim = PlatformSim::builder()
            .register_function(spec.clone())
            .policy(policy)
            .seed(61)
            .build();
        let mut report = sim.run(&trace);
        rows.push(vec![
            format!("t = {t_secs}s"),
            stats.borrow().rollbacks.to_string(),
            fmt_mib(report.avg_local_mib()),
            fmt_secs(report.p95_latency().as_secs_f64()),
            format!("{:.0} MiB", report.pool_stats.bytes_in as f64 / (1024.0 * 1024.0)),
        ]);
    }
    println!(
        "{}",
        render_table(&["min interval", "rollbacks", "avg mem", "P95", "recalled"], &rows)
    );
    println!();
    println!("Paper reference (§8.5): each rollback costs < 7.5 ms; at t >= 10 s the total");
    println!("overhead stays < 0.1%, so more frequent cycles buy little and risk churn.");
}
