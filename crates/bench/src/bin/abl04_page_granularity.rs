//! Ablation: simulation page granularity (DESIGN.md decision 1).
//!
//! The simulator defaults to 64 KiB pages for speed; the kernel manages
//! 4 KiB. This sweep validates the choice: the policy-level results
//! (relative memory savings, P95 ordering) are stable across
//! granularities, while wall-clock cost grows steeply as pages shrink.

use std::time::Instant;

use faasmem_bench::{render_table, Experiment, PolicyKind};
use faasmem_sim::SimTime;
use faasmem_workload::{BenchmarkSpec, FunctionId, LoadClass, TraceSynthesizer};

fn main() {
    let spec = BenchmarkSpec::by_name("bert").expect("catalog");
    let trace = TraceSynthesizer::new(908)
        .load_class(LoadClass::High)
        .duration(SimTime::from_mins(30))
        .synthesize_for(FunctionId(0));
    println!("bert, 30-minute high-load trace, {} invocations\n", trace.len());

    let mut rows = Vec::new();
    for page_kib in [4u64, 16, 64, 256] {
        let start = Instant::now();
        let run = |kind: PolicyKind| {
            let mut e = Experiment::new(spec.clone(), kind);
            e.platform.page_size = page_kib * 1024;
            e.run(&trace).report
        };
        let base = run(PolicyKind::Baseline);
        let mut fm = run(PolicyKind::FaasMem);
        let wall = start.elapsed();
        let saving = 1.0 - fm.avg_local_mib() / base.avg_local_mib();
        rows.push(vec![
            format!("{page_kib} KiB"),
            format!("{:.1}%", saving * 100.0),
            format!("{:.0}ms", fm.p95_latency().as_millis_f64()),
            format!("{:.0}ms", wall.as_millis()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["page size", "FaaSMem memory saving", "FaaSMem P95", "sim wall-clock"],
            &rows
        )
    );
    println!();
    println!("Shape: the saving fraction is granularity-stable (policy decisions operate on");
    println!("page sets); finer pages mainly raise fault counts slightly and simulation cost a lot.");
}
