//! Ablation: offload page granularity (§7, simulator fidelity knob).
//!
//! The simulator tracks memory at a configurable page size. Small pages
//! model the kernel faithfully but multiply event counts; large pages
//! run faster and overstate savings slightly (partial pages round up).
//! This sweeps the granularity on Bert to show the accuracy/cost
//! trade-off behind the 64 KiB default.
//!
//! Runs on the parallel harness (`--jobs`, `--quick`); the merged result
//! is exported to `results/abl04_page_granularity.json`.

use faasmem_bench::harness::{
    self, BenchCase, ConfigCase, ExperimentGrid, HarnessOptions, TraceSpec,
};
use faasmem_bench::{fmt_secs, render_table, PolicyKind};
use faasmem_faas::PlatformConfig;
use faasmem_sim::SimTime;
use faasmem_workload::{BenchmarkSpec, LoadClass};

const PAGE_KIB: [u64; 4] = [4, 16, 64, 256];

fn label(kib: u64) -> String {
    format!("{kib} KiB")
}

fn main() {
    let opts = HarnessOptions::from_env();
    let grid = ExperimentGrid::new("abl04_page_granularity")
        .trace(
            TraceSpec::synth("high-30min", 908, LoadClass::High).duration(SimTime::from_mins(30)),
        )
        .bench(BenchCase::single(
            BenchmarkSpec::by_name("bert").expect("catalog"),
        ))
        .configs(PAGE_KIB.map(|kib| {
            ConfigCase::new(
                &label(kib),
                PlatformConfig {
                    page_size: kib * 1024,
                    ..PlatformConfig::default()
                },
            )
        }))
        .policy_kinds([PolicyKind::Baseline, PolicyKind::FaasMem]);
    let run = harness::run_and_export(&grid, &opts);

    let invocations = run
        .outcome(
            "high-30min",
            "bert",
            &label(64),
            PolicyKind::Baseline.name(),
        )
        .trace_len;
    println!("=== bert, {invocations} invocations, 30 simulated minutes ===");
    let mut rows = Vec::new();
    for kib in PAGE_KIB {
        let base = run.outcome(
            "high-30min",
            "bert",
            &label(kib),
            PolicyKind::Baseline.name(),
        );
        let fm_cell = run.cell(
            "high-30min",
            "bert",
            &label(kib),
            PolicyKind::FaasMem.name(),
        );
        let fm = fm_cell.outcome.as_ref().expect("FaaSMem cell ran");
        let saving = 1.0 - fm.summary.avg_local_mib / base.summary.avg_local_mib.max(1e-9);
        rows.push(vec![
            label(kib),
            format!("{:.1}%", saving * 100.0),
            fmt_secs(fm.summary.latency.p95.as_secs_f64()),
            format!("{:.0} ms", fm_cell.wall_secs * 1000.0),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "page size",
                "FaaSMem mem saving",
                "FaaSMem P95",
                "FaaSMem cell wall-clock"
            ],
            &rows
        )
    );
    println!("Shape: savings stay within a few points across granularities while");
    println!("simulation cost grows as pages shrink; 64 KiB is the default compromise.");
}
