//! Ablation: the semi-warm gradual-offload rate (paper §6.2).
//!
//! The paper proposes percentile-based (1%/s, large functions) and
//! amount-based (1 MB/s, small functions) rates, selected per function.
//! This sweep compares the two pure strategies and the automatic
//! selector on a large (bert) and a small (json) function.

use faasmem_bench::{fmt_mib, fmt_secs, render_table};
use faasmem_core::{FaasMemConfigBuilder, FaasMemPolicy, OffloadRate, SemiWarmConfig};
use faasmem_faas::PlatformSim;
use faasmem_sim::SimTime;
use faasmem_workload::{BenchmarkSpec, FunctionId, LoadClass, TraceSynthesizer};

fn main() {
    for app in ["bert", "json"] {
        let spec = BenchmarkSpec::by_name(app).expect("catalog");
        let trace = TraceSynthesizer::new(909)
            .load_class(LoadClass::Middle)
            .duration(SimTime::from_mins(60))
            .synthesize_for(FunctionId(0));
        println!("=== {app}: {} invocations ===", trace.len());
        let mut rows = Vec::new();
        for (label, rate) in [
            ("percentile 1%/s", OffloadRate::PercentPerSec(0.01)),
            ("amount 1 MiB/s", OffloadRate::MibPerSec(1.0)),
            (
                "auto (paper)",
                OffloadRate::Auto {
                    large_threshold_mib: 256,
                    percent_per_sec: 0.01,
                    mib_per_sec: 1.0,
                },
            ),
        ] {
            let policy = FaasMemPolicy::builder()
                .config(
                    FaasMemConfigBuilder::new()
                        .semiwarm(SemiWarmConfig { rate, ..SemiWarmConfig::default() })
                        .build(),
                )
                .build();
            let stats = policy.stats();
            let mut sim = PlatformSim::builder()
                .register_function(spec.clone())
                .policy(policy)
                .seed(71)
                .build();
            let mut report = sim.run(&trace);
            rows.push(vec![
                label.to_string(),
                fmt_mib(report.avg_local_mib()),
                format!(
                    "{:.0} MiB",
                    stats.borrow().semi_warm_bytes as f64 / (1024.0 * 1024.0)
                ),
                fmt_secs(report.p95_latency().as_secs_f64()),
            ]);
        }
        println!(
            "{}",
            render_table(&["rate strategy", "avg mem", "semi-warm drained", "P95"], &rows)
        );
        println!();
    }
    println!("Paper reference (§6.2): percentile-based completes large functions' offload");
    println!("in bounded time; amount-based drains small functions faster; auto picks per size.");
}
