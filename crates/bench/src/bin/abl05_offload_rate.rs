//! Ablation: semi-warm offload rate limit (§6.3).
//!
//! Semi-warm drains a container's memory gradually so the RDMA link is
//! not monopolized. The paper's auto policy drains small containers by
//! percentage and large ones by absolute bandwidth; this compares both
//! fixed variants against it on a small (json) and a large (bert)
//! footprint.
//!
//! Runs on the parallel harness (`--jobs`, `--quick`); the merged result
//! is exported to `results/abl05_offload_rate.json`.

use faasmem_bench::harness::{
    self, BenchCase, ConfigCase, ExperimentGrid, HarnessOptions, PolicySpec, TraceSpec,
};
use faasmem_bench::{fmt_mib, fmt_secs, render_table};
use faasmem_core::{FaasMemConfigBuilder, FaasMemPolicy, OffloadRate, SemiWarmConfig};
use faasmem_faas::PlatformConfig;
use faasmem_workload::{BenchmarkSpec, LoadClass};

fn rates() -> Vec<(&'static str, OffloadRate)> {
    vec![
        ("percentile 1%/s", OffloadRate::PercentPerSec(0.01)),
        ("amount 1 MiB/s", OffloadRate::MibPerSec(1.0)),
        (
            "auto (paper)",
            OffloadRate::Auto {
                large_threshold_mib: 256,
                percent_per_sec: 0.01,
                mib_per_sec: 1.0,
            },
        ),
    ]
}

fn main() {
    let opts = HarnessOptions::from_env();
    let grid = ExperimentGrid::new("abl05_offload_rate")
        .trace(TraceSpec::synth("middle-60min", 909, LoadClass::Middle))
        .benches(
            ["bert", "json"]
                .map(|app| BenchCase::single(BenchmarkSpec::by_name(app).expect("catalog"))),
        )
        .config(ConfigCase::new(
            "s71",
            PlatformConfig {
                seed: 71,
                ..PlatformConfig::default()
            },
        ))
        .policies(rates().into_iter().map(|(name, rate)| {
            PolicySpec::faasmem(name, move || {
                let cfg = FaasMemConfigBuilder::new()
                    .semiwarm(SemiWarmConfig {
                        rate,
                        ..Default::default()
                    })
                    .build();
                FaasMemPolicy::builder().config(cfg).build()
            })
        }));
    let run = harness::run_and_export(&grid, &opts);

    for app in ["bert", "json"] {
        let spec = BenchmarkSpec::by_name(app).expect("catalog");
        let invocations = run
            .outcome("middle-60min", app, "s71", "percentile 1%/s")
            .trace_len;
        println!(
            "=== {app} ({} MiB footprint), {invocations} invocations ===",
            spec.quota_mib
        );
        let mut rows = Vec::new();
        for (name, _) in rates() {
            let outcome = run.outcome("middle-60min", app, "s71", name);
            let stats = outcome.faasmem.as_ref().expect("FaaSMem exposes stats");
            let drained = stats.semi_warm_bytes as f64 / (1024.0 * 1024.0);
            rows.push(vec![
                name.to_string(),
                fmt_mib(outcome.summary.avg_local_mib),
                format!("{drained:.0} MiB"),
                fmt_secs(outcome.summary.latency.p95.as_secs_f64()),
            ]);
        }
        println!(
            "{}",
            render_table(
                &["rate policy", "avg mem", "semi-warm drained", "P95"],
                &rows
            )
        );
        println!();
    }
    println!("Shape: %-based drains large containers too slowly, MiB-based drains small");
    println!("ones too eagerly; auto matches each to its footprint (§6.3).");
}
