//! Macro-benchmark of the shard-parallel cluster engine.
//!
//! Simulates a rack of independent platform nodes three ways — the
//! serial oracle, the sharded driver pinned to one thread, and the
//! sharded driver fanned out across worker threads — and byte-compares
//! the three [`ClusterReport`] digests. The digests must match exactly
//! (the shard-parallel engine's core guarantee); any divergence exits
//! non-zero regardless of flags.
//!
//! ```text
//! cargo run --release -p faasmem-bench --bin bench_cluster -- \
//!     --profile --check-speedup --out perf
//! cargo run --release -p faasmem-bench --bin bench_compare -- \
//!     BENCH_cluster.json perf/BENCH_cluster.json --tolerance 0.25
//! ```
//!
//! The workload is fixed (same seed, same node/function mix) so the
//! per-phase totals in `BENCH_cluster.json` are comparable across runs
//! and CI can diff them with `bench_compare`. `--check-speedup` exits
//! non-zero unless the threaded run beats the serial oracle by at
//! least [`REQUIRED_SPEEDUP`]× — meaningful only on a multi-core
//! runner, so it is an opt-in flag rather than the default.

use std::path::{Path, PathBuf};
use std::time::Instant;

use faasmem_bench::json::JsonValue;
use faasmem_bench::render_table;
use faasmem_core::FaasMemPolicy;
use faasmem_faas::{ClusterReport, ClusterSim, ClusterSpec};
use faasmem_sim::SimTime;
use faasmem_telemetry::profiler;
use faasmem_workload::LoadClass;

/// Minimum threaded-vs-serial wall-clock ratio `--check-speedup`
/// enforces. The nodes share nothing, so a 4-shard run on a 4+ core
/// runner clears 2× with headroom.
const REQUIRED_SPEEDUP: f64 = 2.0;

struct Options {
    nodes: u32,
    shards: u32,
    threads: usize,
    out_dir: PathBuf,
    profile: bool,
    check_speedup: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_cluster [--nodes N] [--shards S] [--threads T] \
         [--profile] [--check-speedup] [--out DIR]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let default_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut opts = Options {
        nodes: 8,
        shards: 4,
        threads: default_threads,
        out_dir: PathBuf::from("."),
        profile: false,
        check_speedup: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--profile" => opts.profile = true,
            "--check-speedup" => opts.check_speedup = true,
            "--nodes" => opts.nodes = parse_count(args.next()),
            "--shards" => opts.shards = parse_count(args.next()),
            "--threads" => opts.threads = parse_count(args.next()) as usize,
            "--out" => {
                let Some(dir) = args.next() else { usage() };
                opts.out_dir = PathBuf::from(dir);
            }
            _ => usage(),
        }
    }
    opts
}

fn parse_count(arg: Option<String>) -> u32 {
    let Some(raw) = arg else { usage() };
    match raw.parse::<u32>() {
        Ok(n) if n >= 1 => n,
        _ => usage(),
    }
}

/// The fixed cluster workload: every run, serial or sharded, simulates
/// exactly this recipe under the FaaSMem policy.
fn cluster(nodes: u32) -> ClusterSim {
    ClusterSim::new(
        ClusterSpec {
            nodes,
            functions_per_node: 3,
            seed: 0xC1A5,
            duration: SimTime::from_mins(8),
            load: LoadClass::High,
            bursty: true,
        },
        |_| Box::new(FaasMemPolicy::new()),
    )
}

/// Runs `f` under a named profiler phase and times it.
fn timed<T>(phase: &'static str, f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = {
        let _guard = profiler::enter(phase);
        f()
    };
    (out, start.elapsed().as_secs_f64())
}

/// The `BENCH_cluster.json` document `bench_compare` diffs in CI.
fn bench_json(total_wall_secs: f64, phases: &[(&'static str, profiler::PhaseStat)]) -> JsonValue {
    let mut doc = JsonValue::obj();
    doc.push("schema_version", JsonValue::Num(1.0));
    doc.push("bench", JsonValue::Str("cluster".to_string()));
    doc.push("git_rev", JsonValue::Str(git_rev()));
    doc.push("total_wall_secs", JsonValue::Num(total_wall_secs));
    let phase_docs: Vec<JsonValue> = phases
        .iter()
        .map(|(name, stat)| {
            let mut p = JsonValue::obj();
            p.push("name", JsonValue::Str((*name).to_string()));
            p.push("calls", JsonValue::Num(stat.calls as f64));
            p.push("total_secs", JsonValue::Num(stat.total_secs));
            p.push("self_secs", JsonValue::Num(stat.self_secs));
            p
        })
        .collect();
    doc.push("phases", JsonValue::Arr(phase_docs));
    doc
}

/// The checked-out short revision, for provenance. Best-effort:
/// "unknown" outside a git checkout.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|rev| rev.trim().to_string())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn write_bench(dir: &Path, doc: &JsonValue) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("BENCH_cluster.json");
    std::fs::write(&path, doc.to_pretty())?;
    Ok(path)
}

fn summarize(report: &ClusterReport) -> String {
    format!(
        "{} req, {} cold starts over {} nodes",
        report.total_requests(),
        report.total_cold_starts(),
        report.nodes.len()
    )
}

fn main() {
    let opts = parse_args();
    profiler::set_enabled(true);
    let started = Instant::now();

    let sim = cluster(opts.nodes);
    let (serial, serial_secs) = timed("cluster_serial", || sim.run_serial());
    let (shard1, shard1_secs) = timed("cluster_shard1", || sim.run_sharded(opts.shards, 1));
    let (sharded, sharded_secs) = timed("cluster_sharded", || {
        sim.run_sharded(opts.shards, opts.threads)
    });

    let rows = vec![
        vec![
            "serial".to_string(),
            "-".to_string(),
            "1".to_string(),
            format!("{serial_secs:.3}"),
            summarize(&serial),
        ],
        vec![
            "sharded".to_string(),
            opts.shards.to_string(),
            "1".to_string(),
            format!("{shard1_secs:.3}"),
            summarize(&shard1),
        ],
        vec![
            "sharded".to_string(),
            opts.shards.to_string(),
            opts.threads.to_string(),
            format!("{sharded_secs:.3}"),
            summarize(&sharded),
        ],
    ];
    print!(
        "{}",
        render_table(&["driver", "shards", "threads", "wall s", "outcome"], &rows)
    );

    // Byte-identity is the engine's contract: enforce it on every run,
    // not only under --check-speedup.
    let oracle = serial.digest();
    let mut diverged = false;
    for (label, run) in [
        ("shards=S threads=1", &shard1),
        ("shards=S threads=T", &sharded),
    ] {
        if run.digest() != oracle {
            eprintln!("bench_cluster: {label} digest diverged from the serial oracle");
            diverged = true;
        }
    }
    if diverged {
        std::process::exit(1);
    }

    let speedup = serial_secs / sharded_secs.max(f64::EPSILON);
    println!(
        "\nthreaded speedup over serial at {} shards / {} threads: {speedup:.2}x",
        opts.shards, opts.threads
    );

    profiler::set_enabled(false);
    let phases = profiler::take_report();
    let total_wall_secs = started.elapsed().as_secs_f64();
    if opts.profile {
        let doc = bench_json(total_wall_secs, &phases);
        match write_bench(&opts.out_dir, &doc) {
            Ok(path) => eprintln!("[bench_cluster] wrote {}", path.display()),
            Err(e) => {
                eprintln!(
                    "[bench_cluster] could not write BENCH file under {}: {e}",
                    opts.out_dir.display()
                );
                std::process::exit(2);
            }
        }
    }

    if opts.check_speedup && speedup < REQUIRED_SPEEDUP {
        eprintln!("bench_cluster: speedup {speedup:.2}x below the required {REQUIRED_SPEEDUP}x");
        std::process::exit(1);
    }
}
