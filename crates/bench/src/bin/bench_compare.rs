//! Diffs two `BENCH_*.json` perf baselines and fails on regression.
//!
//! ```text
//! cargo run --release -p faasmem-bench --bin fig12_main_eval -- \
//!     --quick --profile --out perf
//! cargo run --release -p faasmem-bench --bin bench_compare -- \
//!     BENCH_fig12_quick.json perf/BENCH_fig12_quick.json --tolerance 0.25
//! ```
//!
//! `--json` swaps the fixed-width report for a machine-readable JSON
//! document (same exit codes), so the CI perf job can log structured
//! regressions.
//!
//! Exit codes: 0 no regression, 1 at least one metric regressed,
//! 2 usage / IO / parse error.

use faasmem_bench::json;
use faasmem_bench::perf::{self, BenchDoc, DEFAULT_TOLERANCE};

fn usage() -> ! {
    eprintln!(
        "usage: bench_compare <old BENCH.json> <new BENCH.json> [--tolerance FRACTION] [--json]"
    );
    std::process::exit(2);
}

fn load(path: &str) -> BenchDoc {
    let input = match std::fs::read_to_string(path) {
        Ok(input) => input,
        Err(e) => {
            eprintln!("bench_compare: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let doc = match json::parse(&input) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("bench_compare: {path}: {e}");
            std::process::exit(2);
        }
    };
    match perf::parse_bench(&doc) {
        Ok(bench) => bench,
        Err(e) => {
            eprintln!("bench_compare: {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut positional = Vec::new();
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut as_json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if let Some(value) = arg.strip_prefix("--tolerance=") {
            tolerance = parse_tolerance(value);
        } else if arg == "--tolerance" {
            let Some(value) = args.next() else { usage() };
            tolerance = parse_tolerance(&value);
        } else if arg == "--json" {
            as_json = true;
        } else if arg.starts_with("--") {
            eprintln!("bench_compare: unknown option {arg}");
            usage();
        } else {
            positional.push(arg);
        }
    }
    let [old_path, new_path] = positional.as_slice() else {
        usage()
    };
    let old = load(old_path);
    let new = load(new_path);
    if old.bench != new.bench {
        eprintln!(
            "bench_compare: comparing different benches ({} vs {})",
            old.bench, new.bench
        );
        std::process::exit(2);
    }
    let cmp = perf::compare(&old, &new, tolerance);
    if as_json {
        println!(
            "{}",
            perf::comparison_json(&old, &new, &cmp, tolerance).to_pretty()
        );
    } else {
        print!("{}", perf::render_report(&old, &new, &cmp, tolerance));
    }
    if cmp.regressions() > 0 {
        std::process::exit(1);
    }
}

fn parse_tolerance(value: &str) -> f64 {
    match value.parse::<f64>() {
        Ok(t) if t >= 0.0 && t.is_finite() => t,
        _ => {
            eprintln!("bench_compare: bad tolerance {value:?} (want a non-negative fraction)");
            std::process::exit(2);
        }
    }
}
