//! Micro-benchmark of the data-oriented `PageTable` hot loops.
//!
//! Times the bitmap/SoA page-table primitives the policies lean on —
//! access-bit scans, aging walks, offload/page-in sweeps — at several
//! table sizes, and races the 256k-page scan against the naive
//! per-page [`ReferencePageTable`] walk the bitmap layout replaced.
//!
//! ```text
//! cargo run --release -p faasmem-bench --bin bench_mem -- \
//!     --profile --check-speedup --out perf
//! cargo run --release -p faasmem-bench --bin bench_compare -- \
//!     BENCH_mem_micro.json perf/BENCH_mem_micro.json --tolerance 0.25
//! ```
//!
//! Every phase runs a *fixed* number of repetitions so the per-phase
//! totals in `BENCH_mem_micro.json` are comparable across runs — the
//! CI perf job diffs them with `bench_compare` exactly like the grid
//! baselines. `--check-speedup` exits non-zero unless the bitmap scan
//! beats the reference walk by at least [`REQUIRED_SPEEDUP`]×.

use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::Instant;

use faasmem_bench::json::JsonValue;
use faasmem_bench::render_table;
use faasmem_mem::{PageId, PageRange, PageTable, ReferencePageTable, Segment, PAGE_SIZE_4K};
use faasmem_telemetry::profiler;

/// Minimum bitmap-vs-reference scan-throughput ratio `--check-speedup`
/// enforces (measured at 256k pages).
const REQUIRED_SPEEDUP: f64 = 3.0;

/// Every Nth page is hot: sparse enough that the word-wise scan must
/// visit most words (no all-zero skipping windfall), dense enough to
/// model a realistic resident working set.
const HOT_STRIDE: usize = 32;

/// The table sizes exercised, with fixed per-phase repetition counts
/// `(pages, scan_reps, age_reps, offload_reps)`. Constants, never
/// scaled by wall time: `bench_compare` needs cross-run totals.
const SIZES: [(u32, u32, u32, u32); 3] = [
    (64 * 1024, 8000, 1600, 1200),
    (256 * 1024, 3200, 400, 320),
    (1024 * 1024, 800, 100, 80),
];

/// Fixed repetitions of the naive reference scan at 256k pages.
const NAIVE_REPS: u32 = 160;

struct Options {
    out_dir: PathBuf,
    profile: bool,
    check_speedup: bool,
}

fn usage() -> ! {
    eprintln!("usage: bench_mem [--profile] [--check-speedup] [--out DIR]");
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        out_dir: PathBuf::from("."),
        profile: false,
        check_speedup: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--profile" => opts.profile = true,
            "--check-speedup" => opts.check_speedup = true,
            "--out" => {
                let Some(dir) = args.next() else { usage() };
                opts.out_dir = PathBuf::from(dir);
            }
            _ => usage(),
        }
    }
    opts
}

/// A freshly allocated table with every `HOT_STRIDE`th page hot.
fn build_table(pages: u32) -> (PageTable, PageRange) {
    let mut table = PageTable::new(PAGE_SIZE_4K);
    let range = table.alloc(Segment::Runtime, pages);
    touch_hot_set(&mut table, range);
    (table, range)
}

fn touch_hot_set(table: &mut PageTable, range: PageRange) {
    let mut id = range.start().0;
    while id < range.end().0 {
        table.touch(PageId(id));
        id += HOT_STRIDE as u32;
    }
}

fn touch_hot_set_ref(table: &mut ReferencePageTable, range: PageRange) {
    let mut id = range.start().0;
    while id < range.end().0 {
        table.touch(PageId(id));
        id += HOT_STRIDE as u32;
    }
}

/// Pages scanned per second by the bitmap path at the given size:
/// each rep re-touches the hot set, then drains it with a word-wise
/// scan into a reused buffer.
fn bitmap_scan(pages: u32, reps: u32, phase: &'static str) -> f64 {
    let (mut table, range) = build_table(pages);
    let mut out: Vec<PageId> = Vec::new();
    let start = Instant::now();
    {
        let _guard = profiler::enter(phase);
        for _ in 0..reps {
            touch_hot_set(&mut table, range);
            table.scan_accessed_into(&mut out);
            black_box(out.len());
        }
    }
    pages as f64 * reps as f64 / start.elapsed().as_secs_f64()
}

/// Pages scanned per second by the naive per-page reference walk.
fn reference_scan(pages: u32, reps: u32, phase: &'static str) -> f64 {
    let mut table = ReferencePageTable::new(PAGE_SIZE_4K);
    let range = table.alloc(Segment::Runtime, pages);
    let start = Instant::now();
    {
        let _guard = profiler::enter(phase);
        for _ in 0..reps {
            touch_hot_set_ref(&mut table, range);
            let hits = table.scan_accessed();
            black_box(hits.len());
        }
    }
    pages as f64 * reps as f64 / start.elapsed().as_secs_f64()
}

/// Aging walk throughput: touch the hot set, then age the whole table.
fn bitmap_age(pages: u32, reps: u32, phase: &'static str) -> f64 {
    let (mut table, range) = build_table(pages);
    let mut out: Vec<PageId> = Vec::new();
    let start = Instant::now();
    {
        let _guard = profiler::enter(phase);
        for _ in 0..reps {
            touch_hot_set(&mut table, range);
            table.age_and_collect_idle_into(u8::MAX, &mut out);
            black_box(out.len());
        }
    }
    pages as f64 * reps as f64 / start.elapsed().as_secs_f64()
}

/// Offload + page-in sweep throughput over a quarter of the table.
fn bitmap_offload_page_in(pages: u32, reps: u32, phase: &'static str) -> f64 {
    let (mut table, range) = build_table(pages);
    let window = range.take(range.len() / 4);
    let start = Instant::now();
    {
        let _guard = profiler::enter(phase);
        for _ in 0..reps {
            let out = table.offload_range(window);
            let back = table.page_in_range(window);
            black_box((out, back));
        }
    }
    window.len() as f64 * 2.0 * reps as f64 / start.elapsed().as_secs_f64()
}

fn fmt_throughput(pages_per_sec: f64) -> String {
    format!("{:.0} Mpages/s", pages_per_sec / 1e6)
}

/// The `BENCH_mem_micro.json` document `bench_compare` diffs in CI.
fn bench_json(total_wall_secs: f64, phases: &[(&'static str, profiler::PhaseStat)]) -> JsonValue {
    let mut doc = JsonValue::obj();
    doc.push("schema_version", JsonValue::Num(1.0));
    doc.push("bench", JsonValue::Str("mem_micro".to_string()));
    doc.push("git_rev", JsonValue::Str(git_rev()));
    doc.push("total_wall_secs", JsonValue::Num(total_wall_secs));
    let phase_docs: Vec<JsonValue> = phases
        .iter()
        .map(|(name, stat)| {
            let mut p = JsonValue::obj();
            p.push("name", JsonValue::Str((*name).to_string()));
            p.push("calls", JsonValue::Num(stat.calls as f64));
            p.push("total_secs", JsonValue::Num(stat.total_secs));
            p.push("self_secs", JsonValue::Num(stat.self_secs));
            p
        })
        .collect();
    doc.push("phases", JsonValue::Arr(phase_docs));
    doc
}

/// The checked-out short revision, for provenance. Best-effort:
/// "unknown" outside a git checkout.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|rev| rev.trim().to_string())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn write_bench(dir: &Path, doc: &JsonValue) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("BENCH_mem_micro.json");
    std::fs::write(&path, doc.to_pretty())?;
    Ok(path)
}

fn main() {
    let opts = parse_args();
    profiler::set_enabled(true);
    let started = Instant::now();

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut scan_256k = 0.0;
    for &(pages, scan_reps, age_reps, offload_reps) in &SIZES {
        let label = if pages >= 1024 * 1024 {
            format!("{}M", pages / (1024 * 1024))
        } else {
            format!("{}k", pages / 1024)
        };
        // Phase names are static so the profiler (and the BENCH diff)
        // can aggregate across runs.
        let (scan_phase, age_phase, offload_phase) = match pages {
            65_536 => ("scan_64k", "age_64k", "offload_page_in_64k"),
            262_144 => ("scan_256k", "age_256k", "offload_page_in_256k"),
            _ => ("scan_1m", "age_1m", "offload_page_in_1m"),
        };
        let scan = bitmap_scan(pages, scan_reps, scan_phase);
        let age = bitmap_age(pages, age_reps, age_phase);
        let sweep = bitmap_offload_page_in(pages, offload_reps, offload_phase);
        if pages == 262_144 {
            scan_256k = scan;
        }
        rows.push(vec![
            label,
            fmt_throughput(scan),
            fmt_throughput(age),
            fmt_throughput(sweep),
        ]);
    }

    let naive = reference_scan(262_144, NAIVE_REPS, "naive_scan_256k");
    let speedup = scan_256k / naive;
    rows.push(vec![
        "256k (naive ref)".to_string(),
        fmt_throughput(naive),
        "-".to_string(),
        "-".to_string(),
    ]);

    print!(
        "{}",
        render_table(
            &["pages", "touch+scan", "touch+age", "offload+page_in"],
            &rows
        )
    );
    println!("\nbitmap scan speedup over naive reference at 256k pages: {speedup:.1}x");

    profiler::set_enabled(false);
    let phases = profiler::take_report();
    let total_wall_secs = started.elapsed().as_secs_f64();
    if opts.profile {
        let doc = bench_json(total_wall_secs, &phases);
        match write_bench(&opts.out_dir, &doc) {
            Ok(path) => eprintln!("[bench_mem] wrote {}", path.display()),
            Err(e) => {
                eprintln!(
                    "[bench_mem] could not write BENCH file under {}: {e}",
                    opts.out_dir.display()
                );
                std::process::exit(2);
            }
        }
    }

    if opts.check_speedup && speedup < REQUIRED_SPEEDUP {
        eprintln!("bench_mem: scan speedup {speedup:.2}x below the required {REQUIRED_SPEEDUP}x");
        std::process::exit(1);
    }
}
