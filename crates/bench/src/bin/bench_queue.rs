//! Micro-benchmark of the calendar-bucket event queue.
//!
//! Races [`EventQueue`] (the calendar queue every simulation drains)
//! against [`ReferenceEventQueue`] (the retired binary heap it
//! replaced) at 64k, 1M and 10M events across three timestamp mixes:
//!
//! - **clustered** — bursts of same-instant events on a fixed cadence,
//!   pushed as groups: the FaaSMem shape (Tick cadence, bursty traces
//!   seeded via `push_at_many`, window-aligned cross-shard flushes).
//! - **uniform** — independent uniform timestamps, the classic
//!   calendar-queue sort benchmark.
//! - **bimodal** — half near-term, half far-future, stressing the
//!   overflow tier and the self-tuning re-layout.
//!
//! Each run pushes the prepared population and drains it dry ("sort"
//! mode), plus a steady-state hold/churn phase (pop one, push one at a
//! later time) at the 1M size. Every phase runs a *fixed* number of
//! repetitions so the per-phase totals in `BENCH_queue.json` are
//! comparable across runs — the CI perf job diffs them with
//! `bench_compare` like the grid baselines.
//!
//! ```text
//! cargo run --release -p faasmem-bench --bin bench_queue -- \
//!     --profile --check-speedup --out perf
//! cargo run --release -p faasmem-bench --bin bench_compare -- \
//!     BENCH_queue.json perf/BENCH_queue.json --tolerance 0.25
//! ```
//!
//! `--check-speedup` exits non-zero unless the calendar queue beats the
//! heap by at least [`REQUIRED_SPEEDUP`]× on the clustered mix at 1M
//! events — the gate ISSUE 10 ships this queue under.

use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::Instant;

use faasmem_bench::json::JsonValue;
use faasmem_bench::render_table;
use faasmem_sim::{EventQueue, ReferenceEventQueue, SimRng, SimTime};
use faasmem_telemetry::profiler;

/// Minimum calendar-vs-heap throughput ratio `--check-speedup` enforces
/// (clustered mix, 1M events).
const REQUIRED_SPEEDUP: f64 = 2.0;

/// Same-instant burst width of the clustered mix.
const BURST: usize = 64;

/// Microseconds between clustered bursts (the Tick-like cadence).
const BURST_STEP_US: u64 = 1_000;

/// The population sizes exercised, with fixed sort-mode repetition
/// counts `(events, reps)`. Constants, never scaled by wall time:
/// `bench_compare` needs cross-run totals.
const SIZES: [(usize, u32); 3] = [(64 * 1024, 8), (1 << 20, 2), (10 << 20, 1)];

/// Pop-one/push-one operations per churn reptition (hold model).
const CHURN_OPS: usize = 1 << 20;

/// Events resident during the churn phase.
const CHURN_HOLD: usize = 64 * 1024;

struct Options {
    out_dir: PathBuf,
    profile: bool,
    check_speedup: bool,
}

fn usage() -> ! {
    eprintln!("usage: bench_queue [--profile] [--check-speedup] [--out DIR]");
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        out_dir: PathBuf::from("."),
        profile: false,
        check_speedup: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--profile" => opts.profile = true,
            "--check-speedup" => opts.check_speedup = true,
            "--out" => {
                let Some(dir) = args.next() else { usage() };
                opts.out_dir = PathBuf::from(dir);
            }
            _ => usage(),
        }
    }
    opts
}

#[derive(Clone, Copy, PartialEq)]
enum Mix {
    Clustered,
    Uniform,
    Bimodal,
}

impl Mix {
    fn name(self) -> &'static str {
        match self {
            Mix::Clustered => "clustered",
            Mix::Uniform => "uniform",
            Mix::Bimodal => "bimodal",
        }
    }
}

/// The prepared timestamp population for one (mix, size) cell, in push
/// order. Clustered times come as ascending same-instant runs (pushed
/// as groups); the other mixes are fully shuffled single pushes.
fn make_times(mix: Mix, n: usize) -> Vec<u64> {
    let mut rng = SimRng::seed_from(0xFAA5_0000 + n as u64);
    match mix {
        Mix::Clustered => (0..n).map(|i| (i / BURST) as u64 * BURST_STEP_US).collect(),
        Mix::Uniform => {
            let span = n as u64 * 100;
            (0..n).map(|_| rng.below(span)).collect()
        }
        Mix::Bimodal => {
            let span = n as u64 * 100;
            (0..n)
                .map(|_| {
                    if rng.chance(0.5) {
                        rng.below(span / 100)
                    } else {
                        span - span / 100 + rng.below(span / 100)
                    }
                })
                .collect()
        }
    }
}

/// Events per second pushing the whole population and draining it dry
/// through the calendar queue. Clustered runs use the grouped path.
fn calendar_sort(times: &[u64], reps: u32, grouped: bool, phase: &'static str) -> f64 {
    let start = Instant::now();
    {
        let _guard = profiler::enter(phase);
        for _ in 0..reps {
            let mut q: EventQueue<u32> = EventQueue::with_capacity(times.len());
            push_all_calendar(&mut q, times, grouped);
            let mut n = 0u64;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n);
        }
    }
    times.len() as f64 * reps as f64 / start.elapsed().as_secs_f64()
}

/// Events per second for the same script through the heap reference.
fn heap_sort(times: &[u64], reps: u32, grouped: bool, phase: &'static str) -> f64 {
    let start = Instant::now();
    {
        let _guard = profiler::enter(phase);
        for _ in 0..reps {
            let mut q: ReferenceEventQueue<u32> = ReferenceEventQueue::with_capacity(times.len());
            push_all_heap(&mut q, times, grouped);
            let mut n = 0u64;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n);
        }
    }
    times.len() as f64 * reps as f64 / start.elapsed().as_secs_f64()
}

fn push_all_calendar(q: &mut EventQueue<u32>, times: &[u64], grouped: bool) {
    if grouped {
        // Same-instant runs land as one group each, like trace seeding.
        let mut i = 0;
        while i < times.len() {
            let t = times[i];
            let run = times[i..].iter().take_while(|&&x| x == t).count();
            q.push_at_many(SimTime::from_micros(t), (i..i + run).map(|j| j as u32));
            i += run;
        }
    } else {
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i as u32);
        }
    }
}

fn push_all_heap(q: &mut ReferenceEventQueue<u32>, times: &[u64], grouped: bool) {
    if grouped {
        let mut i = 0;
        while i < times.len() {
            let t = times[i];
            let run = times[i..].iter().take_while(|&&x| x == t).count();
            q.push_at_many(SimTime::from_micros(t), (i..i + run).map(|j| j as u32));
            i += run;
        }
    } else {
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i as u32);
        }
    }
}

/// Steady-state hold model: the queue holds [`CHURN_HOLD`] events while
/// [`CHURN_OPS`] pop-one/push-one operations stream through, each
/// reinsertion a bounded step past the popped time (the event-loop
/// shape: a handler schedules its follow-up). Deltas are precomputed so
/// both queues replay the identical script.
fn churn_deltas() -> Vec<u64> {
    let mut rng = SimRng::seed_from(0xC0DE_CAFE);
    (0..CHURN_OPS)
        .map(|_| rng.below(BURST_STEP_US * 64) + 1)
        .collect()
}

fn calendar_churn(deltas: &[u64], phase: &'static str) -> f64 {
    let mut q: EventQueue<u32> = EventQueue::with_capacity(CHURN_HOLD);
    for i in 0..CHURN_HOLD {
        q.push(
            SimTime::from_micros((i / BURST) as u64 * BURST_STEP_US),
            i as u32,
        );
    }
    let start = Instant::now();
    {
        let _guard = profiler::enter(phase);
        for &d in deltas {
            let (at, ev) = q.pop().expect("hold population never drains");
            q.push(at + faasmem_sim::SimDuration::from_micros(d), ev);
        }
    }
    let rate = deltas.len() as f64 / start.elapsed().as_secs_f64();
    black_box(q.len());
    rate
}

fn heap_churn(deltas: &[u64], phase: &'static str) -> f64 {
    let mut q: ReferenceEventQueue<u32> = ReferenceEventQueue::with_capacity(CHURN_HOLD);
    for i in 0..CHURN_HOLD {
        q.push(
            SimTime::from_micros((i / BURST) as u64 * BURST_STEP_US),
            i as u32,
        );
    }
    let start = Instant::now();
    {
        let _guard = profiler::enter(phase);
        for &d in deltas {
            let (at, ev) = q.pop().expect("hold population never drains");
            q.push(at + faasmem_sim::SimDuration::from_micros(d), ev);
        }
    }
    let rate = deltas.len() as f64 / start.elapsed().as_secs_f64();
    black_box(q.len());
    rate
}

fn fmt_rate(events_per_sec: f64) -> String {
    format!("{:.1} Mev/s", events_per_sec / 1e6)
}

fn size_label(n: usize) -> String {
    if n >= 1 << 20 {
        format!("{}M", n >> 20)
    } else {
        format!("{}k", n >> 10)
    }
}

/// Static phase names per (impl, mix, size), so the profiler and the
/// BENCH diff aggregate identically across runs.
fn phase_names(mix: Mix, n: usize) -> (&'static str, &'static str) {
    match (mix, n) {
        (Mix::Clustered, 65_536) => ("cal_clustered_64k", "heap_clustered_64k"),
        (Mix::Clustered, 1_048_576) => ("cal_clustered_1m", "heap_clustered_1m"),
        (Mix::Clustered, _) => ("cal_clustered_10m", "heap_clustered_10m"),
        (Mix::Uniform, 65_536) => ("cal_uniform_64k", "heap_uniform_64k"),
        (Mix::Uniform, 1_048_576) => ("cal_uniform_1m", "heap_uniform_1m"),
        (Mix::Uniform, _) => ("cal_uniform_10m", "heap_uniform_10m"),
        (Mix::Bimodal, 65_536) => ("cal_bimodal_64k", "heap_bimodal_64k"),
        (Mix::Bimodal, 1_048_576) => ("cal_bimodal_1m", "heap_bimodal_1m"),
        (Mix::Bimodal, _) => ("cal_bimodal_10m", "heap_bimodal_10m"),
    }
}

/// The `BENCH_queue.json` document `bench_compare` diffs in CI.
fn bench_json(total_wall_secs: f64, phases: &[(&'static str, profiler::PhaseStat)]) -> JsonValue {
    let mut doc = JsonValue::obj();
    doc.push("schema_version", JsonValue::Num(1.0));
    doc.push("bench", JsonValue::Str("queue".to_string()));
    doc.push("git_rev", JsonValue::Str(git_rev()));
    doc.push("total_wall_secs", JsonValue::Num(total_wall_secs));
    let phase_docs: Vec<JsonValue> = phases
        .iter()
        .map(|(name, stat)| {
            let mut p = JsonValue::obj();
            p.push("name", JsonValue::Str((*name).to_string()));
            p.push("calls", JsonValue::Num(stat.calls as f64));
            p.push("total_secs", JsonValue::Num(stat.total_secs));
            p.push("self_secs", JsonValue::Num(stat.self_secs));
            p
        })
        .collect();
    doc.push("phases", JsonValue::Arr(phase_docs));
    doc
}

/// The checked-out short revision, for provenance. Best-effort:
/// "unknown" outside a git checkout.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|rev| rev.trim().to_string())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn write_bench(dir: &Path, doc: &JsonValue) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("BENCH_queue.json");
    std::fs::write(&path, doc.to_pretty())?;
    Ok(path)
}

fn main() {
    let opts = parse_args();
    profiler::set_enabled(true);
    let started = Instant::now();

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut gate_speedup = 0.0;
    for mix in [Mix::Clustered, Mix::Uniform, Mix::Bimodal] {
        for &(n, reps) in &SIZES {
            let times = make_times(mix, n);
            let grouped = mix == Mix::Clustered;
            let (cal_phase, heap_phase) = phase_names(mix, n);
            let cal = calendar_sort(&times, reps, grouped, cal_phase);
            let heap = heap_sort(&times, reps, grouped, heap_phase);
            let speedup = cal / heap;
            if mix == Mix::Clustered && n == 1 << 20 {
                gate_speedup = speedup;
            }
            rows.push(vec![
                mix.name().to_string(),
                size_label(n),
                fmt_rate(cal),
                fmt_rate(heap),
                format!("{speedup:.1}x"),
            ]);
        }
    }

    let deltas = churn_deltas();
    let cal = calendar_churn(&deltas, "cal_churn_1m");
    let heap = heap_churn(&deltas, "heap_churn_1m");
    rows.push(vec![
        "churn (hold 64k)".to_string(),
        size_label(CHURN_OPS),
        fmt_rate(cal),
        fmt_rate(heap),
        format!("{:.1}x", cal / heap),
    ]);

    print!(
        "{}",
        render_table(&["mix", "events", "calendar", "heap", "speedup"], &rows)
    );
    println!("\ncalendar speedup over heap on the clustered 1M mix: {gate_speedup:.1}x");

    profiler::set_enabled(false);
    let phases = profiler::take_report();
    let total_wall_secs = started.elapsed().as_secs_f64();
    if opts.profile {
        let doc = bench_json(total_wall_secs, &phases);
        match write_bench(&opts.out_dir, &doc) {
            Ok(path) => eprintln!("[bench_queue] wrote {}", path.display()),
            Err(e) => {
                eprintln!(
                    "[bench_queue] could not write BENCH file under {}: {e}",
                    opts.out_dir.display()
                );
                std::process::exit(2);
            }
        }
    }

    if opts.check_speedup && gate_speedup < REQUIRED_SPEEDUP {
        eprintln!(
            "bench_queue: clustered-1M speedup {gate_speedup:.2}x below the required {REQUIRED_SPEEDUP}x"
        );
        std::process::exit(1);
    }
}
