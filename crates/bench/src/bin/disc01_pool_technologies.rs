//! Discussion: FaaSMem over different pool technologies (§9).
//!
//! The paper deploys over a 56 Gbps InfiniBand pool; the design only
//! assumes a paging backend, so this swaps in a CXL-class pool (lower
//! latency, similar bandwidth) and an NVMe SSD (much higher latency) to
//! see how far the mechanisms carry. Expected: memory savings are
//! backend-independent, while the recall tax — and hence tail latency —
//! scales with the backend's fault latency.
//!
//! Runs on the parallel harness (`--jobs`, `--quick`); the merged result
//! is exported to `results/disc01_pool_technologies.json`.

use faasmem_bench::harness::{
    self, BenchCase, ConfigCase, ExperimentGrid, HarnessOptions, TraceSpec,
};
use faasmem_bench::{fmt_mib, fmt_secs, render_table, PolicyKind};
use faasmem_faas::PlatformConfig;
use faasmem_pool::PoolConfig;
use faasmem_workload::{BenchmarkSpec, LoadClass};

fn pools() -> Vec<(&'static str, PoolConfig)> {
    vec![
        ("RDMA 56G (paper)", PoolConfig::infiniband_56g()),
        ("CXL pool", PoolConfig::cxl()),
        ("NVMe SSD", PoolConfig::ssd()),
    ]
}

fn main() {
    let opts = HarnessOptions::from_env();
    let grid = ExperimentGrid::new("disc01_pool_technologies")
        .trace(TraceSpec::synth("high-bursty", 901, LoadClass::High).bursty(true))
        .bench(BenchCase::single(
            BenchmarkSpec::by_name("bert").expect("catalog"),
        ))
        .configs(pools().into_iter().map(|(name, pool)| {
            ConfigCase::new(
                name,
                PlatformConfig {
                    pool,
                    ..PlatformConfig::default()
                },
            )
        }))
        .policy_kinds([PolicyKind::FaasMem]);
    let run = harness::run_and_export(&grid, &opts);

    let invocations = run
        .outcome(
            "high-bursty",
            "bert",
            "RDMA 56G (paper)",
            PolicyKind::FaasMem.name(),
        )
        .trace_len;
    println!("=== bert, bursty trace, {invocations} invocations ===");
    let mut rows = Vec::new();
    for (name, _) in pools() {
        let outcome = run.outcome("high-bursty", "bert", name, PolicyKind::FaasMem.name());
        let s = &outcome.summary;
        let offloaded = s.pool_stats.bytes_out as f64 / (1024.0 * 1024.0);
        // Tail of the warm requests only — cold starts dominate P99
        // otherwise and hide the backend's fault latency.
        let mut warm: Vec<f64> = outcome
            .report
            .requests
            .iter()
            .filter(|r| !r.cold)
            .map(|r| r.latency.as_secs_f64())
            .collect();
        warm.sort_by(f64::total_cmp);
        let warm_p99 = if warm.is_empty() {
            0.0
        } else {
            let idx = ((warm.len() as f64 * 0.99).ceil() as usize)
                .saturating_sub(1)
                .min(warm.len() - 1);
            warm[idx]
        };
        rows.push(vec![
            name.to_string(),
            fmt_mib(s.avg_local_mib),
            format!("{offloaded:.0} MiB"),
            fmt_secs(s.latency.p95.as_secs_f64()),
            fmt_secs(warm_p99),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["pool backend", "avg mem", "offloaded", "P95", "warm P99"],
            &rows
        )
    );
    println!("Shape: savings are backend-independent; warm tails track fault latency");
    println!("(CXL ≤ RDMA ≪ SSD), matching the paper's portability claim (§9).");
}
