//! §9 discussion: FaaSMem over different memory-pool technologies.
//!
//! The paper argues FaaSMem is transport-agnostic: CXL would cut the
//! recall penalty further, while SSDs fail because write durability caps
//! sustained offload bandwidth near 1 MB/s. This experiment runs the same
//! Bert workload over RDMA-, CXL- and SSD-backed pools.
//!
//! Expected shape: CXL ≤ RDMA latency at identical memory savings; SSD
//! barely offloads (write-capped) and/or inflates latency.

use faasmem_bench::{fmt_mib, fmt_secs, render_table, Experiment, PolicyKind};
use faasmem_pool::PoolConfig;
use faasmem_sim::SimTime;
use faasmem_workload::{BenchmarkSpec, FunctionId, LoadClass, TraceSynthesizer};

fn main() {
    let spec = BenchmarkSpec::by_name("bert").expect("catalog");
    let trace = TraceSynthesizer::new(901)
        .load_class(LoadClass::High)
        .bursty(true)
        .duration(SimTime::from_mins(60))
        .synthesize_for(FunctionId(0));
    println!("bert, bursty high-load, {} invocations\n", trace.len());

    let mut rows = Vec::new();
    for (label, pool) in [
        ("RDMA 56G (paper)", PoolConfig::infiniband_56g()),
        ("CXL pool", PoolConfig::cxl()),
        ("NVMe SSD", PoolConfig::ssd()),
    ] {
        let mut e = Experiment::new(spec.clone(), PolicyKind::FaasMem);
        e.platform.pool = pool;
        let outcome = e.run(&trace);
        let mut report = outcome.report;
        let p95 = report.p95_latency().as_secs_f64();
        // Warm-only tail: cold starts dominate P99 identically for every
        // backend; the recall penalty lives in the warm requests.
        let mut warm: Vec<f64> = report
            .requests
            .iter()
            .filter(|r| !r.cold)
            .map(|r| r.latency.as_secs_f64())
            .collect();
        warm.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let warm_p99 = warm[((warm.len() as f64 * 0.99).ceil() as usize - 1).min(warm.len() - 1)];
        rows.push(vec![
            label.to_string(),
            fmt_mib(report.avg_local_mib()),
            format!("{:.0} MiB", report.pool_stats.bytes_out as f64 / (1024.0 * 1024.0)),
            fmt_secs(p95),
            fmt_secs(warm_p99),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["pool backend", "avg local mem", "offloaded", "P95", "warm P99"],
            &rows
        )
    );
    println!();
    println!("Paper reference (§9): CXL applies directly (lower latency/higher bandwidth);");
    println!("SSDs rejected — durability-capped writes (~1 MB/s) cannot absorb FaaSMem's offload stream.");
}
