//! §9 discussion: hardware (PEBS-style) page sampling.
//!
//! Sampling reduces cold-page identification overhead but observes only a
//! fraction of accesses, so hot pages can be misclassified cold. This
//! experiment sweeps the sampling probability on the DAMON-style policy
//! and reports the accuracy cost (warm-request faults, P95) against the
//! full Access-bit scan.
//!
//! FaaSMem itself needs no such sampler — the window-based rollback and
//! offloading already make its page-table tracing negligible (§9) — so
//! the sweep doubles as a justification of that design choice.

use faasmem_baselines::{DamonConfig, DamonPolicy};
use faasmem_bench::{fmt_secs, render_table};
use faasmem_faas::PlatformSim;
use faasmem_sim::SimTime;
use faasmem_workload::{BenchmarkSpec, FunctionId, Invocation, InvocationTrace};

fn main() {
    let spec = BenchmarkSpec::by_name("bert").expect("catalog");
    // Requests every 10 s: frequent enough that an exact scanner keeps
    // the hot set resident.
    let invs: Vec<Invocation> = (0..120)
        .map(|i| Invocation {
            at: SimTime::from_secs(10 + i * 10),
            function: FunctionId(0),
        })
        .collect();
    let trace = InvocationTrace::from_invocations(invs, SimTime::from_mins(40));

    let mut rows = Vec::new();
    for (label, config) in [
        ("exact access-bit scan", DamonConfig::default()),
        ("region monitor (real DAMON)", DamonConfig::with_regions()),
        ("PEBS p=0.50", DamonConfig::with_pebs(0.5)),
        ("PEBS p=0.10", DamonConfig::with_pebs(0.1)),
        ("PEBS p=0.02", DamonConfig::with_pebs(0.02)),
    ] {
        let policy = DamonPolicy::new(config);
        let mut sim = PlatformSim::builder()
            .register_function(spec.clone())
            .policy(policy)
            .seed(77)
            .build();
        let mut report = sim.run(&trace);
        let warm: Vec<_> = report.requests.iter().filter(|r| !r.cold).collect();
        let faults_per_req = warm.iter().map(|r| r.faults as f64).sum::<f64>() / warm.len() as f64;
        rows.push(vec![
            label.to_string(),
            format!("{faults_per_req:.0}"),
            fmt_secs(report.p95_latency().as_secs_f64()),
            format!("{:.0} MiB", report.avg_local_mib()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "identification method",
                "faults / warm request",
                "P95",
                "avg local mem"
            ],
            &rows
        )
    );
    println!();
    println!("Shape: lower sampling probability ⇒ more hot pages misclassified ⇒ more");
    println!("warm-request recalls. The overhead saved is proportional to 1/p (fewer samples).");
}
