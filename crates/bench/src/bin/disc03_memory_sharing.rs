//! §9 discussion: combining FaaSMem with FAASM-style runtime sharing.
//!
//! Sharing the runtime image across containers of one function removes
//! duplicate runtime pages; FaaSMem removes cold and keep-alive pages.
//! The paper notes the two are complementary ("By combining these
//! techniques, FaaSMem can further reduce memory footprint") — this
//! experiment quantifies each and their combination on a bursty trace
//! that spawns many concurrent containers.

use faasmem_baselines::NoOffloadPolicy;
use faasmem_bench::{fmt_mib, render_table};
use faasmem_core::FaasMemPolicy;
use faasmem_faas::PlatformSim;
use faasmem_sim::SimTime;
use faasmem_workload::{BenchmarkSpec, FunctionId, LoadClass, TraceSynthesizer};

fn main() {
    // Micro-benchmarks profit most from sharing: their runtime dominates.
    let spec = BenchmarkSpec::by_name("pyaes").expect("catalog");
    let trace = TraceSynthesizer::new(903)
        .load_class(LoadClass::High)
        .bursty(true)
        .duration(SimTime::from_mins(60))
        .synthesize_for(FunctionId(0));
    println!("pyaes, bursty high-load, {} invocations\n", trace.len());

    let run = |faasmem: bool, share: bool| {
        let builder = PlatformSim::builder()
            .register_function(spec.clone())
            .share_runtime(share)
            .seed(12);
        let mut sim = if faasmem {
            builder.policy(FaasMemPolicy::new()).build()
        } else {
            builder.policy(NoOffloadPolicy).build()
        };
        sim.run(&trace)
    };

    let base = run(false, false);
    let base_mem = base.avg_local_mib();
    let mut rows = Vec::new();
    for (label, faasmem, share) in [
        ("Baseline", false, false),
        ("Runtime sharing only", false, true),
        ("FaaSMem only", true, false),
        ("FaaSMem + sharing", true, true),
    ] {
        let mut report = if (faasmem, share) == (false, false) {
            base.clone_shallow()
        } else {
            run(faasmem, share)
        };
        let mem = report.avg_local_mib();
        rows.push(vec![
            label.to_string(),
            fmt_mib(mem),
            format!("{:+.1}%", (mem - base_mem) / base_mem * 100.0),
            format!("{:.0}ms", report.p95_latency().as_millis_f64()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["configuration", "avg local mem", "vs baseline", "P95"],
            &rows
        )
    );
    println!();
    println!("Shape: sharing removes duplicate runtimes, FaaSMem removes cold + keep-alive");
    println!("memory; the combination saves the most (§9, Memory sharing in serverless).");
}

/// RunReport isn't `Clone` (it owns recorders); re-borrowing the base run
/// for its row keeps the table honest without a second simulation.
trait CloneShallow {
    fn clone_shallow(&self) -> Self;
}

impl CloneShallow for faasmem_faas::RunReport {
    fn clone_shallow(&self) -> Self {
        faasmem_faas::RunReport {
            policy: self.policy,
            requests_completed: self.requests_completed,
            cold_starts: self.cold_starts,
            latency: self.latency.clone(),
            requests: self.requests.clone(),
            local_mem: self.local_mem.clone(),
            remote_mem: self.remote_mem.clone(),
            live_containers: self.live_containers.clone(),
            pool_stats: self.pool_stats,
            containers: self.containers.clone(),
            reuse_intervals: self.reuse_intervals.clone(),
            finished_at: self.finished_at,
            faults: self.faults,
            durability: self.durability,
            blame: self.blame,
            memory_anatomy: self.memory_anatomy,
            function_waste: self.function_waste.clone(),
            registry: self.registry.clone(),
            events_processed: self.events_processed,
        }
    }
}
