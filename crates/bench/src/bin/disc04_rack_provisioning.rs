//! §9: rack-level bandwidth, pool-capacity and DRAM-cost analysis.
//!
//! Reproduces the paper's large-scale-deployment arithmetic with both
//! the paper's production constants and profiles measured from our own
//! simulation runs:
//!
//! * 5000 containers/node × ≤ 0.82 MB/s ≈ 32 Gbps/node, ~320 Gbps for a
//!   10-node rack — inside one 400 Gbps RDMA NIC.
//! * local:remote ≈ 1:0.8 → a ~3 TB pool for 10 × 384 GB nodes.
//! * pooling turns the remote share into reused (cheap) memory → ~44%
//!   DRAM cost reduction.

use faasmem_bench::{render_table, Experiment, PolicyKind};
use faasmem_faas::{NodeProfile, RackPlan, RackReport};
use faasmem_sim::SimTime;
use faasmem_workload::{BenchmarkSpec, FunctionId, LoadClass, TraceSynthesizer};

fn main() {
    let mut rows = Vec::new();

    let analyze = |label: &str, node: NodeProfile, rows: &mut Vec<Vec<String>>| {
        let plan = RackPlan::default();
        let r = RackReport::analyze(node, plan);
        let cost_plan = RackPlan {
            pool_memory_cost_factor: 0.0,
            ..plan
        };
        let best_cost = RackReport::analyze(node, cost_plan);
        rows.push(vec![
            label.to_string(),
            format!("{:.0}", node.containers),
            format!("{:.2} MB/s", node.bandwidth_per_container_mbps),
            format!("{:.0} Gbps", r.demand_gbps),
            format!("{:.0}%", r.fabric_utilization * 100.0),
            format!("{:.1} TB", r.pool_gib / 1024.0),
            format!("{:.0}%", (1.0 - best_cost.relative_dram_cost) * 100.0),
        ]);
    };

    analyze(
        "paper §9 constants",
        NodeProfile::paper_production(),
        &mut rows,
    );

    // Measured profiles: one per application, from a bursty hour.
    for app in ["bert", "graph", "web"] {
        let spec = BenchmarkSpec::by_name(app).expect("catalog");
        let trace = TraceSynthesizer::new(940)
            .load_class(LoadClass::High)
            .bursty(true)
            .duration(SimTime::from_mins(60))
            .synthesize_for(FunctionId(0));
        let outcome = Experiment::new(spec.clone(), PolicyKind::FaasMem).run(&trace);
        // Scale the measured per-container behaviour to a 5000-container
        // production node.
        let node = NodeProfile::from_report(&outcome.report, 384.0, 5_000.0);
        let node = NodeProfile {
            containers: 5_000.0,
            local_dram_gib: 384.0,
            ..node
        };
        analyze(&format!("measured: {app}"), node, &mut rows);
    }

    println!(
        "{}",
        render_table(
            &[
                "profile",
                "ctrs/node",
                "bw/ctr",
                "rack demand",
                "fabric util",
                "pool size",
                "max DRAM saving",
            ],
            &rows
        )
    );
    println!();
    println!("Paper reference (§9): ~32 Gbps/node, 320 Gbps/rack under a 400 Gbps NIC;");
    println!("~3 TB pool per 10-node rack; up to ~44% DRAM cost reduction from reused memory.");
}
