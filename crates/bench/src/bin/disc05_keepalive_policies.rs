//! §10 combination: FaaSMem + hybrid-histogram keep-alive.
//!
//! The paper's related work suggests adaptive keep-alive policies
//! (Shahrad et al.) are complementary: FaaSMem shrinks the *footprint* of
//! keep-alive containers, an adaptive timeout shrinks their *count*.
//! This experiment runs a 2×2: {fixed 10 min, adaptive} × {no offloading,
//! FaaSMem}.
//!
//! Expected shape: both knobs save memory alone; together they save the
//! most; the adaptive timeout costs some cold starts.

use faasmem_baselines::NoOffloadPolicy;
use faasmem_bench::{fmt_mib, fmt_secs, render_table};
use faasmem_core::FaasMemPolicy;
use faasmem_faas::{AdaptiveKeepAlive, PlatformSim};
use faasmem_sim::SimTime;
use faasmem_workload::{BenchmarkSpec, FunctionId, LoadClass, TraceSynthesizer};

fn main() {
    let spec = BenchmarkSpec::by_name("bert").expect("catalog");
    let trace = TraceSynthesizer::new(950)
        .load_class(LoadClass::High)
        .bursty(true)
        .duration(SimTime::from_mins(60))
        .synthesize_for(FunctionId(0));
    println!("bert, bursty high-load, {} invocations\n", trace.len());

    let mut rows = Vec::new();
    for (label, faasmem, adaptive) in [
        ("fixed keep-alive, no offload", false, false),
        ("adaptive keep-alive only", false, true),
        ("FaaSMem only", true, false),
        ("FaaSMem + adaptive keep-alive", true, true),
    ] {
        let mut builder = PlatformSim::builder().register_function(spec.clone()).seed(13);
        if adaptive {
            builder = builder.adaptive_keep_alive(AdaptiveKeepAlive::default());
        }
        let mut sim = if faasmem {
            builder.policy(FaasMemPolicy::new()).build()
        } else {
            builder.policy(NoOffloadPolicy).build()
        };
        let mut report = sim.run(&trace);
        rows.push(vec![
            label.to_string(),
            fmt_mib(report.avg_local_mib()),
            format!("{:.1}%", report.cold_start_ratio() * 100.0),
            fmt_secs(report.p95_latency().as_secs_f64()),
            report.containers.len().to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["configuration", "avg local mem", "cold starts", "P95", "containers"],
            &rows
        )
    );
    println!();
    println!("Paper reference (§10): keep-alive tuning and FaaSMem address different waste;");
    println!("\"combining the above works can gain more benefits\".");
}
