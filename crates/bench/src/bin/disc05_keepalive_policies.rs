//! Discussion: FaaSMem vs (and with) adaptive keep-alive (§9).
//!
//! Adaptive keep-alive policies shrink memory by killing containers
//! sooner — trading cold starts for savings. FaaSMem is orthogonal: it
//! shrinks the memory of the containers keep-alive chooses to keep. This
//! runs the 2×2 to show the two compose.
//!
//! Runs on the parallel harness (`--jobs`, `--quick`); the merged result
//! is exported to `results/disc05_keepalive_policies.json`.

use faasmem_bench::harness::{
    self, BenchCase, ConfigCase, ExperimentGrid, HarnessOptions, TraceSpec,
};
use faasmem_bench::{fmt_mib, fmt_secs, render_table, PolicyKind};
use faasmem_faas::{AdaptiveKeepAlive, PlatformConfig};
use faasmem_workload::{BenchmarkSpec, LoadClass};

fn main() {
    let opts = HarnessOptions::from_env();
    let base = PlatformConfig {
        seed: 13,
        ..PlatformConfig::default()
    };
    let grid = ExperimentGrid::new("disc05_keepalive_policies")
        .trace(TraceSpec::synth("high-bursty", 950, LoadClass::High).bursty(true))
        .bench(BenchCase::single(
            BenchmarkSpec::by_name("bert").expect("catalog"),
        ))
        .configs([
            ConfigCase::new("fixed", base.clone()),
            ConfigCase::new(
                "adaptive",
                PlatformConfig {
                    adaptive_keep_alive: Some(AdaptiveKeepAlive::default()),
                    ..base
                },
            ),
        ])
        .policy_kinds([PolicyKind::Baseline, PolicyKind::FaasMem]);
    let run = harness::run_and_export(&grid, &opts);

    let combos = [
        (
            "fixed keep-alive, no offload",
            "fixed",
            PolicyKind::Baseline,
        ),
        ("adaptive keep-alive only", "adaptive", PolicyKind::Baseline),
        ("FaaSMem only", "fixed", PolicyKind::FaasMem),
        (
            "FaaSMem + adaptive keep-alive",
            "adaptive",
            PolicyKind::FaasMem,
        ),
    ];
    let invocations = run
        .outcome("high-bursty", "bert", "fixed", PolicyKind::Baseline.name())
        .trace_len;
    println!("=== bert, bursty trace, {invocations} invocations ===");
    let mut rows = Vec::new();
    for (label, config, kind) in combos {
        let s = &run
            .outcome("high-bursty", "bert", config, kind.name())
            .summary;
        rows.push(vec![
            label.to_string(),
            fmt_mib(s.avg_local_mib),
            format!("{:.1}%", s.cold_start_ratio * 100.0),
            fmt_secs(s.latency.p95.as_secs_f64()),
            s.containers.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["system", "avg mem", "cold starts", "P95", "containers"],
            &rows
        )
    );
    println!("Shape: adaptive keep-alive buys memory with cold starts; FaaSMem buys more");
    println!("without them; together they compound — the paper's orthogonality claim (§9).");
}
