//! §9 limitations: load imbalance across compute nodes.
//!
//! "Considering that different nodes may have different loads, memory
//! pooling could potentially yield further benefits for nodes that are
//! memory stranded." This experiment runs four differently loaded nodes
//! of the same web service and compares per-node peak memory against a
//! fixed DRAM budget, with and without FaaSMem.
//!
//! Expected shape: without offloading, the hot node blows its DRAM budget
//! while cold nodes strand capacity; with FaaSMem, every node fits and
//! the pool absorbs exactly the imbalance.

use faasmem_bench::{render_table, Experiment, PolicyKind};
use faasmem_sim::SimTime;
use faasmem_workload::{BenchmarkSpec, FunctionId, LoadClass, TraceSynthesizer};

const NODE_DRAM_MIB: f64 = 700.0;

fn main() {
    let spec = BenchmarkSpec::by_name("web").expect("catalog");
    let loads = [
        ("node-0 (surge)", LoadClass::High, true),
        ("node-1 (busy)", LoadClass::High, false),
        ("node-2 (steady)", LoadClass::Middle, false),
        ("node-3 (quiet)", LoadClass::Low, false),
    ];

    for kind in [PolicyKind::Baseline, PolicyKind::FaasMem] {
        println!("=== {} (DRAM budget {NODE_DRAM_MIB:.0} MiB per node) ===", kind.name());
        let mut rows = Vec::new();
        let mut over_budget = 0;
        let mut stranded_total = 0.0;
        let mut pool_total = 0.0;
        for (i, &(label, class, bursty)) in loads.iter().enumerate() {
            let trace = TraceSynthesizer::new(960 + i as u64)
                .load_class(class)
                .bursty(bursty)
                .duration(SimTime::from_mins(60))
                .synthesize_for(FunctionId(0));
            let outcome = Experiment::new(spec.clone(), kind).run(&trace);
            let report = outcome.report;
            let peak = report.local_mem.max_value().unwrap_or(0.0) / (1024.0 * 1024.0);
            let avg = report.avg_local_mib();
            let remote = report.avg_remote_mib();
            // Scheduling is quota-based (§8.6): a node is over-committed
            // when its steady-state (average) footprint exceeds the DRAM
            // budget. Cold-start allocation transients still peak above
            // it and are visible in the peak column.
            let fits = avg <= NODE_DRAM_MIB;
            if !fits {
                over_budget += 1;
            }
            // Stranded = budget the node holds but never uses.
            stranded_total += (NODE_DRAM_MIB - avg).max(0.0);
            pool_total += remote;
            rows.push(vec![
                label.to_string(),
                trace.len().to_string(),
                format!("{avg:.0} MiB"),
                format!("{peak:.0} MiB"),
                if fits { "fits".to_string() } else { "OVER BUDGET".to_string() },
                format!("{remote:.0} MiB"),
            ]);
        }
        println!(
            "{}",
            render_table(
                &["node", "reqs/h", "avg local", "peak local", "vs budget", "avg pooled"],
                &rows
            )
        );
        println!(
            "nodes over budget: {over_budget}; stranded DRAM (unused headroom): {stranded_total:.0} MiB; pool absorbs {pool_total:.0} MiB"
        );
        println!();
    }
    println!("Paper reference (§9): pooling harvests stranded memory from load-imbalanced");
    println!("nodes; FaaSMem moves the surge node's keep-alive memory into the shared pool.");
}
