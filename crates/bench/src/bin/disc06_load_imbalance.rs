//! §9 limitations: load imbalance across compute nodes.
//!
//! "Considering that different nodes may have different loads, memory
//! pooling could potentially yield further benefits for nodes that are
//! memory stranded." This experiment runs four differently loaded nodes
//! of the same web service and compares per-node peak memory against a
//! fixed DRAM budget, with and without FaaSMem.
//!
//! Expected shape: without offloading, the hot node blows its DRAM budget
//! while cold nodes strand capacity; with FaaSMem, every node fits and
//! the pool absorbs exactly the imbalance.
//!
//! Runs on the parallel harness — the four nodes × two policies fan
//! across `--jobs` workers; the merged result is exported to
//! `results/disc06_load_imbalance.json`.

use faasmem_bench::harness::{
    self, BenchCase, ExperimentGrid, HarnessOptions, TraceSpec, DEFAULT_CONFIG,
};
use faasmem_bench::{render_table, PolicyKind};
use faasmem_workload::{BenchmarkSpec, LoadClass};

const NODE_DRAM_MIB: f64 = 700.0;

const NODES: [(&str, LoadClass, bool); 4] = [
    ("node-0 (surge)", LoadClass::High, true),
    ("node-1 (busy)", LoadClass::High, false),
    ("node-2 (steady)", LoadClass::Middle, false),
    ("node-3 (quiet)", LoadClass::Low, false),
];

fn main() {
    let opts = HarnessOptions::from_env();
    let grid = ExperimentGrid::new("disc06_load_imbalance")
        .traces(
            NODES
                .iter()
                .enumerate()
                .map(|(i, &(label, class, bursty))| {
                    TraceSpec::synth(label, 960 + i as u64, class).bursty(bursty)
                }),
        )
        .bench(BenchCase::single(
            BenchmarkSpec::by_name("web").expect("catalog"),
        ))
        .policy_kinds([PolicyKind::Baseline, PolicyKind::FaasMem]);
    let run = harness::run_and_export(&grid, &opts);

    for kind in [PolicyKind::Baseline, PolicyKind::FaasMem] {
        println!(
            "=== {} (DRAM budget {NODE_DRAM_MIB:.0} MiB per node) ===",
            kind.name()
        );
        let mut rows = Vec::new();
        let mut over_budget = 0;
        let mut stranded_total = 0.0;
        let mut pool_total = 0.0;
        for &(label, _, _) in &NODES {
            let outcome = run.outcome(label, "web", DEFAULT_CONFIG, kind.name());
            let peak = outcome.report.local_mem.max_value().unwrap_or(0.0) / (1024.0 * 1024.0);
            let avg = outcome.summary.avg_local_mib;
            let remote = outcome.summary.avg_remote_mib;
            // Scheduling is quota-based (§8.6): a node is over-committed
            // when its steady-state (average) footprint exceeds the DRAM
            // budget. Cold-start allocation transients still peak above
            // it and are visible in the peak column.
            let fits = avg <= NODE_DRAM_MIB;
            if !fits {
                over_budget += 1;
            }
            // Stranded = budget the node holds but never uses.
            stranded_total += (NODE_DRAM_MIB - avg).max(0.0);
            pool_total += remote;
            rows.push(vec![
                label.to_string(),
                outcome.trace_len.to_string(),
                format!("{avg:.0} MiB"),
                format!("{peak:.0} MiB"),
                if fits {
                    "fits".to_string()
                } else {
                    "OVER BUDGET".to_string()
                },
                format!("{remote:.0} MiB"),
            ]);
        }
        println!(
            "{}",
            render_table(
                &[
                    "node",
                    "reqs/h",
                    "avg local",
                    "peak local",
                    "vs budget",
                    "avg pooled"
                ],
                &rows
            )
        );
        println!(
            "nodes over budget: {over_budget}; stranded DRAM (unused headroom): {stranded_total:.0} MiB; pool absorbs {pool_total:.0} MiB"
        );
        println!();
    }
    println!("Paper reference (§9): pooling harvests stranded memory from load-imbalanced");
    println!("nodes; FaaSMem moves the surge node's keep-alive memory into the shared pool.");
}
