//! Discussion: fault tolerance of the memory-pool architecture (§9).
//!
//! The paper's design note — far memory must degrade, not fail — is
//! exercised here with seeded chaos: RDMA link outages of varying length
//! are injected while FaaSMem offloads, under two recall policies
//! (patient: long timeouts, many retries; hasty: short timeouts, early
//! give-up and local rebuild) and two pool sizes. The output is the
//! memory-savings vs. availability trade-off: how much of the paper's
//! headline savings survives an unreliable fabric, and at what tail cost.
//!
//! The fault plan is a pure function of its seed, so the whole grid is
//! byte-identical across `--jobs` values. Runs on the parallel harness
//! (`--jobs`, `--quick`); the merged result is exported to
//! `results/disc07_fault_tolerance.json`.

use faasmem_bench::harness::{
    self, BenchCase, ConfigCase, ExperimentGrid, HarnessOptions, TraceSpec,
};
use faasmem_bench::{fmt_mib, fmt_secs, render_table, PolicyKind};
use faasmem_faas::{FaultConfig, PlatformConfig};
use faasmem_pool::{PoolConfig, RemoteFaultPolicy};
use faasmem_sim::{FaultSpec, SimDuration};
use faasmem_workload::{BenchmarkSpec, LoadClass};

/// Root seed of every injected fault plan; recorded in panic reports.
const FAULT_SEED: u64 = 0xD15C07;

/// Mean time between outages: roughly one per five simulated minutes.
const OUTAGE_MTBF: SimDuration = SimDuration::from_mins(5);

/// Warm requests on bert finish well under this; crossing it means the
/// request visibly stalled on the degraded pool.
const SLO: SimDuration = SimDuration::from_secs(2);

fn pools() -> Vec<(&'static str, PoolConfig)> {
    vec![
        ("56G pool", PoolConfig::infiniband_56g()),
        (
            "4G pool",
            PoolConfig {
                capacity_bytes: 4 << 30,
                ..PoolConfig::infiniband_56g()
            },
        ),
    ]
}

fn outages() -> Vec<(&'static str, SimDuration)> {
    vec![
        ("30s outages", SimDuration::from_secs(30)),
        ("120s outages", SimDuration::from_secs(120)),
    ]
}

fn recall_policies() -> Vec<(&'static str, RemoteFaultPolicy)> {
    vec![
        ("patient", RemoteFaultPolicy::default()),
        ("hasty", RemoteFaultPolicy::hasty()),
    ]
}

/// Every configuration of the grid: the healthy control first, then the
/// full outage-length × recall-policy × pool-size cross.
fn configs() -> Vec<(String, ConfigCase)> {
    let mut cases = vec![(
        "no faults".to_string(),
        ConfigCase::new("no faults", PlatformConfig::default()),
    )];
    for (pool_name, pool) in pools() {
        for (outage_name, outage_mean) in outages() {
            for (policy_name, policy) in recall_policies() {
                let label = format!("{pool_name}, {outage_name}, {policy_name}");
                let config = PlatformConfig {
                    pool: pool.clone(),
                    faults: Some(FaultConfig {
                        spec: FaultSpec::new(FAULT_SEED).outages(OUTAGE_MTBF, outage_mean),
                        policy,
                        slo: Some(SLO),
                        plan_override: None,
                    }),
                    ..PlatformConfig::default()
                };
                cases.push((label.clone(), ConfigCase::new(&label, config)));
            }
        }
    }
    cases
}

fn main() {
    let opts = HarnessOptions::from_env();
    let grid = ExperimentGrid::new("disc07_fault_tolerance")
        .trace(TraceSpec::synth("high-bursty", 907, LoadClass::High).bursty(true))
        .bench(BenchCase::single(
            BenchmarkSpec::by_name("bert").expect("catalog"),
        ))
        .configs(configs().into_iter().map(|(_, case)| case))
        .policy_kinds([PolicyKind::Baseline, PolicyKind::FaasMem]);
    let run = harness::run_and_export(&grid, &opts);

    let invocations = run
        .outcome(
            "high-bursty",
            "bert",
            "no faults",
            PolicyKind::FaasMem.name(),
        )
        .trace_len;
    println!("=== bert, bursty trace, {invocations} invocations, chaos seed {FAULT_SEED:#x} ===");
    let mut rows = Vec::new();
    for (label, _) in configs() {
        let faasmem = run.outcome("high-bursty", "bert", &label, PolicyKind::FaasMem.name());
        let baseline = run.outcome("high-bursty", "bert", &label, PolicyKind::Baseline.name());
        let s = &faasmem.summary;
        // Savings relative to the no-offload baseline under the *same*
        // fault schedule: suspension and local rebuilds eat into them.
        let savings = if baseline.summary.avg_local_mib > 0.0 {
            100.0 * (1.0 - s.avg_local_mib / baseline.summary.avg_local_mib)
        } else {
            0.0
        };
        let (availability, slo_viol, gave_up, forced) = match &s.faults {
            Some(f) => (
                format!("{:.4}", f.link_availability),
                format!("{:.2}%", 100.0 * f.slo_violation_ratio()),
                f.page_ins_gave_up.to_string(),
                f.forced_cold_restarts.to_string(),
            ),
            None => (
                "1.0000".to_string(),
                "—".to_string(),
                "—".to_string(),
                "—".to_string(),
            ),
        };
        rows.push(vec![
            label,
            fmt_mib(s.avg_local_mib),
            format!("{savings:.1}%"),
            fmt_secs(s.latency.p95.as_secs_f64()),
            availability,
            slo_viol,
            gave_up,
            forced,
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "configuration",
                "avg mem",
                "savings",
                "P95",
                "availability",
                "SLO viol",
                "gave up",
                "forced cold",
            ],
            &rows
        )
    );
    println!();
    println!("Shape: short outages cost tail latency but keep most of the savings. Long");
    println!("outages punish the patient policy — stalled recalls keep containers resident");
    println!("and resident memory balloons past the no-offload baseline — while the hasty");
    println!("policy gives up fast, rebuilds locally (forced cold restarts) and keeps both");
    println!("tails and memory bounded: the degrade-don't-fail case for §9's architecture.");
}
