//! Discussion: durability of the memory-pool architecture (§9).
//!
//! `disc07` asks what happens when the pool *link* degrades; this
//! experiment asks what happens when whole pool *nodes* die. Seeded
//! chaos kills nodes of an M-node fabric while FaaSMem offloads, under
//! three redundancy schemes (none, 2-way mirroring, and a modeled 2+1
//! erasure code) and two node-loss rates. Mild link outages run
//! concurrently so the breaker-driven failover path is exercised too.
//! The output is the durability trade-off: what the redundancy costs
//! (replica write traffic, repair bandwidth, capacity overhead) against
//! what it buys (failover recalls and cold rebuilds avoided).
//!
//! The fault plan is a pure function of its seed, so the whole grid is
//! byte-identical across `--jobs` and `--shards` values. The merged
//! result is exported to `results/disc08_durability.json`.

use faasmem_bench::harness::{
    self, BenchCase, ConfigCase, ExperimentGrid, HarnessOptions, TraceSpec,
};
use faasmem_bench::{fmt_mib, fmt_secs, render_table, PolicyKind};
use faasmem_faas::{FaultConfig, PlatformConfig};
use faasmem_pool::{FabricConfig, RedundancyPolicy};
use faasmem_sim::{FaultSpec, SimDuration};
use faasmem_workload::{BenchmarkSpec, LoadClass};

/// Root seed of every injected fault plan; recorded in panic reports.
const FAULT_SEED: u64 = 0xD15C08;

/// Mean time between mild link outages (kept rarer and shorter than
/// disc07's so node deaths, not the link, dominate the availability
/// story).
const OUTAGE_MTBF: SimDuration = SimDuration::from_mins(10);

/// Mean link-outage length.
const OUTAGE_MEAN: SimDuration = SimDuration::from_secs(20);

/// Warm requests on bert finish well under this; crossing it means the
/// request visibly stalled on the degraded pool.
const SLO: SimDuration = SimDuration::from_secs(2);

/// Background repair bandwidth budget — deliberately modest so repair
/// backlogs and MTTR are visible at simulation scale.
const REPAIR_BYTES_PER_SEC: u64 = 32 << 20;

fn node_counts() -> Vec<u32> {
    vec![2, 4]
}

fn loss_rates() -> Vec<(&'static str, SimDuration)> {
    vec![
        ("losses~5min", SimDuration::from_mins(5)),
        ("losses~20min", SimDuration::from_mins(20)),
    ]
}

/// The redundancy schemes that fit an M-node fabric.
fn schemes(nodes: u32) -> Vec<RedundancyPolicy> {
    let mut schemes = vec![RedundancyPolicy::None, RedundancyPolicy::Mirror { k: 2 }];
    if nodes >= 4 {
        // data+parity = 3 < nodes leaves a spare node, so repair can
        // actually re-replicate after a loss.
        schemes.push(RedundancyPolicy::ErasureCoded { data: 2, parity: 1 });
    }
    schemes
}

/// Every configuration of the grid: the healthy single-node control
/// first (no fabric, no faults — its summary must stay byte-identical
/// to pre-fabric documents), then the node-count × loss-rate ×
/// redundancy cross.
fn configs() -> Vec<(String, ConfigCase)> {
    let mut cases = vec![(
        "no faults".to_string(),
        ConfigCase::new("no faults", PlatformConfig::default()),
    )];
    for nodes in node_counts() {
        for (rate_name, mtbf) in loss_rates() {
            for scheme in schemes(nodes) {
                let label = format!("{nodes} nodes, {rate_name}, {}", scheme.label());
                let config = PlatformConfig {
                    fabric: FabricConfig {
                        nodes,
                        redundancy: scheme,
                        repair_bytes_per_sec: REPAIR_BYTES_PER_SEC,
                        ..FabricConfig::default()
                    },
                    faults: Some(FaultConfig {
                        spec: FaultSpec::new(FAULT_SEED)
                            .outages(OUTAGE_MTBF, OUTAGE_MEAN)
                            .pool_node_losses(mtbf, nodes),
                        slo: Some(SLO),
                        ..FaultConfig::default()
                    }),
                    ..PlatformConfig::default()
                };
                cases.push((label.clone(), ConfigCase::new(&label, config)));
            }
        }
    }
    cases
}

fn main() {
    let opts = HarnessOptions::from_env();
    let grid = ExperimentGrid::new("disc08_durability")
        .trace(TraceSpec::synth("high-bursty", 908, LoadClass::High).bursty(true))
        .bench(BenchCase::single(
            BenchmarkSpec::by_name("bert").expect("catalog"),
        ))
        .configs(configs().into_iter().map(|(_, case)| case))
        .policy_kinds([PolicyKind::Baseline, PolicyKind::FaasMem]);
    let run = harness::run_and_export(&grid, &opts);

    let invocations = run
        .outcome(
            "high-bursty",
            "bert",
            "no faults",
            PolicyKind::FaasMem.name(),
        )
        .trace_len;
    println!("=== bert, bursty trace, {invocations} invocations, chaos seed {FAULT_SEED:#x} ===");
    let mut rows = Vec::new();
    for (label, _) in configs() {
        let faasmem = run.outcome("high-bursty", "bert", &label, PolicyKind::FaasMem.name());
        let baseline = run.outcome("high-bursty", "bert", &label, PolicyKind::Baseline.name());
        let s = &faasmem.summary;
        // Savings relative to the no-offload baseline under the *same*
        // fault schedule: rebuilds and replica overheads eat into them.
        let savings = if baseline.summary.avg_local_mib > 0.0 {
            100.0 * (1.0 - s.avg_local_mib / baseline.summary.avg_local_mib)
        } else {
            0.0
        };
        let forced = match &s.faults {
            Some(f) => f.forced_cold_restarts.to_string(),
            None => "—".to_string(),
        };
        let (failovers, avoided, repairs, mttr, lost_mib) = match &s.durability {
            Some(d) => (
                d.tracker.failover_recalls.to_string(),
                d.tracker.avoided_cold_rebuilds.to_string(),
                d.tracker.repairs_completed.to_string(),
                d.tracker
                    .mean_mttr()
                    .map_or("—".to_string(), |m| fmt_secs(m.as_secs_f64())),
                format!("{:.1}", d.tracker.bytes_lost as f64 / (1024.0 * 1024.0)),
            ),
            None => (
                "—".to_string(),
                "—".to_string(),
                "—".to_string(),
                "—".to_string(),
                "—".to_string(),
            ),
        };
        rows.push(vec![
            label,
            fmt_mib(s.avg_local_mib),
            format!("{savings:.1}%"),
            fmt_secs(s.latency.p95.as_secs_f64()),
            forced,
            failovers,
            avoided,
            repairs,
            mttr,
            lost_mib,
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "configuration",
                "avg mem",
                "savings",
                "P95",
                "forced cold",
                "failovers",
                "avoided",
                "repairs",
                "MTTR",
                "lost MiB",
            ],
            &rows
        )
    );
    println!();

    // The redundancy dividend, stated explicitly: under the identical
    // chaos schedule, mirroring must strictly reduce forced rebuilds.
    let mut total_none = 0u64;
    let mut total_mirror = 0u64;
    for nodes in node_counts() {
        for (rate_name, _) in loss_rates() {
            let forced = |scheme: &RedundancyPolicy| {
                let label = format!("{nodes} nodes, {rate_name}, {}", scheme.label());
                run.outcome("high-bursty", "bert", &label, PolicyKind::FaasMem.name())
                    .summary
                    .faults
                    .map_or(0, |f| f.forced_cold_restarts)
            };
            let none = forced(&RedundancyPolicy::None);
            let mirror = forced(&RedundancyPolicy::Mirror { k: 2 });
            total_none += none;
            total_mirror += mirror;
            println!(
                "{nodes} nodes, {rate_name}: forced cold rebuilds {none} (none) -> {mirror} \
                 (mirror2){}",
                if mirror >= none && none > 0 {
                    " [no dividend: every node died before repair could matter]"
                } else {
                    ""
                }
            );
        }
    }
    println!(
        "grid total: forced cold rebuilds {total_none} (none) -> {total_mirror} (mirror2), {}",
        if total_mirror < total_none {
            "mirroring pays for itself"
        } else {
            "NO REDUNDANCY DIVIDEND"
        }
    );
    println!();
    println!("Shape: without redundancy every pool-node death cold-rebuilds its tenants'");
    println!("state; 2-way mirroring converts most of those into failover recalls at 2x");
    println!("write traffic and capacity, while the modeled 2+1 erasure code pays 1.5x for");
    println!("the same single-loss tolerance plus a reconstruction penalty on degraded");
    println!("reads - but spreads each segment over more nodes, so double losses hurt it");
    println!("more. Background repair re-replicates within its bandwidth budget, so MTTR -");
    println!("not loss rate alone - decides how much redundancy a fabric retains. The only");
    println!("cell without a dividend is the 2-node fabric losing nodes faster than repair");
    println!("could ever help: once every node is dead, no scheme saves you.");
}
