//! Latency anatomy: where the tail comes from (observability study).
//!
//! Every earlier experiment reports *that* the P95/P99 moves; this one
//! reports *why*. With `PlatformConfig::blame` on, the platform splits
//! each invocation's end-to-end latency into named components — queue,
//! cold-start, exec, and the stall families the memory pool injects —
//! under an exact conservation invariant (components sum to the
//! measured latency, in integer microseconds, per invocation). The grid
//! sweeps memory pressure (a steady middle-load trace vs a bursty
//! high-load one) against pool redundancy (none, 2-way mirroring, and a
//! 2+1 erasure code on a 4-node fabric under seeded node losses, plus a
//! fault-free control) and prints the tail-attribution matrix: the mean
//! share of each component over the slowest 1% of invocations.
//!
//! The expected shift, asserted by CI's schema check: with no faults the
//! tail belongs to cold-starts and plain recall stalls; dropping
//! redundancy converts the recall-family tail (failover detours, recall
//! stalls) into forced cold rebuilds, because a dead primary without a
//! replica loses its tenants' state outright.
//!
//! Blame is pure observation — enabling it changes no event, no RNG
//! draw, no latency — so the grid is byte-identical across `--jobs` and
//! `--shards` like every other experiment (CI compares all three).
//!
//! `--quick` is deliberately ignored: the full grid takes about a
//! second, and a truncated run's slowest 1% is just the first cold
//! starts — a tail with no anatomy to report.

use faasmem_bench::harness::{
    self, BenchCase, ConfigCase, ExperimentGrid, HarnessOptions, TraceSpec,
};
use faasmem_bench::{render_table, PolicyKind};
use faasmem_faas::{BlameComponent, FaultConfig, PlatformConfig};
use faasmem_pool::{FabricConfig, RedundancyPolicy, RemoteFaultPolicy};
use faasmem_sim::{FaultSpec, SimDuration};
use faasmem_workload::{BenchmarkSpec, LoadClass};

/// Root seed of every injected fault plan; recorded in panic reports.
const FAULT_SEED: u64 = 0xD15C09;

/// Mean time between pool-node deaths. Aggressive enough that the
/// bursty trace sees several losses, so redundancy visibly reshapes
/// the tail.
const LOSS_MTBF: SimDuration = SimDuration::from_mins(8);

/// Mild link outages running concurrently, so the breaker/failover
/// paths contribute their own blame components.
const OUTAGE_MTBF: SimDuration = SimDuration::from_mins(12);

/// Mean link-outage length.
const OUTAGE_MEAN: SimDuration = SimDuration::from_secs(15);

/// Pool fabric size. Four nodes leave a spare under mirroring, so
/// repair can re-replicate after a loss instead of staying degraded.
const NODES: u32 = 4;

fn redundancy_axis() -> Vec<RedundancyPolicy> {
    vec![
        RedundancyPolicy::None,
        RedundancyPolicy::Mirror { k: 2 },
        // Degraded erasure-coded reads pay a reconstruction penalty, so
        // this scheme is the one that exercises the failover-detour
        // component (mirror failovers read a plain replica for free).
        RedundancyPolicy::ErasureCoded { data: 2, parity: 1 },
    ]
}

/// Grid configurations: the fault-free control first, then the
/// redundancy axis under the identical chaos schedule. Every case sets
/// `blame: true` — the whole point of the experiment — which adds the
/// `"blame"` block to each cell without perturbing the run.
fn configs() -> Vec<(String, ConfigCase)> {
    let mut cases = vec![(
        "no faults".to_string(),
        ConfigCase::new(
            "no faults",
            PlatformConfig {
                blame: true,
                ..PlatformConfig::default()
            },
        ),
    )];
    for scheme in redundancy_axis() {
        let label = format!("{NODES} nodes, losses~8min, {}", scheme.label());
        let config = PlatformConfig {
            blame: true,
            fabric: FabricConfig {
                nodes: NODES,
                redundancy: scheme,
                ..FabricConfig::default()
            },
            faults: Some(FaultConfig {
                spec: FaultSpec::new(FAULT_SEED)
                    .outages(OUTAGE_MTBF, OUTAGE_MEAN)
                    .pool_node_losses(LOSS_MTBF, NODES),
                // Hasty retries give up mid-outage, so the abandoned-wait
                // / forced-rebuild / failover-detour components actually
                // appear instead of hiding inside patient backoff.
                policy: RemoteFaultPolicy::hasty(),
                ..FaultConfig::default()
            }),
            ..PlatformConfig::default()
        };
        cases.push((label.clone(), ConfigCase::new(&label, config)));
    }
    cases
}

/// The pressure axis: a steady middle-load trace barely touches the
/// pool; the bursty high-load trace drives offload hard enough that
/// recall stalls reach the tail.
fn traces() -> Vec<TraceSpec> {
    vec![
        TraceSpec::synth("middle", 909, LoadClass::Middle),
        TraceSpec::synth("high-bursty", 909, LoadClass::High).bursty(true),
    ]
}

fn trace_names() -> [&'static str; 2] {
    ["middle", "high-bursty"]
}

fn pct(share: f64) -> String {
    format!("{:.1}%", share * 100.0)
}

fn main() {
    let mut opts = HarnessOptions::from_env();
    // Always run the full grid (about a second of wall time): the quick
    // window's slowest 1% is just the first cold starts, which says
    // nothing about the tail, and a fixed mode keeps the tracked
    // artifacts reproducible from `runall` with or without `--quick`.
    opts.quick = false;
    let grid = ExperimentGrid::new("disc09_tail_blame")
        .traces(traces())
        .bench(BenchCase::single(
            BenchmarkSpec::by_name("bert").expect("catalog"),
        ))
        .configs(configs().into_iter().map(|(_, case)| case))
        .policy_kinds([PolicyKind::Baseline, PolicyKind::FaasMem]);
    let run = harness::run_and_export(&grid, &opts);

    println!("=== bert, latency anatomy, chaos seed {FAULT_SEED:#x} ===");
    println!();

    // The tail-attribution matrix: one row per (trace, config, policy),
    // the mean share of each component over the slowest 1%.
    let columns = [
        BlameComponent::ColdStart,
        BlameComponent::Exec,
        BlameComponent::FaultCpu,
        BlameComponent::RecallStall,
        BlameComponent::FailoverDetour,
        BlameComponent::AbandonedWait,
        BlameComponent::ForcedRebuild,
    ];
    let mut rows = Vec::new();
    let mut cells = 0u64;
    let mut violations = 0u64;
    for trace in trace_names() {
        for (label, _) in configs() {
            for kind in [PolicyKind::Baseline, PolicyKind::FaasMem] {
                let outcome = run.outcome(trace, "bert", &label, kind.name());
                let blame = outcome
                    .summary
                    .blame
                    .expect("blame enabled in every config");
                cells += 1;
                violations += blame.conservation_violations;
                let mut row = vec![
                    format!("{trace}, {label}, {}", kind.name()),
                    format!("{:.0}ms", blame.tail_cutoff.as_millis_f64()),
                    format!("{:.0}ms", blame.tail_mean_latency.as_millis_f64()),
                ];
                row.extend(columns.iter().map(|&c| pct(blame.tail_share(c))));
                rows.push(row);
            }
        }
    }
    let mut headers = vec!["cell", "tail cutoff", "tail mean"];
    headers.extend(columns.iter().map(|c| c.name()));
    println!("{}", render_table(&headers, &rows));
    println!();

    // The conservation invariant, stated on the output so a regression
    // is visible in the diff, not just in the JSON.
    println!(
        "conservation: blame components sum exactly to measured latency in all {cells} cells \
         ({violations} violations)"
    );
    println!();

    // The redundancy shift, quantified: under the identical chaos
    // schedule on the bursty trace, dropping the mirror converts the
    // recall-family tail into forced rebuilds.
    let tail = |scheme: &RedundancyPolicy, component: BlameComponent| {
        let label = format!("{NODES} nodes, losses~8min, {}", scheme.label());
        run.outcome("high-bursty", "bert", &label, PolicyKind::FaasMem.name())
            .summary
            .blame
            .expect("blame enabled")
            .tail_share(component)
    };
    let recall_family = |scheme: &RedundancyPolicy| {
        tail(scheme, BlameComponent::RecallStall)
            + tail(scheme, BlameComponent::FailoverDetour)
            + tail(scheme, BlameComponent::AbandonedWait)
    };
    let none = RedundancyPolicy::None;
    let mirror = RedundancyPolicy::Mirror { k: 2 };
    println!(
        "tail shift (high-bursty, faasmem): forced_rebuild {} (no redundancy) -> {} (mirror2); \
         recall family {} -> {}",
        pct(tail(&none, BlameComponent::ForcedRebuild)),
        pct(tail(&mirror, BlameComponent::ForcedRebuild)),
        pct(recall_family(&none)),
        pct(recall_family(&mirror)),
    );
    println!();
    println!("Shape: with no faults the tail belongs to cold-starts plus plain recall");
    println!("stalls; node losses without redundancy turn it into forced cold rebuilds,");
    println!("while 2-way mirroring converts those rebuilds back into the cheaper recall");
    println!("family (failover detours and retried recalls). The decomposition is exact:");
    println!("per invocation the components sum to the measured latency, so every point");
    println!("of P99 movement is attributed to a named cause - nothing is left over.");
}
