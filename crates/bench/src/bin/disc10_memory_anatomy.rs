//! Memory anatomy: where the byte-seconds go (observability study).
//!
//! Every earlier experiment reports *how much* memory a policy saves;
//! this one reports *where each byte-second sits* while it is being
//! paid for. With `PlatformConfig::memory_anatomy` on, the platform
//! integrates resident memory over simulated time into named
//! components — active execution, keep-alive idle (the paper's cold
//! waste), init overhead, the pinned hot pool, and on the pool side
//! primary occupancy, redundancy amplification, repair backlog and
//! in-flight transfer — under two exact conservation invariants: the
//! compute-side stage partition must sum to the measured local
//! footprint and the pool-side partition to the pool's own ledger, in
//! integer byte-microseconds, on every inter-event interval.
//!
//! The grid sweeps keep-alive dwell (10 min vs 2 min) against pool
//! redundancy (none vs 2-way mirroring) and prints the waste matrix.
//! The headline, asserted by CI's schema check: FaaSMem converts
//! keep-alive idle byte-seconds into (cheaper) pool-primary
//! byte-seconds, and mirroring prices that conversion with an explicit
//! redundancy-amplification premium.
//!
//! Anatomy is pure observation — enabling it changes no event, no RNG
//! draw, no latency — so the grid is byte-identical across `--jobs`
//! and `--shards` like every other experiment (CI compares all three).
//!
//! `--quick` is deliberately ignored: the full grid takes about a
//! second, and a truncated run never reaches keep-alive expiry, which
//! is the regime the study is about.

use faasmem_bench::harness::{
    self, BenchCase, ConfigCase, ExperimentGrid, HarnessOptions, TraceSpec,
};
use faasmem_bench::{render_table, PolicyKind};
use faasmem_faas::{byte_us_to_byte_secs, PlatformConfig, WasteComponent};
use faasmem_pool::{FabricConfig, RedundancyPolicy};
use faasmem_sim::SimDuration;
use faasmem_workload::{BenchmarkSpec, LoadClass};

/// Pool fabric size under mirroring; two nodes is the smallest fabric
/// that can hold a 2-way mirror.
const NODES: u32 = 2;

fn keep_alive_axis() -> [(u64, &'static str); 2] {
    [(10, "ka=10min"), (2, "ka=2min")]
}

fn redundancy_axis() -> [(RedundancyPolicy, &'static str); 2] {
    [
        (RedundancyPolicy::None, "no redundancy"),
        (RedundancyPolicy::Mirror { k: 2 }, "mirror2"),
    ]
}

/// Grid configurations: keep-alive dwell crossed with pool redundancy.
/// Every case sets `memory_anatomy: true` — the whole point of the
/// experiment — which adds the `"memory_anatomy"` block to each cell
/// without perturbing the run.
fn configs() -> Vec<(String, ConfigCase)> {
    let mut cases = Vec::new();
    for (mins, ka_label) in keep_alive_axis() {
        for (scheme, r_label) in redundancy_axis() {
            let label = format!("{ka_label}, {r_label}");
            let mut config = PlatformConfig {
                memory_anatomy: true,
                keep_alive: SimDuration::from_mins(mins),
                ..PlatformConfig::default()
            };
            if !matches!(scheme, RedundancyPolicy::None) {
                config.fabric = FabricConfig {
                    nodes: NODES,
                    redundancy: scheme,
                    ..FabricConfig::default()
                };
            }
            cases.push((label.clone(), ConfigCase::new(&label, config)));
        }
    }
    cases
}

fn gib_s(byte_secs: f64) -> String {
    format!("{:.2}", byte_secs / (1024.0 * 1024.0 * 1024.0))
}

fn main() {
    let mut opts = HarnessOptions::from_env();
    // Always run the full grid (about a second of wall time): the quick
    // window ends before any keep-alive expiry, leaving nothing to
    // attribute, and a fixed mode keeps the tracked artifacts
    // reproducible from `runall` with or without `--quick`.
    opts.quick = false;
    let grid = ExperimentGrid::new("disc10_memory_anatomy")
        .traces(vec![TraceSpec::synth("middle", 1010, LoadClass::Middle)])
        .bench(BenchCase::single(
            BenchmarkSpec::by_name("bert").expect("catalog"),
        ))
        .configs(configs().into_iter().map(|(_, case)| case))
        .policy_kinds([PolicyKind::Baseline, PolicyKind::FaasMem]);
    let run = harness::run_and_export(&grid, &opts);

    println!("=== bert, memory anatomy (GiB*s per component) ===");
    println!();

    let columns = [
        WasteComponent::ActiveExec,
        WasteComponent::KeepaliveIdle,
        WasteComponent::InitOverhead,
        WasteComponent::LocalHotPool,
        WasteComponent::PoolPrimary,
        WasteComponent::RedundancyAmplification,
        WasteComponent::OffloadInflight,
    ];
    let mut rows = Vec::new();
    let mut cells = 0u64;
    let mut violations = 0u64;
    for (label, _) in configs() {
        for kind in [PolicyKind::Baseline, PolicyKind::FaasMem] {
            let outcome = run.outcome("middle", "bert", &label, kind.name());
            let anatomy = outcome
                .summary
                .memory_anatomy
                .expect("anatomy enabled in every config");
            cells += 1;
            violations += anatomy.conservation_violations();
            let mut row = vec![format!("{label}, {}", kind.name())];
            row.extend(
                columns
                    .iter()
                    .map(|&c| gib_s(byte_us_to_byte_secs(anatomy.waste.component(c)))),
            );
            rows.push(row);
        }
    }
    let mut headers = vec!["cell"];
    headers.extend(columns.iter().map(|c| c.name()));
    println!("{}", render_table(&headers, &rows));
    println!();

    // The conservation invariants, stated on the output so a regression
    // is visible in the diff, not just in the JSON: the stage partition
    // tiles the measured local footprint, the pool partition tiles the
    // pool's ledger, and the lifecycle flow rows balance.
    println!(
        "conservation: compute and pool partitions tile their measured totals in all \
         {cells} cells ({violations} violations)"
    );
    println!();

    // The page-lifecycle flow ledger for the busiest cell: every page
    // transition counted exactly once at its mutation site.
    let flow = run
        .outcome(
            "middle",
            "bert",
            "ka=10min, no redundancy",
            PolicyKind::FaasMem.name(),
        )
        .summary
        .memory_anatomy
        .expect("anatomy enabled")
        .flow;
    let f = flow.flows;
    println!(
        "page flow (ka=10min, no redundancy, faasmem): allocated {} reused {} offloaded {} \
         recalled {}+{} freed {}+{} across {} tables, {} row violations",
        f.allocated,
        f.reused,
        f.offloaded,
        f.recalled_demand,
        f.recalled_prefetch,
        f.freed_local,
        f.freed_remote,
        flow.tables,
        flow.row_violations(),
    );
    println!();

    // The attribution shift, quantified: under the identical trace,
    // FaaSMem moves keep-alive idle byte-seconds into pool-primary
    // occupancy, and mirroring states the premium for doing so durably.
    let comp = |config: &str, kind: PolicyKind, c: WasteComponent| {
        byte_us_to_byte_secs(
            run.outcome("middle", "bert", config, kind.name())
                .summary
                .memory_anatomy
                .expect("anatomy enabled")
                .waste
                .component(c),
        )
    };
    let idle_base = comp(
        "ka=10min, no redundancy",
        PolicyKind::Baseline,
        WasteComponent::KeepaliveIdle,
    );
    let idle_faas = comp(
        "ka=10min, no redundancy",
        PolicyKind::FaasMem,
        WasteComponent::KeepaliveIdle,
    );
    let pool_faas = comp(
        "ka=10min, no redundancy",
        PolicyKind::FaasMem,
        WasteComponent::PoolPrimary,
    );
    let mirror_primary = comp(
        "ka=10min, mirror2",
        PolicyKind::FaasMem,
        WasteComponent::PoolPrimary,
    );
    let mirror_premium = comp(
        "ka=10min, mirror2",
        PolicyKind::FaasMem,
        WasteComponent::RedundancyAmplification,
    );
    println!(
        "attribution shift (ka=10min): keepalive_idle {} (baseline) -> {} (faasmem) GiB*s, \
         pool_primary 0.00 -> {} GiB*s",
        gib_s(idle_base),
        gib_s(idle_faas),
        gib_s(pool_faas),
    );
    println!(
        "redundancy premium (ka=10min, faasmem): mirror2 adds {} GiB*s of replica \
         occupancy on {} GiB*s primary ({:.0}% amplification)",
        gib_s(mirror_premium),
        gib_s(mirror_primary),
        if mirror_primary > 0.0 {
            100.0 * mirror_premium / mirror_primary
        } else {
            0.0
        },
    );
    println!();
    println!("Shape: the baseline pays for idle keep-alive memory in full; FaaSMem");
    println!("offloads those pages, so the same byte-seconds reappear as pool-primary");
    println!("occupancy (plus a small in-flight transfer term), shrinking keepalive_idle");
    println!("strictly. Mirroring doubles the pool-side bytes and the anatomy prices");
    println!("that premium as redundancy_amplification - the cost of durable offload");
    println!("is a named component, not a hidden multiplier. The decomposition is");
    println!("exact: per interval the components sum to the measured footprints, so");
    println!("every saved or spent byte-second has a stated cause - nothing is left over.");
}
