//! §8.3.2 extension: cold-start-aware semi-warm timing.
//!
//! Under bursty load the observed container-reused intervals
//! underestimate the ideal semi-warm start timing (cold-start congestion
//! hides the long would-be reuses), so FaaSMem's 99th-percentile timing
//! fires too early and the P99 latency suffers. The paper leaves the fix
//! as future work; this build implements it: the gap behind every cold
//! start is fed into the reuse CDF as a censored sample.
//!
//! Expected shape: on steady traffic the two variants are identical; on
//! the clustered pattern the aware variant's censored samples push the
//! start timing to the cap, so it stops paying offload bandwidth for
//! containers whose demand provably returns late — the trade is explicit:
//! less drain traffic and more resident memory. (The paper's P99-latency
//! side of this story needs cold-start *congestion*, which shows up in
//! the Fig 13 bursty case.)

use faasmem_bench::{fmt_mib, fmt_secs, render_table};
use faasmem_core::{FaasMemConfigBuilder, FaasMemPolicy};
use faasmem_faas::PlatformSim;
use faasmem_sim::SimTime;
use faasmem_workload::{BenchmarkSpec, FunctionId, Invocation, InvocationTrace, LoadClass, TraceSynthesizer};

/// Clustered arrivals: bursts of `cluster_size` requests 5 s apart, with
/// `gap_secs` of silence between bursts. When the gap exceeds the
/// keep-alive, every burst begins with cold starts — the §8.3.2 hazard.
fn clustered_trace(clusters: u64, cluster_size: u64, gap_secs: u64) -> InvocationTrace {
    let mut invs = Vec::new();
    for c in 0..clusters {
        for i in 0..cluster_size {
            invs.push(Invocation {
                at: SimTime::from_secs(10 + c * gap_secs + i * 5),
                function: FunctionId(0),
            });
        }
    }
    let horizon = SimTime::from_secs(10 + clusters * gap_secs + 1_000);
    InvocationTrace::from_invocations(invs, horizon)
}

fn main() {
    let spec = BenchmarkSpec::by_name("bert").expect("catalog");
    for (case, trace) in [
        (
            "steady (common)",
            TraceSynthesizer::new(904)
                .load_class(LoadClass::High)
                .duration(SimTime::from_mins(60))
                .synthesize_for(FunctionId(0)),
        ),
        ("clustered bursts, 11-minute silences", clustered_trace(6, 8, 660)),
    ] {
        println!("=== {case}: {} invocations ===", trace.len());
        let mut rows = Vec::new();
        for (label, aware) in [("FaaSMem (paper)", false), ("FaaSMem + cold-start-aware", true)] {
            let policy = FaasMemPolicy::builder()
                .config(FaasMemConfigBuilder::new().cold_start_aware(aware).build())
                .build();
            let stats = policy.stats();
            let mut sim = PlatformSim::builder()
                .register_function(spec.clone())
                .policy(policy)
                .seed(31)
                .build();
            let mut report = sim.run(&trace);
            let s = report.latency.summary();
            rows.push(vec![
                label.to_string(),
                fmt_mib(report.avg_local_mib()),
                fmt_secs(s.p95.as_secs_f64()),
                fmt_secs(s.p99.as_secs_f64()),
                format!(
                    "{:.0} MiB",
                    stats.borrow().semi_warm_bytes as f64 / (1024.0 * 1024.0)
                ),
            ]);
        }
        println!(
            "{}",
            render_table(&["variant", "avg mem", "P95", "P99", "semi-warm drained"], &rows)
        );
        println!();
    }
    println!("Paper reference (§8.3.2): under burst, FaaSMem's P99 rose 25% because the");
    println!("collected reuse intervals underestimated the ideal timing; accounting for");
    println!("cold-start incidents was named as the path to a more precise timing.");
}
