//! §8.3.2 extension: cold-start-aware semi-warm timing.
//!
//! Under bursty load the observed container-reused intervals
//! underestimate the ideal semi-warm start timing (cold-start congestion
//! hides the long would-be reuses), so FaaSMem's 99th-percentile timing
//! fires too early and the P99 latency suffers. The paper leaves the fix
//! as future work; this build implements it: the gap behind every cold
//! start is fed into the reuse CDF as a censored sample.
//!
//! Expected shape: on steady traffic the two variants are identical; on
//! the clustered pattern the aware variant's censored samples push the
//! start timing to the cap, so it stops paying offload bandwidth for
//! containers whose demand provably returns late — the trade is explicit:
//! less drain traffic and more resident memory. (The paper's P99-latency
//! side of this story needs cold-start *congestion*, which shows up in
//! the Fig 13 bursty case.)
//!
//! Runs on the parallel harness (`--jobs`, `--quick`); the merged result
//! is exported to `results/ext01_coldstart_aware.json`.

use faasmem_bench::harness::{
    self, BenchCase, ConfigCase, ExperimentGrid, HarnessOptions, PolicySpec, TraceSpec,
};
use faasmem_bench::{fmt_mib, fmt_secs, render_table};
use faasmem_core::{FaasMemConfigBuilder, FaasMemPolicy};
use faasmem_faas::PlatformConfig;
use faasmem_sim::SimTime;
use faasmem_workload::{BenchmarkSpec, FunctionId, Invocation, InvocationTrace, LoadClass};

/// Clustered arrivals: bursts of `cluster_size` requests 5 s apart, with
/// `gap_secs` of silence between bursts. When the gap exceeds the
/// keep-alive, every burst begins with cold starts — the §8.3.2 hazard.
fn clustered_trace(clusters: u64, cluster_size: u64, gap_secs: u64) -> InvocationTrace {
    let mut invs = Vec::new();
    for c in 0..clusters {
        for i in 0..cluster_size {
            invs.push(Invocation {
                at: SimTime::from_secs(10 + c * gap_secs + i * 5),
                function: FunctionId(0),
            });
        }
    }
    let horizon = SimTime::from_secs(10 + clusters * gap_secs + 1_000);
    InvocationTrace::from_invocations(invs, horizon)
}

const CASES: [&str; 2] = ["steady (common)", "clustered bursts, 11-minute silences"];
const VARIANTS: [(&str, bool); 2] = [
    ("FaaSMem (paper)", false),
    ("FaaSMem + cold-start-aware", true),
];

fn main() {
    let opts = HarnessOptions::from_env();
    let grid = ExperimentGrid::new("ext01_coldstart_aware")
        .traces([
            TraceSpec::synth(CASES[0], 904, LoadClass::High),
            TraceSpec::explicit(CASES[1], clustered_trace(6, 8, 660)),
        ])
        .bench(BenchCase::single(
            BenchmarkSpec::by_name("bert").expect("catalog"),
        ))
        .config(ConfigCase::new(
            "s31",
            PlatformConfig {
                seed: 31,
                ..PlatformConfig::default()
            },
        ))
        .policies(VARIANTS.map(|(label, aware)| {
            PolicySpec::faasmem(label, move || {
                FaasMemPolicy::builder()
                    .config(FaasMemConfigBuilder::new().cold_start_aware(aware).build())
                    .build()
            })
        }));
    let run = harness::run_and_export(&grid, &opts);

    for case in CASES {
        let invocations = run.outcome(case, "bert", "s31", VARIANTS[0].0).trace_len;
        println!("=== {case}: {invocations} invocations ===");
        let mut rows = Vec::new();
        for (label, _) in VARIANTS {
            let outcome = run.outcome(case, "bert", "s31", label);
            let s = &outcome.summary;
            let stats = outcome.faasmem.as_ref().expect("FaaSMem exposes stats");
            rows.push(vec![
                label.to_string(),
                fmt_mib(s.avg_local_mib),
                fmt_secs(s.latency.p95.as_secs_f64()),
                fmt_secs(s.latency.p99.as_secs_f64()),
                format!(
                    "{:.0} MiB",
                    stats.semi_warm_bytes as f64 / (1024.0 * 1024.0)
                ),
            ]);
        }
        println!(
            "{}",
            render_table(
                &["variant", "avg mem", "P95", "P99", "semi-warm drained"],
                &rows
            )
        );
        println!();
    }
    println!("Paper reference (§8.3.2): under burst, FaaSMem's P99 rose 25% because the");
    println!("collected reuse intervals underestimated the ideal timing; accounting for");
    println!("cold-start incidents was named as the path to a more precise timing.");
}
