//! Extension: Leap-style batch prefetch on semi-warm recall.
//!
//! The paper's related work highlights remote-memory prefetchers (Leap,
//! ATC'20); Fastswap itself prefetches around faults. This extension
//! wires the idea into the semi-warm recall path: when a request lands on
//! a drained container, the whole drained hot set returns in one batched
//! page-in instead of thousands of serial demand faults. The per-fault
//! CPU cost (the dominant term for CPU-capped containers) disappears from
//! the critical path; the transfer itself still takes link time.
//!
//! Expected shape: identical memory savings, visibly lower semi-warm-hit
//! latency — strongest at small CPU shares and fine page sizes.
//!
//! Runs on the parallel harness (`--jobs`); the merged result is
//! exported to `results/ext02_recall_prefetch.json`.

use faasmem_bench::harness::{
    self, BenchCase, ConfigCase, ExperimentGrid, HarnessOptions, PolicySpec, TraceSpec,
};
use faasmem_bench::{fmt_mib, fmt_secs, render_table};
use faasmem_core::{FaasMemConfigBuilder, FaasMemPolicy};
use faasmem_faas::PlatformConfig;
use faasmem_sim::SimTime;
use faasmem_workload::{BenchmarkSpec, FunctionId, Invocation, InvocationTrace};

const VARIANTS: [(&str, bool); 2] = [
    ("demand faults (paper)", false),
    ("batch prefetch (ext)", true),
];

fn main() {
    let opts = HarnessOptions::from_env();
    // Requests every ~7 minutes: past the semi-warm start (240 s
    // default / learned p99), inside the 10-minute keep-alive — every
    // warm request is a semi-warm hit.
    let invs: Vec<Invocation> = (0..12)
        .map(|i| Invocation {
            at: SimTime::from_secs(10 + i * 420),
            function: FunctionId(0),
        })
        .collect();
    let trace = InvocationTrace::from_invocations(invs, SimTime::from_secs(7_000));

    let grid = ExperimentGrid::new("ext02_recall_prefetch")
        .trace(TraceSpec::explicit("7-minute gaps", trace))
        .benches(
            ["bert", "web"]
                .map(|app| BenchCase::single(BenchmarkSpec::by_name(app).expect("catalog"))),
        )
        .config(ConfigCase::new(
            "16k-s8",
            PlatformConfig {
                page_size: 16 * 1024,
                seed: 8,
                ..PlatformConfig::default()
            },
        ))
        .policies(VARIANTS.map(|(label, prefetch)| {
            PolicySpec::faasmem(label, move || {
                FaasMemPolicy::builder()
                    .config(
                        FaasMemConfigBuilder::new()
                            .recall_prefetch(prefetch)
                            .build(),
                    )
                    .build()
            })
        }));
    let run = harness::run_and_export(&grid, &opts);

    for app in ["bert", "web"] {
        println!("=== {app}: 12 requests, 7-minute gaps (all semi-warm hits) ===");
        let mut rows = Vec::new();
        for (label, _) in VARIANTS {
            let outcome = run.outcome("7-minute gaps", app, "16k-s8", label);
            let warm: Vec<_> = outcome.report.requests.iter().filter(|r| !r.cold).collect();
            let warm_p95 = {
                let mut lat: Vec<f64> = warm.iter().map(|r| r.latency.as_secs_f64()).collect();
                lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                lat[((lat.len() as f64 * 0.95).ceil() as usize - 1).min(lat.len() - 1)]
            };
            let faults: u32 = warm.iter().map(|r| r.faults).sum();
            rows.push(vec![
                label.to_string(),
                fmt_mib(outcome.summary.avg_local_mib),
                fmt_secs(warm_p95),
                faults.to_string(),
                format!(
                    "{:.0} MiB",
                    outcome.summary.pool_stats.bytes_in as f64 / (1024.0 * 1024.0)
                ),
            ]);
        }
        println!(
            "{}",
            render_table(
                &[
                    "recall path",
                    "avg mem",
                    "warm P95",
                    "demand faults",
                    "recalled"
                ],
                &rows
            )
        );
        println!();
    }
    println!("Shape: same memory savings; the prefetch variant removes the per-fault CPU");
    println!("term from the semi-warm-hit critical path (related work: Leap, Fastswap prefetch).");
}
