//! Figure 1: memory inactive time and cold-start ratio vs keep-alive
//! timeout.
//!
//! The paper simulates the Azure 2021 trace (424 functions) under varying
//! keep-alive timeouts and reports, per timeout: the fraction of container
//! lifetime during which memory sits inactive, and the fraction of
//! requests that cold-start. Expected shape: at a 10-minute timeout
//! memory is ~89% inactive with few cold starts; at 1 minute still ~70%
//! inactive; shrinking the timeout trades inactive time against a rising
//! cold-start ratio.
//!
//! Runs on the parallel harness — the seven keep-alive settings are one
//! configuration axis fanned across `--jobs` workers; the merged result
//! is exported to `results/fig01_keepalive_sweep.json`.

use faasmem_bench::harness::{
    self, BenchCase, ConfigCase, ExperimentGrid, HarnessOptions, PolicySpec, TraceSpec,
};
use faasmem_bench::{render_table, svg, PolicyKind};
use faasmem_faas::PlatformConfig;
use faasmem_sim::{SimDuration, SimRng, SimTime};
use faasmem_workload::{BenchmarkSpec, RuntimeSpec};

const FUNCTIONS: u32 = 424;
const TIMEOUTS: [u64; 7] = [10, 30, 60, 120, 300, 600, 1000];

fn main() {
    let opts = HarnessOptions::from_env();

    // The Azure trace mixes sub-second and tens-of-seconds executions;
    // draw each function's execution time log-uniformly in [0.1 s, 30 s].
    let base = BenchmarkSpec::hello_world(&RuntimeSpec::openwhisk_python());
    let mut exec_rng = SimRng::seed_from(2022);
    let specs: Vec<BenchmarkSpec> = (0..FUNCTIONS)
        .map(|_| {
            let log = exec_rng.next_f64() * (30.0f64 / 0.1).ln() + 0.1f64.ln();
            BenchmarkSpec {
                exec_time: SimDuration::from_secs_f64(log.exp()),
                ..base.clone()
            }
        })
        .collect();

    let grid = ExperimentGrid::new("fig01_keepalive_sweep")
        .trace(TraceSpec::cluster("azure-2021", 2021, FUNCTIONS).duration(SimTime::from_mins(240)))
        .bench(BenchCase::cluster("hello-424", specs))
        .configs(TIMEOUTS.map(|timeout_secs| {
            ConfigCase::new(
                &format!("{timeout_secs}s"),
                PlatformConfig {
                    keep_alive: SimDuration::from_secs(timeout_secs),
                    ..PlatformConfig::default()
                },
            )
        }))
        .policy(PolicySpec::Kind(PolicyKind::Baseline));
    let run = harness::run_and_export(&grid, &opts);

    let trace_len = run
        .outcome(
            "azure-2021",
            "hello-424",
            "10s",
            PolicyKind::Baseline.name(),
        )
        .trace_len;
    println!(
        "Fig 1 input: {} functions, {} invocations over {}",
        FUNCTIONS,
        trace_len,
        SimTime::from_mins(240)
    );

    let mut rows = Vec::new();
    let mut inactive_pts = Vec::new();
    let mut cold_pts = Vec::new();
    for timeout_secs in TIMEOUTS {
        let outcome = run.outcome(
            "azure-2021",
            "hello-424",
            &format!("{timeout_secs}s"),
            PolicyKind::Baseline.name(),
        );
        let s = &outcome.summary;
        inactive_pts.push((timeout_secs as f64, s.memory_inactive_fraction * 100.0));
        cold_pts.push((timeout_secs as f64, s.cold_start_ratio * 100.0));
        rows.push(vec![
            format!("{timeout_secs}s"),
            format!("{:.1}%", s.memory_inactive_fraction * 100.0),
            format!("{:.1}%", s.cold_start_ratio * 100.0),
            s.containers.to_string(),
            s.requests_completed.to_string(),
        ]);
    }
    let chart = svg::lines(
        "Fig 1: keep-alive timeout vs inactive memory time and cold starts",
        "keep-alive timeout (s)",
        "percent",
        &[
            ("memory inactive time", inactive_pts),
            ("cold-start ratio", cold_pts),
        ],
    );
    svg::write_chart("fig01_keepalive.svg", &chart);
    println!();
    println!(
        "{}",
        render_table(
            &[
                "keep-alive",
                "mem-inactive",
                "cold-start",
                "containers",
                "requests"
            ],
            &rows
        )
    );
    println!("Paper reference: 89.2% inactive @10min, 70.1% @1min; cold-start ratio falls as keep-alive grows.");
}
