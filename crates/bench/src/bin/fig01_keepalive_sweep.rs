//! Figure 1: memory inactive time and cold-start ratio vs keep-alive
//! timeout.
//!
//! The paper simulates the Azure 2021 trace (424 functions) under varying
//! keep-alive timeouts and reports, per timeout: the fraction of container
//! lifetime during which memory sits inactive, and the fraction of
//! requests that cold-start. Expected shape: at a 10-minute timeout
//! memory is ~89% inactive with few cold starts; at 1 minute still ~70%
//! inactive; shrinking the timeout trades inactive time against a rising
//! cold-start ratio.

use faasmem_bench::{render_table, svg};
use faasmem_faas::PlatformConfig;
use faasmem_sim::{SimDuration, SimRng, SimTime};
use faasmem_workload::{BenchmarkSpec, RuntimeSpec, TraceSynthesizer};

fn main() {
    const FUNCTIONS: u32 = 424;
    let horizon = SimTime::from_mins(240);
    let (trace, _classes) =
        TraceSynthesizer::new(2021).duration(horizon).synthesize_cluster(FUNCTIONS);
    println!(
        "Fig 1 input: {} functions, {} invocations over {}",
        FUNCTIONS,
        trace.len(),
        horizon
    );

    // The Azure trace mixes sub-second and tens-of-seconds executions;
    // draw each function's execution time log-uniformly in [0.1 s, 30 s].
    let base = BenchmarkSpec::hello_world(&RuntimeSpec::openwhisk_python());
    let mut exec_rng = SimRng::seed_from(2022);
    let specs: Vec<BenchmarkSpec> = (0..FUNCTIONS)
        .map(|_| {
            let log = exec_rng.next_f64() * (30.0f64 / 0.1).ln() + 0.1f64.ln();
            BenchmarkSpec { exec_time: SimDuration::from_secs_f64(log.exp()), ..base.clone() }
        })
        .collect();

    let mut rows = Vec::new();
    let mut inactive_pts = Vec::new();
    let mut cold_pts = Vec::new();
    for timeout_secs in [10u64, 30, 60, 120, 300, 600, 1000] {
        let config = PlatformConfig {
            keep_alive: SimDuration::from_secs(timeout_secs),
            ..PlatformConfig::default()
        };
        let mut builder = faasmem_faas::PlatformSim::builder().config(config);
        for spec in &specs {
            builder = builder.register_function(spec.clone());
        }
        let mut sim = builder.policy(faasmem_baselines::NoOffloadPolicy).build();
        let report = sim.run(&trace);
        inactive_pts.push((timeout_secs as f64, report.memory_inactive_fraction() * 100.0));
        cold_pts.push((timeout_secs as f64, report.cold_start_ratio() * 100.0));
        rows.push(vec![
            format!("{timeout_secs}s"),
            format!("{:.1}%", report.memory_inactive_fraction() * 100.0),
            format!("{:.1}%", report.cold_start_ratio() * 100.0),
            report.containers.len().to_string(),
            report.requests_completed.to_string(),
        ]);
    }
    let chart = svg::lines(
        "Fig 1: keep-alive timeout vs inactive memory time and cold starts",
        "keep-alive timeout (s)",
        "percent",
        &[("memory inactive time", inactive_pts), ("cold-start ratio", cold_pts)],
    );
    svg::write_chart("fig01_keepalive.svg", &chart);
    println!();
    println!(
        "{}",
        render_table(
            &["keep-alive", "mem-inactive", "cold-start", "containers", "requests"],
            &rows
        )
    );
    println!("Paper reference: 89.2% inactive @10min, 70.1% @1min; cold-start ratio falls as keep-alive grows.");
}
