//! Figure 2: P95 response latency when offloading with DAMON.
//!
//! The paper's motivation experiment: running the 11 benchmarks under a
//! DAMON-style sampling offloader inflates P95 latency by up to 14×
//! versus no offloading, because keep-alive sampling misclassifies hot
//! pages as cold. Expected shape here: large multipliers for the
//! 0.1-core micro-benchmarks and visible (smaller) ones for the
//! applications.

use faasmem_bench::{fmt_secs, render_table, Experiment, PolicyKind};
use faasmem_sim::SimTime;
use faasmem_workload::{BenchmarkSpec, FunctionId, TraceSynthesizer};

fn main() {
    let mut rows = Vec::new();
    for spec in BenchmarkSpec::catalog() {
        // Requests ~45 s apart: far enough that DAMON's idle threshold
        // (20 s) fires between them, and enough requests over two hours
        // that P95 reflects warm requests, not the one cold start.
        let trace = TraceSynthesizer::new(7 + spec.name.len() as u64)
            .arrival_model(faasmem_workload::ArrivalModel::Poisson {
                mean_gap: faasmem_sim::SimDuration::from_secs(45),
            })
            .duration(SimTime::from_mins(120))
            .synthesize_for(FunctionId(0));
        let run = |kind: PolicyKind| {
            let mut e = Experiment::new(spec.clone(), kind);
            // Kernel-fidelity 4 KiB pages: demand-fault counts (and hence
            // the per-fault CPU penalty on 0.1-core containers) match the
            // paper's testbed.
            e.platform.page_size = 4096;
            let mut outcome = e.run(&trace);
            outcome.report.p95_latency().as_secs_f64()
        };
        let base = run(PolicyKind::Baseline);
        let damon = run(PolicyKind::Damon);
        rows.push(vec![
            spec.name.to_string(),
            fmt_secs(base),
            fmt_secs(damon),
            format!("{:.1}x", damon / base.max(1e-9)),
        ]);
    }
    println!("{}", render_table(&["benchmark", "no-offload P95", "DAMON P95", "blow-up"], &rows));
    println!("Paper reference (Fig 2): DAMON inflates P95 by up to 14x; worst on 0.1-core micro-benchmarks.");
}
