//! Figure 2: P95 response latency when offloading with DAMON.
//!
//! The paper's motivation experiment: running the 11 benchmarks under a
//! DAMON-style sampling offloader inflates P95 latency by up to 14×
//! versus no offloading, because keep-alive sampling misclassifies hot
//! pages as cold. Expected shape here: large multipliers for the
//! 0.1-core micro-benchmarks and visible (smaller) ones for the
//! applications.
//!
//! Runs on the parallel harness (`--jobs`, `--quick`); the merged result
//! is exported to `results/fig02_damon_p95.json`.

use faasmem_bench::harness::{
    self, BenchCase, ConfigCase, ExperimentGrid, HarnessOptions, SeedMix, TraceSpec,
};
use faasmem_bench::{fmt_secs, render_table, PolicyKind};
use faasmem_faas::PlatformConfig;
use faasmem_sim::SimDuration;
use faasmem_workload::{ArrivalModel, BenchmarkSpec, LoadClass};

fn main() {
    let opts = HarnessOptions::from_env();
    // Requests ~45 s apart: far enough that DAMON's idle threshold
    // (20 s) fires between them, and enough requests over two hours
    // that P95 reflects warm requests, not the one cold start.
    let trace = TraceSpec::synth("poisson-45s", 7, LoadClass::High)
        .arrival(ArrivalModel::Poisson {
            mean_gap: SimDuration::from_secs(45),
        })
        .duration(faasmem_sim::SimTime::from_mins(120))
        .seed_mix(SeedMix::AddNameLen);
    // Kernel-fidelity 4 KiB pages: demand-fault counts (and hence the
    // per-fault CPU penalty on 0.1-core containers) match the paper's
    // testbed.
    let config = ConfigCase::new(
        "4k-pages",
        PlatformConfig {
            page_size: 4096,
            ..PlatformConfig::default()
        },
    );
    let grid = ExperimentGrid::new("fig02_damon_p95")
        .trace(trace)
        .benches(BenchmarkSpec::catalog().into_iter().map(BenchCase::single))
        .config(config)
        .policy_kinds([PolicyKind::Baseline, PolicyKind::Damon]);
    let run = harness::run_and_export(&grid, &opts);

    let mut rows = Vec::new();
    for spec in BenchmarkSpec::catalog() {
        let p95 = |kind: PolicyKind| {
            run.outcome("poisson-45s", spec.name, "4k-pages", kind.name())
                .summary
                .latency
                .p95
                .as_secs_f64()
        };
        let base = p95(PolicyKind::Baseline);
        let damon = p95(PolicyKind::Damon);
        rows.push(vec![
            spec.name.to_string(),
            fmt_secs(base),
            fmt_secs(damon),
            format!("{:.1}x", damon / base.max(1e-9)),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["benchmark", "no-offload P95", "DAMON P95", "blow-up"],
            &rows
        )
    );
    println!("Paper reference (Fig 2): DAMON inflates P95 by up to 14x; worst on 0.1-core micro-benchmarks.");
}
