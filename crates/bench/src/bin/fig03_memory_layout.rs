//! Figure 3: the memory layout of a serverless container across its
//! lifecycle — launch, init, request executions, keep-alive.
//!
//! The paper's Fig 3 is the schematic that motivates the whole design:
//! memory rises as the runtime loads (Segment-1), rises again through
//! init (Segment-2), spikes with each request's temporaries (Segment-3,
//! freed at completion) and then sits flat through keep-alive. This
//! experiment measures that curve from a real simulated container and
//! renders it, segment by segment.

use faasmem_baselines::NoOffloadPolicy;
use faasmem_bench::render_table;
use faasmem_faas::PlatformSim;
use faasmem_sim::{SimDuration, SimTime};
use faasmem_workload::{BenchmarkSpec, FunctionId, Invocation, InvocationTrace};

fn main() {
    let spec = BenchmarkSpec::by_name("graph").expect("catalog");
    // Two requests with a keep-alive stretch between them (Fig 3's
    // Launch | Init | Req1 | Keep-alive | Req2 | Keep-alive shape).
    let invs = vec![
        Invocation {
            at: SimTime::from_secs(1),
            function: FunctionId(0),
        },
        Invocation {
            at: SimTime::from_secs(120),
            function: FunctionId(0),
        },
    ];
    let trace = InvocationTrace::from_invocations(invs, SimTime::from_mins(15));
    let mut sim = PlatformSim::builder()
        .register_function(spec.clone())
        .policy(NoOffloadPolicy)
        .seed(3)
        .build();
    let report = sim.run(&trace);

    // Dense sampling around the interesting moments.
    println!("container memory over the lifecycle (MiB):");
    println!();
    let peak = report.local_mem.max_value().unwrap_or(1.0);
    let mut samples: Vec<(f64, f64)> = Vec::new();
    let mut t = SimTime::ZERO;
    while t < SimTime::from_secs(130) {
        if let Some(v) = report.local_mem.value_at(t) {
            samples.push((t.as_secs_f64(), v / (1024.0 * 1024.0)));
        } else {
            samples.push((t.as_secs_f64(), 0.0));
        }
        t += SimDuration::from_millis(250);
    }
    // Down-sample for the plot: one bar per ~2.5 s.
    for chunk in samples.chunks(10) {
        let (t0, _) = chunk[0];
        let max = chunk.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
        let width = (max / (peak / (1024.0 * 1024.0)) * 56.0).round() as usize;
        let stage = match t0 as u64 {
            0 => "launch + init + req 1",
            1..=4 => "req 1 tail",
            5..=118 => "keep-alive",
            119..=121 => "req 2",
            _ => "keep-alive",
        };
        println!(
            "  {t0:>6.1}s |{:<56}| {max:>6.0} MiB  {stage}",
            "#".repeat(width.min(56))
        );
    }

    // Segment accounting at the quiet points.
    let at = |secs: f64| {
        report
            .local_mem
            .value_at(SimTime::from_secs_f64(secs))
            .unwrap_or(0.0)
            / (1024.0 * 1024.0)
    };
    // Peak during the request window: base + execution segment.
    let req_peak = (0..40)
        .map(|i| at(2.0 + 0.05 * f64::from(i)))
        .fold(0.0f64, f64::max);
    let rows = vec![
        vec![
            "runtime loaded (Segment-1 only)".into(),
            format!("{:.0} MiB", at(1.9)),
            format!("{} MiB", spec.runtime_mib),
        ],
        vec![
            "request running (base + Segment-3)".into(),
            format!("{req_peak:.0} MiB"),
            format!("{} MiB", spec.base_mib() + spec.exec_mib),
        ],
        vec![
            "keep-alive (exec freed, base persists)".into(),
            format!("{:.0} MiB", at(60.0)),
            format!("{} MiB", spec.base_mib()),
        ],
    ];
    println!();
    println!(
        "{}",
        render_table(&["lifecycle point", "measured", "model"], &rows)
    );
    println!("Paper reference (Fig 3): execution-segment memory exists only while a request");
    println!("runs; the runtime + init base footprint persists through keep-alive.");
}
