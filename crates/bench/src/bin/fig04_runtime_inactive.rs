//! Figure 4: inactive memory of the runtime segment, per platform image
//! and language runtime.
//!
//! The paper measures hello-world containers built from official
//! OpenWhisk and Azure Functions images, identifies pages whose Access
//! bit never flips after one request, and reports that inactive memory:
//! OpenWhisk Python ≈ 24 MB and Java ≈ 57 MB; every Azure runtime exceeds
//! 100 MB; Java is always the largest (JVM).

use faasmem_bench::render_table;
use faasmem_mem::{mib_to_pages, pages_to_mib, PageTable, Segment, PAGE_SIZE_4K};
use faasmem_workload::RuntimeSpec;

/// Simulates the paper's measurement: load a hello-world container of the
/// given runtime, execute one request (touching only the proxy working
/// set), then count runtime pages whose Access bit stayed clear.
fn measure_inactive_mib(runtime: &RuntimeSpec) -> f64 {
    let mut table = PageTable::new(PAGE_SIZE_4K);
    let total_pages = mib_to_pages(runtime.total_mib, PAGE_SIZE_4K) as u32;
    let hot_pages = mib_to_pages(runtime.hot_mib(), PAGE_SIZE_4K) as u32;
    let range = table.alloc(Segment::Runtime, total_pages);
    // Runtime load touches everything once...
    table.touch_range(range);
    table.scan_accessed(); // ...but load-time accesses are not requests.
                           // One hello-world request: only the action proxy's working set.
    table.touch_range(range.take(hot_pages));
    let accessed = table.scan_accessed().len() as u64;
    pages_to_mib(u64::from(total_pages) - accessed, PAGE_SIZE_4K)
}

fn main() {
    let mut rows = Vec::new();
    for runtime in RuntimeSpec::catalog() {
        let measured = measure_inactive_mib(&runtime);
        rows.push(vec![
            runtime.platform.name().to_string(),
            runtime.kind.name().to_string(),
            format!("{} MiB", runtime.total_mib),
            format!("{measured:.0} MiB"),
            format!("{:.0}%", measured / runtime.total_mib as f64 * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "platform",
                "runtime",
                "total",
                "inactive (measured)",
                "inactive share"
            ],
            &rows
        )
    );
    println!(
        "Paper reference (Fig 4): OpenWhisk py=24MB java=57MB; Azure all >100MB; Java largest."
    );
}
