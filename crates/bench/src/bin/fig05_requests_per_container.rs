//! Figure 5: CDF of the number of requests each container handles.
//!
//! The paper's Azure-trace simulation finds that nearly 60% of containers
//! serve at most two requests in their whole lifetime — which is why
//! Init-Pucket cold-page identification cannot rely on long access
//! histories.

use faasmem_baselines::NoOffloadPolicy;
use faasmem_bench::render_table;
use faasmem_faas::PlatformSim;
use faasmem_sim::SimTime;
use faasmem_workload::{BenchmarkSpec, RuntimeSpec, TraceSynthesizer};

fn main() {
    const FUNCTIONS: u32 = 424;
    let horizon = SimTime::from_mins(240);
    let (trace, _) = TraceSynthesizer::new(5)
        .duration(horizon)
        .synthesize_cluster(FUNCTIONS);

    let spec = BenchmarkSpec::hello_world(&RuntimeSpec::openwhisk_python());
    let mut builder = PlatformSim::builder();
    for _ in 0..FUNCTIONS {
        builder = builder.register_function(spec.clone());
    }
    let mut sim = builder.policy(NoOffloadPolicy).build();
    let report = sim.run(&trace);
    let cdf = report.requests_per_container_cdf();

    let mut rows = Vec::new();
    for k in [1.0, 2.0, 3.0, 5.0, 10.0, 20.0, 50.0] {
        rows.push(vec![
            format!("<= {k:.0}"),
            format!("{:.1}%", cdf.fraction_at_most(k) * 100.0),
        ]);
    }
    println!("containers observed: {}", cdf.len());
    println!(
        "{}",
        render_table(&["requests per container", "fraction of containers"], &rows)
    );
    println!("Paper reference (Fig 5): ~60% of containers handle at most two requests.");
}
