//! Figure 6: Access-bit scans of the BERT benchmark's memory over time.
//!
//! The paper's scan shows ~1000 MB allocated and accessed during the
//! first ~5 s (initialization), some released afterwards, ~610 MB
//! accessed per request during execution, of which ~400 MB are hot init
//! pages touched by *every* request. This experiment reproduces the scan
//! as an ASCII heat map (page region × time) plus the headline numbers.

use std::collections::HashMap;

use faasmem_bench::render_table;
use faasmem_faas::{Container, ContainerId, FunctionId};
use faasmem_mem::{mib_to_pages, pages_to_mib, PageId};
use faasmem_sim::{SimRng, SimTime};
use faasmem_workload::{BenchmarkSpec, RequestAccess};

const PAGE_SIZE: u64 = 64 * 1024;
const REGIONS: usize = 24;
const SECONDS: usize = 18;

fn main() {
    let spec = BenchmarkSpec::by_name("bert").expect("catalog");
    let mut container = Container::new(
        ContainerId(0),
        FunctionId(0),
        spec.clone(),
        PAGE_SIZE,
        SimTime::ZERO,
    );
    let mut rng = SimRng::seed_from(6);

    // heat[region][second] = pages touched.
    let mut heat = vec![[0u64; SECONDS]; REGIONS];
    let record_scan = |container: &mut Container, second: usize, heat: &mut Vec<[u64; SECONDS]>| {
        let total = container.table().len().max(1);
        for id in container.table_mut().scan_accessed() {
            let region = (id.index() * REGIONS / total).min(REGIONS - 1);
            heat[region][second.min(SECONDS - 1)] += 1;
        }
    };

    // t≈1s: runtime loaded; t≈1..5s: initialization allocates ~1 GB.
    container.finish_launch();
    record_scan(&mut container, 1, &mut heat);
    container.finish_init();
    record_scan(&mut container, 5, &mut heat);

    // Requests at t = 8, 10, 12, 14, 16 s.
    let exec_pages = mib_to_pages(spec.exec_mib, PAGE_SIZE) as u32;
    let mut per_request_touched = Vec::new();
    let mut init_hits: HashMap<u32, u32> = HashMap::new();
    let request_times = [8usize, 10, 12, 14, 16];
    for (i, &sec) in request_times.iter().enumerate() {
        if i > 0 {
            container.begin_execution(SimTime::from_secs(sec as u64));
        }
        let plan = RequestAccess::plan_with_rare_runtime(
            spec.init_access,
            container.runtime_hot_pages(),
            container.runtime_range().len(),
            spec.runtime_rare_touch_prob,
            container.init_range().len(),
            exec_pages,
            &mut rng,
        );
        let runtime_base = container.runtime_range().start().0;
        let init_base = container.init_range().start().0;
        for idx in plan.init.iter() {
            *init_hits.entry(idx).or_default() += 1;
        }
        let table = container.table_mut();
        let mut touched = table
            .touch_pages(plan.runtime.iter().map(|i| PageId(runtime_base + i)))
            .touched;
        touched += table
            .touch_pages(plan.init.iter().map(|i| PageId(init_base + i)))
            .touched;
        let exec = table.alloc(faasmem_mem::Segment::Execution, plan.exec_pages);
        touched += table.touch_range(exec).touched;
        container.set_exec_range(exec);
        record_scan(&mut container, sec, &mut heat);
        container.finish_execution(
            SimTime::from_secs(sec as u64) + spec.exec_time,
            spec.exec_time,
        );
        per_request_touched.push(u64::from(touched));
    }

    // ASCII heat map: rows = page regions (low addresses at the bottom).
    println!("Access-bit scan heat map (page region x seconds; '#' dense, '.' sparse):");
    println!();
    for region in (0..REGIONS).rev() {
        let line: String = heat[region]
            .iter()
            .map(|&hits| match hits {
                0 => ' ',
                1..=31 => '.',
                32..=255 => ':',
                _ => '#',
            })
            .collect();
        println!("  {line}|");
    }
    println!("  {}+", "-".repeat(SECONDS));
    println!("  0s{}17s", " ".repeat(SECONDS - 5));
    println!();

    let every_request_hot = init_hits
        .values()
        .filter(|&&c| c == request_times.len() as u32)
        .count();
    let mean_touched =
        per_request_touched.iter().sum::<u64>() as f64 / per_request_touched.len() as f64;
    let rows = vec![
        vec![
            "init segment allocated".to_string(),
            format!(
                "{:.0} MiB",
                pages_to_mib(u64::from(container.init_range().len()), PAGE_SIZE)
            ),
            "~900-1000 MB".to_string(),
        ],
        vec![
            "accessed per request (mean)".to_string(),
            format!("{:.0} MiB", pages_to_mib(mean_touched as u64, PAGE_SIZE)),
            "~610 MB".to_string(),
        ],
        vec![
            "init pages hot in EVERY request".to_string(),
            format!(
                "{:.0} MiB",
                pages_to_mib(every_request_hot as u64, PAGE_SIZE)
            ),
            "~400 MB".to_string(),
        ],
    ];
    println!(
        "{}",
        render_table(&["metric", "measured", "paper (Fig 6)"], &rows)
    );
}
