//! Figure 8: recalls from the Runtime Pucket after its reactive offload.
//!
//! The paper verifies §5.1's hypothesis — runtime pages unaccessed by the
//! first request are almost never needed again — by offloading the
//! Runtime Pucket after request #1 and counting how many pages later
//! requests recall. Expected: at most a handful of pages (≤ 3 in Fig 8)
//! per benchmark.

use faasmem_bench::{render_table, Experiment, PolicyKind};
use faasmem_sim::SimTime;
use faasmem_workload::{BenchmarkSpec, FunctionId, LoadClass, TraceSynthesizer};

fn main() {
    let mut rows = Vec::new();
    for spec in BenchmarkSpec::catalog() {
        let trace = TraceSynthesizer::new(8 + spec.name.len() as u64)
            .load_class(LoadClass::High)
            .duration(SimTime::from_mins(30))
            .synthesize_for(FunctionId(0));
        // Semi-warm deliberately recalls hot pages (§6); Fig 8 measures
        // the §5 cold-page mechanisms alone, so it is disabled here.
        let outcome = Experiment::new(spec.clone(), PolicyKind::FaasMemNoSemiWarm).run(&trace);
        let stats = outcome.faasmem_stats.expect("FaaSMem exposes stats");
        let stats = stats.borrow();
        let mean = stats.mean_runtime_recalls(FunctionId(0)).unwrap_or(0.0);
        let containers = stats.runtime_offloads.get(&FunctionId(0)).copied().unwrap_or(0);
        rows.push(vec![
            spec.name.to_string(),
            outcome.report.requests_completed.to_string(),
            containers.to_string(),
            format!("{mean:.2}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["benchmark", "requests", "containers offloaded", "mean recall pages / container"],
            &rows
        )
    );
    println!("Paper reference (Fig 8): 0-3 recall pages per benchmark after the reactive offload.");
}
