//! Figure 8: recalls from the Runtime Pucket after its reactive offload.
//!
//! The paper verifies §5.1's hypothesis — runtime pages unaccessed by the
//! first request are almost never needed again — by offloading the
//! Runtime Pucket after request #1 and counting how many pages later
//! requests recall. Expected: at most a handful of pages (≤ 3 in Fig 8)
//! per benchmark.
//!
//! Runs on the parallel harness (`--jobs`, `--quick`); the merged result
//! is exported to `results/fig08_runtime_recalls.json`.

use faasmem_bench::harness::{
    self, BenchCase, ExperimentGrid, HarnessOptions, SeedMix, TraceSpec, DEFAULT_CONFIG,
};
use faasmem_bench::{render_table, PolicyKind};
use faasmem_sim::SimTime;
use faasmem_workload::{BenchmarkSpec, FunctionId, LoadClass};

fn main() {
    let opts = HarnessOptions::from_env();
    let grid = ExperimentGrid::new("fig08_runtime_recalls")
        .trace(
            TraceSpec::synth("high-30min", 8, LoadClass::High)
                .duration(SimTime::from_mins(30))
                .seed_mix(SeedMix::AddNameLen),
        )
        .benches(BenchmarkSpec::catalog().into_iter().map(BenchCase::single))
        // Semi-warm deliberately recalls hot pages (§6); Fig 8 measures
        // the §5 cold-page mechanisms alone, so it is disabled here.
        .policy_kinds([PolicyKind::FaasMemNoSemiWarm]);
    let run = harness::run_and_export(&grid, &opts);

    let mut rows = Vec::new();
    for spec in BenchmarkSpec::catalog() {
        let outcome = run.outcome(
            "high-30min",
            spec.name,
            DEFAULT_CONFIG,
            PolicyKind::FaasMemNoSemiWarm.name(),
        );
        let stats = outcome.faasmem.as_ref().expect("FaaSMem exposes stats");
        let mean = stats.mean_runtime_recalls(FunctionId(0)).unwrap_or(0.0);
        let containers = stats
            .runtime_offloads
            .get(&FunctionId(0))
            .copied()
            .unwrap_or(0);
        rows.push(vec![
            spec.name.to_string(),
            outcome.summary.requests_completed.to_string(),
            containers.to_string(),
            format!("{mean:.2}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "requests",
                "containers offloaded",
                "mean recall pages / container"
            ],
            &rows
        )
    );
    println!("Paper reference (Fig 8): 0-3 recall pages per benchmark after the reactive offload.");
}
