//! Figure 9: Access-bit scans of the web benchmark.
//!
//! Each request serves a Pareto-selected cached HTML page, so each
//! vertical scan column contains multiple bars at different init-segment
//! offsets, and the set of touched pages keeps growing for many requests
//! — the reason web needs a *large* request window (~20) rather than the
//! single-request window ML inference gets (§5.2).

use std::collections::HashSet;

use faasmem_bench::render_table;
use faasmem_mem::{mib_to_pages, pages_to_mib};
use faasmem_sim::SimRng;
use faasmem_workload::{BenchmarkSpec, RequestAccess};

const PAGE_SIZE: u64 = 64 * 1024;
const REQUESTS: usize = 25;
const REGIONS: usize = 20;

fn main() {
    let spec = BenchmarkSpec::by_name("web").expect("catalog");
    let init_pages = mib_to_pages(spec.init_mib, PAGE_SIZE) as u32;
    let mut rng = SimRng::seed_from(9);

    let mut heat = vec![[false; REQUESTS]; REGIONS];
    let mut cumulative: HashSet<u32> = HashSet::new();
    let mut cumulative_curve = Vec::new();
    let mut bars_per_request = Vec::new();
    #[allow(clippy::needless_range_loop)] // `req` indexes a 2-D column
    for req in 0..REQUESTS {
        let plan = RequestAccess::plan(spec.init_access, 0, init_pages, 0, &mut rng);
        let mut regions_this_request = HashSet::new();
        for idx in plan.init.iter() {
            let region = (idx as usize * REGIONS / init_pages as usize).min(REGIONS - 1);
            heat[region][req] = true;
            regions_this_request.insert(region);
            cumulative.insert(idx);
        }
        bars_per_request.push(regions_this_request.len());
        cumulative_curve.push(cumulative.len());
    }

    println!("Access scan (init-segment region x request; '|' = touched):");
    println!();
    for region in (0..REGIONS).rev() {
        let line: String = (0..REQUESTS)
            .map(|r| if heat[region][r] { '|' } else { ' ' })
            .collect();
        println!("  {line}");
    }
    println!("  {}", "-".repeat(REQUESTS));
    println!("  req 1 .. {REQUESTS}");
    println!();

    let mean_bars = bars_per_request.iter().sum::<usize>() as f64 / bars_per_request.len() as f64;
    let rows = vec![
        vec![
            "mean regions (bars) per request".to_string(),
            format!("{mean_bars:.1}"),
            "multiple bars per column".to_string(),
        ],
        vec![
            "unique pages after 1 request".to_string(),
            format!(
                "{:.0} MiB",
                pages_to_mib(cumulative_curve[0] as u64, PAGE_SIZE)
            ),
            "small".to_string(),
        ],
        vec![
            "unique pages after 20 requests".to_string(),
            format!(
                "{:.0} MiB",
                pages_to_mib(cumulative_curve[19] as u64, PAGE_SIZE)
            ),
            "keeps growing => window ~ 20".to_string(),
        ],
    ];
    println!(
        "{}",
        render_table(&["metric", "measured", "paper (Fig 9)"], &rows)
    );
    println!();
    println!("cumulative unique init pages touched, per request:");
    let curve: Vec<String> = cumulative_curve.iter().map(|c| c.to_string()).collect();
    println!("  {}", curve.join(" "));
}
