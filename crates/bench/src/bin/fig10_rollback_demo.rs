//! Figure 10: the periodic page-rollback procedure, step by step.
//!
//! The paper's Fig 10 schematic shows pages cycling between the Puckets'
//! inactive lists, the hot page pool and remote memory as rollback rounds
//! run. This demo drives one web container through the cycle and prints
//! the three populations after every step, making the §5.3 state machine
//! visible: roll back → observe one request window → offload leftovers.

use faasmem_bench::render_table;
use faasmem_core::{PucketKind, Puckets};
use faasmem_mem::{mib_to_pages, PageTable, Segment};
use faasmem_sim::SimRng;
use faasmem_workload::{BenchmarkSpec, RequestAccess};

const PAGE_SIZE: u64 = 64 * 1024;

fn main() {
    let spec = BenchmarkSpec::by_name("web").expect("catalog");
    let mut table = PageTable::new(PAGE_SIZE);
    let runtime_pages = mib_to_pages(spec.runtime_mib, PAGE_SIZE) as u32;
    let init_pages = mib_to_pages(spec.init_mib, PAGE_SIZE) as u32;
    let runtime = table.alloc(Segment::Runtime, runtime_pages);
    let mut puckets = Puckets::new();
    puckets.insert_runtime_init_barrier(&mut table);
    let init = table.alloc(Segment::Init, init_pages);
    puckets.insert_init_exec_barrier(&mut table);
    table.scan_accessed(); // allocation accesses are not requests
    let mut rng = SimRng::seed_from(10);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut snapshot = |step: &str, table: &PageTable, puckets: &Puckets| {
        let inactive = puckets.inactive_count(table, PucketKind::Runtime)
            + puckets.inactive_count(table, PucketKind::Init);
        let hot = puckets.hot_pool_pages(table).len() as u64;
        let remote = table.remote_pages();
        rows.push(vec![
            step.to_string(),
            inactive.to_string(),
            hot.to_string(),
            remote.to_string(),
        ]);
    };

    let run_request = |table: &mut PageTable, puckets: &Puckets, rng: &mut SimRng| {
        let plan = RequestAccess::plan(
            spec.init_access,
            mib_to_pages(spec.runtime_hot_mib, PAGE_SIZE) as u32,
            init_pages,
            0,
            rng,
        );
        let runtime_base = runtime.start().0;
        let init_base = init.start().0;
        table.touch_pages(
            plan.runtime
                .iter()
                .map(|i| faasmem_mem::PageId(runtime_base + i)),
        );
        table.touch_pages(plan.init.iter().map(|i| faasmem_mem::PageId(init_base + i)));
        puckets.promote_accessed(table);
    };

    snapshot("segregated (barriers inserted)", &table, &puckets);
    // A few requests populate the hot pool; then the §5 policies offload
    // the inactive leftovers.
    for i in 1..=3 {
        run_request(&mut table, &puckets, &mut rng);
        snapshot(&format!("after request {i} (promote)"), &table, &puckets);
    }
    let inactive: Vec<_> = puckets
        .inactive_pages(&table, PucketKind::Runtime)
        .into_iter()
        .chain(puckets.inactive_pages(&table, PucketKind::Init))
        .collect();
    table.offload_pages(inactive);
    snapshot("offload inactive lists", &table, &puckets);

    // The rollback cycle of Fig 10.
    puckets.rollback_hot_pool(&mut table);
    snapshot("ROLLBACK: hot pool -> puckets", &table, &puckets);
    for i in 1..=2 {
        run_request(&mut table, &puckets, &mut rng);
        snapshot(
            &format!("observe request {i} (re-promote)"),
            &table,
            &puckets,
        );
    }
    let leftovers: Vec<_> = puckets
        .inactive_pages(&table, PucketKind::Runtime)
        .into_iter()
        .chain(puckets.inactive_pages(&table, PucketKind::Init))
        .collect();
    let offloaded = table.offload_pages(leftovers);
    snapshot("offload un-retouched leftovers", &table, &puckets);

    println!(
        "{}",
        render_table(&["step", "inactive pages", "hot pool", "remote"], &rows)
    );
    println!("pages offloaded by this rollback round: {offloaded}");
    println!();
    println!("Paper reference (Fig 10 / §5.3): rollback returns hot-pool pages to their");
    println!("Puckets; a request window re-promotes the truly hot ones; the stale remainder");
    println!("is offloaded. A minimum interval t >= 10 s bounds the overhead (§8.5).");
}
