//! Figure 11: the semi-warm design — from a function's container-reused-
//! interval CDF to its semi-warm start timing.
//!
//! The paper's Fig 11 shows, for one anonymous Azure function, the CDF of
//! how long containers idle before being reused, and picks the 99th
//! percentile as the semi-warm start timing. This experiment extracts the
//! same CDF from a platform run, plots it as ASCII, and marks the chosen
//! timing.

use faasmem_bench::{Experiment, PolicyKind};
use faasmem_core::{SemiWarm, SemiWarmConfig};
use faasmem_metrics::Cdf;
use faasmem_sim::SimTime;
use faasmem_workload::{BenchmarkSpec, FunctionId, LoadClass, TraceSynthesizer};

fn main() {
    let spec = BenchmarkSpec::by_name("web").expect("catalog");
    let trace = TraceSynthesizer::new(911)
        .load_class(LoadClass::High)
        .bursty(true)
        .duration(SimTime::from_mins(120))
        .synthesize_for(FunctionId(0));
    let outcome = Experiment::new(spec, PolicyKind::FaasMem).run(&trace);
    let intervals = outcome
        .report
        .reuse_intervals
        .get(&FunctionId(0))
        .expect("warm reuses observed");
    let secs: Vec<f64> = intervals.iter().map(|d| d.as_secs_f64()).collect();
    let cdf = Cdf::from_samples(secs.iter().copied());
    println!(
        "container reused intervals: {} samples, median {:.1}s, p99 {:.1}s\n",
        cdf.len(),
        cdf.quantile(0.5).unwrap_or(0.0),
        cdf.quantile(0.99).unwrap_or(0.0)
    );

    // ASCII CDF on a log-ish time axis (as in the paper's 10ms/1s/1min).
    println!("CDF of container reused intervals:");
    let marks = [0.5f64, 1.0, 2.0, 5.0, 10.0, 20.0, 60.0, 120.0, 300.0, 600.0];
    for &t in &marks {
        let frac = cdf.fraction_at_most(t);
        let bar = "#".repeat((frac * 50.0).round() as usize);
        println!("  {:>6.1}s |{bar:<50}| {:.0}%", t, frac * 100.0);
    }

    // The semi-warm machinery makes the same choice from the same data.
    let mut sw = SemiWarm::new(SemiWarmConfig::default());
    for &d in intervals {
        sw.record_reuse_interval(FunctionId(0), d);
    }
    let timing = sw.start_timing(FunctionId(0));
    println!();
    println!("semi-warm start timing (p99, pessimistic): {timing}");
    println!("=> containers keep all hot pages for 99% of observed reuses; only the");
    println!("   tail beyond {timing} pays a semi-warm recall (paper Fig 11 / §6.1).");
}
