//! Figure 12: the main evaluation — normalized memory usage and P95
//! latency of all 11 benchmarks under a high-load and a low-load trace,
//! comparing Baseline, TMO and FaaSMem.
//!
//! Expected shape (paper): FaaSMem cuts local memory by 27.1%–71.0%
//! (high load) and 9.9%–72.0% (low load); TMO saves single-digit
//! percents; P95 latency stays within ~10% of Baseline for both; the
//! micro-benchmarks all save ≥ 50% (runtime segment dominates); among
//! the applications Web saves the most and Graph the least.
//!
//! Runs on the parallel harness: `--jobs N` fans the 66 cells out,
//! `--quick` truncates the traces for a smoke run; the merged result is
//! exported to `results/fig12_main_eval.json`.

use faasmem_bench::harness::{
    self, BenchCase, ExperimentGrid, HarnessOptions, SeedMix, TraceSpec, DEFAULT_CONFIG,
};
use faasmem_bench::{fmt_mib, fmt_secs, pct_change, render_table, svg, PolicyKind};
use faasmem_workload::{BenchmarkSpec, LoadClass};

/// Per-request (offload, recall) MB volumes of one system.
type ReqVolumes = (f64, f64);

fn main() {
    let opts = HarnessOptions::from_env();
    let grid = ExperimentGrid::new("fig12_main_eval")
        .traces([
            TraceSpec::synth("high", 12_001, LoadClass::High)
                .bursty(true)
                .seed_mix(SeedMix::XorNameLen),
            TraceSpec::synth("low", 12_002, LoadClass::Low).seed_mix(SeedMix::XorNameLen),
        ])
        .benches(BenchmarkSpec::catalog().into_iter().map(BenchCase::single))
        .policy_kinds(PolicyKind::HEAD_TO_HEAD);
    let run = harness::run_and_export(&grid, &opts);

    for (trace_label, heading) in [("high", "HIGH LOAD"), ("low", "LOW LOAD")] {
        println!("=== Fig 12 ({heading}) ===");
        let mut rows = Vec::new();
        let mut per_request_volumes: Vec<(&str, ReqVolumes, ReqVolumes)> = Vec::new();
        let mut chart_categories: Vec<String> = Vec::new();
        let mut chart_mem: Vec<Vec<f64>> = vec![Vec::new(); 3];
        for spec in BenchmarkSpec::catalog() {
            let mut mem = Vec::new();
            let mut p95 = Vec::new();
            let mut volumes = Vec::new();
            let mut trace_len = 0;
            for kind in PolicyKind::HEAD_TO_HEAD {
                let cell = run.outcome(trace_label, spec.name, DEFAULT_CONFIG, kind.name());
                trace_len = cell.trace_len;
                let s = &cell.summary;
                mem.push(s.avg_local_mib);
                p95.push(s.latency.p95.as_secs_f64());
                let reqs = s.requests_completed.max(1) as f64;
                volumes.push((
                    s.pool_stats.bytes_out as f64 / reqs / 1e6,
                    s.pool_stats.bytes_in as f64 / reqs / 1e6,
                ));
            }
            if trace_len == 0 {
                continue;
            }
            per_request_volumes.push((spec.name, volumes[1], volumes[2]));
            chart_categories.push(spec.name.to_string());
            for (i, &m) in mem.iter().enumerate() {
                chart_mem[i].push(m);
            }
            rows.push(vec![
                spec.name.to_string(),
                trace_len.to_string(),
                fmt_mib(mem[0]),
                pct_change(mem[1], mem[0]),
                pct_change(mem[2], mem[0]),
                fmt_secs(p95[0]),
                pct_change(p95[1], p95[0]),
                pct_change(p95[2], p95[0]),
            ]);
        }
        println!(
            "{}",
            render_table(
                &[
                    "benchmark",
                    "reqs",
                    "base mem",
                    "TMO mem",
                    "FaaSMem mem",
                    "base P95",
                    "TMO P95",
                    "FaaSMem P95",
                ],
                &rows
            )
        );
        println!();
        // §8.2.1's per-request data volumes: the paper quotes Bert at
        // 1.08 MB offloaded / 0.65 MB recalled per request under
        // FaaSMem vs 0.05 / 0.0004 MB under TMO (a ~45x gap).
        let vol_rows: Vec<Vec<String>> = per_request_volumes
            .iter()
            .map(|&(name, tmo, fm)| {
                vec![
                    name.to_string(),
                    format!("{:.2}", fm.0),
                    format!("{:.2}", fm.1),
                    format!("{:.3}", tmo.0),
                    format!("{:.4}", tmo.1),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "benchmark",
                    "FaaSMem out MB/req",
                    "FaaSMem in MB/req",
                    "TMO out MB/req",
                    "TMO in MB/req",
                ],
                &vol_rows
            )
        );
        let cats: Vec<&str> = chart_categories.iter().map(String::as_str).collect();
        let chart = svg::grouped_bars(
            &format!("Fig 12 ({heading}): average local memory"),
            "MiB",
            &cats,
            &[
                ("Baseline", chart_mem[0].clone()),
                ("TMO", chart_mem[1].clone()),
                ("FaaSMem", chart_mem[2].clone()),
            ],
        );
        svg::write_chart(
            &format!("fig12_{}.svg", heading.to_lowercase().replace(' ', "_")),
            &chart,
        );
        println!();
    }
    println!(
        "Paper reference (Fig 12): FaaSMem -27.1%..-71.0% memory (high), -9.9%..-72.0% (low);"
    );
    println!("micro-benchmarks >= -50%; Web best / Graph worst among apps; P95 within ~+10%.");
}
