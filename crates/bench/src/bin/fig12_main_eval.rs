//! Figure 12: the main evaluation — normalized memory usage and P95
//! latency of all 11 benchmarks under a high-load and a low-load trace,
//! comparing Baseline, TMO and FaaSMem.
//!
//! Expected shape (paper): FaaSMem cuts local memory by 27.1%–71.0%
//! (high load) and 9.9%–72.0% (low load); TMO saves single-digit
//! percents; P95 latency stays within ~10% of Baseline for both; the
//! micro-benchmarks all save ≥ 50% (runtime segment dominates); among
//! the applications Web saves the most and Graph the least.

use faasmem_bench::{fmt_mib, fmt_secs, pct_change, render_table, svg, Experiment, PolicyKind};
use faasmem_sim::SimTime;
use faasmem_workload::{BenchmarkSpec, FunctionId, LoadClass, TraceSynthesizer};

/// Per-request (offload, recall) MB volumes of one system.
type ReqVolumes = (f64, f64);

fn main() {
    for (label, class, bursty, seed) in
        [("HIGH LOAD", LoadClass::High, true, 12_001u64), ("LOW LOAD", LoadClass::Low, false, 12_002)]
    {
        println!("=== Fig 12 ({label}) ===");
        let mut rows = Vec::new();
        let mut per_request_volumes: Vec<(&str, ReqVolumes, ReqVolumes)> = Vec::new();
        let mut chart_categories: Vec<String> = Vec::new();
        let mut chart_mem: Vec<Vec<f64>> = vec![Vec::new(); 3];
        for spec in BenchmarkSpec::catalog() {
            let trace = TraceSynthesizer::new(seed ^ spec.name.len() as u64)
                .load_class(class)
                .bursty(bursty)
                .duration(SimTime::from_mins(60))
                .synthesize_for(FunctionId(0));
            if trace.is_empty() {
                continue;
            }
            let mut mem = Vec::new();
            let mut p95 = Vec::new();
            let mut volumes = Vec::new();
            for kind in PolicyKind::HEAD_TO_HEAD {
                let mut outcome = Experiment::new(spec.clone(), kind).run(&trace);
                mem.push(outcome.report.avg_local_mib());
                p95.push(outcome.report.p95_latency().as_secs_f64());
                let reqs = outcome.report.requests_completed.max(1) as f64;
                volumes.push((
                    outcome.report.pool_stats.bytes_out as f64 / reqs / 1e6,
                    outcome.report.pool_stats.bytes_in as f64 / reqs / 1e6,
                ));
            }
            per_request_volumes.push((spec.name, volumes[1], volumes[2]));
            chart_categories.push(spec.name.to_string());
            for (i, &m) in mem.iter().enumerate() {
                chart_mem[i].push(m);
            }
            rows.push(vec![
                spec.name.to_string(),
                trace.len().to_string(),
                fmt_mib(mem[0]),
                pct_change(mem[1], mem[0]),
                pct_change(mem[2], mem[0]),
                fmt_secs(p95[0]),
                pct_change(p95[1], p95[0]),
                pct_change(p95[2], p95[0]),
            ]);
        }
        println!(
            "{}",
            render_table(
                &[
                    "benchmark",
                    "reqs",
                    "base mem",
                    "TMO mem",
                    "FaaSMem mem",
                    "base P95",
                    "TMO P95",
                    "FaaSMem P95",
                ],
                &rows
            )
        );
        println!();
        // §8.2.1's per-request data volumes: the paper quotes Bert at
        // 1.08 MB offloaded / 0.65 MB recalled per request under
        // FaaSMem vs 0.05 / 0.0004 MB under TMO (a ~45x gap).
        let vol_rows: Vec<Vec<String>> = per_request_volumes
            .iter()
            .map(|&(name, tmo, fm)| {
                vec![
                    name.to_string(),
                    format!("{:.2}", fm.0),
                    format!("{:.2}", fm.1),
                    format!("{:.3}", tmo.0),
                    format!("{:.4}", tmo.1),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "benchmark",
                    "FaaSMem out MB/req",
                    "FaaSMem in MB/req",
                    "TMO out MB/req",
                    "TMO in MB/req",
                ],
                &vol_rows
            )
        );
        let cats: Vec<&str> = chart_categories.iter().map(String::as_str).collect();
        let chart = svg::grouped_bars(
            &format!("Fig 12 ({label}): average local memory"),
            "MiB",
            &cats,
            &[
                ("Baseline", chart_mem[0].clone()),
                ("TMO", chart_mem[1].clone()),
                ("FaaSMem", chart_mem[2].clone()),
            ],
        );
        svg::write_chart(&format!("fig12_{}.svg", label.to_lowercase().replace(' ', "_")), &chart);
        println!();
    }
    println!("Paper reference (Fig 12): FaaSMem -27.1%..-71.0% memory (high), -9.9%..-72.0% (low);");
    println!("micro-benchmarks >= -50%; Web best / Graph worst among apps; P95 within ~+10%.");
}
