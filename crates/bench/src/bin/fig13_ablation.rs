//! Figure 13: ablation study — disabling Pucket and semi-warm on Bert,
//! under a common (steady high-load) and a bursty trace.
//!
//! Expected shape (paper §8.3):
//! * w/o Pucket: higher memory (cold pages wait for semi-warm), slightly
//!   *lower* latency — Pucket's small recall tax buys the early savings.
//! * w/o Semi-warm: memory curve parallels Baseline but lower, dropping
//!   only at keep-alive expiry; the semi-warm drain is worth ~28.6%.
//! * Bursty case: semi-warm partly overtakes Pucket (stranded burst
//!   containers drain anyway), and tail latency grows because observed
//!   reuse intervals underestimate the ideal semi-warm timing.
//!
//! Runs on the parallel harness (`--jobs`, `--quick`); the merged result
//! is exported to `results/fig13_ablation.json`.

use faasmem_bench::harness::{
    self, BenchCase, ExperimentGrid, HarnessOptions, TraceSpec, DEFAULT_CONFIG,
};
use faasmem_bench::{fmt_mib, fmt_secs, render_table, PolicyKind};
use faasmem_sim::SimDuration;
use faasmem_workload::{BenchmarkSpec, LoadClass};

const VARIANTS: [PolicyKind; 4] = [
    PolicyKind::Baseline,
    PolicyKind::FaasMem,
    PolicyKind::FaasMemNoPucket,
    PolicyKind::FaasMemNoSemiWarm,
];

fn main() {
    let opts = HarnessOptions::from_env();
    let grid = ExperimentGrid::new("fig13_ablation")
        .traces([
            TraceSpec::synth("common case", 131, LoadClass::High),
            TraceSpec::synth("bursty case", 132, LoadClass::High).bursty(true),
        ])
        .bench(BenchCase::single(
            BenchmarkSpec::by_name("bert").expect("catalog"),
        ))
        .policy_kinds(VARIANTS);
    let run = harness::run_and_export(&grid, &opts);

    for trace_label in ["common case", "bursty case"] {
        let reqs = run
            .outcome(
                trace_label,
                "bert",
                DEFAULT_CONFIG,
                PolicyKind::Baseline.name(),
            )
            .trace_len;
        println!("=== Fig 13 ({trace_label}): bert, {reqs} requests ===");
        let mut rows = Vec::new();
        let mut timelines = Vec::new();
        for kind in VARIANTS {
            let outcome = run.outcome(trace_label, "bert", DEFAULT_CONFIG, kind.name());
            let s = &outcome.summary;
            rows.push(vec![
                kind.name().to_string(),
                fmt_mib(s.avg_local_mib),
                fmt_secs(s.latency.avg.as_secs_f64()),
                fmt_secs(s.latency.p50.as_secs_f64()),
                fmt_secs(s.latency.p95.as_secs_f64()),
                fmt_secs(s.latency.p99.as_secs_f64()),
            ]);
            timelines.push((
                kind.name(),
                outcome.report.local_mem.clone(),
                outcome.report.finished_at,
            ));
        }
        println!(
            "{}",
            render_table(&["variant", "avg mem", "AVG", "P50", "P95", "P99"], &rows)
        );
        println!();
        println!("local-memory timeline (GiB at 5-minute samples):");
        for (name, series, finished) in timelines {
            let samples = series.sample(SimDuration::from_mins(5), finished);
            let line: Vec<String> = samples
                .iter()
                .map(|(_, v)| format!("{:.2}", v / (1024.0 * 1024.0 * 1024.0)))
                .collect();
            println!("  {name:<24} {}", line.join(" "));
        }
        println!();
    }

    println!("Paper reference (Fig 13): Pucket -19.3% mem (its absence also -9.2% P95);");
    println!(
        "semi-warm -28.6% mem; under burst, semi-warm partly overtakes Pucket and P99 rises ~25%."
    );
}
