//! Figure 13: ablation study — disabling Pucket and semi-warm on Bert,
//! under a common (steady high-load) and a bursty trace.
//!
//! Expected shape (paper §8.3):
//! * w/o Pucket: higher memory (cold pages wait for semi-warm), slightly
//!   *lower* latency — Pucket's small recall tax buys the early savings.
//! * w/o Semi-warm: memory curve parallels Baseline but lower, dropping
//!   only at keep-alive expiry; the semi-warm drain is worth ~28.6%.
//! * Bursty case: semi-warm partly overtakes Pucket (stranded burst
//!   containers drain anyway), and tail latency grows because observed
//!   reuse intervals underestimate the ideal semi-warm timing.

use faasmem_bench::{fmt_mib, fmt_secs, render_table, Experiment, PolicyKind};
use faasmem_sim::{SimDuration, SimTime};
use faasmem_workload::{BenchmarkSpec, FunctionId, InvocationTrace, LoadClass, TraceSynthesizer};

fn run_case(label: &str, trace: &InvocationTrace) {
    println!("=== Fig 13 ({label}): bert, {} requests ===", trace.len());
    let spec = BenchmarkSpec::by_name("bert").expect("catalog");
    let variants = [
        PolicyKind::Baseline,
        PolicyKind::FaasMem,
        PolicyKind::FaasMemNoPucket,
        PolicyKind::FaasMemNoSemiWarm,
    ];
    let mut rows = Vec::new();
    let mut timelines = Vec::new();
    for kind in variants {
        let outcome = Experiment::new(spec.clone(), kind).run(trace);
        let mut report = outcome.report;
        let s = report.latency.summary();
        rows.push(vec![
            kind.name().to_string(),
            fmt_mib(report.avg_local_mib()),
            fmt_secs(s.avg.as_secs_f64()),
            fmt_secs(s.p50.as_secs_f64()),
            fmt_secs(s.p95.as_secs_f64()),
            fmt_secs(s.p99.as_secs_f64()),
        ]);
        timelines.push((kind.name(), report.local_mem.clone(), report.finished_at));
    }
    println!(
        "{}",
        render_table(&["variant", "avg mem", "AVG", "P50", "P95", "P99"], &rows)
    );
    println!();
    println!("local-memory timeline (GiB at 5-minute samples):");
    for (name, series, finished) in timelines {
        let samples = series.sample(SimDuration::from_mins(5), finished);
        let line: Vec<String> = samples
            .iter()
            .map(|(_, v)| format!("{:.2}", v / (1024.0 * 1024.0 * 1024.0)))
            .collect();
        println!("  {name:<24} {}", line.join(" "));
    }
    println!();
}

fn main() {
    let common = TraceSynthesizer::new(131)
        .load_class(LoadClass::High)
        .duration(SimTime::from_mins(60))
        .synthesize_for(FunctionId(0));
    run_case("common case", &common);

    let bursty = TraceSynthesizer::new(132)
        .load_class(LoadClass::High)
        .bursty(true)
        .duration(SimTime::from_mins(60))
        .synthesize_for(FunctionId(0));
    run_case("bursty case", &bursty);

    println!("Paper reference (Fig 13): Pucket -19.3% mem (its absence also -9.2% P95);");
    println!("semi-warm -28.6% mem; under burst, semi-warm partly overtakes Pucket and P99 rises ~25%.");
}
