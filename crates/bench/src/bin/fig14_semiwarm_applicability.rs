//! Figure 14: applicability of semi-warm across the function population.
//!
//! The paper categorises the 424 trace functions by daily invocations
//! (high > 512, low < 64) and reports (a) the CDF of semi-warm time as a
//! share of container lifetime, (b) the container-lifetime CDF, per
//! class. Expected shape: ≥ 50% of functions spend more than half their
//! container lifetime semi-warm; the effect is strongest for high- and
//! low-load functions (both breed short-lived containers) and weakest
//! for steady middle-load functions.

use std::collections::HashMap;

use faasmem_bench::{render_table, svg};
use faasmem_core::FaasMemPolicy;
use faasmem_faas::{FunctionId, PlatformSim};
use faasmem_metrics::Cdf;
use faasmem_sim::SimTime;
use faasmem_workload::{BenchmarkSpec, LoadClass, TraceSynthesizer};

fn main() {
    const FUNCTIONS: u32 = 424;
    let horizon = SimTime::from_mins(240);
    let (trace, classes) = TraceSynthesizer::new(14)
        .duration(horizon)
        .synthesize_cluster(FUNCTIONS);
    let class_of: HashMap<FunctionId, LoadClass> = classes.into_iter().collect();

    // The metric concerns invocation patterns, not footprint size; a
    // small benchmark keeps the 424-function run cheap. Execution time
    // is set to the Azure average (~1 s) so that bursts actually overlap
    // and strand scale-out containers, as in the real trace.
    let spec = BenchmarkSpec {
        exec_time: faasmem_sim::SimDuration::from_secs(1),
        ..BenchmarkSpec::by_name("json").expect("catalog")
    };
    let policy = FaasMemPolicy::builder().build();
    let stats = policy.stats();
    let mut builder = PlatformSim::builder();
    for _ in 0..FUNCTIONS {
        builder = builder.register_function(spec.clone());
    }
    let mut sim = builder.policy(policy).build();
    let report = sim.run(&trace);
    println!(
        "run: {} invocations, {} containers, {} semi-warm records",
        report.requests_completed,
        report.containers.len(),
        stats.borrow().semi_warm_records.len()
    );
    println!();

    let all_classes: [(&str, Option<LoadClass>); 4] = [
        ("all", None),
        ("high", Some(LoadClass::High)),
        ("middle", Some(LoadClass::Middle)),
        ("low", Some(LoadClass::Low)),
    ];
    let mut share_rows = Vec::new();
    let mut life_rows = Vec::new();
    for (label, class) in all_classes {
        let stats = stats.borrow();
        let records: Vec<_> = stats
            .semi_warm_records
            .iter()
            .filter(|r| class.is_none_or(|c| class_of.get(&r.function) == Some(&c)))
            .collect();
        if records.is_empty() {
            continue;
        }
        let share_cdf = Cdf::from_samples(records.iter().map(|r| r.semi_warm_fraction()));
        share_rows.push(vec![
            label.to_string(),
            records.len().to_string(),
            format!("{:.0}%", share_cdf.quantile(0.5).unwrap_or(0.0) * 100.0),
            format!("{:.0}%", (1.0 - share_cdf.fraction_at_most(0.5)) * 100.0),
        ]);
        let life_cdf = Cdf::from_samples(records.iter().map(|r| r.lifetime.as_secs_f64() / 60.0));
        life_rows.push(vec![
            label.to_string(),
            format!("{:.0} min", life_cdf.quantile(0.5).unwrap_or(0.0)),
            format!("{:.0} min", life_cdf.quantile(0.9).unwrap_or(0.0)),
        ]);
    }
    println!("semi-warm share of container lifetime:");
    println!(
        "{}",
        render_table(
            &[
                "load class",
                "containers",
                "median share",
                "containers with share > 50%"
            ],
            &share_rows
        )
    );
    println!("container lifetime:");
    println!(
        "{}",
        render_table(&["load class", "median", "P90"], &life_rows)
    );
    // SVG: semi-warm-share CDFs per load class (the paper's left panel).
    let mut chart_series: Vec<(&str, Vec<(f64, f64)>)> = Vec::new();
    let stats_ref = stats.borrow();
    for (label, class) in [
        ("high", Some(LoadClass::High)),
        ("middle", Some(LoadClass::Middle)),
        ("low", Some(LoadClass::Low)),
    ] {
        let samples: Vec<f64> = stats_ref
            .semi_warm_records
            .iter()
            .filter(|r| class.is_none_or(|c| class_of.get(&r.function) == Some(&c)))
            .map(|r| r.semi_warm_fraction() * 100.0)
            .collect();
        let cdf = Cdf::from_samples(samples);
        let pts = cdf.plot_points(60);
        if pts.len() >= 2 {
            chart_series.push((label, pts));
        }
    }
    if !chart_series.is_empty() {
        let chart = svg::lines(
            "Fig 14: CDF of semi-warm share of container lifetime",
            "semi-warm share (%)",
            "fraction of containers",
            &chart_series,
        );
        svg::write_chart("fig14_semiwarm_cdf.svg", &chart);
    }
    println!("Paper reference (Fig 14): semi-warm > 1/2 of lifetime for ~50% of functions;");
    println!("high- and low-load functions benefit most, middle-load least.");
}
