//! Figure 15: overhead of the Pucket mechanisms — time-barrier insertion
//! and periodic rollback.
//!
//! The paper measures, per benchmark, the wall-clock cost of inserting
//! the Runtime-Init and Init-Execution barriers (≤ 2.5 ms for the micro-
//! benchmarks; 10/5/5 ms for Bert/Graph/Web whose init segments are
//! large) and of one rollback (≤ 7.5 ms). This binary measures the same
//! operations on 4 KiB-page tables sized per benchmark. For
//! statistically rigorous numbers run `cargo bench -p faasmem-bench`.

use std::time::Instant;

use faasmem_bench::render_table;
use faasmem_core::Puckets;
use faasmem_mem::{mib_to_pages, PageTable, Segment, PAGE_SIZE_4K};
use faasmem_workload::BenchmarkSpec;

fn measure_micros<F: FnMut()>(mut f: F, iters: u32) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / f64::from(iters)
}

fn main() {
    let mut rows = Vec::new();
    for spec in BenchmarkSpec::catalog() {
        let runtime_pages = mib_to_pages(spec.runtime_mib, PAGE_SIZE_4K) as u32;
        let init_pages = mib_to_pages(spec.init_mib, PAGE_SIZE_4K) as u32;
        let hot_pages = mib_to_pages(spec.runtime_hot_mib, PAGE_SIZE_4K) as u32
            + mib_to_pages(spec.init_mib / 2, PAGE_SIZE_4K) as u32;

        // Barrier insertion is O(1) on the generation counter but the
        // paper's number includes the blocking LRU walk; emulate the walk
        // with a full metadata pass, which is the worst case.
        let ri_barrier = measure_micros(
            || {
                let mut table = PageTable::new(PAGE_SIZE_4K);
                table.alloc(Segment::Runtime, runtime_pages);
                let mut p = Puckets::new();
                p.insert_runtime_init_barrier(&mut table);
                std::hint::black_box(table.scan_accessed());
            },
            20,
        );
        let ie_barrier = measure_micros(
            || {
                let mut table = PageTable::new(PAGE_SIZE_4K);
                table.alloc(Segment::Runtime, runtime_pages);
                let mut p = Puckets::new();
                p.insert_runtime_init_barrier(&mut table);
                table.alloc(Segment::Init, init_pages);
                p.insert_init_exec_barrier(&mut table);
                std::hint::black_box(table.scan_accessed());
            },
            20,
        );

        // Rollback: clear the hot-pool flag of every hot page.
        let mut table = PageTable::new(PAGE_SIZE_4K);
        let r = table.alloc(Segment::Runtime, runtime_pages);
        let mut puckets = Puckets::new();
        puckets.insert_runtime_init_barrier(&mut table);
        let i = table.alloc(Segment::Init, init_pages);
        puckets.insert_init_exec_barrier(&mut table);
        table.scan_accessed();
        table.touch_range(r.take(hot_pages.min(r.len())));
        table.touch_range(i.take(hot_pages.min(i.len())));
        puckets.promote_accessed(&mut table);
        let rollback = measure_micros(
            || {
                // Roll back and immediately re-promote so every
                // iteration does the same amount of work.
                let hot: Vec<_> = puckets.hot_pool_pages(&table);
                puckets.rollback_hot_pool(&mut table);
                for id in hot {
                    table.set_in_hot_pool(id, true);
                }
            },
            20,
        );

        rows.push(vec![
            spec.name.to_string(),
            format!("{:.2} ms", ri_barrier / 1e3),
            format!("{:.2} ms", ie_barrier / 1e3),
            format!("{:.2} ms", rollback / 1e3),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "runtime-init barrier",
                "init-exec barrier",
                "rollback"
            ],
            &rows
        )
    );
    println!(
        "Paper reference (Fig 15): barriers < 2.5 ms (micro) / <= 10 ms (apps); rollback < 7.5 ms;"
    );
    println!("with rollback rounds >= 10 s apart the total overhead stays < 0.1%.");
}
