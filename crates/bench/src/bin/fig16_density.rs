//! Figure 16: remote bandwidth consumption and deployment-density
//! improvement of the three applications under 20 random traces.
//!
//! Expected shape (paper §8.6): bandwidth grows roughly linearly with
//! request load (with an uptick at very low loads, where semi-warm starts
//! earlier); density improvement is positively correlated with request
//! load and negatively with the standard deviation of request intervals;
//! maxima ≈ 1.4× (Bert), 1.4× (Graph), 2.2× (Web).

use faasmem_bench::{render_table, Experiment, PolicyKind};
use faasmem_faas::estimate_density;
use faasmem_sim::SimTime;
use faasmem_workload::{BenchmarkSpec, FunctionId, LoadClass, TraceSynthesizer};

fn main() {
    for app in ["bert", "graph", "web"] {
        let spec = BenchmarkSpec::by_name(app).expect("catalog");
        println!("=== Fig 16 ({app}, quota {} MiB) ===", spec.quota_mib);
        let mut rows = Vec::new();
        let mut max_density: f64 = 1.0;
        for trace_id in 0u64..20 {
            let class = match trace_id % 3 {
                0 => LoadClass::High,
                1 => LoadClass::Middle,
                _ => LoadClass::Low,
            };
            let trace = TraceSynthesizer::new(1600 + trace_id)
                .load_class(class)
                .bursty(trace_id % 2 == 0)
                .duration(SimTime::from_mins(60))
                .synthesize_for(FunctionId(0));
            if trace.is_empty() {
                continue;
            }
            let stats = trace.stats();
            let outcome = Experiment::new(spec.clone(), PolicyKind::FaasMem).run(&trace);
            let density = estimate_density(&outcome.report, &spec);
            max_density = max_density.max(density.improvement);
            rows.push(vec![
                format!("{trace_id}"),
                format!("{:.1}", stats.req_per_min),
                format!("{:.0}s", stats.interval_std_secs),
                format!("{:.2} MB/s", outcome.report.mean_offload_bandwidth_mbps()),
                format!("{:.0} MiB", density.offloaded_per_container_mib),
                format!("{:.2}x", density.improvement),
            ]);
        }
        println!(
            "{}",
            render_table(
                &["trace", "req/min", "σ(intervals)", "offload bw", "offload/ctr", "density"],
                &rows
            )
        );
        println!("max density improvement: {max_density:.2}x");
        println!();
    }
    println!("Paper reference (Fig 16): density up to 1.4x/1.4x/2.2x (Bert/Graph/Web);");
    println!("positively correlated with req/min, negatively with σ of request intervals.");
}
