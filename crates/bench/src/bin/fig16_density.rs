//! Figure 16: remote bandwidth consumption and deployment-density
//! improvement of the three applications under 20 random traces.
//!
//! Expected shape (paper §8.6): bandwidth grows roughly linearly with
//! request load (with an uptick at very low loads, where semi-warm starts
//! earlier); density improvement is positively correlated with request
//! load and negatively with the standard deviation of request intervals;
//! maxima ≈ 1.4× (Bert), 1.4× (Graph), 2.2× (Web).
//!
//! Runs on the parallel harness — 3 apps × 20 traces fan across
//! `--jobs` workers; the merged result is exported to
//! `results/fig16_density.json`.

use faasmem_bench::harness::{
    self, BenchCase, ExperimentGrid, HarnessOptions, TraceSpec, DEFAULT_CONFIG,
};
use faasmem_bench::{render_table, PolicyKind};
use faasmem_faas::estimate_density;
use faasmem_workload::{BenchmarkSpec, LoadClass};

fn main() {
    let opts = HarnessOptions::from_env();
    let apps = ["bert", "graph", "web"];
    let grid = ExperimentGrid::new("fig16_density")
        .traces((0u64..20).map(|trace_id| {
            let class = match trace_id % 3 {
                0 => LoadClass::High,
                1 => LoadClass::Middle,
                _ => LoadClass::Low,
            };
            TraceSpec::synth(&trace_id.to_string(), 1600 + trace_id, class)
                .bursty(trace_id % 2 == 0)
        }))
        .benches(
            apps.iter()
                .map(|app| BenchCase::single(BenchmarkSpec::by_name(app).expect("catalog"))),
        )
        .policy_kinds([PolicyKind::FaasMem]);
    let run = harness::run_and_export(&grid, &opts);

    for app in apps {
        let spec = BenchmarkSpec::by_name(app).expect("catalog");
        println!("=== Fig 16 ({app}, quota {} MiB) ===", spec.quota_mib);
        let mut rows = Vec::new();
        let mut max_density: f64 = 1.0;
        for trace_id in 0u64..20 {
            let outcome = run.outcome(
                &trace_id.to_string(),
                app,
                DEFAULT_CONFIG,
                PolicyKind::FaasMem.name(),
            );
            if outcome.trace_len == 0 {
                continue;
            }
            let stats = outcome.trace_stats;
            let density = estimate_density(&outcome.report, &spec);
            max_density = max_density.max(density.improvement);
            rows.push(vec![
                format!("{trace_id}"),
                format!("{:.1}", stats.req_per_min),
                format!("{:.0}s", stats.interval_std_secs),
                format!("{:.2} MB/s", outcome.summary.mean_offload_bandwidth_mbps),
                format!("{:.0} MiB", density.offloaded_per_container_mib),
                format!("{:.2}x", density.improvement),
            ]);
        }
        println!(
            "{}",
            render_table(
                &[
                    "trace",
                    "req/min",
                    "σ(intervals)",
                    "offload bw",
                    "offload/ctr",
                    "density"
                ],
                &rows
            )
        );
        println!("max density improvement: {max_density:.2}x");
        println!();
    }
    println!("Paper reference (Fig 16): density up to 1.4x/1.4x/2.2x (Bert/Graph/Web);");
    println!("positively correlated with req/min, negatively with σ of request intervals.");
}
