//! Queries a grid result document for the memory-anatomy story: which
//! functions waste the most byte-seconds, on which component, and how
//! pages flowed through their lifecycle.
//!
//! ```text
//! cargo run --release -p faasmem-bench --bin disc10_memory_anatomy
//! cargo run --release -p faasmem-bench --bin mem_query
//! cargo run --release -p faasmem-bench --bin mem_query -- \
//!     results/disc10_memory_anatomy.json --component pool_primary --top 5
//! cargo run --release -p faasmem-bench --bin mem_query -- --flow
//! ```
//!
//! The output is a pure function of the result document, which is
//! itself byte-identical across `--jobs` and `--shards`, so serial and
//! parallel harness runs query identically.
//!
//! Exit codes: 0 success, 1 malformed document / unknown component /
//! nothing matched, 2 usage / IO errors.

use faasmem_bench::json::{self, JsonValue};
use faasmem_bench::render_table;
use faasmem_faas::WasteComponent;

/// Where `runall` leaves the anatomy grid's result document.
const DEFAULT_RESULTS: &str = "results/disc10_memory_anatomy.json";

fn usage() -> ! {
    eprintln!(
        "usage: mem_query [<results.json>] [--component NAME] [--top N] [--flow]\n\
         default results file: {DEFAULT_RESULTS}"
    );
    std::process::exit(2);
}

fn known_components() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = WasteComponent::ALL.iter().map(|c| c.name()).collect();
    names.push("total");
    names
}

fn cell_label(cell: &JsonValue) -> String {
    let txt = |key: &str| cell.get(key).and_then(JsonValue::as_str).unwrap_or("?");
    format!(
        "{}/{}/{}/{}",
        txt("trace"),
        txt("bench"),
        txt("config"),
        txt("policy")
    )
}

fn fmt_gib_s(byte_secs: f64) -> String {
    format!("{:.2}", byte_secs / (1024.0 * 1024.0 * 1024.0))
}

/// One function's ledger in one cell, pulled from its `function_waste`
/// entry: the ranked component's value plus the ledger total.
struct Row {
    cell: String,
    function: String,
    value: f64,
    total: f64,
}

fn rank_rows(cells: &[JsonValue], component: &str) -> Vec<Row> {
    let mut rows = Vec::new();
    for cell in cells {
        let Some(waste) = cell.get("function_waste").and_then(JsonValue::as_arr) else {
            continue;
        };
        for entry in waste {
            let function = entry
                .get("name")
                .and_then(JsonValue::as_str)
                .unwrap_or("?")
                .to_string();
            let total = entry
                .get("total_byte_secs")
                .and_then(JsonValue::as_num)
                .unwrap_or(0.0);
            let value = if component == "total" {
                total
            } else {
                entry
                    .get("components")
                    .and_then(|c| c.get(component))
                    .and_then(JsonValue::as_num)
                    .unwrap_or(0.0)
            };
            rows.push(Row {
                cell: cell_label(cell),
                function,
                value,
                total,
            });
        }
    }
    // Stable sort: ties keep document (cell, function) order.
    rows.sort_by(|a, b| {
        b.value
            .partial_cmp(&a.value)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    rows
}

fn render_ranking(rows: &[Row], component: &str, top: usize) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .take(top)
        .enumerate()
        .map(|(rank, row)| {
            vec![
                format!("#{}", rank + 1),
                row.cell.clone(),
                row.function.clone(),
                fmt_gib_s(row.value),
                fmt_gib_s(row.total),
            ]
        })
        .collect();
    render_table(
        &[
            "rank",
            "cell",
            "function",
            &format!("{component} GiB*s"),
            "total GiB*s",
        ],
        &table,
    )
}

fn render_flows(cells: &[JsonValue]) -> Option<String> {
    let mut table = Vec::new();
    for cell in cells {
        let Some(flow) = cell
            .get("metrics")
            .and_then(|m| m.get("memory_anatomy"))
            .and_then(|a| a.get("flow"))
        else {
            continue;
        };
        let count = |key: &str| flow.get(key).and_then(JsonValue::as_num).unwrap_or(0.0);
        table.push(vec![
            cell_label(cell),
            format!("{}", count("allocated")),
            format!("{}", count("reused")),
            format!("{}", count("offloaded")),
            format!(
                "{}+{}",
                count("recalled_demand"),
                count("recalled_prefetch")
            ),
            format!("{}+{}", count("freed_local"), count("freed_remote")),
            format!("{}", count("row_violations")),
        ]);
    }
    if table.is_empty() {
        return None;
    }
    Some(render_table(
        &[
            "cell",
            "allocated",
            "reused",
            "offloaded",
            "recalled d+p",
            "freed l+r",
            "row violations",
        ],
        &table,
    ))
}

fn main() {
    let mut path: Option<String> = None;
    let mut component = "keepalive_idle".to_string();
    let mut top = 10usize;
    let mut flow = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut flag = |name: &'static str| -> Option<String> {
            if let Some(value) = arg.strip_prefix(&format!("{name}=")) {
                Some(value.to_string())
            } else if arg == name {
                match args.next() {
                    Some(value) => Some(value),
                    None => usage(),
                }
            } else {
                None
            }
        };
        if let Some(value) = flag("--component") {
            component = value;
        } else if let Some(value) = flag("--top") {
            match value.parse::<usize>() {
                Ok(n) if n > 0 => top = n,
                _ => {
                    eprintln!("mem_query: bad --top value {value:?}");
                    std::process::exit(2);
                }
            }
        } else if arg == "--flow" {
            flow = true;
        } else if arg.starts_with("--") {
            eprintln!("mem_query: unknown option {arg}");
            usage();
        } else if path.is_none() {
            path = Some(arg);
        } else {
            usage();
        }
    }
    if !known_components().contains(&component.as_str()) {
        eprintln!(
            "mem_query: unknown component {component:?} (expected one of: {})",
            known_components().join(", ")
        );
        std::process::exit(1);
    }
    let path = path.unwrap_or_else(|| DEFAULT_RESULTS.to_string());
    let input = match std::fs::read_to_string(&path) {
        Ok(input) => input,
        Err(e) => {
            eprintln!("mem_query: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let doc = match json::parse(&input) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("mem_query: {path}: {e}");
            std::process::exit(1);
        }
    };
    let Some(cells) = doc.get("cells").and_then(JsonValue::as_arr) else {
        eprintln!("mem_query: {path}: missing \"cells\" (is this a grid result document?)");
        std::process::exit(1);
    };
    if flow {
        match render_flows(cells) {
            Some(table) => {
                println!("page-lifecycle flow per cell:");
                print!("{table}");
            }
            None => {
                eprintln!(
                    "mem_query: no memory_anatomy blocks in {path} \
                     (was the grid run with PlatformConfig::memory_anatomy?)"
                );
                std::process::exit(1);
            }
        }
        return;
    }
    let rows = rank_rows(cells, &component);
    if rows.is_empty() {
        eprintln!(
            "mem_query: no function_waste entries in {path} \
             (was the grid run with PlatformConfig::memory_anatomy?)"
        );
        std::process::exit(1);
    }
    println!("top functions by {component} byte-seconds:");
    print!("{}", render_ranking(&rows, &component, top));
}
