//! Artifact driver: runs every experiment binary in sequence and writes
//! each one's output under `results/` — the equivalent of the paper
//! artifact's `test.py` workflow.
//!
//! Flag arguments (anything starting with `-`) are forwarded verbatim to
//! every experiment, so `--quick` and `--jobs N` propagate to the
//! harness-based binaries:
//!
//! ```text
//! cargo run --release -p faasmem-bench --bin runall [output-dir] [--quick] [--jobs N]
//! ```

use std::fs;
use std::path::PathBuf;
use std::process::Command;
use std::time::Instant;

/// Every experiment in evaluation order.
const EXPERIMENTS: &[&str] = &[
    "fig01_keepalive_sweep",
    "fig02_damon_p95",
    "fig03_memory_layout",
    "fig04_runtime_inactive",
    "fig05_requests_per_container",
    "fig06_bert_scan",
    "fig08_runtime_recalls",
    "fig09_web_scan",
    "fig10_rollback_demo",
    "fig11_reuse_cdf",
    "fig12_main_eval",
    "tab01_diverse_traces",
    "fig13_ablation",
    "fig14_semiwarm_applicability",
    "fig15_overhead",
    "fig16_density",
    "disc01_pool_technologies",
    "disc02_hardware_sampling",
    "disc03_memory_sharing",
    "disc04_rack_provisioning",
    "disc05_keepalive_policies",
    "disc06_load_imbalance",
    "disc07_fault_tolerance",
    "disc08_durability",
    "disc09_tail_blame",
    "disc10_memory_anatomy",
    "ext01_coldstart_aware",
    "ext02_recall_prefetch",
    "abl01_window_policy",
    "abl02_semiwarm_percentile",
    "abl03_rollback_interval",
    "abl04_page_granularity",
    "abl05_offload_rate",
];

fn main() {
    let mut out_dir = PathBuf::from("results");
    let mut forwarded: Vec<String> = Vec::new();
    // A bare value after `--jobs`/`-j`/`--out` belongs to that flag, not
    // to the positional output-dir slot.
    let mut flag_value_pending = false;
    for arg in std::env::args().skip(1) {
        if flag_value_pending {
            flag_value_pending = false;
            forwarded.push(arg);
        } else if arg.starts_with('-') {
            flag_value_pending = matches!(arg.as_str(), "--jobs" | "-j" | "--out");
            forwarded.push(arg);
        } else {
            out_dir = PathBuf::from(arg);
        }
    }
    fs::create_dir_all(&out_dir).expect("create output dir");
    // Point the harness binaries' JSON exports at the same directory as
    // the captured stdout, unless the caller overrode it explicitly.
    if !forwarded
        .iter()
        .any(|a| a == "--out" || a.starts_with("--out="))
    {
        forwarded.push(format!("--out={}", out_dir.display()));
    }

    let self_exe = std::env::current_exe().expect("current exe path");
    let bin_dir = self_exe.parent().expect("bin dir");

    let mut failures = 0;
    for name in EXPERIMENTS {
        let start = Instant::now();
        let output = Command::new(bin_dir.join(name)).args(&forwarded).output();
        match output {
            Ok(out) if out.status.success() => {
                let path = out_dir.join(format!("{name}.txt"));
                fs::write(&path, &out.stdout).expect("write result");
                println!(
                    "{name:<32} ok  ({:>5} ms)  -> {}",
                    start.elapsed().as_millis(),
                    path.display()
                );
            }
            Ok(out) => {
                failures += 1;
                eprintln!("{name:<32} FAILED (status {:?})", out.status.code());
                eprintln!("{}", String::from_utf8_lossy(&out.stderr));
            }
            Err(e) => {
                failures += 1;
                eprintln!(
                    "{name:<32} NOT FOUND ({e}); build first: cargo build --release -p faasmem-bench"
                );
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        std::process::exit(1);
    }
    println!(
        "\nall {} experiments written to {}",
        EXPERIMENTS.len(),
        out_dir.display()
    );
}
