//! Renders a `*.series.json` telemetry document as a stacked SVG
//! dashboard: one timeline panel per series-name prefix group
//! (`faas.*`, `mem.*`, `pool.*`, `registry.*`), plus a "blame
//! breakdown" panel when the cell carries latency-blame gauges such as
//! `faas.invocations_stalled_remote`.
//!
//! ```text
//! cargo run --release -p faasmem-bench --bin fig12_main_eval -- \
//!     --quick --series results/fig12.series.json
//! cargo run --release -p faasmem-bench --bin series_dashboard -- \
//!     results/fig12.series.json --cell 0 --out results/fig12.dashboard.svg
//! ```
//!
//! `--cell` defaults to 0; `--out` defaults to the input path with its
//! extension replaced by `.svg`. Exit code 2 on usage / IO / parse /
//! render errors.

use std::path::PathBuf;

use faasmem_bench::dashboard;

fn usage() -> ! {
    eprintln!("usage: series_dashboard <series.json> [--cell N] [--out PATH]");
    std::process::exit(2);
}

fn main() {
    let mut input: Option<String> = None;
    let mut cell: usize = 0;
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if let Some(value) = arg.strip_prefix("--cell=") {
            cell = parse_cell(value);
        } else if arg == "--cell" {
            let Some(value) = args.next() else { usage() };
            cell = parse_cell(&value);
        } else if let Some(value) = arg.strip_prefix("--out=") {
            out = Some(PathBuf::from(value));
        } else if arg == "--out" {
            let Some(value) = args.next() else { usage() };
            out = Some(PathBuf::from(value));
        } else if arg.starts_with("--") {
            eprintln!("series_dashboard: unknown option {arg}");
            usage();
        } else if input.is_none() {
            input = Some(arg);
        } else {
            usage();
        }
    }
    let Some(input) = input else { usage() };
    let out = out.unwrap_or_else(|| PathBuf::from(&input).with_extension("svg"));

    let text = match std::fs::read_to_string(&input) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("series_dashboard: cannot read {input}: {e}");
            std::process::exit(2);
        }
    };
    let doc = match dashboard::parse_series(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("series_dashboard: {input}: {e}");
            std::process::exit(2);
        }
    };
    let svg = match dashboard::render_dashboard(&doc, cell) {
        Ok(svg) => svg,
        Err(e) => {
            eprintln!("series_dashboard: {input}: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = std::fs::write(&out, svg) {
        eprintln!("series_dashboard: cannot write {}: {e}", out.display());
        std::process::exit(2);
    }
    println!("(dashboard written to {})", out.display());
}

fn parse_cell(value: &str) -> usize {
    match value.parse::<usize>() {
        Ok(cell) => cell,
        Err(_) => {
            eprintln!("series_dashboard: bad cell index {value:?}");
            std::process::exit(2);
        }
    }
}
