//! Table 1: P95 latency and average memory of the three applications
//! (Bert, Graph, Web) under six diverse high-load traces, for Baseline,
//! TMO and FaaSMem.
//!
//! Expected shape (paper): FaaSMem offloads far more than TMO under every
//! trace (its cells are "darker"); Web shows the highest offload ratio;
//! one trace (ID-5, an extreme surge) inflates everyone's tail latency
//! through cold-start congestion, yet FaaSMem still saves 14.4%–68.0% of
//! memory at baseline-level latency.

use faasmem_bench::{fmt_mib, fmt_secs, render_table, Experiment, PolicyKind};
use faasmem_sim::SimTime;
use faasmem_workload::{BenchmarkSpec, FunctionId, LoadClass, TraceSynthesizer};

fn main() {
    let apps = ["bert", "graph", "web"];
    for app in apps {
        let spec = BenchmarkSpec::by_name(app).expect("catalog");
        println!("=== Table 1 ({app}) ===");
        let mut rows = Vec::new();
        for trace_id in 1u64..=6 {
            // Trace ID-5 models the paper's anomaly: an extreme
            // short-term surge that congests cold starts.
            let bursty = trace_id == 5 || trace_id % 2 == 0;
            let synth = TraceSynthesizer::new(100 + trace_id)
                .load_class(LoadClass::High)
                .bursty(bursty)
                .duration(SimTime::from_mins(60));
            let trace = synth.synthesize_for(FunctionId(0));
            let mut cells = vec![format!("{trace_id}")];
            for kind in PolicyKind::HEAD_TO_HEAD {
                let mut outcome = Experiment::new(spec.clone(), kind).run(&trace);
                cells.push(fmt_secs(outcome.report.p95_latency().as_secs_f64()));
                cells.push(fmt_mib(outcome.report.avg_local_mib()));
            }
            rows.push(cells);
        }
        println!(
            "{}",
            render_table(
                &["ID", "Base Lat", "Base Mem", "TMO Lat", "TMO Mem", "FaaSMem Lat", "FaaSMem Mem"],
                &rows
            )
        );
        println!();
    }
    println!("Paper reference (Tab 1): FaaSMem's memory column is far below TMO's under every trace;");
    println!("Web gets the largest relative cut; latency stays at the baseline level.");
}
