//! Table 1: P95 latency and average memory of the three applications
//! (Bert, Graph, Web) under six diverse high-load traces, for Baseline,
//! TMO and FaaSMem.
//!
//! Expected shape (paper): FaaSMem offloads far more than TMO under every
//! trace (its cells are "darker"); Web shows the highest offload ratio;
//! one trace (ID-5, an extreme surge) inflates everyone's tail latency
//! through cold-start congestion, yet FaaSMem still saves 14.4%–68.0% of
//! memory at baseline-level latency.
//!
//! Runs on the parallel harness (`--jobs`, `--quick`); the merged result
//! is exported to `results/tab01_diverse_traces.json`.

use faasmem_bench::harness::{
    self, BenchCase, ExperimentGrid, HarnessOptions, TraceSpec, DEFAULT_CONFIG,
};
use faasmem_bench::{fmt_mib, fmt_secs, render_table, PolicyKind};
use faasmem_workload::{BenchmarkSpec, LoadClass};

fn main() {
    let opts = HarnessOptions::from_env();
    let apps = ["bert", "graph", "web"];
    let grid = ExperimentGrid::new("tab01_diverse_traces")
        .traces((1u64..=6).map(|trace_id| {
            // Trace ID-5 models the paper's anomaly: an extreme
            // short-term surge that congests cold starts.
            let bursty = trace_id == 5 || trace_id % 2 == 0;
            TraceSpec::synth(&trace_id.to_string(), 100 + trace_id, LoadClass::High).bursty(bursty)
        }))
        .benches(
            apps.iter()
                .map(|app| BenchCase::single(BenchmarkSpec::by_name(app).expect("catalog"))),
        )
        .policy_kinds(PolicyKind::HEAD_TO_HEAD);
    let run = harness::run_and_export(&grid, &opts);

    for app in apps {
        println!("=== Table 1 ({app}) ===");
        let mut rows = Vec::new();
        for trace_id in 1u64..=6 {
            let mut cells = vec![format!("{trace_id}")];
            for kind in PolicyKind::HEAD_TO_HEAD {
                let outcome = run.outcome(&trace_id.to_string(), app, DEFAULT_CONFIG, kind.name());
                cells.push(fmt_secs(outcome.summary.latency.p95.as_secs_f64()));
                cells.push(fmt_mib(outcome.summary.avg_local_mib));
            }
            rows.push(cells);
        }
        println!(
            "{}",
            render_table(
                &[
                    "ID",
                    "Base Lat",
                    "Base Mem",
                    "TMO Lat",
                    "TMO Mem",
                    "FaaSMem Lat",
                    "FaaSMem Mem"
                ],
                &rows
            )
        );
        println!();
    }
    println!(
        "Paper reference (Tab 1): FaaSMem's memory column is far below TMO's under every trace;"
    );
    println!("Web gets the largest relative cut; latency stays at the baseline level.");
}
