//! Queries a `--trace` JSONL file for the invocations that explain the
//! tail: slowest-N, ranked by end-to-end latency or by one blame
//! component, with optional critical-path rendering.
//!
//! ```text
//! cargo run --release -p faasmem-bench --bin fig12_main_eval -- \
//!     --quick --trace results/fig12.trace.jsonl
//! cargo run --release -p faasmem-bench --bin trace_query -- \
//!     results/fig12.trace.jsonl
//! cargo run --release -p faasmem-bench --bin trace_query -- \
//!     results/fig12.trace.jsonl --slowest 5 --critical-path
//! cargo run --release -p faasmem-bench --bin trace_query -- \
//!     results/fig12.trace.jsonl --component recall_stall --cell 3
//! ```
//!
//! The output is a pure function of the trace file (span reconstruction
//! sorts by the `(sim_time, seq)` total order), so serial and parallel
//! harness runs query identically.
//!
//! Exit codes: 0 success, 1 malformed trace / unknown component /
//! nothing matched, 2 usage / IO errors.

use faasmem_trace::query::{render, select};
use faasmem_trace::{spans_from_jsonl, QueryOptions};

fn usage() -> ! {
    eprintln!(
        "usage: trace_query <trace.jsonl> [--slowest N] [--component NAME] [--cell N] \
         [--function ID] [--critical-path]"
    );
    std::process::exit(2);
}

fn parse_num(flag: &str, value: &str) -> u64 {
    match value.parse::<u64>() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("trace_query: bad {flag} value {value:?}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut path: Option<String> = None;
    let mut opts = QueryOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut flag = |name: &'static str| -> Option<String> {
            if let Some(value) = arg.strip_prefix(&format!("{name}=")) {
                Some(value.to_string())
            } else if arg == name {
                match args.next() {
                    Some(value) => Some(value),
                    None => usage(),
                }
            } else {
                None
            }
        };
        if let Some(value) = flag("--slowest") {
            opts.slowest = parse_num("--slowest", &value) as usize;
        } else if let Some(value) = flag("--component") {
            opts.component = Some(value);
        } else if let Some(value) = flag("--cell") {
            opts.cell = Some(parse_num("--cell", &value));
        } else if let Some(value) = flag("--function") {
            // Kept as a raw string: an unknown id must exit 1 with the
            // trace's function vocabulary, which `select` produces.
            opts.function = Some(value);
        } else if arg == "--critical-path" {
            opts.critical_path = true;
        } else if arg.starts_with("--") {
            eprintln!("trace_query: unknown option {arg}");
            usage();
        } else if path.is_none() {
            path = Some(arg);
        } else {
            usage();
        }
    }
    let Some(path) = path else { usage() };
    let input = match std::fs::read_to_string(&path) {
        Ok(input) => input,
        Err(e) => {
            eprintln!("trace_query: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let forest = match spans_from_jsonl(&input) {
        Ok(forest) => forest,
        Err(e) => {
            eprintln!("trace_query: {path}: {e}");
            std::process::exit(1);
        }
    };
    let hits = match select(&forest, &opts) {
        Ok(hits) => hits,
        Err(e) => {
            eprintln!("trace_query: {e}");
            std::process::exit(1);
        }
    };
    if hits.is_empty() {
        eprintln!("trace_query: no invocations matched in {path}");
        std::process::exit(1);
    }
    print!("{}", render(&hits, &opts));
}
