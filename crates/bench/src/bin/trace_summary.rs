//! Reconstructs per-container timelines from a `--trace` JSONL file.
//!
//! ```text
//! cargo run --release -p faasmem-bench --bin fig12_main_eval -- \
//!     --quick --trace results/fig12.trace.jsonl
//! cargo run --release -p faasmem-bench --bin trace_summary -- \
//!     results/fig12.trace.jsonl
//! cargo run --release -p faasmem-bench --bin trace_summary -- \
//!     results/fig12.trace.jsonl --container 3
//! ```
//!
//! Prints one block per grid cell: the cell's coordinates and headline
//! counters, then one row per container with its lifecycle milestones
//! and memory traffic. `--container ID` narrows the output to a single
//! container's timeline across all cells; `--invocation ID` narrows it
//! to the containers that executed one request id. The rendering is a
//! pure function of the input file, so serial and parallel harness
//! runs summarize identically.
//!
//! Exit codes: 0 success, 1 malformed trace / id not found, 2 usage /
//! IO errors.

use faasmem_trace::summarize_jsonl;
use faasmem_trace::summary::render_text;

fn usage() -> ! {
    eprintln!("usage: trace_summary <trace.jsonl> [--container ID] [--invocation ID]");
    std::process::exit(2);
}

fn main() {
    let mut path: Option<String> = None;
    let mut container: Option<u64> = None;
    let mut invocation: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if let Some(value) = arg.strip_prefix("--container=") {
            container = Some(parse_id("container", value));
        } else if arg == "--container" {
            let Some(value) = args.next() else { usage() };
            container = Some(parse_id("container", &value));
        } else if let Some(value) = arg.strip_prefix("--invocation=") {
            invocation = Some(parse_id("invocation", value));
        } else if arg == "--invocation" {
            let Some(value) = args.next() else { usage() };
            invocation = Some(parse_id("invocation", &value));
        } else if arg.starts_with("--") {
            eprintln!("trace_summary: unknown option {arg}");
            usage();
        } else if path.is_none() {
            path = Some(arg);
        } else {
            usage();
        }
    }
    let Some(path) = path else { usage() };
    let input = match std::fs::read_to_string(&path) {
        Ok(input) => input,
        Err(e) => {
            eprintln!("trace_summary: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match summarize_jsonl(&input) {
        Ok(mut summary) => {
            if let Some(id) = container {
                summary.filter_container(id);
                if summary.cells.is_empty() {
                    eprintln!("trace_summary: container {id} not found in {path}");
                    std::process::exit(1);
                }
            }
            if let Some(id) = invocation {
                summary.filter_invocation(id);
                if summary.cells.is_empty() {
                    eprintln!("trace_summary: invocation {id} not found in {path}");
                    std::process::exit(1);
                }
            }
            print!("{}", render_text(&summary));
        }
        Err(e) => {
            eprintln!("trace_summary: {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn parse_id(what: &str, value: &str) -> u64 {
    match value.parse::<u64>() {
        Ok(id) => id,
        Err(_) => {
            eprintln!("trace_summary: bad {what} id {value:?}");
            std::process::exit(2);
        }
    }
}
