//! Reconstructs per-container timelines from a `--trace` JSONL file.
//!
//! ```text
//! cargo run --release -p faasmem-bench --bin fig12_main_eval -- \
//!     --quick --trace results/fig12.trace.jsonl
//! cargo run --release -p faasmem-bench --bin trace_summary -- \
//!     results/fig12.trace.jsonl
//! ```
//!
//! Prints one block per grid cell: the cell's coordinates and headline
//! counters, then one row per container with its lifecycle milestones
//! and memory traffic. The rendering is a pure function of the input
//! file, so serial and parallel harness runs summarize identically.

use faasmem_trace::summarize_jsonl;
use faasmem_trace::summary::render_text;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: trace_summary <trace.jsonl>");
        std::process::exit(2);
    };
    let input = match std::fs::read_to_string(&path) {
        Ok(input) => input,
        Err(e) => {
            eprintln!("trace_summary: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match summarize_jsonl(&input) {
        Ok(summary) => print!("{}", render_text(&summary)),
        Err(e) => {
            eprintln!("trace_summary: {path}: {e}");
            std::process::exit(1);
        }
    }
}
