//! Multi-panel SVG timelines from `*.series.json` telemetry documents —
//! the rendering half of the `series_dashboard` bin.
//!
//! A series document (written by
//! [`crate::harness::GridRun::write_series`]) carries one columnar
//! [`faasmem_telemetry::TimeSeries`] per grid cell. This module groups
//! one cell's columns by their dotted prefix (`faas.*`, `mem.*`,
//! `pool.*`, `registry.*`), renders each group as one [`crate::svg::lines`]
//! panel over sim-time seconds, and stacks the panels vertically into a
//! single dashboard SVG. Columns with fewer than two finite points are
//! dropped (a gauge sampled once cannot draw a line), as are gaps the
//! sampler backfilled with `null`. When the cell carries any of the
//! latency-blame gauges (cold-start activity, invocations stalled on a
//! remote recall, breaker state, under-replication) they are also
//! collected into one trailing "blame breakdown" panel, and the
//! byte-second gauges (keep-alive idle vs active memory, redundant
//! bytes, repair backlog) into a sibling "memory anatomy" panel.

use std::collections::BTreeMap;

use crate::json::{self, JsonValue};
use crate::svg;

/// Columns collected into the extra "blame breakdown" panel: the
/// cross-prefix gauges that track where invocation latency blame is
/// accruing over time. Each maps to a blame-component family —
/// launching/initializing to cold_start, the stalled-remote gauge to
/// the recall_stall/abandoned_wait family, breaker_open to
/// failover_detour, under_replicated to forced_rebuild exposure.
const BLAME_COLUMNS: [&str; 5] = [
    "faas.launching",
    "faas.initializing",
    "faas.invocations_stalled_remote",
    "pool.breaker_open",
    "pool.under_replicated",
];

/// Columns collected into the extra "memory anatomy" panel: the
/// cross-prefix gauges that track where resident byte-seconds are
/// accruing — keep-alive idle memory (the waste FaaSMem targets),
/// actively-executing memory, and the pool-side redundancy and repair
/// overheads. The `mem.*` pair only exists on runs with
/// `PlatformConfig::memory_anatomy` on; the `pool.*` pair on fabric
/// runs — the panel renders whenever any of them are drawable.
const ANATOMY_COLUMNS: [&str; 4] = [
    "mem.keepalive_idle_bytes",
    "mem.active_bytes",
    "pool.redundant_bytes",
    "pool.repair_backlog_bytes",
];

/// One grid cell's time series, decoded from the document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SeriesCell {
    /// `trace/bench/config/policy` label.
    pub label: String,
    /// Shared time axis in sim seconds.
    pub t_secs: Vec<f64>,
    /// Named columns aligned with `t_secs`; `null` gaps decode to NaN.
    pub columns: Vec<(String, Vec<f64>)>,
}

/// A decoded `*.series.json` document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SeriesDoc {
    /// Grid name from the producing run.
    pub grid: String,
    /// Cells in grid order.
    pub cells: Vec<SeriesCell>,
}

fn txt<'a>(doc: &'a JsonValue, key: &str) -> &'a str {
    doc.get(key).and_then(JsonValue::as_str).unwrap_or("?")
}

fn nums(value: &JsonValue) -> Vec<f64> {
    value
        .as_arr()
        .map(|items| {
            items
                .iter()
                .map(|v| v.as_num().unwrap_or(f64::NAN))
                .collect()
        })
        .unwrap_or_default()
}

/// Parses a series document from its JSON text.
pub fn parse_series(input: &str) -> Result<SeriesDoc, String> {
    let doc = json::parse(input)?;
    let grid = doc
        .get("grid")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "missing \"grid\" (is this a .series.json file?)".to_string())?
        .to_string();
    let cells_json = doc
        .get("cells")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| "missing \"cells\" array".to_string())?;
    let mut cells = Vec::new();
    for (i, c) in cells_json.iter().enumerate() {
        let label = format!(
            "{}/{}/{}/{}",
            txt(c, "trace"),
            txt(c, "bench"),
            txt(c, "config"),
            txt(c, "policy")
        );
        let t_secs: Vec<f64> = nums(
            c.get("t_us")
                .ok_or_else(|| format!("cell {i}: missing \"t_us\""))?,
        )
        .iter()
        .map(|us| us / 1e6)
        .collect();
        let mut columns = Vec::new();
        if let Some(JsonValue::Obj(members)) = c.get("series") {
            for (name, values) in members {
                let values = nums(values);
                if values.len() != t_secs.len() {
                    return Err(format!(
                        "cell {i}: column {name:?} has {} values for {} ticks",
                        values.len(),
                        t_secs.len()
                    ));
                }
                columns.push((name.clone(), values));
            }
        }
        cells.push(SeriesCell {
            label,
            t_secs,
            columns,
        });
    }
    Ok(SeriesDoc { grid, cells })
}

/// Renders one cell of the document as a stacked multi-panel SVG: one
/// panel per series-name prefix group, plus trailing "blame breakdown"
/// and "memory anatomy" panels collecting the [`BLAME_COLUMNS`] and
/// [`ANATOMY_COLUMNS`] gauges when any of them are drawable. Returns
/// an error when the cell index is out of range or no column has two
/// finite points to draw.
pub fn render_dashboard(doc: &SeriesDoc, cell_index: usize) -> Result<String, String> {
    let cell = doc.cells.get(cell_index).ok_or_else(|| {
        format!(
            "cell {cell_index} out of range (document has {} cells)",
            doc.cells.len()
        )
    })?;
    // Group drawable columns by prefix; BTreeMap keeps panel order
    // stable (faas, mem, pool, registry).
    type PanelSeries<'a> = Vec<(&'a str, Vec<(f64, f64)>)>;
    let mut groups: BTreeMap<&str, PanelSeries> = BTreeMap::new();
    let mut blame: PanelSeries = Vec::new();
    let mut anatomy: PanelSeries = Vec::new();
    for (name, values) in &cell.columns {
        let points: Vec<(f64, f64)> = cell
            .t_secs
            .iter()
            .zip(values)
            .filter(|(t, v)| t.is_finite() && v.is_finite())
            .map(|(&t, &v)| (t, v))
            .collect();
        if points.len() < 2 {
            continue; // svg::lines needs two points per series
        }
        if BLAME_COLUMNS.contains(&name.as_str()) {
            blame.push((name, points.clone()));
        }
        if ANATOMY_COLUMNS.contains(&name.as_str()) {
            anatomy.push((name, points.clone()));
        }
        let prefix = name.split('.').next().unwrap_or(name.as_str());
        groups.entry(prefix).or_default().push((name, points));
    }
    if groups.is_empty() {
        return Err(format!(
            "cell {cell_index} has no series with two or more finite points"
        ));
    }
    let mut panels: Vec<String> = groups
        .iter()
        .map(|(prefix, series)| {
            svg::lines(
                &format!("{} [{}] — {prefix}.*", doc.grid, cell.label),
                "sim seconds",
                "value",
                series,
            )
        })
        .collect();
    if !blame.is_empty() {
        panels.push(svg::lines(
            &format!("{} [{}] — blame breakdown", doc.grid, cell.label),
            "sim seconds",
            "value",
            &blame,
        ));
    }
    if !anatomy.is_empty() {
        panels.push(svg::lines(
            &format!("{} [{}] — memory anatomy", doc.grid, cell.label),
            "sim seconds",
            "bytes",
            &anatomy,
        ));
    }
    Ok(svg::stack_vertical(&panels))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
        "schema_version": 1,
        "grid": "fig12_main_eval",
        "quick": true,
        "interval_us": 1000000,
        "cells": [
            {"trace": "azure", "bench": "json", "config": "default", "policy": "FaaSMem",
             "t_us": [0, 1000000, 2000000],
             "series": {"faas.warm": [0, 1, 2],
                        "mem.local_pages": [10, null, 8],
                        "pool.in_flight": [0, 0, 1],
                        "registry.cold_starts": [1, null, null]}},
            {"trace": "azure", "bench": "web", "config": "default", "policy": "FaaSMem",
             "t_us": [], "series": {}}
        ]
    }"#;

    #[test]
    fn parses_cells_columns_and_null_gaps() {
        let doc = parse_series(SAMPLE).unwrap();
        assert_eq!(doc.grid, "fig12_main_eval");
        assert_eq!(doc.cells.len(), 2);
        let cell = &doc.cells[0];
        assert_eq!(cell.label, "azure/json/default/FaaSMem");
        assert_eq!(cell.t_secs, [0.0, 1.0, 2.0]);
        let (_, local) = cell
            .columns
            .iter()
            .find(|(n, _)| n == "mem.local_pages")
            .unwrap();
        assert_eq!(local[0], 10.0);
        assert!(local[1].is_nan(), "null gap decodes to NaN");
        assert!(doc.cells[1].columns.is_empty());
    }

    #[test]
    fn parse_rejects_non_series_documents() {
        assert!(parse_series("{}").unwrap_err().contains("grid"));
        assert!(parse_series("not json").is_err());
        let ragged = r#"{"grid":"g","cells":[{"t_us":[0,1],"series":{"x":[1]}}]}"#;
        assert!(parse_series(ragged)
            .unwrap_err()
            .contains("1 values for 2 ticks"));
    }

    #[test]
    fn dashboard_groups_panels_by_prefix() {
        let doc = parse_series(SAMPLE).unwrap();
        let svg = render_dashboard(&doc, 0).unwrap();
        // faas, mem and pool each have >= 2 finite points; the registry
        // column has only one and is dropped, so three panels stack.
        for needle in ["faas.*", "mem.*", "pool.*"] {
            assert!(svg.contains(needle), "missing panel {needle}");
        }
        assert!(!svg.contains("registry.*"));
        // No BLAME_COLUMNS in the sample, so no blame panel either.
        assert!(!svg.contains("blame breakdown"));
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
    }

    #[test]
    fn blame_gauges_get_their_own_panel() {
        let doc = parse_series(
            r#"{"grid":"disc09_tail_blame","cells":[
                {"trace":"high-bursty","bench":"bert","config":"none","policy":"FaaSMem",
                 "t_us":[0,1000000,2000000],
                 "series":{"faas.invocations_stalled_remote":[0,3,1],
                           "pool.breaker_open":[0,1,0],
                           "mem.local_pages":[5,6,7]}}]}"#,
        )
        .unwrap();
        let svg = render_dashboard(&doc, 0).unwrap();
        assert!(svg.contains("blame breakdown"));
        // The gauges still appear in their prefix panels too.
        assert!(svg.contains("faas.*"));
        assert!(svg.contains("pool.*"));
        assert!(svg.contains("mem.*"));
    }

    #[test]
    fn anatomy_gauges_get_their_own_panel() {
        let doc = parse_series(
            r#"{"grid":"disc10_memory_anatomy","cells":[
                {"trace":"middle","bench":"bert","config":"mirror2","policy":"FaaSMem",
                 "t_us":[0,1000000,2000000],
                 "series":{"mem.keepalive_idle_bytes":[0,4096,8192],
                           "mem.active_bytes":[8192,4096,0],
                           "pool.redundant_bytes":[0,0,4096],
                           "pool.repair_backlog_bytes":[0,0,0],
                           "faas.warm":[0,1,1]}}]}"#,
        )
        .unwrap();
        let svg = render_dashboard(&doc, 0).unwrap();
        assert!(svg.contains("memory anatomy"));
        assert!(!svg.contains("blame breakdown"), "no blame gauges here");
        // The gauges still appear in their prefix panels too.
        assert!(svg.contains("mem.*"));
        assert!(svg.contains("pool.*"));
    }

    #[test]
    fn dashboard_rejects_undrawable_cells() {
        let doc = parse_series(SAMPLE).unwrap();
        assert!(render_dashboard(&doc, 1)
            .unwrap_err()
            .contains("finite points"));
        assert!(render_dashboard(&doc, 9)
            .unwrap_err()
            .contains("out of range"));
    }
}
