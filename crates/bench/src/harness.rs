//! The parallel experiment harness.
//!
//! Every figure/table of the evaluation is a grid: benchmarks × traces ×
//! platform configurations × policies. [`ExperimentGrid`] expresses that
//! grid declaratively; [`run_grid`] fans its cells across worker threads
//! (each cell owns a private [`PlatformSim`], so cells never share
//! state), and merges the results in grid order — the merged output is a
//! pure function of the grid, byte-identical for any `--jobs` value.
//!
//! [`GridRun::write_results`] exports a versioned JSON summary plus a
//! separate wall-clock timing file under `results/`; wall-clock never
//! enters the main JSON so it stays reproducible.
//!
//! ```text
//! cargo run --release -p faasmem-bench --bin fig12_main_eval -- --jobs 8
//! cargo run --release -p faasmem-bench --bin fig12_main_eval -- --quick
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use faasmem_baselines::{DamonPolicy, NoOffloadPolicy, TmoPolicy};
use faasmem_core::{FaasMemPolicy, FaasMemStats, StatsHandle};
use faasmem_faas::{MemoryPolicy, PlatformConfig, PlatformSim, RunReport, RunSummary, ShardSpec};
use faasmem_metrics::agg;
use faasmem_sim::{SimDuration, SimTime};
use faasmem_telemetry::{
    profile_scope, profiler, rss, SampleSpec, Sampler, SeriesMask, TimeSeries,
};
use faasmem_trace::{chrome_trace, ChromeGroup, EventKind, LayerMask, TraceEvent, Tracer};
use faasmem_workload::{
    ArrivalModel, BenchmarkSpec, FunctionId, InvocationTrace, LoadClass, TraceStats,
    TraceSynthesizer,
};

use crate::json::JsonValue;
use crate::PolicyKind;

/// Schema version stamped into every exported JSON document.
pub const SCHEMA_VERSION: u64 = 1;

/// Label of the implicit configuration when a grid declares none.
pub const DEFAULT_CONFIG: &str = "default";

/// Trace horizon used by `--quick` smoke runs in place of the grid's
/// synthesized-trace durations.
pub const QUICK_DURATION: SimTime = SimTime::from_mins(5);

// ---------------------------------------------------------------------
// Grid axes
// ---------------------------------------------------------------------

/// The benchmark axis: one label plus the functions registered on the
/// simulated node (one spec for the single-function experiments, many
/// for cluster workloads like Fig 1).
#[derive(Debug, Clone)]
pub struct BenchCase {
    /// Row label, unique within the grid.
    pub label: String,
    /// Functions registered on the node, in [`FunctionId`] order.
    pub specs: Vec<BenchmarkSpec>,
}

impl BenchCase {
    /// A single-function case labeled with the benchmark's name.
    pub fn single(spec: BenchmarkSpec) -> Self {
        BenchCase {
            label: spec.name.to_string(),
            specs: vec![spec],
        }
    }

    /// A multi-function case.
    pub fn cluster(label: &str, specs: Vec<BenchmarkSpec>) -> Self {
        BenchCase {
            label: label.to_string(),
            specs,
        }
    }
}

/// The configuration axis: a labeled [`PlatformConfig`] override.
#[derive(Debug, Clone)]
pub struct ConfigCase {
    /// Column label, unique within the grid.
    pub label: String,
    /// The platform configuration (page size, keep-alive, pool, seed...).
    pub config: PlatformConfig,
}

impl ConfigCase {
    /// A labeled configuration.
    pub fn new(label: &str, config: PlatformConfig) -> Self {
        ConfigCase {
            label: label.to_string(),
            config,
        }
    }

    /// The implicit default configuration.
    pub fn default_case() -> Self {
        ConfigCase::new(DEFAULT_CONFIG, PlatformConfig::default())
    }
}

/// Builds a fresh policy instance for one cell. Returns the boxed policy
/// plus FaaSMem's mechanism-stats handle when the policy publishes one.
/// Runs on a worker thread, so the factory must be `Send + Sync`; the
/// policy it builds stays on that thread.
pub type PolicyFactory =
    Arc<dyn Fn() -> (Box<dyn MemoryPolicy>, Option<StatsHandle>) + Send + Sync>;

/// The policy axis.
#[derive(Clone)]
pub enum PolicySpec {
    /// One of the standard systems.
    Kind(PolicyKind),
    /// A custom-built policy (ablation configs, extensions).
    Custom {
        /// Column label, unique within the grid.
        label: String,
        /// Per-cell policy constructor.
        make: PolicyFactory,
    },
}

impl PolicySpec {
    /// A custom policy from a constructor closure.
    pub fn custom<F>(label: &str, make: F) -> Self
    where
        F: Fn() -> (Box<dyn MemoryPolicy>, Option<StatsHandle>) + Send + Sync + 'static,
    {
        PolicySpec::Custom {
            label: label.to_string(),
            make: Arc::new(make),
        }
    }

    /// A custom FaaSMem variant; the stats handle is wired automatically.
    pub fn faasmem<F>(label: &str, build: F) -> Self
    where
        F: Fn() -> FaasMemPolicy + Send + Sync + 'static,
    {
        Self::custom(label, move || {
            let policy = build();
            let stats = policy.stats();
            (Box::new(policy), Some(stats))
        })
    }

    /// The column label.
    pub fn label(&self) -> &str {
        match self {
            PolicySpec::Kind(kind) => kind.name(),
            PolicySpec::Custom { label, .. } => label,
        }
    }
}

impl std::fmt::Debug for PolicySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicySpec")
            .field("label", &self.label())
            .finish()
    }
}

/// How a [`TraceSpec`] seed combines with the benchmark under test.
/// The seed-per-benchmark conventions of the original drivers are kept
/// so the ported binaries reproduce the same traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedMix {
    /// Same seed for every benchmark.
    Fixed,
    /// `seed ^ first_spec_name.len()` (Fig 12's convention).
    XorNameLen,
    /// `seed + first_spec_name.len()` (Fig 2 / Fig 8's convention).
    AddNameLen,
}

/// How the trace is produced.
#[derive(Debug, Clone)]
pub enum TraceKind {
    /// Synthesized single-function trace for [`FunctionId`]`(0)`.
    Synth {
        /// Azure load class.
        load: LoadClass,
        /// Markov-modulated bursts.
        bursty: bool,
        /// Explicit arrival model overriding the load class's default.
        arrival: Option<ArrivalModel>,
    },
    /// Synthesized multi-function cluster trace (Fig 1).
    Cluster {
        /// Number of functions; must match the bench case's spec count.
        functions: u32,
    },
    /// A pre-built trace used verbatim (hand-crafted arrival patterns).
    Explicit(InvocationTrace),
}

/// The trace axis: a labeled, seeded trace recipe.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Row label, unique within the grid.
    pub label: String,
    /// Synthesizer seed (ignored for explicit traces).
    pub seed: u64,
    /// Per-benchmark seed derivation.
    pub seed_mix: SeedMix,
    /// Trace horizon (ignored for explicit traces).
    pub duration: SimTime,
    /// The recipe.
    pub kind: TraceKind,
    /// Rows a lenient importer skipped while producing this trace
    /// (non-zero only for [`TraceSpec::explicit_lossy`] traces).
    pub skipped_rows: u64,
}

impl TraceSpec {
    /// A synthesized single-function trace; one hour, steady, not bursty.
    pub fn synth(label: &str, seed: u64, load: LoadClass) -> Self {
        TraceSpec {
            label: label.to_string(),
            seed,
            seed_mix: SeedMix::Fixed,
            duration: SimTime::from_mins(60),
            kind: TraceKind::Synth {
                load,
                bursty: false,
                arrival: None,
            },
            skipped_rows: 0,
        }
    }

    /// A synthesized cluster trace over `functions` functions.
    pub fn cluster(label: &str, seed: u64, functions: u32) -> Self {
        TraceSpec {
            label: label.to_string(),
            seed,
            seed_mix: SeedMix::Fixed,
            duration: SimTime::from_mins(60),
            kind: TraceKind::Cluster { functions },
            skipped_rows: 0,
        }
    }

    /// A pre-built trace used verbatim.
    pub fn explicit(label: &str, trace: InvocationTrace) -> Self {
        TraceSpec {
            label: label.to_string(),
            seed: 0,
            seed_mix: SeedMix::Fixed,
            duration: SimTime::ZERO,
            kind: TraceKind::Explicit(trace),
            skipped_rows: 0,
        }
    }

    /// A leniently-imported trace (see [`faasmem_workload::trace_io::from_str_lossy`]):
    /// used verbatim, with the importer's skip count carried into the
    /// run summary and the exported JSON.
    pub fn explicit_lossy(label: &str, lossy: faasmem_workload::LossyTrace) -> Self {
        TraceSpec {
            skipped_rows: lossy.skipped_lines,
            ..TraceSpec::explicit(label, lossy.trace)
        }
    }

    /// The synthesizer seed this spec uses for one bench case, after the
    /// per-benchmark mixing. Panic reports reference it so a failing cell
    /// can be reproduced stand-alone.
    pub fn seed_for(&self, bench: &BenchCase) -> u64 {
        let name_len = bench.specs.first().map_or(0, |s| s.name.len() as u64);
        match self.seed_mix {
            SeedMix::Fixed => self.seed,
            SeedMix::XorNameLen => self.seed ^ name_len,
            SeedMix::AddNameLen => self.seed + name_len,
        }
    }

    /// Enables bursty arrivals (synthesized traces only).
    pub fn bursty(mut self, bursty: bool) -> Self {
        if let TraceKind::Synth { bursty: b, .. } = &mut self.kind {
            *b = bursty;
        }
        self
    }

    /// Overrides the arrival model (synthesized traces only).
    pub fn arrival(mut self, model: ArrivalModel) -> Self {
        if let TraceKind::Synth { arrival, .. } = &mut self.kind {
            *arrival = Some(model);
        }
        self
    }

    /// Overrides the trace horizon.
    pub fn duration(mut self, duration: SimTime) -> Self {
        self.duration = duration;
        self
    }

    /// Sets the per-benchmark seed derivation.
    pub fn seed_mix(mut self, mix: SeedMix) -> Self {
        self.seed_mix = mix;
        self
    }

    /// Materializes the trace for one bench case.
    fn build(&self, bench: &BenchCase, quick: bool) -> InvocationTrace {
        let seed = self.seed_for(bench);
        let duration = if quick {
            self.duration.min(QUICK_DURATION)
        } else {
            self.duration
        };
        match &self.kind {
            TraceKind::Synth {
                load,
                bursty,
                arrival,
            } => {
                let mut synth = TraceSynthesizer::new(seed)
                    .load_class(*load)
                    .bursty(*bursty)
                    .duration(duration);
                if let Some(model) = arrival {
                    synth = synth.arrival_model(*model);
                }
                synth.synthesize_for(FunctionId(0))
            }
            TraceKind::Cluster { functions } => {
                let (trace, _classes) = TraceSynthesizer::new(seed)
                    .duration(duration)
                    .synthesize_cluster(*functions);
                trace
            }
            TraceKind::Explicit(trace) => trace.clone(),
        }
    }
}

/// A declarative experiment grid. Cells are the cartesian product
/// traces × benches × configs × policies, enumerated in that nesting
/// order; an empty `configs` axis means "the default configuration".
#[derive(Debug, Default)]
pub struct ExperimentGrid {
    /// Grid name; also the stem of the exported JSON files.
    pub name: String,
    /// The benchmark axis.
    pub benches: Vec<BenchCase>,
    /// The trace axis.
    pub traces: Vec<TraceSpec>,
    /// The configuration axis (empty ⇒ one default configuration).
    pub configs: Vec<ConfigCase>,
    /// The policy axis.
    pub policies: Vec<PolicySpec>,
}

impl ExperimentGrid {
    /// An empty grid.
    pub fn new(name: &str) -> Self {
        ExperimentGrid {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Adds one bench case.
    pub fn bench(mut self, case: BenchCase) -> Self {
        self.benches.push(case);
        self
    }

    /// Adds bench cases.
    pub fn benches<I: IntoIterator<Item = BenchCase>>(mut self, cases: I) -> Self {
        self.benches.extend(cases);
        self
    }

    /// Adds one trace.
    pub fn trace(mut self, spec: TraceSpec) -> Self {
        self.traces.push(spec);
        self
    }

    /// Adds traces.
    pub fn traces<I: IntoIterator<Item = TraceSpec>>(mut self, specs: I) -> Self {
        self.traces.extend(specs);
        self
    }

    /// Adds one configuration.
    pub fn config(mut self, case: ConfigCase) -> Self {
        self.configs.push(case);
        self
    }

    /// Adds configurations.
    pub fn configs<I: IntoIterator<Item = ConfigCase>>(mut self, cases: I) -> Self {
        self.configs.extend(cases);
        self
    }

    /// Adds one policy.
    pub fn policy(mut self, spec: PolicySpec) -> Self {
        self.policies.push(spec);
        self
    }

    /// Adds policies.
    pub fn policies<I: IntoIterator<Item = PolicySpec>>(mut self, specs: I) -> Self {
        self.policies.extend(specs);
        self
    }

    /// Adds standard policies by kind.
    pub fn policy_kinds<I: IntoIterator<Item = PolicyKind>>(self, kinds: I) -> Self {
        self.policies(kinds.into_iter().map(PolicySpec::Kind))
    }

    /// Number of cells the grid expands to.
    pub fn len(&self) -> usize {
        self.traces.len() * self.benches.len() * self.configs.len().max(1) * self.policies.len()
    }

    /// `true` when the grid expands to no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------

/// Runtime options shared by every harness binary.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Worker threads fanning out grid cells.
    pub jobs: usize,
    /// Smoke mode: truncate synthesized traces to [`QUICK_DURATION`].
    pub quick: bool,
    /// Directory for the exported JSON files.
    pub out_dir: PathBuf,
    /// When set, record per-cell event traces and write them as JSONL to
    /// this path (plus a Chrome/Perfetto view next to it). `None` keeps
    /// the zero-cost disabled tracer on every hot path.
    pub trace: Option<PathBuf>,
    /// Layers recorded when tracing is on (default: all).
    pub trace_filter: LayerMask,
    /// When set, sample per-cell telemetry series and write the merged
    /// document to this path. `None` keeps the zero-cost disabled
    /// sampler on every hot path.
    pub series: Option<PathBuf>,
    /// Sim-time sampling period when `--series` is on (default: 1 s).
    pub series_interval: SimDuration,
    /// Series groups recorded when sampling is on (default: all).
    pub series_select: SeriesMask,
    /// Profile the harness itself and export a `BENCH_*.json` perf
    /// baseline next to the results.
    pub profile: bool,
    /// When set, run every cell through the shard-parallel platform
    /// driver with this many shards. `None` keeps the serial driver.
    /// Output is byte-identical either way (CI compares them).
    pub shards: Option<u32>,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        let jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
        HarnessOptions {
            jobs,
            quick: false,
            out_dir: PathBuf::from("results"),
            trace: None,
            trace_filter: LayerMask::ALL,
            series: None,
            series_interval: SimDuration::from_secs(1),
            series_select: SeriesMask::ALL,
            profile: false,
            shards: None,
        }
    }
}

impl HarnessOptions {
    /// Parses `--jobs N` / `-j N` / `--jobs=N`, `--quick`,
    /// `--out DIR` / `--out=DIR`, `--trace PATH` / `--trace=PATH`,
    /// `--trace-filter LAYERS` / `--trace-filter=LAYERS` (comma list of
    /// `harness,container,memory,pool`), `--series PATH` /
    /// `--series=PATH`, `--series-interval SECS`, `--series-select
    /// GROUPS` (comma list of `faas,mem,pool,registry`), `--profile`
    /// and `--shards N` / `--shards=N` (shard-parallel platform driver;
    /// 0 or omitted = serial) from the process arguments. Unknown
    /// arguments are ignored so binaries can add their own flags.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Testable argument parser behind [`HarnessOptions::from_env`].
    pub fn parse<I, S>(args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut opts = HarnessOptions::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let arg = arg.as_ref();
            if arg == "--quick" {
                opts.quick = true;
            } else if arg == "--jobs" || arg == "-j" {
                if let Some(n) = args.next().and_then(|v| v.as_ref().parse().ok()) {
                    opts.jobs = n;
                }
            } else if let Some(n) = arg.strip_prefix("--jobs=") {
                if let Ok(n) = n.parse() {
                    opts.jobs = n;
                }
            } else if arg == "--out" {
                if let Some(dir) = args.next() {
                    opts.out_dir = PathBuf::from(dir.as_ref());
                }
            } else if let Some(dir) = arg.strip_prefix("--out=") {
                opts.out_dir = PathBuf::from(dir);
            } else if arg == "--trace" {
                if let Some(path) = args.next() {
                    opts.trace = Some(PathBuf::from(path.as_ref()));
                }
            } else if let Some(path) = arg.strip_prefix("--trace=") {
                opts.trace = Some(PathBuf::from(path));
            } else if arg == "--trace-filter" {
                if let Some(list) = args.next() {
                    Self::apply_trace_filter(&mut opts, list.as_ref());
                }
            } else if let Some(list) = arg.strip_prefix("--trace-filter=") {
                Self::apply_trace_filter(&mut opts, list);
            } else if arg == "--series" {
                if let Some(path) = args.next() {
                    opts.series = Some(PathBuf::from(path.as_ref()));
                }
            } else if let Some(path) = arg.strip_prefix("--series=") {
                opts.series = Some(PathBuf::from(path));
            } else if arg == "--series-interval" {
                if let Some(secs) = args.next() {
                    Self::apply_series_interval(&mut opts, secs.as_ref());
                }
            } else if let Some(secs) = arg.strip_prefix("--series-interval=") {
                Self::apply_series_interval(&mut opts, secs);
            } else if arg == "--series-select" {
                if let Some(list) = args.next() {
                    Self::apply_series_select(&mut opts, list.as_ref());
                }
            } else if let Some(list) = arg.strip_prefix("--series-select=") {
                Self::apply_series_select(&mut opts, list);
            } else if arg == "--profile" {
                opts.profile = true;
            } else if arg == "--shards" {
                if let Some(n) = args.next().and_then(|v| v.as_ref().parse().ok()) {
                    opts.shards = (n > 0).then_some(n);
                }
            } else if let Some(n) = arg.strip_prefix("--shards=") {
                if let Ok(n) = n.parse() {
                    opts.shards = (n > 0).then_some(n);
                }
            }
        }
        opts.jobs = opts.jobs.max(1);
        opts
    }

    /// The per-cell sampling spec, when `--series` asked for one.
    pub fn sample_spec(&self) -> Option<SampleSpec> {
        self.series.as_ref().map(|_| SampleSpec {
            interval: self.series_interval,
            select: self.series_select,
        })
    }

    fn apply_trace_filter(opts: &mut HarnessOptions, list: &str) {
        match LayerMask::parse_list(list) {
            Ok(mask) => opts.trace_filter = mask,
            Err(e) => {
                eprintln!("[harness] ignoring --trace-filter: {e}");
            }
        }
    }

    fn apply_series_interval(opts: &mut HarnessOptions, secs: &str) {
        match secs.parse::<f64>() {
            Ok(s) if s > 0.0 && s.is_finite() => {
                opts.series_interval = SimDuration::from_secs_f64(s);
            }
            _ => eprintln!("[harness] ignoring --series-interval: not a positive number: {secs}"),
        }
    }

    fn apply_series_select(opts: &mut HarnessOptions, list: &str) {
        match SeriesMask::parse_list(list) {
            Ok(mask) if mask != SeriesMask::NONE => opts.series_select = mask,
            Ok(_) => eprintln!("[harness] ignoring --series-select: empty group list"),
            Err(e) => eprintln!("[harness] ignoring --series-select: {e}"),
        }
    }
}

// ---------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------

/// Coordinates of one cell within its grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellLabels {
    /// Trace-axis label.
    pub trace: String,
    /// Bench-axis label.
    pub bench: String,
    /// Config-axis label.
    pub config: String,
    /// Policy-axis label.
    pub policy: String,
}

/// Everything one successful cell produced.
#[derive(Debug)]
pub struct CellOutcome {
    /// Invocations in the cell's trace.
    pub trace_len: usize,
    /// Rows a lenient importer skipped while producing the cell's trace.
    pub trace_skipped_rows: u64,
    /// Arrival statistics of the cell's trace.
    pub trace_stats: TraceStats,
    /// The flat metric digest (serialized to JSON).
    pub summary: RunSummary,
    /// FaaSMem mechanism stats, for FaaSMem-family policies.
    pub faasmem: Option<FaasMemStats>,
    /// The full platform report, for detailed per-binary rendering.
    pub report: RunReport,
    /// The cell's drained event trace, in `(sim_time, seq)` order.
    /// Empty unless the harness ran with `--trace`.
    pub trace_events: Vec<TraceEvent>,
    /// The cell's sampled telemetry series, rows on sim-time interval
    /// boundaries. Empty unless the harness ran with `--series`.
    pub series: TimeSeries,
}

/// One cell's result: its coordinates, outcome (or captured panic) and
/// wall-clock cost.
#[derive(Debug)]
pub struct CellResult {
    /// Coordinates within the grid.
    pub labels: CellLabels,
    /// The mixed trace seed the cell ran with (see [`TraceSpec::seed_for`]).
    pub seed: u64,
    /// The fault-injection seed, when the cell's configuration enables
    /// faults.
    pub fault_seed: Option<u64>,
    /// The outcome, or the panic message if the cell died.
    pub outcome: Result<CellOutcome, String>,
    /// Wall-clock seconds this cell took on its worker.
    pub wall_secs: f64,
    /// Process peak RSS in KiB observed right after the cell finished
    /// (`None` off Linux). The kernel value is a process-wide
    /// high-water mark, so this reads as "peak so far", not a
    /// per-cell footprint.
    pub peak_rss_kb: Option<u64>,
}

/// A completed grid run: all cells in deterministic grid order.
#[derive(Debug)]
pub struct GridRun {
    /// Grid name.
    pub name: String,
    /// Worker threads used.
    pub jobs: usize,
    /// Shard count when the shard-parallel platform driver ran the
    /// cells; `None` under the serial driver.
    pub shards: Option<u32>,
    /// Whether `--quick` truncated the traces.
    pub quick: bool,
    /// Cell results in grid order (traces → benches → configs → policies).
    pub cells: Vec<CellResult>,
    /// Wall-clock seconds for the whole fan-out.
    pub wall_total_secs: f64,
}

impl GridRun {
    /// Looks up a cell by its four labels; panics on a label typo.
    pub fn cell(&self, trace: &str, bench: &str, config: &str, policy: &str) -> &CellResult {
        self.cells
            .iter()
            .find(|c| {
                c.labels.trace == trace
                    && c.labels.bench == bench
                    && c.labels.config == config
                    && c.labels.policy == policy
            })
            .unwrap_or_else(|| {
                panic!("no cell [trace={trace}, bench={bench}, config={config}, policy={policy}] in grid {}", self.name)
            })
    }

    /// Looks up a successful cell's outcome; panics if the cell is
    /// missing or panicked.
    pub fn outcome(&self, trace: &str, bench: &str, config: &str, policy: &str) -> &CellOutcome {
        let cell = self.cell(trace, bench, config, policy);
        match &cell.outcome {
            Ok(outcome) => outcome,
            Err(msg) => panic!(
                "cell [trace={trace}, bench={bench}, config={config}, policy={policy}] panicked: {msg}"
            ),
        }
    }

    /// Number of cells that panicked.
    pub fn failures(&self) -> usize {
        self.cells.iter().filter(|c| c.outcome.is_err()).count()
    }

    /// Total simulated seconds across successful cells.
    pub fn sim_secs_total(&self) -> f64 {
        self.cells
            .iter()
            .filter_map(|c| c.outcome.as_ref().ok())
            .map(|o| o.summary.sim_secs)
            .sum()
    }

    /// The deterministic result document: a pure function of the grid
    /// definition, byte-identical for any thread count. Wall-clock data
    /// deliberately lives in [`GridRun::timing_json`] instead.
    pub fn to_json(&self) -> JsonValue {
        let mut doc = JsonValue::obj();
        doc.push("schema_version", JsonValue::Num(SCHEMA_VERSION as f64));
        doc.push("grid", JsonValue::Str(self.name.clone()));
        doc.push("quick", JsonValue::Bool(self.quick));
        let cells: Vec<JsonValue> = self.cells.iter().map(cell_json).collect();
        doc.push("cells", JsonValue::Arr(cells));
        doc
    }

    /// The wall-clock side channel: jobs, per-cell and aggregate timing.
    pub fn timing_json(&self) -> JsonValue {
        let walls: Vec<f64> = self.cells.iter().map(|c| c.wall_secs).collect();
        let mut doc = JsonValue::obj();
        doc.push("schema_version", JsonValue::Num(SCHEMA_VERSION as f64));
        doc.push("grid", JsonValue::Str(self.name.clone()));
        doc.push("jobs", JsonValue::Num(self.jobs as f64));
        // Like jobs, shards must never influence the result document —
        // it is recorded here, in the timing side channel only.
        match self.shards {
            Some(n) => doc.push("shards", JsonValue::Num(f64::from(n))),
            None => doc.push("shards", JsonValue::Null),
        };
        doc.push("wall_total_secs", JsonValue::Num(self.wall_total_secs));
        doc.push("cell_wall_sum_secs", JsonValue::Num(agg::total(&walls)));
        if let Some((min, max)) = agg::min_max(&walls) {
            doc.push("cell_wall_min_secs", JsonValue::Num(min));
            doc.push("cell_wall_max_secs", JsonValue::Num(max));
        }
        if let Some(mean) = agg::mean(&walls) {
            doc.push("cell_wall_mean_secs", JsonValue::Num(mean));
        }
        doc.push("sim_secs_total", JsonValue::Num(self.sim_secs_total()));
        if self.wall_total_secs > 0.0 {
            doc.push(
                "sim_secs_per_wall_sec",
                JsonValue::Num(self.sim_secs_total() / self.wall_total_secs),
            );
        }
        // Event throughput: normalizes wall-clock trajectories by how
        // much event work each cell actually did, so BENCH comparisons
        // survive grid reshapes.
        let events_total: u64 = self
            .cells
            .iter()
            .filter_map(|c| c.outcome.as_ref().ok())
            .map(|o| o.report.events_processed)
            .sum();
        doc.push("events_processed", JsonValue::Num(events_total as f64));
        if self.wall_total_secs > 0.0 {
            doc.push(
                "events_per_sec",
                JsonValue::Num(events_total as f64 / self.wall_total_secs),
            );
        }
        match self.cells.iter().filter_map(|c| c.peak_rss_kb).max() {
            Some(peak) => doc.push("peak_rss_kb", JsonValue::Num(peak as f64)),
            None => doc.push("peak_rss_kb", JsonValue::Null),
        };
        let cells: Vec<JsonValue> = self
            .cells
            .iter()
            .map(|c| {
                let mut cell = JsonValue::obj();
                push_labels(&mut cell, &c.labels);
                cell.push("wall_secs", JsonValue::Num(c.wall_secs));
                // Process-wide high-water mark at cell completion;
                // explicit null where the platform can't report it.
                match c.peak_rss_kb {
                    Some(kb) => cell.push("peak_rss_kb", JsonValue::Num(kb as f64)),
                    None => cell.push("peak_rss_kb", JsonValue::Null),
                };
                // Per-cell event throughput (null for panicked cells:
                // their counts died with the worker).
                match c.outcome.as_ref().ok() {
                    Some(o) => {
                        let events = o.report.events_processed;
                        cell.push("events_processed", JsonValue::Num(events as f64));
                        if c.wall_secs > 0.0 {
                            cell.push(
                                "events_per_sec",
                                JsonValue::Num(events as f64 / c.wall_secs),
                            );
                        } else {
                            cell.push("events_per_sec", JsonValue::Null);
                        }
                    }
                    None => {
                        cell.push("events_processed", JsonValue::Null);
                        cell.push("events_per_sec", JsonValue::Null);
                    }
                }
                cell
            })
            .collect();
        doc.push("cells", JsonValue::Arr(cells));
        doc
    }

    /// The merged telemetry series document: cells in grid order, each
    /// carrying its columnar `TimeSeries`. Sim-time rows only — no
    /// wall-clock — so like the result JSON it is a pure function of
    /// the grid, byte-identical for any `--jobs` value. Panicked cells
    /// contribute an empty series.
    pub fn series_json(&self, interval: SimDuration) -> JsonValue {
        let mut doc = JsonValue::obj();
        doc.push("schema_version", JsonValue::Num(SCHEMA_VERSION as f64));
        doc.push("grid", JsonValue::Str(self.name.clone()));
        doc.push("quick", JsonValue::Bool(self.quick));
        doc.push("interval_us", JsonValue::Num(interval.as_micros() as f64));
        let cells: Vec<JsonValue> = self
            .cells
            .iter()
            .map(|c| {
                let mut cell = JsonValue::obj();
                push_labels(&mut cell, &c.labels);
                match &c.outcome {
                    Ok(o) => {
                        let ts = o.series.to_json();
                        cell.push("t_us", ts.get("t_us").cloned().unwrap_or(JsonValue::Null));
                        cell.push(
                            "series",
                            ts.get("series").cloned().unwrap_or(JsonValue::Null),
                        );
                    }
                    Err(_) => {
                        cell.push("t_us", JsonValue::Arr(Vec::new()));
                        cell.push("series", JsonValue::obj());
                    }
                }
                cell
            })
            .collect();
        doc.push("cells", JsonValue::Arr(cells));
        doc
    }

    /// Writes the merged series document (compact JSON) to `path`.
    pub fn write_series(&self, path: &Path, interval: SimDuration) -> std::io::Result<()> {
        profile_scope!("series_export");
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut out = self.series_json(interval).to_compact();
        out.push('\n');
        std::fs::write(path, out)
    }

    /// The merged event trace as JSONL: cells in grid order, each line
    /// stamped with its cell index. A pure function of the grid — byte
    /// identical for any `--jobs` value. Panicked cells contribute
    /// nothing (their events died with the worker's unwound stack).
    pub fn trace_jsonl(&self) -> String {
        let mut out = String::new();
        for (i, cell) in self.cells.iter().enumerate() {
            if let Ok(o) = &cell.outcome {
                for event in &o.trace_events {
                    out.push_str(&event.jsonl_line(Some(i as u64)));
                    out.push('\n');
                }
            }
        }
        out
    }

    /// The merged trace as a Chrome trace-event document (load in
    /// `chrome://tracing` or <https://ui.perfetto.dev>): one process per
    /// cell, one thread per container.
    pub fn chrome_json(&self) -> String {
        let groups: Vec<ChromeGroup> = self
            .cells
            .iter()
            .enumerate()
            .filter_map(|(i, cell)| {
                cell.outcome.as_ref().ok().map(|o| ChromeGroup {
                    pid: i as u64,
                    name: format!(
                        "{}/{}/{}/{}",
                        cell.labels.trace,
                        cell.labels.bench,
                        cell.labels.config,
                        cell.labels.policy
                    ),
                    events: o.trace_events.clone(),
                })
            })
            .collect();
        chrome_trace(&groups).to_pretty()
    }

    /// Writes the JSONL trace to `path` and the Chrome view next to it
    /// (`path` with its extension replaced by `chrome.json`).
    pub fn write_trace(&self, path: &Path) -> std::io::Result<()> {
        profile_scope!("trace_flush");
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.trace_jsonl())?;
        std::fs::write(path.with_extension("chrome.json"), self.chrome_json())?;
        Ok(())
    }

    /// Writes `<name>.json` (deterministic) and `<name>.timing.json`
    /// (wall-clock) under `dir`, returning the main file's path.
    pub fn write_results(&self, dir: &Path) -> std::io::Result<PathBuf> {
        profile_scope!("json_export");
        std::fs::create_dir_all(dir)?;
        let main = dir.join(format!("{}.json", self.name));
        std::fs::write(&main, self.to_json().to_pretty())?;
        let timing = dir.join(format!("{}.timing.json", self.name));
        std::fs::write(&timing, self.timing_json().to_pretty())?;
        Ok(main)
    }

    /// Prints the fan-out's throughput to stderr (stderr so the tables on
    /// stdout stay byte-comparable across runs).
    pub fn print_timing(&self) {
        let sum: f64 = self.cells.iter().map(|c| c.wall_secs).sum();
        let speedup = if self.wall_total_secs > 0.0 {
            sum / self.wall_total_secs
        } else {
            1.0
        };
        eprintln!(
            "[harness] grid {}: {} cells, jobs={}, wall {:.2}s, cell-wall sum {:.2}s ({speedup:.2}x), {:.0} sim-secs ({:.0}x real time)",
            self.name,
            self.cells.len(),
            self.jobs,
            self.wall_total_secs,
            sum,
            self.sim_secs_total(),
            if self.wall_total_secs > 0.0 {
                self.sim_secs_total() / self.wall_total_secs
            } else {
                0.0
            },
        );
        if self.failures() > 0 {
            eprintln!(
                "[harness] grid {}: {} cell(s) PANICKED",
                self.name,
                self.failures()
            );
        }
        let skipped: u64 = self
            .cells
            .iter()
            .filter_map(|c| c.outcome.as_ref().ok())
            .map(|o| o.trace_skipped_rows)
            .sum();
        if skipped > 0 {
            eprintln!(
                "[harness] grid {}: {skipped} malformed trace row(s) were skipped during import",
                self.name
            );
        }
    }

    /// The perf-baseline document diffed by `bench_compare`: grid id,
    /// git revision, total/per-cell wall time, peak RSS and the
    /// profiler's per-phase breakdown. Wall-clock data throughout —
    /// this is a timing side channel like `timing_json`, never part of
    /// the deterministic results.
    pub fn bench_json(&self, phases: &[(&'static str, profiler::PhaseStat)]) -> JsonValue {
        let mut walls: Vec<f64> = self.cells.iter().map(|c| c.wall_secs).collect();
        walls.sort_by(|a, b| a.partial_cmp(b).expect("finite wall times"));
        let mut doc = JsonValue::obj();
        doc.push("schema_version", JsonValue::Num(SCHEMA_VERSION as f64));
        doc.push("bench", JsonValue::Str(bench_id(&self.name, self.quick)));
        doc.push("grid", JsonValue::Str(self.name.clone()));
        doc.push("git_rev", JsonValue::Str(git_rev()));
        doc.push("quick", JsonValue::Bool(self.quick));
        doc.push("jobs", JsonValue::Num(self.jobs as f64));
        doc.push("cells", JsonValue::Num(self.cells.len() as f64));
        doc.push("total_wall_secs", JsonValue::Num(self.wall_total_secs));
        if let Some(p50) = percentile(&walls, 0.50) {
            doc.push("cell_wall_p50_secs", JsonValue::Num(p50));
        }
        if let Some(p95) = percentile(&walls, 0.95) {
            doc.push("cell_wall_p95_secs", JsonValue::Num(p95));
        }
        if let Some(&max) = walls.last() {
            doc.push("cell_wall_max_secs", JsonValue::Num(max));
        }
        match rss::peak_rss_kb() {
            Some(kb) => doc.push("peak_rss_kb", JsonValue::Num(kb as f64)),
            None => doc.push("peak_rss_kb", JsonValue::Null),
        };
        let phase_docs: Vec<JsonValue> = phases
            .iter()
            .map(|(name, stat)| {
                let mut p = JsonValue::obj();
                p.push("name", JsonValue::Str((*name).to_string()));
                p.push("calls", JsonValue::Num(stat.calls as f64));
                p.push("total_secs", JsonValue::Num(stat.total_secs));
                p.push("self_secs", JsonValue::Num(stat.self_secs));
                p
            })
            .collect();
        doc.push("phases", JsonValue::Arr(phase_docs));
        doc
    }

    /// Writes `BENCH_<id>.json` under `dir` and returns its path.
    pub fn write_bench(
        &self,
        dir: &Path,
        phases: &[(&'static str, profiler::PhaseStat)],
    ) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("BENCH_{}.json", bench_id(&self.name, self.quick)));
        std::fs::write(&path, self.bench_json(phases).to_pretty())?;
        Ok(path)
    }
}

/// The BENCH file id for a grid: the figure prefix of the grid name
/// (`fig12_main_eval` → `fig12`), suffixed `_quick` for smoke runs so
/// quick and full baselines never collide.
fn bench_id(grid_name: &str, quick: bool) -> String {
    let stem = grid_name.split('_').next().unwrap_or(grid_name);
    let stem = if stem.is_empty() { grid_name } else { stem };
    if quick {
        format!("{stem}_quick")
    } else {
        stem.to_string()
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// The checked-out short revision, for provenance in BENCH files.
/// Best-effort: "unknown" outside a git checkout.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|rev| rev.trim().to_string())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn push_labels(cell: &mut JsonValue, labels: &CellLabels) {
    cell.push("trace", JsonValue::Str(labels.trace.clone()));
    cell.push("bench", JsonValue::Str(labels.bench.clone()));
    cell.push("config", JsonValue::Str(labels.config.clone()));
    cell.push("policy", JsonValue::Str(labels.policy.clone()));
}

fn cell_json(cell: &CellResult) -> JsonValue {
    let mut doc = JsonValue::obj();
    push_labels(&mut doc, &cell.labels);
    match &cell.outcome {
        Err(msg) => {
            doc.push("status", JsonValue::Str("panicked".into()));
            doc.push("error", JsonValue::Str(msg.clone()));
            doc.push("seed", JsonValue::Num(cell.seed as f64));
            if let Some(fault_seed) = cell.fault_seed {
                doc.push("fault_seed", JsonValue::Num(fault_seed as f64));
            }
        }
        Ok(outcome) => {
            doc.push("status", JsonValue::Str("ok".into()));
            doc.push(
                "trace_invocations",
                JsonValue::Num(outcome.trace_len as f64),
            );
            if outcome.trace_skipped_rows > 0 {
                doc.push(
                    "trace_skipped_rows",
                    JsonValue::Num(outcome.trace_skipped_rows as f64),
                );
            }
            doc.push("metrics", summary_json(&outcome.summary));
            // Per-function waste ledgers ride next to the metrics block;
            // absent unless the anatomy layer ran and charged something,
            // so pre-anatomy documents keep their exact shape.
            if !outcome.report.function_waste.is_empty() {
                use faasmem_faas::{byte_us_to_byte_secs, WasteComponent};
                let rows: Vec<JsonValue> = outcome
                    .report
                    .function_waste
                    .iter()
                    .map(|fw| {
                        let mut entry = JsonValue::obj();
                        entry.push("function", JsonValue::Num(f64::from(fw.function.0)));
                        entry.push("name", JsonValue::Str(fw.name.into()));
                        let mut comps = JsonValue::obj();
                        for c in WasteComponent::ALL {
                            comps.push(
                                c.name(),
                                JsonValue::Num(byte_us_to_byte_secs(fw.ledger.get(c))),
                            );
                        }
                        entry.push("components", comps);
                        entry.push(
                            "total_byte_secs",
                            JsonValue::Num(byte_us_to_byte_secs(fw.ledger.total())),
                        );
                        entry
                    })
                    .collect();
                doc.push("function_waste", JsonValue::Arr(rows));
            }
            doc.push("registry", registry_json(&outcome.report.registry));
            match &outcome.faasmem {
                Some(stats) => doc.push("faasmem", faasmem_json(stats)),
                None => doc.push("faasmem", JsonValue::Null),
            };
        }
    }
    doc
}

/// The cell's counter/gauge snapshot. Registry maps iterate in key
/// order, so the document is deterministic.
fn registry_json(reg: &faasmem_metrics::MetricsRegistry) -> JsonValue {
    let mut counters = JsonValue::obj();
    for (name, v) in reg.counters() {
        counters.push(name, JsonValue::Num(v as f64));
    }
    let mut gauges = JsonValue::obj();
    for (name, v) in reg.gauges() {
        gauges.push(name, JsonValue::Num(v));
    }
    let mut doc = JsonValue::obj();
    doc.push("counters", counters);
    doc.push("gauges", gauges);
    doc
}

fn summary_json(s: &RunSummary) -> JsonValue {
    let mut doc = JsonValue::obj();
    doc.push(
        "requests_completed",
        JsonValue::Num(s.requests_completed as f64),
    );
    doc.push("cold_starts", JsonValue::Num(s.cold_starts as f64));
    doc.push("cold_start_ratio", JsonValue::Num(s.cold_start_ratio));
    doc.push(
        "avg_latency_secs",
        JsonValue::Num(s.latency.avg.as_secs_f64()),
    );
    doc.push(
        "p50_latency_secs",
        JsonValue::Num(s.latency.p50.as_secs_f64()),
    );
    doc.push(
        "p95_latency_secs",
        JsonValue::Num(s.latency.p95.as_secs_f64()),
    );
    doc.push(
        "p99_latency_secs",
        JsonValue::Num(s.latency.p99.as_secs_f64()),
    );
    doc.push(
        "max_latency_secs",
        JsonValue::Num(s.max_latency.as_secs_f64()),
    );
    doc.push("avg_local_mib", JsonValue::Num(s.avg_local_mib));
    doc.push("avg_remote_mib", JsonValue::Num(s.avg_remote_mib));
    doc.push("avg_live_containers", JsonValue::Num(s.avg_live_containers));
    doc.push(
        "memory_inactive_fraction",
        JsonValue::Num(s.memory_inactive_fraction),
    );
    doc.push(
        "pool_bytes_out",
        JsonValue::Num(s.pool_stats.bytes_out as f64),
    );
    doc.push(
        "pool_bytes_in",
        JsonValue::Num(s.pool_stats.bytes_in as f64),
    );
    doc.push("pool_out_ops", JsonValue::Num(s.pool_stats.out_ops as f64));
    doc.push("pool_in_ops", JsonValue::Num(s.pool_stats.in_ops as f64));
    doc.push(
        "mean_offload_bandwidth_mbps",
        JsonValue::Num(s.mean_offload_bandwidth_mbps),
    );
    doc.push("containers", JsonValue::Num(s.containers as f64));
    doc.push("sim_secs", JsonValue::Num(s.sim_secs));
    // Only fault-injected runs carry the block, so fault-free documents
    // stay byte-identical to those written before faults existed.
    if let Some(f) = &s.faults {
        doc.push("faults", faults_json(f));
    }
    // Same contract for the fabric: degenerate (single-node,
    // no-redundancy) runs carry no block and stay byte-identical to
    // documents written before the fabric existed.
    if let Some(d) = &s.durability {
        doc.push("durability", durability_json(d));
    }
    // And for the blame layer: only runs with `PlatformConfig::blame`
    // carry the block, so existing artifacts never change shape.
    if let Some(b) = &s.blame {
        doc.push("blame", blame_json(b));
    }
    // And for the memory anatomy: only runs with
    // `PlatformConfig::memory_anatomy` carry the block.
    if let Some(a) = &s.memory_anatomy {
        doc.push("memory_anatomy", anatomy_json(a));
    }
    doc
}

/// The latency-anatomy block: per-component distributions plus tail
/// attribution. All durations are integer microseconds straight from the
/// simulator, so the block is exact and byte-stable across `--jobs` and
/// `--shards`.
fn blame_json(b: &faasmem_faas::BlameReport) -> JsonValue {
    let mut doc = JsonValue::obj();
    doc.push("invocations", JsonValue::Num(b.invocations as f64));
    doc.push(
        "tail_invocations",
        JsonValue::Num(b.tail_invocations as f64),
    );
    doc.push(
        "tail_cutoff_us",
        JsonValue::Num(b.tail_cutoff.as_micros() as f64),
    );
    doc.push(
        "tail_mean_latency_us",
        JsonValue::Num(b.tail_mean_latency.as_micros() as f64),
    );
    doc.push(
        "conservation_violations",
        JsonValue::Num(b.conservation_violations as f64),
    );
    let mut components = JsonValue::obj();
    for component in faasmem_faas::BlameComponent::ALL {
        let c = b.component(component);
        let mut entry = JsonValue::obj();
        entry.push("total_us", JsonValue::Num(c.total.as_micros() as f64));
        entry.push("avg_us", JsonValue::Num(c.dist.avg.as_micros() as f64));
        entry.push("p50_us", JsonValue::Num(c.dist.p50.as_micros() as f64));
        entry.push("p95_us", JsonValue::Num(c.dist.p95.as_micros() as f64));
        entry.push("p99_us", JsonValue::Num(c.dist.p99.as_micros() as f64));
        entry.push(
            "tail_mean_us",
            JsonValue::Num(c.tail_mean.as_micros() as f64),
        );
        entry.push("tail_share", JsonValue::Num(b.tail_share(component)));
        components.push(component.name(), entry);
    }
    doc.push("components", components);
    doc
}

/// The memory-anatomy block: byte-second occupancy per component plus
/// the page-lifecycle flow ledger. Internals are exact u128 byte-µs;
/// the one f64 division at this boundary is a pure function of the
/// integers, so the block stays byte-stable across `--jobs` and
/// `--shards`.
fn anatomy_json(a: &faasmem_faas::MemoryAnatomyReport) -> JsonValue {
    use faasmem_faas::{byte_us_to_byte_secs, WasteComponent};
    let w = &a.waste;
    let mut doc = JsonValue::obj();
    doc.push("steps", JsonValue::Num(w.steps as f64));
    doc.push(
        "conservation_violations",
        JsonValue::Num(w.conservation_violations as f64),
    );
    doc.push(
        "compute_byte_secs",
        JsonValue::Num(byte_us_to_byte_secs(w.compute_byte_us)),
    );
    doc.push(
        "pool_byte_secs",
        JsonValue::Num(byte_us_to_byte_secs(w.pool_byte_us)),
    );
    let mut components = JsonValue::obj();
    for component in WasteComponent::ALL {
        components.push(
            component.name(),
            JsonValue::Num(byte_us_to_byte_secs(w.component(component))),
        );
    }
    doc.push("components", components);
    doc.push("flow", flow_json(&a.flow));
    doc
}

/// The lifecycle flow ledger: integer page counts per transition edge
/// and the per-state conservation rows.
fn flow_json(m: &faasmem_faas::FlowMatrix) -> JsonValue {
    let mut doc = JsonValue::obj();
    doc.push("tables", JsonValue::Num(m.tables as f64));
    let f = &m.flows;
    for (name, v) in [
        ("allocated", f.allocated),
        ("reused", f.reused),
        ("offloaded", f.offloaded),
        ("recalled_demand", f.recalled_demand),
        ("recalled_prefetch", f.recalled_prefetch),
        ("freed_local", f.freed_local),
        ("freed_remote", f.freed_remote),
    ] {
        doc.push(name, JsonValue::Num(v as f64));
    }
    let mut rows = JsonValue::obj();
    for row in m.rows() {
        let mut entry = JsonValue::obj();
        entry.push("entered", JsonValue::Num(row.entered as f64));
        entry.push("left", JsonValue::Num(row.left as f64));
        entry.push("resident", JsonValue::Num(row.resident as f64));
        rows.push(row.state, entry);
    }
    doc.push("rows", rows);
    doc.push("row_violations", JsonValue::Num(m.row_violations() as f64));
    doc
}

fn durability_json(d: &faasmem_faas::DurabilityReport) -> JsonValue {
    let t = &d.tracker;
    let mut doc = JsonValue::obj();
    doc.push("pool_nodes", JsonValue::Num(f64::from(d.pool_nodes)));
    doc.push("nodes_up", JsonValue::Num(f64::from(d.nodes_up)));
    doc.push("nodes_lost", JsonValue::Num(t.nodes_lost as f64));
    doc.push("segments_lost", JsonValue::Num(t.segments_lost as f64));
    doc.push("bytes_lost", JsonValue::Num(t.bytes_lost as f64));
    doc.push(
        "failover_recalls",
        JsonValue::Num(t.failover_recalls as f64),
    );
    doc.push("bytes_recovered", JsonValue::Num(t.bytes_recovered as f64));
    doc.push(
        "avoided_cold_rebuilds",
        JsonValue::Num(t.avoided_cold_rebuilds as f64),
    );
    doc.push(
        "replica_bytes_out",
        JsonValue::Num(t.replica_bytes_out as f64),
    );
    doc.push("repair_bytes", JsonValue::Num(t.repair_bytes as f64));
    doc.push(
        "repairs_completed",
        JsonValue::Num(t.repairs_completed as f64),
    );
    doc.push(
        "repairs_abandoned",
        JsonValue::Num(t.repairs_abandoned as f64),
    );
    doc.push(
        "mean_mttr_secs",
        JsonValue::Num(t.mean_mttr().map_or(0.0, |d| d.as_secs_f64())),
    );
    doc.push(
        "max_mttr_secs",
        JsonValue::Num(t.max_mttr().map_or(0.0, |d| d.as_secs_f64())),
    );
    doc.push(
        "peak_redundant_bytes",
        JsonValue::Num(t.peak_redundant_bytes as f64),
    );
    doc.push(
        "peak_under_replicated",
        JsonValue::Num(t.peak_under_replicated as f64),
    );
    doc.push(
        "under_replicated_final",
        JsonValue::Num(d.under_replicated_final as f64),
    );
    doc.push(
        "repair_backlog_bytes",
        JsonValue::Num(d.repair_backlog_bytes as f64),
    );
    doc
}

fn faults_json(f: &faasmem_faas::FaultReport) -> JsonValue {
    let mut doc = JsonValue::obj();
    doc.push("link_availability", JsonValue::Num(f.link_availability));
    doc.push(
        "link_downtime_secs",
        JsonValue::Num(f.link_downtime.as_secs_f64()),
    );
    doc.push("page_in_retries", JsonValue::Num(f.page_in_retries as f64));
    doc.push(
        "page_ins_gave_up",
        JsonValue::Num(f.page_ins_gave_up as f64),
    );
    doc.push(
        "forced_cold_restarts",
        JsonValue::Num(f.forced_cold_restarts as f64),
    );
    doc.push(
        "node_loss_events",
        JsonValue::Num(f.node_loss_events as f64),
    );
    doc.push(
        "container_crashes",
        JsonValue::Num(f.container_crashes as f64),
    );
    doc.push(
        "lost_remote_bytes",
        JsonValue::Num(f.lost_remote_bytes as f64),
    );
    doc.push(
        "offloads_refused",
        JsonValue::Num(f.offloads_refused as f64),
    );
    doc.push("breaker_opens", JsonValue::Num(f.breaker_opens as f64));
    doc.push("slo_total", JsonValue::Num(f.slo_total as f64));
    doc.push("slo_violations", JsonValue::Num(f.slo_violations as f64));
    doc
}

fn faasmem_json(stats: &FaasMemStats) -> JsonValue {
    let mut doc = JsonValue::obj();
    let recalls: u64 = stats.runtime_recalls.values().sum();
    let offloads: u64 = stats.runtime_offloads.values().sum();
    doc.push("runtime_recalls_total", JsonValue::Num(recalls as f64));
    doc.push("runtime_offloads_total", JsonValue::Num(offloads as f64));
    let windows: Vec<JsonValue> = stats
        .windows_chosen
        .iter()
        .map(|&(_, w)| JsonValue::Num(f64::from(w)))
        .collect();
    doc.push("windows_chosen", JsonValue::Arr(windows));
    doc.push("rollbacks", JsonValue::Num(stats.rollbacks as f64));
    doc.push(
        "semi_warm_bytes",
        JsonValue::Num(stats.semi_warm_bytes as f64),
    );
    doc.push(
        "semi_warm_records",
        JsonValue::Num(stats.semi_warm_records.len() as f64),
    );
    doc
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

struct Cell<'a> {
    labels: CellLabels,
    bench: &'a BenchCase,
    trace: &'a TraceSpec,
    config: &'a ConfigCase,
    policy: &'a PolicySpec,
}

/// Runs every cell of `grid`, fanning across `opts.jobs` worker threads,
/// and merges the results in grid order. A panicking cell is captured as
/// that cell's error; the remaining cells still complete.
pub fn run_grid(grid: &ExperimentGrid, opts: &HarnessOptions) -> GridRun {
    let default_config = [ConfigCase::default_case()];
    let configs: &[ConfigCase] = if grid.configs.is_empty() {
        &default_config
    } else {
        &grid.configs
    };

    let mut cells: Vec<Cell<'_>> = Vec::with_capacity(grid.len());
    {
        profile_scope!("expand_grid");
        for trace in &grid.traces {
            for bench in &grid.benches {
                for config in configs {
                    for policy in &grid.policies {
                        cells.push(Cell {
                            labels: CellLabels {
                                trace: trace.label.clone(),
                                bench: bench.label.clone(),
                                config: config.label.clone(),
                                policy: policy.label().to_string(),
                            },
                            bench,
                            trace,
                            config,
                            policy,
                        });
                    }
                }
            }
        }
    }

    let started = Instant::now();
    let n = cells.len();
    let jobs = opts.jobs.clamp(1, n.max(1));
    let next = AtomicUsize::new(0);
    let quick = opts.quick;
    let trace_mask = opts.trace.as_ref().map(|_| opts.trace_filter);
    let sample_spec = opts.sample_spec();
    let shards = opts.shards;

    let mut results: Vec<Option<CellResult>> = Vec::with_capacity(n);
    results.resize_with(n, || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(jobs);
        for _ in 0..jobs {
            let cells = &cells;
            let next = &next;
            handles.push(scope.spawn(move || {
                let mut mine = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= cells.len() {
                        break;
                    }
                    let cell = &cells[i];
                    let cell_started = Instant::now();
                    let outcome = {
                        profile_scope!("cell");
                        run_cell(cell, quick, trace_mask, sample_spec, shards)
                    };
                    mine.push((
                        i,
                        CellResult {
                            labels: cell.labels.clone(),
                            seed: cell.trace.seed_for(cell.bench),
                            fault_seed: cell.config.config.faults.as_ref().map(|f| f.spec.seed),
                            outcome,
                            wall_secs: cell_started.elapsed().as_secs_f64(),
                            peak_rss_kb: rss::peak_rss_kb(),
                        },
                    ));
                }
                // Hand this worker's span aggregates to the global
                // profiler table before the thread dies.
                profiler::flush_thread();
                mine
            }));
        }
        for handle in handles {
            for (i, result) in handle.join().expect("worker thread") {
                results[i] = Some(result);
            }
        }
    });

    GridRun {
        name: grid.name.clone(),
        jobs,
        shards: opts.shards,
        quick: opts.quick,
        cells: results
            .into_iter()
            .map(|r| r.expect("every cell ran"))
            .collect(),
        wall_total_secs: started.elapsed().as_secs_f64(),
    }
}

/// Validates every platform configuration the grid declares, returning
/// one descriptive message per problem (empty when the grid is sound).
/// An empty `configs` axis means the default configuration, which is
/// always valid.
pub fn validate_grid(grid: &ExperimentGrid) -> Vec<String> {
    let mut problems = Vec::new();
    for case in &grid.configs {
        if let Err(errors) = case.config.validate() {
            for e in errors {
                problems.push(format!("config `{}`: {e}", case.label));
            }
        }
    }
    problems
}

/// Convenience wrapper: validate the grid's configurations, run, export
/// JSON under `opts.out_dir`, print the timing line. A misconfigured
/// grid exits with status 2 before any cell runs — a driver with a
/// nonsensical config should fail loudly, not simulate garbage. IO
/// errors only warn — experiment output on stdout is more important
/// than the export.
pub fn run_and_export(grid: &ExperimentGrid, opts: &HarnessOptions) -> GridRun {
    let mut problems = validate_grid(grid);
    if let Some(spec) = opts.sample_spec() {
        problems.extend(spec.validate());
    }
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("[harness] grid {}: {p}", grid.name);
        }
        std::process::exit(2);
    }
    if opts.profile {
        profiler::set_enabled(true);
    }
    let run = run_grid(grid, opts);
    match run.write_results(&opts.out_dir) {
        Ok(path) => eprintln!("[harness] wrote {}", path.display()),
        Err(e) => eprintln!(
            "[harness] could not write results under {}: {e}",
            opts.out_dir.display()
        ),
    }
    if let Some(path) = &opts.trace {
        match run.write_trace(path) {
            Ok(()) => eprintln!(
                "[harness] wrote {} and {}",
                path.display(),
                path.with_extension("chrome.json").display()
            ),
            Err(e) => eprintln!("[harness] could not write trace {}: {e}", path.display()),
        }
    }
    if let Some(path) = &opts.series {
        match run.write_series(path, opts.series_interval) {
            Ok(()) => eprintln!("[harness] wrote {}", path.display()),
            Err(e) => eprintln!("[harness] could not write series {}: {e}", path.display()),
        }
    }
    if opts.profile {
        profiler::set_enabled(false);
        let phases = profiler::take_report();
        print_phase_table(&phases);
        match run.write_bench(&opts.out_dir, &phases) {
            Ok(path) => eprintln!("[harness] wrote {}", path.display()),
            Err(e) => eprintln!(
                "[harness] could not write BENCH file under {}: {e}",
                opts.out_dir.display()
            ),
        }
    }
    run.print_timing();
    run
}

/// Renders the profiler's per-phase table to stderr (stderr so stdout
/// stays byte-comparable across runs).
fn print_phase_table(phases: &[(&'static str, profiler::PhaseStat)]) {
    if phases.is_empty() {
        eprintln!("[profile] no spans recorded");
        return;
    }
    eprintln!(
        "[profile] {:<14} {:>8} {:>12} {:>12}",
        "phase", "calls", "total_s", "self_s"
    );
    for (name, stat) in phases {
        eprintln!(
            "[profile] {:<14} {:>8} {:>12.4} {:>12.4}",
            name, stat.calls, stat.total_secs, stat.self_secs
        );
    }
}

fn run_cell(
    cell: &Cell<'_>,
    quick: bool,
    trace_mask: Option<LayerMask>,
    sample_spec: Option<SampleSpec>,
    shards: Option<u32>,
) -> Result<CellOutcome, String> {
    catch_unwind(AssertUnwindSafe(|| {
        let trace = cell.trace.build(cell.bench, quick);
        // The tracer lives and dies on this worker thread; only the
        // drained (Send) event vector crosses back to the merger, so
        // tracing cannot perturb cell scheduling or output order.
        let tracer = match trace_mask {
            Some(mask) => Tracer::recording(mask),
            None => Tracer::disabled(),
        };
        // Same lifecycle for the sampler: per-cell, thread-confined,
        // only the drained columnar series crosses back.
        let sampler = match sample_spec {
            Some(spec) => Sampler::recording(spec),
            None => Sampler::disabled(),
        };
        tracer.emit(
            None,
            None,
            EventKind::CellStart {
                trace: cell.labels.trace.clone(),
                bench: cell.labels.bench.clone(),
                config: cell.labels.config.clone(),
                policy: cell.labels.policy.clone(),
                seed: cell.trace.seed_for(cell.bench),
            },
        );
        let builder = PlatformSim::builder()
            .register_functions(cell.bench.specs.iter().cloned())
            .config(cell.config.config.clone())
            .tracer(tracer.clone())
            .sampler(sampler.clone());
        let (mut sim, stats) = match cell.policy {
            PolicySpec::Kind(kind) => match kind {
                PolicyKind::Baseline => (builder.policy(NoOffloadPolicy).build(), None),
                PolicyKind::Tmo => (builder.policy(TmoPolicy::default()).build(), None),
                PolicyKind::Damon => (builder.policy(DamonPolicy::default()).build(), None),
                PolicyKind::FaasMem => {
                    let p = FaasMemPolicy::builder().build();
                    let s = p.stats();
                    (builder.policy(p).build(), Some(s))
                }
                PolicyKind::FaasMemNoPucket => {
                    let p = FaasMemPolicy::builder().without_pucket().build();
                    let s = p.stats();
                    (builder.policy(p).build(), Some(s))
                }
                PolicyKind::FaasMemNoSemiWarm => {
                    let p = FaasMemPolicy::builder().without_semiwarm().build();
                    let s = p.stats();
                    (builder.policy(p).build(), Some(s))
                }
            },
            PolicySpec::Custom { make, .. } => {
                let (policy, stats) = make();
                (builder.policy(policy).build(), stats)
            }
        };
        let mut report = {
            profile_scope!("simulate");
            match shards {
                // The sharded driver is byte-identical to the serial
                // one for any shard count; CI compares both paths.
                Some(s) => sim.run_sharded(&trace, &ShardSpec::new(s)),
                None => sim.run(&trace),
            }
        };
        tracer.set_now(report.finished_at);
        tracer.emit(
            None,
            None,
            EventKind::CellEnd {
                requests: report.requests_completed as u64,
                sim_secs: report.finished_at.as_secs_f64(),
            },
        );
        let summary = {
            profile_scope!("summarize");
            report.summarize()
        };
        CellOutcome {
            trace_len: trace.len(),
            trace_skipped_rows: cell.trace.skipped_rows,
            trace_stats: trace.stats(),
            summary,
            // Snapshot: the Rc-based handle must not cross threads, the
            // cloned stats may.
            faasmem: stats.map(|s| s.borrow().clone()),
            report,
            trace_events: tracer.take_events(),
            series: sampler.take_series(),
        }
    }))
    .map_err(|payload| {
        let msg = if let Some(msg) = payload.downcast_ref::<&'static str>() {
            (*msg).to_string()
        } else if let Some(msg) = payload.downcast_ref::<String>() {
            msg.clone()
        } else {
            "cell panicked with a non-string payload".to_string()
        };
        // Carry everything needed to replay the cell stand-alone: its
        // coordinates, the mixed trace seed, and the fault seed when
        // chaos was enabled.
        let fault_seed = cell
            .config
            .config
            .faults
            .as_ref()
            .map_or("none".to_string(), |f| f.spec.seed.to_string());
        format!(
            "cell[trace={}, bench={}, config={}, policy={}] seed={} fault_seed={}: {msg}",
            cell.labels.trace,
            cell.labels.bench,
            cell.labels.config,
            cell.labels.policy,
            cell.trace.seed_for(cell.bench),
            fault_seed,
        )
    })
}
