//! Minimal JSON tree, writer and parser — re-exported from
//! [`faasmem_trace::json`], the workspace's single JSON implementation.
//!
//! The harness and the trace subsystem must agree byte-for-byte on
//! serialization (key order, float formatting, escaping), so the tree
//! lives in one place and this module only forwards it. Existing
//! `crate::json::JsonValue` paths keep working unchanged.

pub use faasmem_trace::json::*;
