#![warn(missing_docs)]

//! Experiment harness for the FaaSMem reproduction.
//!
//! One runnable binary per table/figure of the paper's evaluation (see
//! `src/bin/`), plus this small shared library: policy construction by
//! name, standard experiment configurations, and plain-text table
//! rendering so every binary prints rows directly comparable to the
//! paper's figures.
//!
//! Run any experiment with, e.g.:
//!
//! ```text
//! cargo run --release -p faasmem-bench --bin fig12_main_eval
//! ```

pub mod dashboard;
pub mod harness;
pub mod json;
pub mod perf;
pub mod svg;

use faasmem_baselines::{DamonPolicy, NoOffloadPolicy, TmoPolicy};
use faasmem_core::{FaasMemPolicy, StatsHandle};
use faasmem_faas::{PlatformConfig, PlatformSim, RunReport};
use faasmem_workload::{BenchmarkSpec, InvocationTrace};

/// The systems compared throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// No memory offloading (the paper's "Baseline").
    Baseline,
    /// TMO-like feedback offloading.
    Tmo,
    /// DAMON-like sampling offloading.
    Damon,
    /// Full FaaSMem.
    FaasMem,
    /// FaaSMem with Pucket disabled (ablation).
    FaasMemNoPucket,
    /// FaaSMem with semi-warm disabled (ablation).
    FaasMemNoSemiWarm,
}

impl PolicyKind {
    /// The three systems of the head-to-head comparison (Fig 12, Tab 1).
    pub const HEAD_TO_HEAD: [PolicyKind; 3] =
        [PolicyKind::Baseline, PolicyKind::Tmo, PolicyKind::FaasMem];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Baseline => "Baseline",
            PolicyKind::Tmo => "TMO",
            PolicyKind::Damon => "DAMON",
            PolicyKind::FaasMem => "FaaSMem",
            PolicyKind::FaasMemNoPucket => "FaaSMem w/o Pucket",
            PolicyKind::FaasMemNoSemiWarm => "FaaSMem w/o Semi-warm",
        }
    }
}

/// A configured single-function experiment run.
pub struct Experiment {
    /// The function under test.
    pub spec: BenchmarkSpec,
    /// The policy under test.
    pub policy: PolicyKind,
    /// Platform configuration (page size, keep-alive, pool, ...).
    pub platform: PlatformConfig,
}

/// The outcome of an [`Experiment`]: the platform report plus FaaSMem's
/// mechanism stats when the policy was a FaaSMem variant.
pub struct ExperimentOutcome {
    /// Platform-level measurements.
    pub report: RunReport,
    /// FaaSMem mechanism stats (None for baselines).
    pub faasmem_stats: Option<StatsHandle>,
}

impl Experiment {
    /// A single-function experiment with the default platform config.
    pub fn new(spec: BenchmarkSpec, policy: PolicyKind) -> Self {
        Experiment {
            spec,
            policy,
            platform: PlatformConfig::default(),
        }
    }

    /// Overrides the platform configuration.
    pub fn platform(mut self, platform: PlatformConfig) -> Self {
        self.platform = platform;
        self
    }

    /// Runs the experiment on `trace`.
    pub fn run(self, trace: &InvocationTrace) -> ExperimentOutcome {
        let builder = PlatformSim::builder()
            .register_function(self.spec)
            .config(self.platform);
        let (mut sim, stats) = match self.policy {
            PolicyKind::Baseline => (builder.policy(NoOffloadPolicy).build(), None),
            PolicyKind::Tmo => (builder.policy(TmoPolicy::default()).build(), None),
            PolicyKind::Damon => (builder.policy(DamonPolicy::default()).build(), None),
            PolicyKind::FaasMem => {
                let p = FaasMemPolicy::builder().build();
                let s = p.stats();
                (builder.policy(p).build(), Some(s))
            }
            PolicyKind::FaasMemNoPucket => {
                let p = FaasMemPolicy::builder().without_pucket().build();
                let s = p.stats();
                (builder.policy(p).build(), Some(s))
            }
            PolicyKind::FaasMemNoSemiWarm => {
                let p = FaasMemPolicy::builder().without_semiwarm().build();
                let s = p.stats();
                (builder.policy(p).build(), Some(s))
            }
        };
        ExperimentOutcome {
            report: sim.run(trace),
            faasmem_stats: stats,
        }
    }
}

/// Renders a plain-text table with aligned columns.
///
/// # Examples
///
/// ```
/// use faasmem_bench::render_table;
///
/// let out = render_table(
///     &["bench", "p95"],
///     &[vec!["json".into(), "0.04s".into()]],
/// );
/// assert!(out.contains("bench"));
/// assert!(out.contains("json"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
        out.push('\n');
    }
    out
}

/// Formats a fraction as a signed percentage change, e.g. `-27.1%`.
pub fn pct_change(new: f64, old: f64) -> String {
    if old == 0.0 {
        return "n/a".to_string();
    }
    format!("{:+.1}%", (new - old) / old * 100.0)
}

/// Formats seconds compactly.
pub fn fmt_secs(secs: f64) -> String {
    if secs < 1.0 {
        format!("{:.0}ms", secs * 1e3)
    } else {
        format!("{secs:.2}s")
    }
}

/// Formats MiB compactly.
pub fn fmt_mib(mib: f64) -> String {
    if mib >= 1024.0 {
        format!("{:.2}G", mib / 1024.0)
    } else {
        format!("{mib:.0}M")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasmem_sim::SimTime;
    use faasmem_workload::{FunctionId, Invocation};

    fn tiny_trace() -> InvocationTrace {
        InvocationTrace::from_invocations(
            vec![
                Invocation {
                    at: SimTime::from_secs(1),
                    function: FunctionId(0),
                },
                Invocation {
                    at: SimTime::from_secs(30),
                    function: FunctionId(0),
                },
            ],
            SimTime::from_mins(2),
        )
    }

    #[test]
    fn every_policy_kind_runs() {
        for kind in [
            PolicyKind::Baseline,
            PolicyKind::Tmo,
            PolicyKind::Damon,
            PolicyKind::FaasMem,
            PolicyKind::FaasMemNoPucket,
            PolicyKind::FaasMemNoSemiWarm,
        ] {
            let spec = BenchmarkSpec::by_name("json").unwrap();
            let outcome = Experiment::new(spec, kind).run(&tiny_trace());
            assert_eq!(outcome.report.requests_completed, 2, "{}", kind.name());
            assert_eq!(outcome.report.policy, kind.name());
            match kind {
                PolicyKind::FaasMem
                | PolicyKind::FaasMemNoPucket
                | PolicyKind::FaasMemNoSemiWarm => assert!(outcome.faasmem_stats.is_some()),
                _ => assert!(outcome.faasmem_stats.is_none()),
            }
        }
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["a", "long-header"],
            &[
                vec!["x".into(), "1".into()],
                vec!["yyyy".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct_change(73.0, 100.0), "-27.0%");
        assert_eq!(pct_change(1.0, 0.0), "n/a");
        assert_eq!(fmt_secs(0.14), "140ms");
        assert_eq!(fmt_secs(9.24), "9.24s");
        assert_eq!(fmt_mib(830.0), "830M");
        assert_eq!(fmt_mib(2703.0), "2.64G");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_panic() {
        let _ = render_table(&["a", "b"], &[vec!["only-one".into()]]);
    }
}
