//! Comparison of `BENCH_*.json` perf baselines — the analysis half of
//! the `bench_compare` bin.
//!
//! A BENCH document (written by [`crate::harness::GridRun::write_bench`])
//! records a run's total wall time, per-cell wall-time percentiles and
//! the self-profiler's per-phase breakdown. This module flattens two
//! such documents into named scalar metrics and flags every metric
//! whose new value exceeds the old by more than a tolerance — the CI
//! perf job fails when any metric regresses.
//!
//! Wall-clock is noisy, so the comparison is deliberately coarse:
//! metrics whose baseline sits below [`MIN_COMPARABLE_SECS`] are
//! skipped outright (at micro scale the scheduler noise floor dwarfs
//! any real regression), and the default tolerance is a generous
//! [`DEFAULT_TOLERANCE`].

use std::fmt::Write as _;

use crate::json::JsonValue;

/// Default allowed slow-down before a metric counts as regressed
/// (`new > old * (1 + tolerance)`).
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// Baseline metrics below this many seconds are never compared: the
/// wall-clock noise floor makes ratios at that scale meaningless.
pub const MIN_COMPARABLE_SECS: f64 = 0.005;

/// A BENCH document flattened to named scalar metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    /// The `bench` id (e.g. `fig12_quick`); compared runs should agree.
    pub bench: String,
    /// The producing checkout's short git revision (`unknown` outside
    /// a checkout).
    pub git_rev: String,
    /// Named wall-time metrics in document order: the headline scalars
    /// plus one `phase:<name>` entry per profiler phase.
    pub metrics: Vec<(String, f64)>,
}

impl BenchDoc {
    /// Looks up a metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

/// Flattens a parsed BENCH document into a [`BenchDoc`].
pub fn parse_bench(doc: &JsonValue) -> Result<BenchDoc, String> {
    let bench = doc
        .get("bench")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "missing \"bench\" id".to_string())?
        .to_string();
    let git_rev = doc
        .get("git_rev")
        .and_then(JsonValue::as_str)
        .unwrap_or("unknown")
        .to_string();
    let mut metrics = Vec::new();
    for key in [
        "total_wall_secs",
        "cell_wall_p50_secs",
        "cell_wall_p95_secs",
        "cell_wall_max_secs",
    ] {
        if let Some(v) = doc.get(key).and_then(JsonValue::as_num) {
            metrics.push((key.to_string(), v));
        }
    }
    if metrics.is_empty() {
        return Err("no wall-time metrics (is this a BENCH file?)".to_string());
    }
    if let Some(phases) = doc.get("phases").and_then(JsonValue::as_arr) {
        for phase in phases {
            let name = phase
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| "phase entry missing \"name\"".to_string())?;
            let total = phase
                .get("total_secs")
                .and_then(JsonValue::as_num)
                .ok_or_else(|| format!("phase {name:?} missing \"total_secs\""))?;
            metrics.push((format!("phase:{name}"), total));
        }
    }
    Ok(BenchDoc {
        bench,
        git_rev,
        metrics,
    })
}

/// One metric's old-vs-new verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Metric name (`total_wall_secs`, `phase:simulate`, ...).
    pub metric: String,
    /// Baseline value in seconds.
    pub old: f64,
    /// New value in seconds.
    pub new: f64,
    /// `true` when the baseline was too small to compare.
    pub skipped: bool,
    /// `true` when `new > old * (1 + tolerance)` (never for skipped
    /// metrics).
    pub regressed: bool,
}

/// The full comparison of two BENCH documents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Comparison {
    /// One entry per baseline metric, in baseline order.
    pub deltas: Vec<Delta>,
    /// Baseline metrics absent from the new document (warned about,
    /// not failed: phase sets legitimately change between revisions).
    pub missing_in_new: Vec<String>,
}

impl Comparison {
    /// Number of regressed metrics.
    pub fn regressions(&self) -> usize {
        self.deltas.iter().filter(|d| d.regressed).count()
    }
}

/// Compares every baseline metric against the new document.
pub fn compare(old: &BenchDoc, new: &BenchDoc, tolerance: f64) -> Comparison {
    let mut cmp = Comparison::default();
    for (name, old_v) in &old.metrics {
        let Some(new_v) = new.metric(name) else {
            cmp.missing_in_new.push(name.clone());
            continue;
        };
        let skipped = *old_v < MIN_COMPARABLE_SECS;
        cmp.deltas.push(Delta {
            metric: name.clone(),
            old: *old_v,
            new: new_v,
            skipped,
            regressed: !skipped && new_v > *old_v * (1.0 + tolerance),
        });
    }
    cmp
}

/// The comparison as a machine-readable JSON document (the
/// `bench_compare --json` output): bench id, both revisions, the
/// tolerance, per-metric deltas in baseline order, missing metrics,
/// and the regression verdict — everything the CI perf job needs to
/// log structured regressions.
pub fn comparison_json(
    old: &BenchDoc,
    new: &BenchDoc,
    cmp: &Comparison,
    tolerance: f64,
) -> JsonValue {
    let mut doc = JsonValue::obj();
    doc.push("bench", JsonValue::Str(old.bench.clone()));
    doc.push("old_git_rev", JsonValue::Str(old.git_rev.clone()));
    doc.push("new_git_rev", JsonValue::Str(new.git_rev.clone()));
    doc.push("tolerance", JsonValue::Num(tolerance));
    let deltas: Vec<JsonValue> = cmp
        .deltas
        .iter()
        .map(|d| {
            let mut entry = JsonValue::obj();
            entry.push("metric", JsonValue::Str(d.metric.clone()));
            entry.push("old_secs", JsonValue::Num(d.old));
            entry.push("new_secs", JsonValue::Num(d.new));
            if d.old > 0.0 {
                entry.push("change", JsonValue::Num((d.new - d.old) / d.old));
            } else {
                entry.push("change", JsonValue::Null);
            }
            entry.push("skipped", JsonValue::Bool(d.skipped));
            entry.push("regressed", JsonValue::Bool(d.regressed));
            entry
        })
        .collect();
    doc.push("deltas", JsonValue::Arr(deltas));
    doc.push(
        "missing_in_new",
        JsonValue::Arr(
            cmp.missing_in_new
                .iter()
                .map(|n| JsonValue::Str(n.clone()))
                .collect(),
        ),
    );
    doc.push("regressions", JsonValue::Num(cmp.regressions() as f64));
    doc.push("pass", JsonValue::Bool(cmp.regressions() == 0));
    doc
}

/// Renders the comparison as the fixed-width report `bench_compare`
/// prints.
pub fn render_report(old: &BenchDoc, new: &BenchDoc, cmp: &Comparison, tolerance: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench {}: {} (old) vs {} (new), tolerance {:.0}%",
        old.bench,
        old.git_rev,
        new.git_rev,
        tolerance * 100.0
    );
    let width = cmp
        .deltas
        .iter()
        .map(|d| d.metric.len())
        .max()
        .unwrap_or(6)
        .max("metric".len());
    let _ = writeln!(
        out,
        "  {:<width$}  {:>10}  {:>10}  {:>8}  verdict",
        "metric", "old (s)", "new (s)", "change"
    );
    for d in &cmp.deltas {
        let change = if d.old > 0.0 {
            format!("{:+.1}%", (d.new - d.old) / d.old * 100.0)
        } else {
            "n/a".to_string()
        };
        let verdict = if d.skipped {
            "skipped (below noise floor)"
        } else if d.regressed {
            "REGRESSED"
        } else {
            "ok"
        };
        let _ = writeln!(
            out,
            "  {:<width$}  {:>10.4}  {:>10.4}  {:>8}  {}",
            d.metric, d.old, d.new, change, verdict
        );
    }
    for name in &cmp.missing_in_new {
        let _ = writeln!(out, "  {name}: missing from new document (warning)");
    }
    let regressions = cmp.regressions();
    if regressions > 0 {
        let _ = writeln!(out, "FAIL: {regressions} metric(s) regressed");
    } else {
        let _ = writeln!(out, "PASS: no regression");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn doc(total: f64, simulate: f64) -> BenchDoc {
        let text = format!(
            r#"{{"bench":"fig12_quick","git_rev":"abc1234",
                "total_wall_secs":{total},
                "cell_wall_p50_secs":{half},
                "phases":[{{"name":"simulate","calls":4,"total_secs":{simulate},"self_secs":{simulate}}}]}}"#,
            half = total / 2.0
        );
        parse_bench(&json::parse(&text).unwrap()).unwrap()
    }

    #[test]
    fn parse_flattens_headline_and_phase_metrics() {
        let d = doc(2.0, 1.5);
        assert_eq!(d.bench, "fig12_quick");
        assert_eq!(d.git_rev, "abc1234");
        assert_eq!(d.metric("total_wall_secs"), Some(2.0));
        assert_eq!(d.metric("cell_wall_p50_secs"), Some(1.0));
        assert_eq!(d.metric("phase:simulate"), Some(1.5));
        assert_eq!(d.metric("phase:nope"), None);
    }

    #[test]
    fn parse_rejects_non_bench_documents() {
        let err = parse_bench(&json::parse(r#"{"grid":"x"}"#).unwrap()).unwrap_err();
        assert!(err.contains("bench"), "{err}");
        let err = parse_bench(&json::parse(r#"{"bench":"x","jobs":2}"#).unwrap()).unwrap_err();
        assert!(err.contains("wall-time"), "{err}");
    }

    #[test]
    fn within_tolerance_passes() {
        let cmp = compare(&doc(2.0, 1.5), &doc(2.4, 1.8), 0.25);
        assert_eq!(cmp.regressions(), 0);
        assert!(cmp.missing_in_new.is_empty());
        assert!(render_report(&doc(2.0, 1.5), &doc(2.4, 1.8), &cmp, 0.25).contains("PASS"));
    }

    #[test]
    fn slowdown_past_tolerance_regresses() {
        let old = doc(2.0, 1.5);
        let new = doc(2.0, 2.1); // simulate phase +40%
        let cmp = compare(&old, &new, 0.25);
        assert_eq!(cmp.regressions(), 1);
        let bad = cmp.deltas.iter().find(|d| d.regressed).unwrap();
        assert_eq!(bad.metric, "phase:simulate");
        let report = render_report(&old, &new, &cmp, 0.25);
        assert!(report.contains("REGRESSED"), "{report}");
        assert!(report.contains("FAIL"), "{report}");
    }

    #[test]
    fn tiny_baselines_are_skipped_not_failed() {
        // 1 ms baseline ballooning 100x is still noise, not signal.
        let cmp = compare(&doc(0.001, 0.0005), &doc(0.1, 0.05), 0.25);
        assert_eq!(cmp.regressions(), 0);
        assert!(cmp.deltas.iter().all(|d| d.skipped));
    }

    #[test]
    fn comparison_json_carries_the_verdict() {
        let old = doc(2.0, 1.5);
        let new = doc(2.0, 2.1);
        let cmp = compare(&old, &new, 0.25);
        let out = comparison_json(&old, &new, &cmp, 0.25);
        assert_eq!(
            out.get("bench").and_then(JsonValue::as_str),
            Some("fig12_quick")
        );
        assert_eq!(
            out.get("regressions").and_then(JsonValue::as_num),
            Some(1.0)
        );
        assert_eq!(out.get("pass"), Some(&JsonValue::Bool(false)));
        let deltas = out.get("deltas").and_then(JsonValue::as_arr).unwrap();
        let bad = deltas
            .iter()
            .find(|d| d.get("regressed") == Some(&JsonValue::Bool(true)))
            .unwrap();
        assert_eq!(
            bad.get("metric").and_then(JsonValue::as_str),
            Some("phase:simulate")
        );
        let change = bad.get("change").and_then(JsonValue::as_num).unwrap();
        assert!((change - 0.4).abs() < 1e-9, "{change}");
        // The document round-trips through the workspace parser.
        let reparsed = crate::json::parse(&out.to_pretty()).unwrap();
        assert_eq!(reparsed.get("pass"), Some(&JsonValue::Bool(false)));
    }

    #[test]
    fn baseline_metrics_missing_from_new_warn_only() {
        let old = doc(2.0, 1.5);
        let mut new = doc(2.0, 1.5);
        new.metrics.retain(|(n, _)| !n.starts_with("phase:"));
        let cmp = compare(&old, &new, 0.25);
        assert_eq!(cmp.regressions(), 0);
        assert_eq!(cmp.missing_in_new, vec!["phase:simulate".to_string()]);
        assert!(render_report(&old, &new, &cmp, 0.25).contains("missing from new"));
    }
}
