//! Minimal, dependency-free SVG charts for the experiment binaries.
//!
//! The paper's artifact renders its results as graphs; this module gives
//! the reproduction the same capability without pulling a plotting stack:
//! grouped bar charts (Fig 12-style) and line/CDF charts (Fig 1/14-style)
//! are emitted as standalone SVG files next to the text output.

use std::fmt::Write as _;

const WIDTH: f64 = 760.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 20.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 80.0;
const PALETTE: [&str; 6] = [
    "#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4", "#8c613c",
];

fn plot_w() -> f64 {
    WIDTH - MARGIN_L - MARGIN_R
}

fn plot_h() -> f64 {
    HEIGHT - MARGIN_T - MARGIN_B
}

fn header(title: &str) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">"##
    );
    let _ = write!(
        s,
        r##"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/><text x="{}" y="24" font-family="sans-serif" font-size="16" text-anchor="middle">{}</text>"##,
        WIDTH / 2.0,
        escape(title)
    );
    s
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn y_axis(s: &mut String, y_max: f64, y_label: &str) {
    for i in 0..=4 {
        let frac = f64::from(i) / 4.0;
        let y = MARGIN_T + plot_h() * (1.0 - frac);
        let value = y_max * frac;
        let _ = write!(
            s,
            r##"<line x1="{MARGIN_L}" y1="{y}" x2="{}" y2="{y}" stroke="#dddddd"/><text x="{}" y="{}" font-family="sans-serif" font-size="11" text-anchor="end">{value:.0}</text>"##,
            WIDTH - MARGIN_R,
            MARGIN_L - 6.0,
            y + 4.0
        );
    }
    let _ = write!(
        s,
        r##"<text x="16" y="{}" font-family="sans-serif" font-size="12" transform="rotate(-90 16 {})" text-anchor="middle">{}</text>"##,
        MARGIN_T + plot_h() / 2.0,
        MARGIN_T + plot_h() / 2.0,
        escape(y_label)
    );
}

fn legend(s: &mut String, series: &[&str]) {
    for (i, name) in series.iter().enumerate() {
        let x = MARGIN_L + 120.0 * i as f64;
        let y = HEIGHT - 14.0;
        let _ = write!(
            s,
            r##"<rect x="{x}" y="{}" width="12" height="12" fill="{}"/><text x="{}" y="{}" font-family="sans-serif" font-size="12">{}</text>"##,
            y - 10.0,
            PALETTE[i % PALETTE.len()],
            x + 16.0,
            y,
            escape(name)
        );
    }
}

/// Renders a grouped bar chart: one group per `categories` entry, one bar
/// per series.
///
/// # Panics
///
/// Panics if `values` is ragged (a series with a different length than
/// `categories`) or everything is empty.
///
/// # Examples
///
/// ```
/// use faasmem_bench::svg::grouped_bars;
///
/// let svg = grouped_bars(
///     "memory",
///     "MiB",
///     &["json", "web"],
///     &[("Baseline", vec![61.0, 580.0]), ("FaaSMem", vec![9.0, 38.0])],
/// );
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("FaaSMem"));
/// ```
pub fn grouped_bars(
    title: &str,
    y_label: &str,
    categories: &[&str],
    values: &[(&str, Vec<f64>)],
) -> String {
    assert!(!categories.is_empty() && !values.is_empty(), "empty chart");
    for (name, vs) in values {
        assert_eq!(vs.len(), categories.len(), "ragged series {name}");
    }
    let y_max = values
        .iter()
        .flat_map(|(_, vs)| vs.iter().copied())
        .fold(0.0f64, f64::max)
        .max(1e-9)
        * 1.05;
    let mut s = header(title);
    y_axis(&mut s, y_max, y_label);
    let group_w = plot_w() / categories.len() as f64;
    let bar_w = (group_w * 0.8) / values.len() as f64;
    for (ci, cat) in categories.iter().enumerate() {
        let gx = MARGIN_L + group_w * ci as f64 + group_w * 0.1;
        for (si, (_, vs)) in values.iter().enumerate() {
            let h = (vs[ci] / y_max) * plot_h();
            let x = gx + bar_w * si as f64;
            let y = MARGIN_T + plot_h() - h;
            let _ = write!(
                s,
                r##"<rect x="{x:.1}" y="{y:.1}" width="{bar_w:.1}" height="{h:.1}" fill="{}"/>"##,
                PALETTE[si % PALETTE.len()]
            );
        }
        let _ = write!(
            s,
            r##"<text x="{:.1}" y="{}" font-family="sans-serif" font-size="11" text-anchor="middle" transform="rotate(-30 {:.1} {})">{}</text>"##,
            gx + group_w * 0.4,
            MARGIN_T + plot_h() + 16.0,
            gx + group_w * 0.4,
            MARGIN_T + plot_h() + 16.0,
            escape(cat)
        );
    }
    legend(&mut s, &values.iter().map(|(n, _)| *n).collect::<Vec<_>>());
    s.push_str("</svg>");
    s
}

/// Renders one or more line series over a shared numeric x-axis (CDFs,
/// sweeps).
///
/// # Panics
///
/// Panics if `series` is empty or any series has fewer than two points.
///
/// # Examples
///
/// ```
/// use faasmem_bench::svg::lines;
///
/// let svg = lines(
///     "cdf",
///     "seconds",
///     "fraction",
///     &[("all", vec![(0.0, 0.0), (10.0, 0.5), (60.0, 1.0)])],
/// );
/// assert!(svg.contains("polyline"));
/// ```
pub fn lines(
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[(&str, Vec<(f64, f64)>)],
) -> String {
    assert!(!series.is_empty(), "empty chart");
    let mut x_min = f64::INFINITY;
    let mut x_max = f64::NEG_INFINITY;
    let mut y_max = 0.0f64;
    for (name, pts) in series {
        assert!(pts.len() >= 2, "series {name} needs two points");
        for &(x, y) in pts {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            y_max = y_max.max(y);
        }
    }
    let x_span = (x_max - x_min).max(1e-9);
    let y_max = y_max.max(1e-9) * 1.05;
    let mut s = header(title);
    y_axis(&mut s, y_max, y_label);
    for i in 0..=4 {
        let frac = f64::from(i) / 4.0;
        let x = MARGIN_L + plot_w() * frac;
        let value = x_min + x_span * frac;
        let _ = write!(
            s,
            r##"<text x="{x:.1}" y="{}" font-family="sans-serif" font-size="11" text-anchor="middle">{value:.0}</text>"##,
            MARGIN_T + plot_h() + 16.0
        );
    }
    let _ = write!(
        s,
        r##"<text x="{}" y="{}" font-family="sans-serif" font-size="12" text-anchor="middle">{}</text>"##,
        MARGIN_L + plot_w() / 2.0,
        MARGIN_T + plot_h() + 36.0,
        escape(x_label)
    );
    for (si, (_, pts)) in series.iter().enumerate() {
        let path: Vec<String> = pts
            .iter()
            .map(|&(x, y)| {
                let px = MARGIN_L + (x - x_min) / x_span * plot_w();
                let py = MARGIN_T + plot_h() * (1.0 - y / y_max);
                format!("{px:.1},{py:.1}")
            })
            .collect();
        let _ = write!(
            s,
            r##"<polyline points="{}" fill="none" stroke="{}" stroke-width="2"/>"##,
            path.join(" "),
            PALETTE[si % PALETTE.len()]
        );
    }
    legend(&mut s, &series.iter().map(|(n, _)| *n).collect::<Vec<_>>());
    s.push_str("</svg>");
    s
}

/// Stacks full-size panels (as produced by [`grouped_bars`] or
/// [`lines`]) vertically into one SVG document, in order, via nested
/// `<svg>` elements offset by the shared panel height.
///
/// # Panics
///
/// Panics if `panels` is empty.
///
/// # Examples
///
/// ```
/// use faasmem_bench::svg::{lines, stack_vertical};
///
/// let panel = lines("p", "x", "y", &[("s", vec![(0.0, 0.0), (1.0, 1.0)])]);
/// let dash = stack_vertical(&[panel.clone(), panel]);
/// assert_eq!(dash.matches("<svg").count(), 3);
/// ```
pub fn stack_vertical(panels: &[String]) -> String {
    assert!(!panels.is_empty(), "empty dashboard");
    let total_h = HEIGHT * panels.len() as f64;
    let mut s = String::new();
    let _ = write!(
        s,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{total_h}" viewBox="0 0 {WIDTH} {total_h}">"##
    );
    for (i, panel) in panels.iter().enumerate() {
        let y = HEIGHT * i as f64;
        s.push_str(&panel.replacen("<svg ", &format!(r#"<svg y="{y}" "#), 1));
    }
    s.push_str("</svg>");
    s
}

/// Writes an SVG string under `results/` (created if needed); best-effort
/// — experiments must not fail because the filesystem is read-only.
pub fn write_chart(filename: &str, svg: &str) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(filename);
        if std::fs::write(&path, svg).is_ok() {
            println!("(chart written to {})", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_contain_all_series_and_categories() {
        let svg = grouped_bars(
            "t",
            "MiB",
            &["a", "b", "c"],
            &[("s1", vec![1.0, 2.0, 3.0]), ("s2", vec![3.0, 2.0, 1.0])],
        );
        for needle in ["s1", "s2", "a", "b", "c", "<svg", "</svg>"] {
            assert!(svg.contains(needle), "missing {needle}");
        }
        assert_eq!(
            svg.matches("<rect").count(),
            1 + 6 + 2,
            "bg + bars + legend swatches"
        );
    }

    #[test]
    fn lines_scale_to_bounds() {
        let svg = lines("t", "x", "y", &[("one", vec![(0.0, 0.0), (100.0, 1.0)])]);
        assert!(svg.contains("polyline"));
        // The first point sits at the left margin, the last at the right.
        assert!(svg.contains(&format!("{MARGIN_L:.1},")));
    }

    #[test]
    fn titles_are_escaped() {
        let svg = grouped_bars("a < b & c", "y", &["x"], &[("s", vec![1.0])]);
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(!svg.contains("a < b"));
    }

    #[test]
    #[should_panic(expected = "ragged series")]
    fn ragged_series_panics() {
        let _ = grouped_bars("t", "y", &["a", "b"], &[("s", vec![1.0])]);
    }

    #[test]
    #[should_panic(expected = "two points")]
    fn single_point_series_panics() {
        let _ = lines("t", "x", "y", &[("s", vec![(0.0, 0.0)])]);
    }

    #[test]
    fn stacked_panels_keep_their_order_and_offset() {
        let p1 = lines("first", "x", "y", &[("a", vec![(0.0, 0.0), (1.0, 1.0)])]);
        let p2 = lines("second", "x", "y", &[("b", vec![(0.0, 1.0), (1.0, 0.0)])]);
        let dash = stack_vertical(&[p1, p2]);
        assert_eq!(dash.matches("<svg").count(), 3, "outer + two nested");
        assert!(dash.contains(&format!(r#"<svg y="{HEIGHT}""#)));
        assert!(dash.find("first").unwrap() < dash.find("second").unwrap());
        assert!(dash.contains(&format!(r#"height="{}""#, HEIGHT * 2.0)));
    }

    #[test]
    #[should_panic(expected = "empty dashboard")]
    fn empty_dashboard_panics() {
        let _ = stack_vertical(&[]);
    }

    #[test]
    fn zero_values_do_not_divide_by_zero() {
        let svg = grouped_bars("t", "y", &["a"], &[("s", vec![0.0])]);
        assert!(svg.contains("</svg>"));
        let svg = lines("t", "x", "y", &[("s", vec![(0.0, 0.0), (0.0, 0.0)])]);
        assert!(svg.contains("</svg>"));
    }
}
