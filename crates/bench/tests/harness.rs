//! Integration tests for the parallel experiment harness: deterministic
//! fan-out (the merged document is a pure function of the grid, for any
//! `--jobs`), grid edge cases, panic isolation, and option parsing.

use faasmem_bench::harness::{
    run_grid, validate_grid, BenchCase, ConfigCase, ExperimentGrid, HarnessOptions, PolicySpec,
    SeedMix, TraceSpec, DEFAULT_CONFIG,
};
use faasmem_bench::{json, PolicyKind};
use faasmem_core::FaasMemPolicy;
use faasmem_faas::{FaultConfig, PlatformConfig};
use faasmem_sim::{FaultSpec, SimDuration, SimTime};
use faasmem_workload::{
    trace_io, BenchmarkSpec, FunctionId, Invocation, InvocationTrace, LoadClass,
};

fn quick_opts(jobs: usize) -> HarnessOptions {
    HarnessOptions {
        jobs,
        quick: true,
        ..HarnessOptions::default()
    }
}

/// A small but non-trivial grid: 2 traces × 2 benches × 3 policies.
fn sample_grid() -> ExperimentGrid {
    ExperimentGrid::new("harness_test_grid")
        .traces([
            TraceSpec::synth("high", 4242, LoadClass::High).seed_mix(SeedMix::XorNameLen),
            TraceSpec::synth("low", 4243, LoadClass::Low).bursty(true),
        ])
        .benches(
            ["json", "web"]
                .map(|app| BenchCase::single(BenchmarkSpec::by_name(app).expect("catalog"))),
        )
        .policy_kinds(PolicyKind::HEAD_TO_HEAD)
}

#[test]
fn merged_json_is_byte_identical_across_thread_counts() {
    let grid = sample_grid();
    let serial = run_grid(&grid, &quick_opts(1));
    let expected = serial.to_json().to_pretty();
    for jobs in [2, 4, 7] {
        let parallel = run_grid(&grid, &quick_opts(jobs));
        assert_eq!(
            parallel.to_json().to_pretty(),
            expected,
            "merged document diverged at jobs={jobs}"
        );
    }
}

#[test]
fn cells_are_enumerated_in_grid_order() {
    let run = run_grid(&sample_grid(), &quick_opts(3));
    assert_eq!(run.cells.len(), 12);
    let labels: Vec<String> = run
        .cells
        .iter()
        .map(|c| {
            format!(
                "{}/{}/{}/{}",
                c.labels.trace, c.labels.bench, c.labels.config, c.labels.policy
            )
        })
        .collect();
    // Nesting order: traces → benches → configs → policies.
    assert_eq!(labels[0], "high/json/default/Baseline");
    assert_eq!(labels[1], "high/json/default/TMO");
    assert_eq!(labels[2], "high/json/default/FaaSMem");
    assert_eq!(labels[3], "high/web/default/Baseline");
    assert_eq!(labels[6], "low/json/default/Baseline");
    assert_eq!(labels[11], "low/web/default/FaaSMem");
}

#[test]
fn empty_grid_runs_and_exports() {
    let grid = ExperimentGrid::new("empty");
    assert!(grid.is_empty());
    let run = run_grid(&grid, &quick_opts(4));
    assert_eq!(run.cells.len(), 0);
    assert_eq!(run.failures(), 0);
    let doc = run.to_json().to_pretty();
    let parsed = json::parse(&doc).expect("empty-grid document parses");
    assert_eq!(parsed.get("grid").and_then(|v| v.as_str()), Some("empty"));
    assert_eq!(
        parsed
            .get("cells")
            .and_then(|v| v.as_arr())
            .map(|a| a.len()),
        Some(0)
    );
}

#[test]
fn single_cell_grid() {
    let trace = InvocationTrace::from_invocations(
        vec![Invocation {
            at: SimTime::from_secs(5),
            function: FunctionId(0),
        }],
        SimTime::from_secs(60),
    );
    let grid = ExperimentGrid::new("single")
        .trace(TraceSpec::explicit("one-shot", trace))
        .bench(BenchCase::single(
            BenchmarkSpec::by_name("json").expect("catalog"),
        ))
        .policy_kinds([PolicyKind::Baseline]);
    assert_eq!(grid.len(), 1);
    // More workers than cells: jobs is clamped to the cell count.
    let run = run_grid(&grid, &quick_opts(8));
    assert_eq!(run.jobs, 1);
    let outcome = run.outcome(
        "one-shot",
        "json",
        DEFAULT_CONFIG,
        PolicyKind::Baseline.name(),
    );
    assert_eq!(outcome.trace_len, 1);
    assert_eq!(outcome.summary.requests_completed, 1);
    assert_eq!(outcome.summary.cold_starts, 1);
    assert!(
        outcome.faasmem.is_none(),
        "baseline publishes no FaaSMem stats"
    );
}

#[test]
fn panicking_cell_is_captured_while_others_complete() {
    let grid = ExperimentGrid::new("panics")
        .trace(TraceSpec::synth("high", 77, LoadClass::High))
        .bench(BenchCase::single(
            BenchmarkSpec::by_name("json").expect("catalog"),
        ))
        .policies([
            PolicySpec::Kind(PolicyKind::Baseline),
            PolicySpec::custom("exploding", || panic!("boom in policy factory")),
            PolicySpec::faasmem("faasmem-ok", || FaasMemPolicy::builder().build()),
        ]);
    let run = run_grid(&grid, &quick_opts(2));
    assert_eq!(run.cells.len(), 3);
    assert_eq!(run.failures(), 1);

    let failed = run.cell("high", "json", DEFAULT_CONFIG, "exploding");
    let msg = failed
        .outcome
        .as_ref()
        .expect_err("cell must have panicked");
    assert!(
        msg.contains("boom in policy factory"),
        "panic message lost: {msg}"
    );
    // The report carries enough context to replay the cell stand-alone.
    assert!(
        msg.contains("cell[trace=high, bench=json, config=default, policy=exploding]"),
        "panic message lacks cell coordinates: {msg}"
    );
    assert!(
        msg.contains("seed=77") && msg.contains("fault_seed=none"),
        "panic message lacks seeds: {msg}"
    );

    // Neighbours on the same workers still ran to completion.
    assert!(
        run.outcome("high", "json", DEFAULT_CONFIG, PolicyKind::Baseline.name())
            .summary
            .requests_completed
            > 0
    );
    assert!(run
        .outcome("high", "json", DEFAULT_CONFIG, "faasmem-ok")
        .faasmem
        .is_some());

    // The failure is visible in the exported document.
    let doc = run.to_json();
    let cells = doc
        .get("cells")
        .and_then(|v| v.as_arr())
        .expect("cells array");
    let statuses: Vec<&str> = cells
        .iter()
        .filter_map(|c| c.get("status").and_then(|s| s.as_str()))
        .collect();
    assert_eq!(statuses, ["ok", "panicked", "ok"]);
}

#[test]
fn exported_files_roundtrip_through_the_parser() {
    let run = run_grid(&sample_grid(), &quick_opts(4));
    let dir = std::env::temp_dir().join(format!("faasmem-harness-test-{}", std::process::id()));
    let main = run.write_results(&dir).expect("write results");
    let text = std::fs::read_to_string(&main).expect("read main document");
    let parsed = json::parse(&text).expect("main document parses");
    assert_eq!(
        parsed.get("grid").and_then(|v| v.as_str()),
        Some("harness_test_grid")
    );
    assert_eq!(parsed.get("quick"), Some(&json::JsonValue::Bool(true)));

    let timing = std::fs::read_to_string(dir.join("harness_test_grid.timing.json"))
        .expect("read timing document");
    let timing = json::parse(&timing).expect("timing document parses");
    assert_eq!(timing.get("jobs").and_then(|v| v.as_num()), Some(4.0));
    // Wall-clock lives only in the timing file, never in the main one.
    assert!(
        text.find("wall").is_none(),
        "main document must not contain wall-clock data"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quick_mode_truncates_synthesized_traces() {
    let grid = ExperimentGrid::new("quick_check")
        .trace(TraceSpec::synth("high", 4242, LoadClass::High))
        .bench(BenchCase::single(
            BenchmarkSpec::by_name("json").expect("catalog"),
        ))
        .policy_kinds([PolicyKind::Baseline]);
    let quick = run_grid(&grid, &quick_opts(1));
    let full = run_grid(
        &grid,
        &HarnessOptions {
            jobs: 1,
            quick: false,
            ..HarnessOptions::default()
        },
    );
    let quick_len = quick
        .outcome("high", "json", DEFAULT_CONFIG, PolicyKind::Baseline.name())
        .trace_len;
    let full_len = full
        .outcome("high", "json", DEFAULT_CONFIG, PolicyKind::Baseline.name())
        .trace_len;
    assert!(quick.quick && !full.quick);
    assert!(
        quick_len < full_len,
        "quick trace ({quick_len}) must be shorter than the full one ({full_len})"
    );
}

#[test]
fn panicking_chaos_cell_records_its_fault_seed() {
    let chaos = PlatformConfig {
        faults: Some(FaultConfig {
            spec: FaultSpec::new(0xBAD5EED)
                .outages(SimDuration::from_mins(5), SimDuration::from_secs(30)),
            ..FaultConfig::default()
        }),
        ..PlatformConfig::default()
    };
    let grid = ExperimentGrid::new("chaos_panics")
        .trace(TraceSpec::synth("high", 78, LoadClass::High))
        .bench(BenchCase::single(
            BenchmarkSpec::by_name("json").expect("catalog"),
        ))
        .config(ConfigCase::new("chaos", chaos))
        .policy(PolicySpec::custom("exploding", || panic!("kaboom")));
    let run = run_grid(&grid, &quick_opts(1));
    let failed = run.cell("high", "json", "chaos", "exploding");
    let msg = failed
        .outcome
        .as_ref()
        .expect_err("cell must have panicked");
    assert!(
        msg.contains(&format!("fault_seed={}", 0xBAD5EEDu64)),
        "fault seed missing: {msg}"
    );

    // Both seeds land in the exported document for the failed cell.
    let doc = run.to_json();
    let cell = &doc.get("cells").and_then(|v| v.as_arr()).expect("cells")[0];
    assert_eq!(cell.get("seed").and_then(|v| v.as_num()), Some(78.0));
    assert_eq!(
        cell.get("fault_seed").and_then(|v| v.as_num()),
        Some(0xBAD5EEDu64 as f64)
    );
}

#[test]
fn lossy_trace_skip_count_reaches_the_export() {
    let text = "# faasmem-trace v1 horizon_micros=60000000\n\
                5000000,0\njunk-row\n9000000,0\n";
    let lossy = trace_io::from_str_lossy(text).expect("header parses");
    assert_eq!(lossy.skipped_lines, 1);
    let grid = ExperimentGrid::new("lossy_import")
        .trace(TraceSpec::explicit_lossy("salvaged", lossy))
        .bench(BenchCase::single(
            BenchmarkSpec::by_name("json").expect("catalog"),
        ))
        .policy_kinds([PolicyKind::Baseline]);
    let run = run_grid(&grid, &quick_opts(1));
    let outcome = run.outcome("salvaged", "json", DEFAULT_CONFIG, "Baseline");
    assert_eq!(outcome.trace_len, 2);
    assert_eq!(outcome.trace_skipped_rows, 1);

    let doc = run.to_json();
    let cell = &doc.get("cells").and_then(|v| v.as_arr()).expect("cells")[0];
    assert_eq!(
        cell.get("trace_skipped_rows").and_then(|v| v.as_num()),
        Some(1.0)
    );
}

#[test]
fn clean_cells_export_no_skip_or_fault_fields() {
    let run = run_grid(&sample_grid(), &quick_opts(1));
    let text = run.to_json().to_pretty();
    // Additive fields must stay invisible for fault-free, clean-trace
    // grids so documents written before they existed stay byte-identical.
    assert!(!text.contains("trace_skipped_rows"));
    assert!(!text.contains("fault_seed"));
    assert!(!text.contains("\"faults\""));
    // Same contract for the anatomy layer: off by default, so
    // pre-anatomy documents never change shape.
    assert!(!text.contains("memory_anatomy"));
    assert!(!text.contains("function_waste"));
}

#[test]
fn anatomy_grid_is_deterministic_across_thread_and_shard_counts() {
    let grid = ExperimentGrid::new("anatomy_grid")
        .traces([
            TraceSpec::synth("high", 4242, LoadClass::High),
            TraceSpec::synth("low", 4243, LoadClass::Low).bursty(true),
        ])
        .benches(
            ["json", "web"]
                .map(|app| BenchCase::single(BenchmarkSpec::by_name(app).expect("catalog"))),
        )
        .config(ConfigCase::new(
            "anatomy",
            PlatformConfig {
                memory_anatomy: true,
                ..PlatformConfig::default()
            },
        ))
        .policy_kinds([PolicyKind::Baseline, PolicyKind::FaasMem]);
    let serial = run_grid(&grid, &quick_opts(1)).to_json().to_pretty();
    assert!(
        serial.contains("\"memory_anatomy\""),
        "anatomy runs must export the block"
    );
    assert!(
        serial.contains("\"function_waste\""),
        "anatomy runs must export per-function ledgers"
    );
    assert!(serial.contains("\"conservation_violations\": 0"));
    for jobs in [2, 5] {
        let parallel = run_grid(&grid, &quick_opts(jobs)).to_json().to_pretty();
        assert_eq!(parallel, serial, "anatomy document diverged at jobs={jobs}");
    }
    for shards in [2, 4] {
        let opts = HarnessOptions {
            shards: Some(shards),
            ..quick_opts(1)
        };
        let sharded = run_grid(&grid, &opts).to_json().to_pretty();
        assert_eq!(
            sharded, serial,
            "anatomy document diverged at shards={shards}"
        );
    }
}

#[test]
fn chaos_grid_is_deterministic_across_thread_counts() {
    let chaos = PlatformConfig {
        faults: Some(FaultConfig {
            spec: FaultSpec::new(0xFA17)
                .outages(SimDuration::from_mins(2), SimDuration::from_secs(20))
                .crashes(SimDuration::from_mins(3)),
            slo: Some(SimDuration::from_secs(2)),
            ..FaultConfig::default()
        }),
        ..PlatformConfig::default()
    };
    let grid = ExperimentGrid::new("chaos_grid")
        .traces([
            TraceSpec::synth("high", 4242, LoadClass::High),
            TraceSpec::synth("low", 4243, LoadClass::Low).bursty(true),
        ])
        .benches(
            ["json", "web"]
                .map(|app| BenchCase::single(BenchmarkSpec::by_name(app).expect("catalog"))),
        )
        .config(ConfigCase::new("chaos", chaos))
        .policy_kinds([PolicyKind::Baseline, PolicyKind::FaasMem]);
    let serial = run_grid(&grid, &quick_opts(1)).to_json().to_pretty();
    assert!(
        serial.contains("\"faults\""),
        "chaos runs must export the block"
    );
    for jobs in [2, 5] {
        let parallel = run_grid(&grid, &quick_opts(jobs)).to_json().to_pretty();
        assert_eq!(parallel, serial, "chaos document diverged at jobs={jobs}");
    }
}

/// Quick options with tracing enabled. `run_grid` only records events
/// when `trace` is set; the path itself is used by `run_and_export`,
/// which these tests never call, so nothing is written.
fn traced_opts(jobs: usize) -> HarnessOptions {
    HarnessOptions {
        trace: Some(std::path::PathBuf::from("unused.jsonl")),
        ..quick_opts(jobs)
    }
}

#[test]
fn trace_jsonl_is_byte_identical_across_thread_counts() {
    let grid = sample_grid();
    let serial = run_grid(&grid, &traced_opts(1)).trace_jsonl();
    assert!(
        serial.starts_with(
            "{\"cell\":0,\"t\":0,\"seq\":0,\"layer\":\"harness\",\"kind\":\"cell_start\""
        ),
        "first line must be cell 0's start event: {}",
        serial.lines().next().unwrap_or("")
    );
    assert!(
        serial.contains("\"kind\":\"cell_end\""),
        "every cell is bracketed"
    );
    for jobs in [4, 7] {
        let parallel = run_grid(&grid, &traced_opts(jobs)).trace_jsonl();
        assert_eq!(parallel, serial, "trace diverged at jobs={jobs}");
    }
    // The summary tool accepts the merged stream whole.
    let summary = faasmem_trace::summarize_jsonl(&serial).expect("trace summarizes");
    assert_eq!(summary.cells.len(), sample_grid().len());
}

#[test]
fn chrome_export_is_well_formed() {
    let grid = ExperimentGrid::new("chrome_check")
        .trace(TraceSpec::synth("high", 4242, LoadClass::High))
        .bench(BenchCase::single(
            BenchmarkSpec::by_name("json").expect("catalog"),
        ))
        .policy_kinds([PolicyKind::Baseline, PolicyKind::FaasMem]);
    let run = run_grid(&grid, &traced_opts(2));
    let doc = json::parse(&run.chrome_json()).expect("chrome document parses");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    for e in events {
        let ph = e.get("ph").and_then(|v| v.as_str()).expect("ph");
        assert!(
            ["B", "E", "i", "M"].contains(&ph),
            "unexpected phase {ph:?}: {e:?}"
        );
        assert!(e.get("pid").and_then(|v| v.as_num()).is_some(), "{e:?}");
        assert!(e.get("name").and_then(|v| v.as_str()).is_some(), "{e:?}");
        if ph != "M" {
            // Real events carry a thread and a timestamp; metadata rows
            // (process_name has no tid) only name things.
            assert!(e.get("tid").and_then(|v| v.as_num()).is_some(), "{e:?}");
            assert!(e.get("ts").and_then(|v| v.as_num()).is_some(), "{e:?}");
        }
    }
}

#[test]
fn trace_filter_restricts_layers() {
    let grid = ExperimentGrid::new("filter_check")
        .trace(TraceSpec::synth("high", 4242, LoadClass::High))
        .bench(BenchCase::single(
            BenchmarkSpec::by_name("json").expect("catalog"),
        ))
        .policy_kinds([PolicyKind::FaasMem]);
    let opts = HarnessOptions {
        trace_filter: faasmem_trace::LayerMask::only(faasmem_trace::TraceLayer::Container),
        ..traced_opts(1)
    };
    let jsonl = run_grid(&grid, &opts).trace_jsonl();
    assert!(!jsonl.is_empty());
    for line in jsonl.lines() {
        assert!(
            line.contains("\"layer\":\"container\""),
            "foreign layer leaked through the filter: {line}"
        );
    }
}

#[test]
fn validate_grid_flags_broken_configs() {
    let sound = ExperimentGrid::new("sound").config(ConfigCase::new(
        "chaos-ok",
        PlatformConfig {
            faults: Some(FaultConfig::default()),
            ..PlatformConfig::default()
        },
    ));
    assert!(validate_grid(&sound).is_empty());

    let bad_config = PlatformConfig {
        page_size: 0,
        ..PlatformConfig::default()
    };
    let broken = ExperimentGrid::new("broken").config(ConfigCase::new("nonsense", bad_config));
    let problems = validate_grid(&broken);
    assert_eq!(problems.len(), 1, "{problems:?}");
    assert!(problems[0].contains("config `nonsense`"), "{problems:?}");
    assert!(problems[0].contains("page size"), "{problems:?}");
}

#[test]
fn series_json_is_byte_identical_across_thread_counts() {
    let grid = sample_grid();
    let interval = SimDuration::from_secs(30);
    let opts = |jobs| HarnessOptions {
        series: Some(std::path::PathBuf::from("unused.series.json")),
        series_interval: interval,
        ..quick_opts(jobs)
    };
    let serial = run_grid(&grid, &opts(1)).series_json(interval).to_compact();
    for jobs in [2, 8] {
        let parallel = run_grid(&grid, &opts(jobs))
            .series_json(interval)
            .to_compact();
        assert_eq!(parallel, serial, "series document diverged at jobs={jobs}");
    }
    // Sanity: rows exist, ticks are boundary-aligned, all four groups
    // surfaced.
    let doc = json::parse(&serial).expect("series document parses");
    assert_eq!(
        doc.get("interval_us").and_then(|v| v.as_num()),
        Some(30_000_000.0)
    );
    let cells = doc.get("cells").and_then(|v| v.as_arr()).expect("cells");
    assert_eq!(cells.len(), sample_grid().len());
    let ticks = cells[0].get("t_us").and_then(|v| v.as_arr()).expect("t_us");
    assert!(ticks.len() > 1, "quick run must cross several boundaries");
    for t in ticks {
        let t = t.as_num().expect("tick") as u64;
        assert_eq!(t % 30_000_000, 0, "off-boundary tick {t}");
    }
    for prefix in ["faas.", "mem.", "pool.", "registry."] {
        assert!(
            serial.contains(&format!("\"{prefix}")),
            "missing series group {prefix}*"
        );
    }
}

#[test]
fn enabling_series_does_not_change_the_main_document() {
    let grid = sample_grid();
    let plain = run_grid(&grid, &quick_opts(2)).to_json().to_pretty();
    let sampled_opts = HarnessOptions {
        series: Some(std::path::PathBuf::from("unused.series.json")),
        series_interval: SimDuration::from_secs(15),
        ..quick_opts(2)
    };
    let sampled = run_grid(&grid, &sampled_opts).to_json().to_pretty();
    assert_eq!(
        sampled, plain,
        "sampling must never perturb the deterministic results"
    );
}

#[test]
fn bench_json_carries_percentiles_and_phases() {
    let run = run_grid(&sample_grid(), &quick_opts(2));
    let phases = [(
        "simulate",
        faasmem_telemetry::profiler::PhaseStat {
            calls: 12,
            total_secs: 3.5,
            self_secs: 3.5,
        },
    )];
    let doc = run.bench_json(&phases);
    assert_eq!(
        doc.get("bench").and_then(|v| v.as_str()),
        Some("harness_quick")
    );
    assert_eq!(doc.get("cells").and_then(|v| v.as_num()), Some(12.0));
    let p50 = doc
        .get("cell_wall_p50_secs")
        .and_then(|v| v.as_num())
        .expect("p50");
    let p95 = doc
        .get("cell_wall_p95_secs")
        .and_then(|v| v.as_num())
        .expect("p95");
    assert!(p50 <= p95, "p50 {p50} must not exceed p95 {p95}");
    let phase = &doc.get("phases").and_then(|v| v.as_arr()).expect("phases")[0];
    assert_eq!(phase.get("name").and_then(|v| v.as_str()), Some("simulate"));
    assert_eq!(phase.get("calls").and_then(|v| v.as_num()), Some(12.0));
    // The BENCH document feeds straight into the comparator.
    let bench = faasmem_bench::perf::parse_bench(&doc).expect("comparable");
    assert_eq!(bench.metric("phase:simulate"), Some(3.5));
}

#[test]
fn options_parser() {
    let opts = HarnessOptions::parse(["--jobs", "3", "--quick", "--out", "exports"]);
    assert_eq!(opts.jobs, 3);
    assert!(opts.quick);
    assert_eq!(opts.out_dir, std::path::PathBuf::from("exports"));
    assert!(opts.trace.is_none());
    assert_eq!(opts.trace_filter, faasmem_trace::LayerMask::ALL);

    let opts = HarnessOptions::parse(["--trace", "t.jsonl", "--trace-filter", "pool,memory"]);
    assert_eq!(opts.trace, Some(std::path::PathBuf::from("t.jsonl")));
    assert!(opts.trace_filter.contains(faasmem_trace::TraceLayer::Pool));
    assert!(opts
        .trace_filter
        .contains(faasmem_trace::TraceLayer::Memory));
    assert!(!opts
        .trace_filter
        .contains(faasmem_trace::TraceLayer::Container));

    let opts = HarnessOptions::parse(["--trace=a/b.jsonl", "--trace-filter=bogus"]);
    assert_eq!(opts.trace, Some(std::path::PathBuf::from("a/b.jsonl")));
    // An unparseable filter is ignored, keeping the default mask.
    assert_eq!(opts.trace_filter, faasmem_trace::LayerMask::ALL);

    let opts = HarnessOptions::parse(["--jobs=5", "--out=x", "ignored", "--unknown-flag"]);
    assert_eq!(opts.jobs, 5);
    assert_eq!(opts.out_dir, std::path::PathBuf::from("x"));
    assert!(!opts.quick);

    // jobs is clamped to at least one worker.
    let opts = HarnessOptions::parse(["--jobs", "0"]);
    assert_eq!(opts.jobs, 1);

    // Telemetry flags: disabled by default...
    let opts = HarnessOptions::parse(["--quick"]);
    assert!(opts.series.is_none());
    assert!(!opts.profile);
    assert!(opts.sample_spec().is_none());

    // ...and parsed in both --flag VALUE and --flag=VALUE forms.
    let opts = HarnessOptions::parse([
        "--series",
        "out.series.json",
        "--series-interval",
        "2.5",
        "--series-select",
        "faas,pool",
        "--profile",
    ]);
    assert_eq!(
        opts.series,
        Some(std::path::PathBuf::from("out.series.json"))
    );
    assert_eq!(opts.series_interval, SimDuration::from_secs_f64(2.5));
    assert!(opts.profile);
    let spec = opts.sample_spec().expect("series path set");
    use faasmem_telemetry::SeriesGroup;
    assert!(spec.select.contains(SeriesGroup::Faas));
    assert!(spec.select.contains(SeriesGroup::Pool));
    assert!(!spec.select.contains(SeriesGroup::Mem));

    let opts = HarnessOptions::parse(["--series=s.json", "--series-select=bogus"]);
    assert_eq!(opts.series, Some(std::path::PathBuf::from("s.json")));
    // An unparseable selection is ignored, keeping the default mask.
    assert_eq!(
        opts.sample_spec().expect("enabled").select,
        faasmem_telemetry::SeriesMask::ALL
    );
}
