//! Integration tests for the parallel experiment harness: deterministic
//! fan-out (the merged document is a pure function of the grid, for any
//! `--jobs`), grid edge cases, panic isolation, and option parsing.

use faasmem_bench::harness::{
    run_grid, BenchCase, ExperimentGrid, HarnessOptions, PolicySpec, SeedMix, TraceSpec,
    DEFAULT_CONFIG,
};
use faasmem_bench::{json, PolicyKind};
use faasmem_core::FaasMemPolicy;
use faasmem_sim::SimTime;
use faasmem_workload::{BenchmarkSpec, FunctionId, Invocation, InvocationTrace, LoadClass};

fn quick_opts(jobs: usize) -> HarnessOptions {
    HarnessOptions {
        jobs,
        quick: true,
        ..HarnessOptions::default()
    }
}

/// A small but non-trivial grid: 2 traces × 2 benches × 3 policies.
fn sample_grid() -> ExperimentGrid {
    ExperimentGrid::new("harness_test_grid")
        .traces([
            TraceSpec::synth("high", 4242, LoadClass::High).seed_mix(SeedMix::XorNameLen),
            TraceSpec::synth("low", 4243, LoadClass::Low).bursty(true),
        ])
        .benches(
            ["json", "web"]
                .map(|app| BenchCase::single(BenchmarkSpec::by_name(app).expect("catalog"))),
        )
        .policy_kinds(PolicyKind::HEAD_TO_HEAD)
}

#[test]
fn merged_json_is_byte_identical_across_thread_counts() {
    let grid = sample_grid();
    let serial = run_grid(&grid, &quick_opts(1));
    let expected = serial.to_json().to_pretty();
    for jobs in [2, 4, 7] {
        let parallel = run_grid(&grid, &quick_opts(jobs));
        assert_eq!(
            parallel.to_json().to_pretty(),
            expected,
            "merged document diverged at jobs={jobs}"
        );
    }
}

#[test]
fn cells_are_enumerated_in_grid_order() {
    let run = run_grid(&sample_grid(), &quick_opts(3));
    assert_eq!(run.cells.len(), 12);
    let labels: Vec<String> = run
        .cells
        .iter()
        .map(|c| {
            format!(
                "{}/{}/{}/{}",
                c.labels.trace, c.labels.bench, c.labels.config, c.labels.policy
            )
        })
        .collect();
    // Nesting order: traces → benches → configs → policies.
    assert_eq!(labels[0], "high/json/default/Baseline");
    assert_eq!(labels[1], "high/json/default/TMO");
    assert_eq!(labels[2], "high/json/default/FaaSMem");
    assert_eq!(labels[3], "high/web/default/Baseline");
    assert_eq!(labels[6], "low/json/default/Baseline");
    assert_eq!(labels[11], "low/web/default/FaaSMem");
}

#[test]
fn empty_grid_runs_and_exports() {
    let grid = ExperimentGrid::new("empty");
    assert!(grid.is_empty());
    let run = run_grid(&grid, &quick_opts(4));
    assert_eq!(run.cells.len(), 0);
    assert_eq!(run.failures(), 0);
    let doc = run.to_json().to_pretty();
    let parsed = json::parse(&doc).expect("empty-grid document parses");
    assert_eq!(parsed.get("grid").and_then(|v| v.as_str()), Some("empty"));
    assert_eq!(
        parsed
            .get("cells")
            .and_then(|v| v.as_arr())
            .map(|a| a.len()),
        Some(0)
    );
}

#[test]
fn single_cell_grid() {
    let trace = InvocationTrace::from_invocations(
        vec![Invocation {
            at: SimTime::from_secs(5),
            function: FunctionId(0),
        }],
        SimTime::from_secs(60),
    );
    let grid = ExperimentGrid::new("single")
        .trace(TraceSpec::explicit("one-shot", trace))
        .bench(BenchCase::single(
            BenchmarkSpec::by_name("json").expect("catalog"),
        ))
        .policy_kinds([PolicyKind::Baseline]);
    assert_eq!(grid.len(), 1);
    // More workers than cells: jobs is clamped to the cell count.
    let run = run_grid(&grid, &quick_opts(8));
    assert_eq!(run.jobs, 1);
    let outcome = run.outcome(
        "one-shot",
        "json",
        DEFAULT_CONFIG,
        PolicyKind::Baseline.name(),
    );
    assert_eq!(outcome.trace_len, 1);
    assert_eq!(outcome.summary.requests_completed, 1);
    assert_eq!(outcome.summary.cold_starts, 1);
    assert!(
        outcome.faasmem.is_none(),
        "baseline publishes no FaaSMem stats"
    );
}

#[test]
fn panicking_cell_is_captured_while_others_complete() {
    let grid = ExperimentGrid::new("panics")
        .trace(TraceSpec::synth("high", 77, LoadClass::High))
        .bench(BenchCase::single(
            BenchmarkSpec::by_name("json").expect("catalog"),
        ))
        .policies([
            PolicySpec::Kind(PolicyKind::Baseline),
            PolicySpec::custom("exploding", || panic!("boom in policy factory")),
            PolicySpec::faasmem("faasmem-ok", || FaasMemPolicy::builder().build()),
        ]);
    let run = run_grid(&grid, &quick_opts(2));
    assert_eq!(run.cells.len(), 3);
    assert_eq!(run.failures(), 1);

    let failed = run.cell("high", "json", DEFAULT_CONFIG, "exploding");
    let msg = failed
        .outcome
        .as_ref()
        .expect_err("cell must have panicked");
    assert!(
        msg.contains("boom in policy factory"),
        "panic message lost: {msg}"
    );

    // Neighbours on the same workers still ran to completion.
    assert!(
        run.outcome("high", "json", DEFAULT_CONFIG, PolicyKind::Baseline.name())
            .summary
            .requests_completed
            > 0
    );
    assert!(run
        .outcome("high", "json", DEFAULT_CONFIG, "faasmem-ok")
        .faasmem
        .is_some());

    // The failure is visible in the exported document.
    let doc = run.to_json();
    let cells = doc
        .get("cells")
        .and_then(|v| v.as_arr())
        .expect("cells array");
    let statuses: Vec<&str> = cells
        .iter()
        .filter_map(|c| c.get("status").and_then(|s| s.as_str()))
        .collect();
    assert_eq!(statuses, ["ok", "panicked", "ok"]);
}

#[test]
fn exported_files_roundtrip_through_the_parser() {
    let run = run_grid(&sample_grid(), &quick_opts(4));
    let dir = std::env::temp_dir().join(format!("faasmem-harness-test-{}", std::process::id()));
    let main = run.write_results(&dir).expect("write results");
    let text = std::fs::read_to_string(&main).expect("read main document");
    let parsed = json::parse(&text).expect("main document parses");
    assert_eq!(
        parsed.get("grid").and_then(|v| v.as_str()),
        Some("harness_test_grid")
    );
    assert_eq!(parsed.get("quick"), Some(&json::JsonValue::Bool(true)));

    let timing = std::fs::read_to_string(dir.join("harness_test_grid.timing.json"))
        .expect("read timing document");
    let timing = json::parse(&timing).expect("timing document parses");
    assert_eq!(timing.get("jobs").and_then(|v| v.as_num()), Some(4.0));
    // Wall-clock lives only in the timing file, never in the main one.
    assert!(
        text.find("wall").is_none(),
        "main document must not contain wall-clock data"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quick_mode_truncates_synthesized_traces() {
    let grid = ExperimentGrid::new("quick_check")
        .trace(TraceSpec::synth("high", 4242, LoadClass::High))
        .bench(BenchCase::single(
            BenchmarkSpec::by_name("json").expect("catalog"),
        ))
        .policy_kinds([PolicyKind::Baseline]);
    let quick = run_grid(&grid, &quick_opts(1));
    let full = run_grid(
        &grid,
        &HarnessOptions {
            jobs: 1,
            quick: false,
            ..HarnessOptions::default()
        },
    );
    let quick_len = quick
        .outcome("high", "json", DEFAULT_CONFIG, PolicyKind::Baseline.name())
        .trace_len;
    let full_len = full
        .outcome("high", "json", DEFAULT_CONFIG, PolicyKind::Baseline.name())
        .trace_len;
    assert!(quick.quick && !full.quick);
    assert!(
        quick_len < full_len,
        "quick trace ({quick_len}) must be shorter than the full one ({full_len})"
    );
}

#[test]
fn options_parser() {
    let opts = HarnessOptions::parse(["--jobs", "3", "--quick", "--out", "exports"]);
    assert_eq!(opts.jobs, 3);
    assert!(opts.quick);
    assert_eq!(opts.out_dir, std::path::PathBuf::from("exports"));

    let opts = HarnessOptions::parse(["--jobs=5", "--out=x", "ignored", "--unknown-flag"]);
    assert_eq!(opts.jobs, 5);
    assert_eq!(opts.out_dir, std::path::PathBuf::from("x"));
    assert!(!opts.quick);

    // jobs is clamped to at least one worker.
    let opts = HarnessOptions::parse(["--jobs", "0"]);
    assert_eq!(opts.jobs, 1);
}
