//! FaaSMem configuration.

use faasmem_sim::SimDuration;

/// How a semi-warm container's memory drains to the pool (§6.2).
///
/// The paper offers two approaches — percentile-based (e.g. 1%/s, suited
/// to large functions) and amount-based (e.g. 1 MB/s, faster for small
/// functions) — and suggests providers pick per function. [`OffloadRate::Auto`]
/// applies that recommendation automatically by resident size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OffloadRate {
    /// Offload this fraction of the container's resident memory per
    /// second (paper example: 1%/s → `0.01`).
    PercentPerSec(f64),
    /// Offload a fixed number of MiB per second (paper example: 1 MB/s).
    MibPerSec(f64),
    /// Percentile-based for containers whose resident footprint exceeds
    /// `large_threshold_mib`, amount-based otherwise.
    Auto {
        /// Size boundary between "large" and "small" functions.
        large_threshold_mib: u64,
        /// Rate for large functions, fraction per second.
        percent_per_sec: f64,
        /// Rate for small functions, MiB per second.
        mib_per_sec: f64,
    },
}

impl OffloadRate {
    /// Offload rate in bytes/second for a container with the given
    /// resident footprint.
    pub fn bytes_per_sec(&self, resident_bytes: u64) -> f64 {
        const MIB: f64 = 1024.0 * 1024.0;
        match *self {
            OffloadRate::PercentPerSec(frac) => resident_bytes as f64 * frac,
            OffloadRate::MibPerSec(mib) => mib * MIB,
            OffloadRate::Auto {
                large_threshold_mib,
                percent_per_sec,
                mib_per_sec,
            } => {
                if resident_bytes > large_threshold_mib * 1024 * 1024 {
                    resident_bytes as f64 * percent_per_sec
                } else {
                    mib_per_sec * MIB
                }
            }
        }
    }
}

/// Semi-warm period configuration (§6).
#[derive(Debug, Clone, PartialEq)]
pub struct SemiWarmConfig {
    /// Which percentile of the container-reused-interval CDF sets the
    /// semi-warm start timing. The paper pessimistically uses the
    /// 99th percentile to protect the 95th-percentile latency (§6.1,
    /// §8.3.2).
    pub start_percentile: f64,
    /// Minimum reuse-interval samples before the CDF is trusted; below
    /// this, `default_start` applies.
    pub min_samples: usize,
    /// Semi-warm start timing used while the function's history is too
    /// thin to profile.
    pub default_start: SimDuration,
    /// Gradual offload rate.
    pub rate: OffloadRate,
    /// §8.3.2 extension: under bursty load, cold-start congestion makes
    /// the observed reuse intervals *underestimate* the ideal semi-warm
    /// timing, hurting the 99th percentile. When enabled, the gap behind
    /// every cold start (up to `cold_start_censor_cap`) is also fed into
    /// the reuse CDF as a censored sample, pushing the start timing out
    /// pessimistically.
    pub cold_start_aware: bool,
    /// Largest cold-start gap treated as a censored reuse sample.
    pub cold_start_censor_cap: SimDuration,
    /// Leap-style recall prefetching (related work [46]): when a request
    /// lands on a semi-warm container, pull the whole drained hot set
    /// back in one batch instead of letting the request demand-fault it
    /// page by page. Trades bandwidth (unneeded pages come back too) for
    /// per-fault CPU time on the critical path.
    pub recall_prefetch: bool,
}

impl Default for SemiWarmConfig {
    fn default() -> Self {
        SemiWarmConfig {
            start_percentile: 0.99,
            min_samples: 5,
            default_start: SimDuration::from_secs(240),
            rate: OffloadRate::Auto {
                large_threshold_mib: 256,
                percent_per_sec: 0.01,
                mib_per_sec: 1.0,
            },
            cold_start_aware: false,
            cold_start_censor_cap: SimDuration::from_mins(10),
            recall_prefetch: false,
        }
    }
}

/// Full FaaSMem configuration, including the ablation switches used by
/// the Fig 13 experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct FaasMemConfig {
    /// Enables Pucket segregation and the segment-wise policies
    /// (reactive + window + rollback). Disabled in the "w/o Pucket"
    /// ablation.
    pub enable_pucket: bool,
    /// Enables the semi-warm period. Disabled in the "w/o Semi-warm"
    /// ablation.
    pub enable_semiwarm: bool,
    /// Maintenance tick period (drives semi-warm gradual offloading).
    pub tick: SimDuration,
    /// Descent-gradient threshold below which the Init-Pucket request
    /// window closes: the window closes when fewer than this fraction of
    /// init pages left the inactive list over the last request (§5.2).
    pub window_epsilon: f64,
    /// Consecutive below-epsilon requests required to close the window.
    pub window_stable_rounds: u32,
    /// Hard cap on the request window (the paper's Web example uses ~20).
    pub window_cap: u32,
    /// Minimum time between hot-page-pool rollbacks — the paper's `t`
    /// parameter; ≥ 10 s keeps rollback overhead under 0.1% (§8.5).
    pub rollback_min_interval: SimDuration,
    /// Semi-warm settings.
    pub semiwarm: SemiWarmConfig,
}

impl FaasMemConfig {
    /// Checks the configuration without panicking, returning one
    /// human-readable message per problem (empty `Err` never occurs;
    /// `Ok(())` means valid). The builder's `build` enforces the same
    /// core invariants via assertions; drivers call this first so a bad
    /// grid fails at startup with messages instead of a backtrace
    /// mid-run.
    ///
    /// # Errors
    ///
    /// `Err` carries every problem found.
    pub fn validate(&self) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        if !(self.semiwarm.start_percentile > 0.0 && self.semiwarm.start_percentile <= 1.0) {
            problems.push(format!(
                "faasmem config: start percentile {} out of (0, 1]",
                self.semiwarm.start_percentile
            ));
        }
        if self.tick.is_zero() {
            problems.push("faasmem config: tick must be positive".into());
        }
        if self.window_cap < 1 {
            problems.push("faasmem config: window cap must be at least 1".into());
        }
        if !(self.window_epsilon.is_finite() && self.window_epsilon >= 0.0) {
            problems.push(format!(
                "faasmem config: window epsilon {} must be finite and non-negative",
                self.window_epsilon
            ));
        }
        if self.window_stable_rounds == 0 {
            problems.push("faasmem config: window stable rounds must be at least 1".into());
        }
        let rate_positive = |label: &str, v: f64, problems: &mut Vec<String>| {
            if !(v.is_finite() && v > 0.0) {
                problems.push(format!(
                    "faasmem config: semi-warm {label} rate {v} must be finite and positive"
                ));
            }
        };
        match self.semiwarm.rate {
            OffloadRate::PercentPerSec(frac) => rate_positive("percent", frac, &mut problems),
            OffloadRate::MibPerSec(mib) => rate_positive("amount", mib, &mut problems),
            OffloadRate::Auto {
                percent_per_sec,
                mib_per_sec,
                ..
            } => {
                rate_positive("percent", percent_per_sec, &mut problems);
                rate_positive("amount", mib_per_sec, &mut problems);
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }
}

impl Default for FaasMemConfig {
    fn default() -> Self {
        FaasMemConfig {
            enable_pucket: true,
            enable_semiwarm: true,
            tick: SimDuration::from_secs(1),
            window_epsilon: 0.005,
            window_stable_rounds: 2,
            window_cap: 20,
            rollback_min_interval: SimDuration::from_secs(10),
            semiwarm: SemiWarmConfig::default(),
        }
    }
}

/// Builder for [`FaasMemConfig`].
#[derive(Debug, Clone, Default)]
pub struct FaasMemConfigBuilder {
    config: FaasMemConfig,
}

impl FaasMemConfigBuilder {
    /// Starts from the defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts from an existing configuration, so further setters compose.
    pub fn from_config(config: FaasMemConfig) -> Self {
        FaasMemConfigBuilder { config }
    }

    /// Toggles Pucket segregation (ablation switch).
    pub fn enable_pucket(mut self, on: bool) -> Self {
        self.config.enable_pucket = on;
        self
    }

    /// Toggles the semi-warm period (ablation switch).
    pub fn enable_semiwarm(mut self, on: bool) -> Self {
        self.config.enable_semiwarm = on;
        self
    }

    /// Sets the maintenance tick period.
    pub fn tick(mut self, tick: SimDuration) -> Self {
        self.config.tick = tick;
        self
    }

    /// Sets the window-close gradient threshold.
    pub fn window_epsilon(mut self, epsilon: f64) -> Self {
        self.config.window_epsilon = epsilon;
        self
    }

    /// Sets the request-window hard cap.
    pub fn window_cap(mut self, cap: u32) -> Self {
        self.config.window_cap = cap;
        self
    }

    /// Sets the consecutive below-epsilon rounds needed to close the
    /// window. Combine a huge value with `window_cap(w)` to force a
    /// fixed window of exactly `w` (ablation experiments).
    pub fn window_stable_rounds(mut self, rounds: u32) -> Self {
        self.config.window_stable_rounds = rounds;
        self
    }

    /// Sets the minimum rollback interval `t`.
    pub fn rollback_min_interval(mut self, t: SimDuration) -> Self {
        self.config.rollback_min_interval = t;
        self
    }

    /// Sets the semi-warm configuration.
    pub fn semiwarm(mut self, semiwarm: SemiWarmConfig) -> Self {
        self.config.semiwarm = semiwarm;
        self
    }

    /// Enables the §8.3.2 cold-start-aware semi-warm timing extension.
    pub fn cold_start_aware(mut self, on: bool) -> Self {
        self.config.semiwarm.cold_start_aware = on;
        self
    }

    /// Enables Leap-style batch prefetching of the drained hot set when a
    /// request interrupts a semi-warm container.
    pub fn recall_prefetch(mut self, on: bool) -> Self {
        self.config.semiwarm.recall_prefetch = on;
        self
    }

    /// Finishes the configuration.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range values (percentile outside `(0, 1]`,
    /// non-positive tick, zero window cap).
    pub fn build(self) -> FaasMemConfig {
        let c = &self.config;
        assert!(
            c.semiwarm.start_percentile > 0.0 && c.semiwarm.start_percentile <= 1.0,
            "start percentile out of range"
        );
        assert!(!c.tick.is_zero(), "tick must be positive");
        assert!(c.window_cap >= 1, "window cap must be at least 1");
        assert!(c.window_epsilon >= 0.0, "epsilon must be non-negative");
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = FaasMemConfig::default();
        assert!(c.enable_pucket && c.enable_semiwarm);
        assert_eq!(c.semiwarm.start_percentile, 0.99);
        assert_eq!(c.rollback_min_interval, SimDuration::from_secs(10));
        assert_eq!(c.window_cap, 20);
    }

    #[test]
    fn rate_percent_scales_with_size() {
        let r = OffloadRate::PercentPerSec(0.01);
        assert_eq!(r.bytes_per_sec(1_000_000), 10_000.0);
        assert_eq!(r.bytes_per_sec(0), 0.0);
    }

    #[test]
    fn rate_amount_is_constant() {
        let r = OffloadRate::MibPerSec(2.0);
        assert_eq!(r.bytes_per_sec(1), 2.0 * 1024.0 * 1024.0);
        assert_eq!(r.bytes_per_sec(1 << 40), 2.0 * 1024.0 * 1024.0);
    }

    #[test]
    fn rate_auto_picks_by_threshold() {
        let r = OffloadRate::Auto {
            large_threshold_mib: 100,
            percent_per_sec: 0.01,
            mib_per_sec: 1.0,
        };
        let small = 50 * 1024 * 1024;
        let large = 200 * 1024 * 1024;
        assert_eq!(
            r.bytes_per_sec(small),
            1024.0 * 1024.0,
            "small → amount-based"
        );
        assert_eq!(
            r.bytes_per_sec(large),
            large as f64 * 0.01,
            "large → percentile-based"
        );
    }

    #[test]
    fn builder_roundtrip() {
        let c = FaasMemConfigBuilder::new()
            .enable_pucket(false)
            .enable_semiwarm(false)
            .tick(SimDuration::from_secs(2))
            .window_epsilon(0.01)
            .window_cap(5)
            .rollback_min_interval(SimDuration::from_secs(30))
            .semiwarm(SemiWarmConfig {
                start_percentile: 0.95,
                ..SemiWarmConfig::default()
            })
            .build();
        assert!(!c.enable_pucket && !c.enable_semiwarm);
        assert_eq!(c.tick, SimDuration::from_secs(2));
        assert_eq!(c.window_cap, 5);
        assert_eq!(c.semiwarm.start_percentile, 0.95);
    }

    #[test]
    fn validate_accepts_defaults_and_flags_nonsense() {
        assert!(FaasMemConfig::default().validate().is_ok());
        let bad = FaasMemConfig {
            tick: SimDuration::ZERO,
            window_cap: 0,
            window_epsilon: f64::NAN,
            window_stable_rounds: 0,
            semiwarm: SemiWarmConfig {
                start_percentile: 1.5,
                rate: OffloadRate::MibPerSec(-1.0),
                ..SemiWarmConfig::default()
            },
            ..FaasMemConfig::default()
        };
        let problems = bad.validate().unwrap_err();
        assert_eq!(problems.len(), 6, "{problems:?}");
        assert!(problems.iter().all(|p| p.starts_with("faasmem config:")));
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn bad_percentile_panics() {
        let _ = FaasMemConfigBuilder::new()
            .semiwarm(SemiWarmConfig {
                start_percentile: 1.5,
                ..SemiWarmConfig::default()
            })
            .build();
    }

    #[test]
    #[should_panic(expected = "window cap")]
    fn zero_window_cap_panics() {
        let _ = FaasMemConfigBuilder::new().window_cap(0).build();
    }
}
