#![warn(missing_docs)]

//! The FaaSMem mechanism — the paper's primary contribution.
//!
//! FaaSMem observes that a serverless container's memory splits into three
//! segments with distinct access patterns (runtime / init / execution) and
//! offloads each with a tailored policy:
//!
//! * **Pucket** ([`Puckets`]) — page buckets delimited by MGLRU *time
//!   barriers* inserted when the runtime finishes loading and when
//!   initialization completes (§4). Pages revisited after segregation move
//!   to a shared **hot page pool**.
//! * **Reactive offload** (§5.1) — once the first request completes, every
//!   Runtime-Pucket page still inactive is offloaded: runtime memory not
//!   touched by init or the first request is almost never touched again.
//! * **Window-based offload** (§5.2, [`WindowTracker`]) — the Init Pucket
//!   is lazily offloaded after an adaptive *request window*, detected when
//!   the descent gradient of remaining inactive init pages approaches
//!   zero.
//! * **Periodic rollback** (§5.3, [`RollbackCycle`]) — the hot page pool
//!   is periodically rolled back into the Puckets and re-observed for one
//!   request window; pages that stay untouched are offloaded. A minimum
//!   interval `t` bounds the overhead.
//! * **Semi-warm period** (§6, [`SemiWarm`]) — after a per-function
//!   pessimistic 99th-percentile of the container-reuse-interval CDF, even
//!   hot pages are *gradually* offloaded (percentile- or amount-based
//!   rate) under global bandwidth control, trading a bounded tail-latency
//!   hit for large keep-alive memory savings.
//!
//! [`FaasMemPolicy`] composes all of the above into a
//! [`MemoryPolicy`](faasmem_faas::MemoryPolicy) for the platform in
//! `faasmem-faas`. Every component can be disabled independently for the
//! paper's ablation study (Fig 13).
//!
//! # Examples
//!
//! ```
//! use faasmem_core::FaasMemPolicy;
//! use faasmem_faas::PlatformSim;
//! use faasmem_workload::{BenchmarkSpec, FunctionId, LoadClass, TraceSynthesizer};
//! use faasmem_sim::SimTime;
//!
//! let trace = TraceSynthesizer::new(7)
//!     .load_class(LoadClass::High)
//!     .duration(SimTime::from_mins(10))
//!     .synthesize_for(FunctionId(0));
//! let mut sim = PlatformSim::builder()
//!     .register_function(BenchmarkSpec::by_name("json").unwrap())
//!     .policy(FaasMemPolicy::builder().build())
//!     .build();
//! let report = sim.run(&trace);
//! assert!(report.pool_stats.bytes_out > 0); // cold pages were offloaded
//! ```

pub mod config;
pub mod policy;
pub mod pucket;
pub mod rollback;
pub mod semiwarm;
pub mod stats;
pub mod window;

pub use config::{FaasMemConfig, FaasMemConfigBuilder, OffloadRate, SemiWarmConfig};
pub use policy::FaasMemPolicy;
pub use pucket::{PromoteSummary, PucketKind, Puckets};
pub use rollback::{RollbackCycle, RollbackPhase};
pub use semiwarm::SemiWarm;
pub use stats::{FaasMemStats, SemiWarmRecord, StatsHandle};
pub use window::WindowTracker;
