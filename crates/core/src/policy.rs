//! [`FaasMemPolicy`]: the full mechanism wired into the platform.

use std::collections::HashMap;
use std::rc::Rc;

use faasmem_faas::{ContainerId, ContainerStage, MemoryPolicy, PolicyCtx};
use faasmem_mem::PageId;
use faasmem_sim::SimDuration;

use crate::config::{FaasMemConfig, FaasMemConfigBuilder};
use crate::pucket::{PucketKind, Puckets};
use crate::rollback::{RollbackAction, RollbackCycle};
use crate::semiwarm::{SemiWarm, SemiWarmActivity};
use crate::stats::{new_stats_handle, SemiWarmRecord, StatsHandle};
use crate::window::WindowTracker;

/// Per-container policy state.
#[derive(Debug)]
struct CState {
    puckets: Puckets,
    window: Option<WindowTracker>,
    runtime_offloaded: bool,
    rollback: RollbackCycle,
    activity: SemiWarmActivity,
    runtime_recalls: u64,
}

impl CState {
    fn new(rollback_min_interval: SimDuration) -> Self {
        CState {
            puckets: Puckets::new(),
            window: None,
            runtime_offloaded: false,
            rollback: RollbackCycle::new(rollback_min_interval),
            activity: SemiWarmActivity::default(),
            runtime_recalls: 0,
        }
    }
}

/// The FaaSMem memory policy: Pucket segregation, reactive + window-based
/// cold-page offloading, periodic rollback, and the semi-warm period.
///
/// Build with [`FaasMemPolicy::builder`]; pass the result to
/// [`PlatformSim::builder().policy(...)`](faasmem_faas::PlatformBuilder::policy).
/// Keep a clone of [`FaasMemPolicy::stats`] to read mechanism-level
/// measurements after the run.
#[derive(Debug)]
pub struct FaasMemPolicy {
    config: FaasMemConfig,
    semiwarm: SemiWarm,
    containers: HashMap<ContainerId, CState>,
    /// Per-function time of the most recent request start, for the
    /// cold-start-aware timing extension.
    last_seen: HashMap<faasmem_faas::FunctionId, faasmem_sim::SimTime>,
    stats: StatsHandle,
    /// Reusable id buffer for offload candidate collection — keeps the
    /// per-request and per-tick hot paths allocation-free.
    scratch_ids: Vec<PageId>,
    /// Reusable buffer for promotion scan hits.
    scratch_hits: Vec<(PageId, bool)>,
}

/// Builder for [`FaasMemPolicy`].
#[derive(Debug, Default)]
pub struct FaasMemPolicyBuilder {
    config: FaasMemConfigBuilder,
}

impl FaasMemPolicyBuilder {
    /// Applies a pre-built configuration.
    pub fn config(mut self, config: FaasMemConfig) -> Self {
        self.config = FaasMemConfigBuilder::default();
        // Rebuild from the given config so later setters still compose.
        self.config = FaasMemConfigBuilder::from_config(config);
        self
    }

    /// Ablation switch: disable Pucket segregation ("w/o Pucket").
    pub fn without_pucket(mut self) -> Self {
        self.config = std::mem::take(&mut self.config).enable_pucket(false);
        self
    }

    /// Ablation switch: disable the semi-warm period ("w/o Semi-warm").
    pub fn without_semiwarm(mut self) -> Self {
        self.config = std::mem::take(&mut self.config).enable_semiwarm(false);
        self
    }

    /// Finishes the policy.
    pub fn build(self) -> FaasMemPolicy {
        let config = self.config.build();
        FaasMemPolicy {
            semiwarm: SemiWarm::new(config.semiwarm.clone()),
            config,
            containers: HashMap::new(),
            last_seen: HashMap::new(),
            stats: new_stats_handle(),
            scratch_ids: Vec::new(),
            scratch_hits: Vec::new(),
        }
    }
}

impl FaasMemPolicy {
    /// Starts building a policy with default (paper) parameters.
    pub fn builder() -> FaasMemPolicyBuilder {
        FaasMemPolicyBuilder::default()
    }

    /// A policy with all defaults.
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// A clone of the shared stats handle; read it after the run.
    pub fn stats(&self) -> StatsHandle {
        Rc::clone(&self.stats)
    }

    /// The active configuration.
    pub fn config(&self) -> &FaasMemConfig {
        &self.config
    }

    fn state_mut(&mut self, id: ContainerId) -> &mut CState {
        let t = self.config.rollback_min_interval;
        self.containers.entry(id).or_insert_with(|| CState::new(t))
    }

    /// Offloads the inactive lists of the Runtime and Init Puckets.
    /// `ids` is a reusable scratch buffer (clobbered).
    fn offload_inactive(
        state: &CState,
        ctx: &mut PolicyCtx<'_>,
        kinds: &[PucketKind],
        ids: &mut Vec<PageId>,
    ) -> u32 {
        ids.clear();
        for &kind in kinds {
            state
                .puckets
                .append_inactive_pages(ctx.container.table(), kind, ids);
        }
        ctx.offload_pages(ids)
    }
}

impl Default for FaasMemPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryPolicy for FaasMemPolicy {
    fn name(&self) -> &'static str {
        match (self.config.enable_pucket, self.config.enable_semiwarm) {
            (true, true) => "FaaSMem",
            (false, true) => "FaaSMem w/o Pucket",
            (true, false) => "FaaSMem w/o Semi-warm",
            (false, false) => "FaaSMem w/o Pucket+Semi-warm",
        }
    }

    fn tick_interval(&self) -> Option<SimDuration> {
        self.config.enable_semiwarm.then_some(self.config.tick)
    }

    fn on_runtime_loaded(&mut self, ctx: &mut PolicyCtx<'_>) {
        let enable_pucket = self.config.enable_pucket;
        let state = self.state_mut(ctx.container.id());
        if enable_pucket {
            state
                .puckets
                .insert_runtime_init_barrier(ctx.container.table_mut());
        }
    }

    fn on_init_done(&mut self, ctx: &mut PolicyCtx<'_>) {
        let enable_pucket = self.config.enable_pucket;
        let epsilon = self.config.window_epsilon;
        let rounds = self.config.window_stable_rounds;
        let cap = self.config.window_cap;
        let state = self.state_mut(ctx.container.id());
        if !enable_pucket {
            return;
        }
        state
            .puckets
            .insert_init_exec_barrier(ctx.container.table_mut());
        // Allocation-time Access bits are not request accesses: clear
        // them so every Pucket starts with a full inactive list (§4).
        ctx.container.table_mut().clear_accessed();
        let init_total = u64::from(ctx.container.init_range().len());
        state.window = Some(WindowTracker::new(init_total, epsilon, rounds, cap));
    }

    fn on_request_start(&mut self, ctx: &mut PolicyCtx<'_>, idle: Option<SimDuration>) {
        let function = ctx.container.function();
        let now = ctx.now;
        match idle {
            Some(idle) => self.semiwarm.record_reuse_interval(function, idle),
            None if self.config.semiwarm.cold_start_aware => {
                // §8.3.2 extension: a cold start hides a would-be reuse.
                // Feed its gap into the CDF as a censored sample (long
                // gaps saturate at the cap) so the semi-warm timing stays
                // pessimistic under bursts.
                if let Some(&prev) = self.last_seen.get(&function) {
                    let gap = now.saturating_since(prev);
                    if !gap.is_zero() {
                        let censored = gap.min(self.config.semiwarm.cold_start_censor_cap);
                        self.semiwarm.record_reuse_interval(function, censored);
                    }
                }
            }
            None => {}
        }
        self.last_seen.insert(function, now);
        let recall_prefetch = self.config.semiwarm.recall_prefetch;
        let state = self.state_mut(ctx.container.id());
        if state.activity.is_active() {
            state.activity.exit(now);
            if recall_prefetch {
                // Leap-style recall: restore the entire semi-warm-drained
                // set in one batched page-in before execution touches it
                // page by page. Remote pages that were offloaded as cold
                // (Pucket inactive lists) stay remote — only the hot set
                // the drain took is pulled back.
                let remote_hot: Vec<PageId> = ctx.container.table().collect_ids(|_, m| {
                    m.state() == faasmem_mem::PageState::Remote && m.in_hot_pool()
                });
                ctx.prefetch_pages(&remote_hot);
            }
        }
    }

    fn on_request_end(&mut self, ctx: &mut PolicyCtx<'_>) {
        if !self.config.enable_pucket {
            return;
        }
        let id = ctx.container.id();
        let function = ctx.container.function();
        let now = ctx.now;
        let requests = ctx.container.requests_served();

        // 1. Promote revisited pages to the hot page pool. Promotions
        //    that faulted the page back from the pool are recalls (Fig 8).
        let promote = {
            let state = self
                .containers
                .get_mut(&id)
                .expect("state exists after cold start");
            state
                .puckets
                .promote_accessed_into(ctx.container.table_mut(), &mut self.scratch_hits)
        };
        if promote.runtime_recalled > 0 {
            let state = self.containers.get_mut(&id).expect("state exists");
            state.runtime_recalls += u64::from(promote.runtime_recalled);
        }

        // 2. Reactive offload of the Runtime Pucket after request #1
        //    (§5.1: "once the first request of a launching container is
        //    completed ... offload all inactive pages of the Runtime
        //    Pucket").
        if requests == 1 {
            let state = self.containers.get_mut(&id).expect("state exists");
            if !state.runtime_offloaded {
                state.runtime_offloaded = true;
                let state = self.containers.get(&id).expect("state exists");
                Self::offload_inactive(state, ctx, &[PucketKind::Runtime], &mut self.scratch_ids);
                self.stats
                    .borrow_mut()
                    .runtime_offloads
                    .entry(function)
                    .and_modify(|c| *c += 1)
                    .or_insert(1);
            }
        }

        // 3. Window-based offload of the Init Pucket (§5.2).
        let window_closed = {
            let state = self.containers.get_mut(&id).expect("state exists");
            let remaining = state
                .puckets
                .inactive_count(ctx.container.table(), PucketKind::Init);
            state.window.as_mut().and_then(|w| w.observe(remaining))
        };
        if let Some(window) = window_closed {
            let state = self.containers.get_mut(&id).expect("state exists");
            state.rollback.arm(window, now);
            let state = self.containers.get(&id).expect("state exists");
            Self::offload_inactive(state, ctx, &[PucketKind::Init], &mut self.scratch_ids);
            self.stats
                .borrow_mut()
                .windows_chosen
                .push((function, window));
            return; // the closing request does not also drive a rollback
        }

        // 4. Periodic rollback of the hot page pool (§5.3).
        let action = {
            let state = self.containers.get_mut(&id).expect("state exists");
            state.rollback.on_request_end(now)
        };
        match action {
            RollbackAction::None => {}
            RollbackAction::RollBack => {
                let state = self.containers.get_mut(&id).expect("state exists");
                state.puckets.rollback_hot_pool(ctx.container.table_mut());
                self.stats.borrow_mut().rollbacks += 1;
            }
            RollbackAction::OffloadLeftovers => {
                let state = self.containers.get(&id).expect("state exists");
                Self::offload_inactive(
                    state,
                    ctx,
                    &[PucketKind::Runtime, PucketKind::Init],
                    &mut self.scratch_ids,
                );
            }
        }
    }

    fn on_tick(&mut self, ctx: &mut PolicyCtx<'_>) {
        if !self.config.enable_semiwarm {
            return;
        }
        if ctx.container.stage() != ContainerStage::KeepAlive {
            return;
        }
        let now = ctx.now;
        let function = ctx.container.function();
        let idle = ctx.container.idle_since(now);
        if !self.semiwarm.should_be_semi_warm(function, idle) {
            return;
        }
        let id = ctx.container.id();
        let page_size = ctx.container.table().page_size();
        let resident = ctx.container.table().local_bytes() + ctx.container.table().remote_bytes();
        let throttle = ctx.governor.throttle_factor(now);
        let tick = self.config.tick;
        let budget = {
            let state = self.state_mut(id);
            state.activity.enter(now);
            let mut carry = state.activity.carry;
            let pages = self
                .semiwarm
                .pages_this_tick(resident, page_size, tick, throttle, &mut carry);
            // Write the carry back through the map borrow.
            self.containers
                .get_mut(&id)
                .expect("state exists")
                .activity
                .carry = carry;
            pages
        };
        if budget == 0 {
            return;
        }
        // Drain coldest-first: Pucket inactive lists, then the hot pool,
        // then (when Puckets are disabled) any remaining local page.
        let state = self.containers.get(&id).expect("state exists");
        let table = ctx.container.table();
        self.scratch_ids.clear();
        if self.config.enable_pucket {
            state
                .puckets
                .append_inactive_pages(table, PucketKind::Runtime, &mut self.scratch_ids);
            state
                .puckets
                .append_inactive_pages(table, PucketKind::Init, &mut self.scratch_ids);
            table.append_hot_pool_local(&mut self.scratch_ids);
        } else {
            table.append_local(&mut self.scratch_ids);
        }
        self.scratch_ids.truncate(budget as usize);
        let moved = ctx.offload_pages(&self.scratch_ids);
        if moved > 0 {
            let bytes = u64::from(moved) * page_size;
            self.containers
                .get_mut(&id)
                .expect("state exists")
                .activity
                .bytes_offloaded += bytes;
            self.stats.borrow_mut().semi_warm_bytes += bytes;
        }
    }

    fn on_container_recycled(&mut self, ctx: &mut PolicyCtx<'_>) {
        let id = ctx.container.id();
        let now = ctx.now;
        let Some(mut state) = self.containers.remove(&id) else {
            return; // recycled before the runtime even loaded
        };
        state.activity.exit(now);
        let mut stats = self.stats.borrow_mut();
        stats.semi_warm_records.push(SemiWarmRecord {
            function: ctx.container.function(),
            lifetime: now.saturating_since(ctx.container.created_at()),
            semi_warm_time: state.activity.total,
        });
        if state.runtime_recalls > 0 {
            *stats
                .runtime_recalls
                .entry(ctx.container.function())
                .or_default() += state.runtime_recalls;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasmem_faas::{FunctionId, PlatformSim};
    use faasmem_sim::SimTime;
    use faasmem_workload::{BenchmarkSpec, Invocation, InvocationTrace};

    fn trace(times_secs: &[u64]) -> InvocationTrace {
        let invs = times_secs
            .iter()
            .map(|&s| Invocation {
                at: SimTime::from_secs(s),
                function: FunctionId(0),
            })
            .collect();
        InvocationTrace::from_invocations(invs, SimTime::from_secs(3_000))
    }

    fn run(spec_name: &str, times: &[u64]) -> (faasmem_faas::RunReport, StatsHandle) {
        let policy = FaasMemPolicy::builder().build();
        let stats = policy.stats();
        let mut sim = PlatformSim::builder()
            .register_function(BenchmarkSpec::by_name(spec_name).unwrap())
            .policy(policy)
            .seed(5)
            .build();
        (sim.run(&trace(times)), stats)
    }

    #[test]
    fn reactive_offload_fires_after_first_request() {
        let (report, stats) = run("json", &[10]);
        // The json runtime is mostly cold: a big chunk must be remote
        // right after request #1.
        assert!(report.pool_stats.bytes_out > 0);
        assert_eq!(
            stats.borrow().runtime_offloads.get(&FunctionId(0)),
            Some(&1)
        );
        // Local memory after the first request must be well below the
        // base footprint (30 MiB runtime of which 24 MiB cold).
        let local_after = report
            .local_mem
            .value_at(SimTime::from_secs(20))
            .expect("recorded");
        let base = (BenchmarkSpec::by_name("json").unwrap().base_mib() * 1024 * 1024) as f64;
        assert!(
            local_after < base * 0.5,
            "local {local_after} vs base {base}"
        );
    }

    #[test]
    fn subsequent_requests_avoid_mass_recalls() {
        let (report, stats) = run("json", &[10, 40, 70, 100, 130]);
        assert_eq!(report.requests_completed, 5);
        // Fig 8: after the reactive offload, requests should hardly ever
        // fault runtime pages back.
        let recalls = stats
            .borrow()
            .runtime_recalls
            .get(&FunctionId(0))
            .copied()
            .unwrap_or(0);
        assert!(recalls <= 3, "recalls {recalls}");
        // And the warm requests keep baseline-level latency.
        let warm_faults: u32 = report
            .requests
            .iter()
            .filter(|r| !r.cold)
            .map(|r| r.faults)
            .sum();
        assert!(warm_faults <= 4, "warm faults {warm_faults}");
    }

    #[test]
    fn window_closes_and_offloads_init() {
        // 20 warm requests: enough to hit the 20-request window cap even
        // if Web's Pareto accesses keep surfacing fresh objects, so the
        // window is guaranteed to close for any RNG stream.
        let times: Vec<u64> = (0..20).map(|i| 10 + 20 * i).collect();
        let (_, stats) = run("web", &times);
        let windows = stats.borrow().windows_chosen.clone();
        assert!(
            !windows.is_empty(),
            "window must close within the 20-request cap"
        );
        let (_, w) = windows[0];
        assert!((1..=20).contains(&w));
    }

    #[test]
    fn semiwarm_drains_idle_container() {
        // One request, then a long idle: the default semi-warm start is
        // 60 s, so by 300 s the container should be substantially
        // drained.
        let (report, stats) = run("bert", &[10]);
        assert!(stats.borrow().semi_warm_bytes > 0, "semi-warm must offload");
        let late_local = report.local_mem.value_at(SimTime::from_secs(500)).unwrap();
        let early_local = report.local_mem.value_at(SimTime::from_secs(30)).unwrap();
        assert!(
            late_local < early_local * 0.8,
            "late {late_local} vs early {early_local}"
        );
        // Semi-warm time is recorded at recycle.
        let recs = stats.borrow().semi_warm_records.clone();
        assert_eq!(recs.len(), 1);
        assert!(recs[0].semi_warm_time > SimDuration::from_secs(100));
    }

    #[test]
    fn request_cancels_semiwarm_and_recalls_pages() {
        // Idle long enough to drain, then a second request.
        let (report, _) = run("bert", &[10, 400]);
        let second = &report.requests[1];
        assert!(!second.cold);
        assert!(second.faults > 0, "semi-warm start must recall hot pages");
        // The recall makes it slower than a pure warm hit but far
        // cheaper than a cold start (which costs ~6 s for bert).
        assert!(second.latency < SimDuration::from_secs(3));
    }

    #[test]
    fn ablation_without_pucket_keeps_memory_until_semiwarm() {
        let run_with = |builder: FaasMemPolicyBuilder| {
            let policy = builder.build();
            let mut sim = PlatformSim::builder()
                .register_function(BenchmarkSpec::by_name("json").unwrap())
                .policy(policy)
                .seed(5)
                .build();
            let t = trace(&[10, 30]);
            sim.run(&t)
        };
        let with_pucket = run_with(FaasMemPolicy::builder());
        let without = run_with(FaasMemPolicy::builder().without_pucket());
        // Early local memory (before semi-warm kicks in at 60 s idle):
        // pucket variant must already be lower.
        let at = SimTime::from_secs(45);
        let a = with_pucket.local_mem.value_at(at).unwrap();
        let b = without.local_mem.value_at(at).unwrap();
        assert!(a < b, "pucket {a} vs no-pucket {b}");
    }

    #[test]
    fn ablation_without_semiwarm_never_drains_idle() {
        let policy = FaasMemPolicy::builder().without_semiwarm().build();
        let stats = policy.stats();
        let mut sim = PlatformSim::builder()
            .register_function(BenchmarkSpec::by_name("bert").unwrap())
            .policy(policy)
            .seed(5)
            .build();
        let report = sim.run(&trace(&[10]));
        assert_eq!(stats.borrow().semi_warm_bytes, 0);
        // Hot init pages stay resident until recycle.
        let late = report.local_mem.value_at(SimTime::from_secs(500)).unwrap();
        assert!(
            late > 300.0 * 1024.0 * 1024.0,
            "hot set resident, got {late}"
        );
    }

    #[test]
    fn names_reflect_ablation() {
        assert_eq!(FaasMemPolicy::new().name(), "FaaSMem");
        assert_eq!(
            FaasMemPolicy::builder().without_pucket().build().name(),
            "FaaSMem w/o Pucket"
        );
        assert_eq!(
            FaasMemPolicy::builder().without_semiwarm().build().name(),
            "FaaSMem w/o Semi-warm"
        );
    }

    #[test]
    fn rollback_happens_under_sustained_load() {
        let times: Vec<u64> = (0..40).map(|i| 10 + i * 15).collect();
        let (_, stats) = run("web", &times);
        assert!(
            stats.borrow().rollbacks >= 1,
            "sustained load must roll back"
        );
    }

    #[test]
    fn cold_start_aware_timing_is_more_pessimistic() {
        // A bursty pattern: tight clusters of requests with cold starts
        // in between (cluster gaps beyond keep-alive but below the
        // censor cap).
        let build = |aware: bool| {
            let policy = FaasMemPolicy::builder()
                .config(
                    crate::FaasMemConfigBuilder::new()
                        .cold_start_aware(aware)
                        .build(),
                )
                .build();
            let stats = policy.stats();
            let mut sim = PlatformSim::builder()
                .register_function(BenchmarkSpec::by_name("json").unwrap())
                .policy(policy)
                .seed(5)
                .build();
            let mut times = Vec::new();
            for cluster in 0..4u64 {
                for i in 0..8u64 {
                    times.push(10 + cluster * 650 + i * 5);
                }
            }
            let report = sim.run(&trace(&times));
            (report, stats)
        };
        let (_r_base, s_base) = build(false);
        let (_r_aware, s_aware) = build(true);
        // The aware variant pushes the semi-warm start out (its reuse CDF
        // now contains the ~650 s censored cold-start gaps), so it drains
        // strictly less during the keep-alive windows.
        let base_bytes = s_base.borrow().semi_warm_bytes;
        let aware_bytes = s_aware.borrow().semi_warm_bytes;
        assert!(
            aware_bytes < base_bytes,
            "aware {aware_bytes} should drain less than base {base_bytes}"
        );
    }

    #[test]
    fn recall_prefetch_eliminates_demand_faults_on_semiwarm_hit() {
        // One request, a long idle that drains the container, then a
        // second request: without prefetch it demand-faults the hot set;
        // with prefetch the batch restores it first.
        let run_with = |prefetch: bool| {
            let policy = FaasMemPolicy::builder()
                .config(
                    crate::FaasMemConfigBuilder::new()
                        .recall_prefetch(prefetch)
                        .build(),
                )
                .build();
            let mut sim = PlatformSim::builder()
                .register_function(BenchmarkSpec::by_name("bert").unwrap())
                .policy(policy)
                .seed(5)
                .build();
            sim.run(&trace(&[10, 500]))
        };
        let plain = run_with(false);
        let prefetched = run_with(true);
        let second_faults = |r: &faasmem_faas::RunReport| r.requests[1].faults;
        assert!(
            second_faults(&plain) > 500,
            "plain faults {}",
            second_faults(&plain)
        );
        assert!(
            second_faults(&prefetched) < second_faults(&plain) / 5,
            "prefetched faults {} vs plain {}",
            second_faults(&prefetched),
            second_faults(&plain)
        );
        // Both recall the data (bytes_in comparable).
        assert!(prefetched.pool_stats.bytes_in >= plain.pool_stats.bytes_in / 2);
    }

    #[test]
    fn bandwidth_governor_throttles_simultaneous_drains() {
        // §6.2: when a burst makes many containers semi-warm at once, the
        // governor uniformly slows their gradual offload near link
        // saturation. Compare total drain progress over a fixed window on
        // a fast vs a nearly saturated link.
        use faasmem_pool::PoolConfig;
        let run_with_pool = |pool: PoolConfig| {
            let policy = FaasMemPolicy::builder().build();
            let stats = policy.stats();
            let config = faasmem_faas::PlatformConfig {
                pool,
                ..Default::default()
            };
            let mut sim = PlatformSim::builder()
                .register_function(BenchmarkSpec::by_name("bert").unwrap())
                .config(config)
                .policy(policy)
                .seed(5)
                .build();
            // Eight concurrent requests spawn eight containers, which all
            // go semi-warm together after the default 240 s.
            let times: Vec<u64> = vec![10; 8];
            let _ = sim.run(&trace(&times));
            let bytes = stats.borrow().semi_warm_bytes;
            bytes
        };
        let fast = run_with_pool(PoolConfig::infiniband_56g());
        // A link whose capacity is close to the aggregate drain rate:
        // the governor's throttle must visibly reduce progress.
        let slow = run_with_pool(PoolConfig {
            link_bytes_per_sec: 10 * 1024 * 1024, // 10 MiB/s
            ..PoolConfig::infiniband_56g()
        });
        assert!(
            slow < fast,
            "throttled drain {slow} must trail unthrottled {fast}"
        );
    }

    #[test]
    fn p95_latency_stays_near_baseline() {
        let times: Vec<u64> = (0..50).map(|i| 10 + i * 20).collect();
        let (mut faasmem_report, _) = run("json", &times);
        let mut base_sim = PlatformSim::builder()
            .register_function(BenchmarkSpec::by_name("json").unwrap())
            .seed(5)
            .build();
        let mut base_report = base_sim.run(&trace(&times));
        let p95_f = faasmem_report.p95_latency().as_secs_f64();
        let p95_b = base_report.p95_latency().as_secs_f64();
        assert!(
            p95_f <= p95_b * 1.15,
            "FaaSMem P95 {p95_f} vs baseline {p95_b} (paper: ≤ ~10% increase)"
        );
        // And it must save real memory.
        assert!(faasmem_report.avg_local_mib() < base_report.avg_local_mib() * 0.8);
    }
}
