//! Page Buckets (Puckets): time-barrier page segregation (paper §4).
//!
//! The kernel cannot tell which lifecycle stage allocated a page — the
//! cgroup LRU mixes them. FaaSMem's insight is that MGLRU *generations*
//! give an ordering: by creating a new generation exactly when the runtime
//! finishes loading (the Runtime-Init barrier) and again when user init
//! completes (the Init-Execution barrier), every page's generation number
//! reveals its segment. [`Puckets`] performs that classification and
//! maintains each Pucket's inactive list plus the shared hot page pool.

use faasmem_mem::{Generation, PageId, PageMeta, PageTable};

/// Which Pucket a page belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PucketKind {
    /// Pages allocated before the Runtime-Init barrier.
    Runtime,
    /// Pages between the two barriers.
    Init,
    /// Pages allocated after the Init-Execution barrier.
    Execution,
}

/// What a hot-pool promotion scan found.
///
/// After the Runtime Pucket has been reactively offloaded, any further
/// `runtime_promoted` pages are *recalls* — the Fig 8 metric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PromoteSummary {
    /// Runtime-Pucket pages promoted to the hot pool by this scan.
    pub runtime_promoted: u32,
    /// Init-Pucket pages promoted.
    pub init_promoted: u32,
    /// Promoted Runtime-Pucket pages that were *recalled from remote
    /// memory* by this request — the Fig 8 metric. Re-promotions of
    /// still-local pages after a rollback do not count.
    pub runtime_recalled: u32,
    /// Promoted Init-Pucket pages recalled from remote memory.
    pub init_recalled: u32,
}

/// The two time barriers of one container and the page classification /
/// maintenance operations built on them.
///
/// # Examples
///
/// ```
/// use faasmem_core::{PucketKind, Puckets};
/// use faasmem_mem::{PageTable, Segment, PAGE_SIZE_4K};
///
/// let mut table = PageTable::new(PAGE_SIZE_4K);
/// let runtime = table.alloc(Segment::Runtime, 8);
/// let mut puckets = Puckets::new();
/// puckets.insert_runtime_init_barrier(&mut table);
/// let init = table.alloc(Segment::Init, 4);
/// puckets.insert_init_exec_barrier(&mut table);
///
/// assert_eq!(puckets.classify(table.meta(runtime.start())), PucketKind::Runtime);
/// assert_eq!(puckets.classify(table.meta(init.start())), PucketKind::Init);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Puckets {
    runtime_init: Option<Generation>,
    init_exec: Option<Generation>,
}

impl Puckets {
    /// Creates the (not yet barriered) Pucket state for a new container.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts the Runtime-Init time barrier: called when the container
    /// runtime has finished loading.
    ///
    /// # Panics
    ///
    /// Panics if the barrier was already inserted.
    pub fn insert_runtime_init_barrier(&mut self, table: &mut PageTable) -> Generation {
        assert!(
            self.runtime_init.is_none(),
            "runtime-init barrier already inserted"
        );
        let gen = table.create_generation();
        self.runtime_init = Some(gen);
        gen
    }

    /// Inserts the Init-Execution time barrier: called when function
    /// initialization completes.
    ///
    /// # Panics
    ///
    /// Panics if called before the Runtime-Init barrier, or twice.
    pub fn insert_init_exec_barrier(&mut self, table: &mut PageTable) -> Generation {
        assert!(
            self.runtime_init.is_some(),
            "init-exec barrier before runtime-init"
        );
        assert!(
            self.init_exec.is_none(),
            "init-exec barrier already inserted"
        );
        let gen = table.create_generation();
        self.init_exec = Some(gen);
        gen
    }

    /// `true` once both barriers are in place.
    pub fn is_segregated(&self) -> bool {
        self.runtime_init.is_some() && self.init_exec.is_some()
    }

    /// Classifies a page by its generation relative to the barriers.
    /// Before any barrier exists every page is Runtime; between barrier
    /// insertions, pages after the first barrier are Init.
    pub fn classify(&self, meta: PageMeta) -> PucketKind {
        let gen = Generation(meta.generation());
        match (self.runtime_init, self.init_exec) {
            (None, _) => PucketKind::Runtime,
            (Some(ri), None) => {
                if gen < ri {
                    PucketKind::Runtime
                } else {
                    PucketKind::Init
                }
            }
            (Some(ri), Some(ie)) => {
                if gen < ri {
                    PucketKind::Runtime
                } else if gen < ie {
                    PucketKind::Init
                } else {
                    PucketKind::Execution
                }
            }
        }
    }

    /// The generation interval `[lo, hi)` a Pucket occupies given the
    /// current barriers, or `None` if the Pucket cannot hold pages yet.
    /// This is [`Puckets::classify`] inverted so page-table queries can
    /// run as a single interval test per page.
    fn gen_bounds(&self, kind: PucketKind) -> Option<(u32, u32)> {
        match (self.runtime_init, self.init_exec) {
            (None, _) => (kind == PucketKind::Runtime).then_some((0, u32::MAX)),
            (Some(ri), None) => match kind {
                PucketKind::Runtime => Some((0, ri.0)),
                PucketKind::Init => Some((ri.0, u32::MAX)),
                PucketKind::Execution => None,
            },
            (Some(ri), Some(ie)) => match kind {
                PucketKind::Runtime => Some((0, ri.0)),
                PucketKind::Init => Some((ri.0, ie.0)),
                PucketKind::Execution => Some((ie.0, u32::MAX)),
            },
        }
    }

    /// The inactive list of one Pucket: live local pages of that Pucket
    /// not currently in the hot page pool — the offloading candidates.
    pub fn inactive_pages(&self, table: &PageTable, kind: PucketKind) -> Vec<PageId> {
        let mut out = Vec::new();
        self.append_inactive_pages(table, kind, &mut out);
        out
    }

    /// Appends one Pucket's inactive list to `out` (no clear), ascending
    /// — the allocation-free path the semi-warm reclamation tick uses.
    pub fn append_inactive_pages(
        &self,
        table: &PageTable,
        kind: PucketKind,
        out: &mut Vec<PageId>,
    ) {
        if let Some((lo, hi)) = self.gen_bounds(kind) {
            table.append_inactive_in_gen_range(lo, hi, out);
        }
    }

    /// Number of inactive pages in one Pucket (cheaper than collecting).
    pub fn inactive_count(&self, table: &PageTable, kind: PucketKind) -> u64 {
        self.gen_bounds(kind)
            .map_or(0, |(lo, hi)| table.count_inactive_in_gen_range(lo, hi))
    }

    /// Pages currently in the shared hot page pool (any Pucket), local
    /// only.
    pub fn hot_pool_pages(&self, table: &PageTable) -> Vec<PageId> {
        let mut out = Vec::new();
        table.append_hot_pool_local(&mut out);
        out
    }

    /// Scans Access bits and promotes revisited Runtime/Init-Pucket pages
    /// into the hot page pool. Execution-Pucket accesses are ignored —
    /// the paper does not monitor that segment (§4).
    pub fn promote_accessed(&self, table: &mut PageTable) -> PromoteSummary {
        let mut scratch = Vec::new();
        self.promote_accessed_into(table, &mut scratch)
    }

    /// Allocation-free variant of [`Puckets::promote_accessed`]: the scan
    /// hits land in the caller-owned `scratch` buffer (clobbered).
    pub fn promote_accessed_into(
        &self,
        table: &mut PageTable,
        scratch: &mut Vec<(PageId, bool)>,
    ) -> PromoteSummary {
        table.scan_accessed_with_faults_into(scratch);
        let mut summary = PromoteSummary::default();
        for &(id, faulted) in scratch.iter() {
            let meta = table.meta(id);
            if meta.in_hot_pool() {
                continue;
            }
            match self.classify(meta) {
                PucketKind::Runtime => {
                    summary.runtime_promoted += 1;
                    if faulted {
                        summary.runtime_recalled += 1;
                    }
                    table.set_in_hot_pool(id, true);
                }
                PucketKind::Init => {
                    summary.init_promoted += 1;
                    if faulted {
                        summary.init_recalled += 1;
                    }
                    table.set_in_hot_pool(id, true);
                }
                PucketKind::Execution => {}
            }
        }
        summary
    }

    /// Rolls every hot-pool page back to its original Pucket's inactive
    /// list (§5.3). Returns how many pages were rolled back.
    pub fn rollback_hot_pool(&self, table: &mut PageTable) -> u32 {
        table.clear_local_hot_pool()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasmem_mem::{PageRange, Segment, PAGE_SIZE_4K};

    /// Builds a table with 10 runtime, 6 init and 4 exec pages, fully
    /// barriered.
    fn segregated() -> (PageTable, Puckets, PageRange, PageRange, PageRange) {
        let mut table = PageTable::new(PAGE_SIZE_4K);
        let runtime = table.alloc(Segment::Runtime, 10);
        let mut puckets = Puckets::new();
        puckets.insert_runtime_init_barrier(&mut table);
        let init = table.alloc(Segment::Init, 6);
        puckets.insert_init_exec_barrier(&mut table);
        let exec = table.alloc(Segment::Execution, 4);
        (table, puckets, runtime, init, exec)
    }

    #[test]
    fn generation_classification_matches_segments() {
        let (table, puckets, ..) = segregated();
        // The gen-based classification (what the kernel mechanism can
        // see) must agree with the segment tags (ground truth the
        // platform recorded at alloc time).
        for (_, m) in table.iter_live() {
            let expected = match m.segment() {
                Segment::Runtime => PucketKind::Runtime,
                Segment::Init => PucketKind::Init,
                Segment::Execution => PucketKind::Execution,
            };
            assert_eq!(puckets.classify(m), expected);
        }
    }

    #[test]
    fn before_barriers_everything_is_runtime() {
        let mut table = PageTable::new(PAGE_SIZE_4K);
        let r = table.alloc(Segment::Runtime, 2);
        let puckets = Puckets::new();
        assert!(!puckets.is_segregated());
        assert_eq!(puckets.classify(table.meta(r.start())), PucketKind::Runtime);
    }

    #[test]
    fn between_barriers_new_pages_are_init() {
        let mut table = PageTable::new(PAGE_SIZE_4K);
        table.alloc(Segment::Runtime, 2);
        let mut puckets = Puckets::new();
        puckets.insert_runtime_init_barrier(&mut table);
        let init = table.alloc(Segment::Init, 2);
        assert_eq!(puckets.classify(table.meta(init.start())), PucketKind::Init);
        assert!(!puckets.is_segregated());
    }

    #[test]
    fn inactive_lists_start_full() {
        let (table, puckets, runtime, init, _) = segregated();
        assert_eq!(
            puckets.inactive_count(&table, PucketKind::Runtime),
            u64::from(runtime.len())
        );
        assert_eq!(
            puckets.inactive_count(&table, PucketKind::Init),
            u64::from(init.len())
        );
        assert!(puckets.hot_pool_pages(&table).is_empty());
    }

    #[test]
    fn promotion_moves_accessed_pages_to_hot_pool() {
        let (mut table, puckets, runtime, init, exec) = segregated();
        // Clear allocation-time Access bits first.
        table.scan_accessed();
        table.touch_range(runtime.take(3));
        table.touch_range(init.take(2));
        table.touch_range(exec); // execution accesses are ignored
        let summary = puckets.promote_accessed(&mut table);
        assert_eq!(summary.runtime_promoted, 3);
        assert_eq!(summary.init_promoted, 2);
        assert_eq!(puckets.hot_pool_pages(&table).len(), 5);
        assert_eq!(puckets.inactive_count(&table, PucketKind::Runtime), 7);
        assert_eq!(puckets.inactive_count(&table, PucketKind::Init), 4);
    }

    #[test]
    fn promotion_is_idempotent_for_hot_pages() {
        let (mut table, puckets, runtime, ..) = segregated();
        table.scan_accessed();
        table.touch_range(runtime.take(2));
        puckets.promote_accessed(&mut table);
        table.touch_range(runtime.take(2));
        let second = puckets.promote_accessed(&mut table);
        assert_eq!(second.runtime_promoted, 0, "already in the hot pool");
    }

    #[test]
    fn rollback_returns_pages_to_inactive_lists() {
        let (mut table, puckets, runtime, init, _) = segregated();
        table.scan_accessed();
        table.touch_range(runtime.take(4));
        table.touch_range(init.take(1));
        puckets.promote_accessed(&mut table);
        let rolled = puckets.rollback_hot_pool(&mut table);
        assert_eq!(rolled, 5);
        assert!(puckets.hot_pool_pages(&table).is_empty());
        assert_eq!(puckets.inactive_count(&table, PucketKind::Runtime), 10);
        assert_eq!(puckets.inactive_count(&table, PucketKind::Init), 6);
    }

    #[test]
    fn inactive_excludes_remote_pages() {
        let (mut table, puckets, runtime, ..) = segregated();
        let inactive = puckets.inactive_pages(&table, PucketKind::Runtime);
        table.offload_pages(inactive.iter().copied());
        assert_eq!(puckets.inactive_count(&table, PucketKind::Runtime), 0);
        // Fault one back: it's local and not hot → inactive again.
        table.touch(runtime.start());
        assert_eq!(puckets.inactive_count(&table, PucketKind::Runtime), 1);
    }

    #[test]
    #[should_panic(expected = "already inserted")]
    fn double_runtime_barrier_panics() {
        let mut table = PageTable::new(PAGE_SIZE_4K);
        let mut p = Puckets::new();
        p.insert_runtime_init_barrier(&mut table);
        p.insert_runtime_init_barrier(&mut table);
    }

    #[test]
    #[should_panic(expected = "before runtime-init")]
    fn init_barrier_first_panics() {
        let mut table = PageTable::new(PAGE_SIZE_4K);
        let mut p = Puckets::new();
        p.insert_init_exec_barrier(&mut table);
    }

    proptest::proptest! {
        #[test]
        fn prop_every_live_page_has_exactly_one_pucket(
            runtime in 0u32..30, init in 0u32..30, exec in 0u32..30,
        ) {
            let mut table = PageTable::new(PAGE_SIZE_4K);
            table.alloc(Segment::Runtime, runtime);
            let mut puckets = Puckets::new();
            puckets.insert_runtime_init_barrier(&mut table);
            table.alloc(Segment::Init, init);
            puckets.insert_init_exec_barrier(&mut table);
            table.alloc(Segment::Execution, exec);
            let counts = [PucketKind::Runtime, PucketKind::Init, PucketKind::Execution]
                .map(|k| table.iter_live().filter(|&(_, m)| puckets.classify(m) == k).count() as u32);
            proptest::prop_assert_eq!(counts[0], runtime);
            proptest::prop_assert_eq!(counts[1], init);
            proptest::prop_assert_eq!(counts[2], exec);
        }
    }
}
