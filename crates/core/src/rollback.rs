//! Periodic hot-page-pool rollback (paper §5.3).
//!
//! Offloaded pages trickle back into the hot page pool as requests recall
//! them — but some of those promotions are stale. FaaSMem periodically
//! *rolls back* every hot-pool page to its original Pucket, re-observes
//! for one request window, and offloads whatever stayed untouched. A
//! minimum interval `t` between rollbacks bounds the overhead (§8.5
//! recommends ≥ 10 s for < 0.1% overhead).
//!
//! [`RollbackCycle`] is the request-driven state machine; the actual page
//! motion is performed by the policy using
//! [`Puckets::rollback_hot_pool`](crate::Puckets::rollback_hot_pool).

use faasmem_sim::{SimDuration, SimTime};

/// Where the cycle currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RollbackPhase {
    /// Accumulating requests; waiting for the window + time conditions.
    Waiting,
    /// A rollback happened; re-observing for one request window.
    Observing {
        /// Requests still to observe before offloading the leftovers.
        requests_left: u32,
    },
}

/// What the policy must do after feeding an event to the cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RollbackAction {
    /// Nothing to do.
    None,
    /// Roll every hot-pool page back to its Pucket now.
    RollBack,
    /// The observation window ended: offload all still-inactive pages.
    OffloadLeftovers,
}

/// The rollback state machine of one container.
///
/// Trigger rule (§5.3): a rollback fires only when *both* a full request
/// window has passed since the last cycle *and* at least `t` has elapsed
/// since the previous rollback.
///
/// # Examples
///
/// ```
/// use faasmem_core::rollback::{RollbackAction, RollbackCycle};
/// use faasmem_sim::{SimDuration, SimTime};
///
/// let mut cycle = RollbackCycle::new(SimDuration::from_secs(10));
/// cycle.arm(2, SimTime::ZERO); // window size 2, cycle armed at t=0
/// // Two requests later but only 5 s in: time condition not met.
/// assert_eq!(cycle.on_request_end(SimTime::from_secs(5)), RollbackAction::None);
/// assert_eq!(cycle.on_request_end(SimTime::from_secs(5)), RollbackAction::None);
/// // Next request at 12 s: both conditions hold → roll back.
/// assert_eq!(cycle.on_request_end(SimTime::from_secs(12)), RollbackAction::RollBack);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RollbackCycle {
    min_interval: SimDuration,
    window: Option<u32>,
    phase: RollbackPhase,
    requests_since_cycle: u32,
    last_rollback: Option<SimTime>,
    armed_at: Option<SimTime>,
    rollbacks_performed: u64,
}

impl RollbackCycle {
    /// Creates an (unarmed) cycle with minimum rollback interval `t`.
    pub fn new(min_interval: SimDuration) -> Self {
        RollbackCycle {
            min_interval,
            window: None,
            phase: RollbackPhase::Waiting,
            requests_since_cycle: 0,
            last_rollback: None,
            armed_at: None,
            rollbacks_performed: 0,
        }
    }

    /// Arms the cycle once the Init-Pucket window has been profiled;
    /// rollback reuses that window size (§5.3 "utilizes insights gained
    /// from profiling the request-window through the Init Pucket").
    pub fn arm(&mut self, window: u32, now: SimTime) {
        self.window = Some(window.max(1));
        self.armed_at = Some(now);
    }

    /// `true` once [`RollbackCycle::arm`] has been called.
    pub fn is_armed(&self) -> bool {
        self.window.is_some()
    }

    /// Current phase.
    pub fn phase(&self) -> RollbackPhase {
        self.phase
    }

    /// Lifetime rollbacks performed.
    pub fn rollbacks_performed(&self) -> u64 {
        self.rollbacks_performed
    }

    /// Feeds a completed request; returns what the policy must do.
    pub fn on_request_end(&mut self, now: SimTime) -> RollbackAction {
        let Some(window) = self.window else {
            return RollbackAction::None;
        };
        match self.phase {
            RollbackPhase::Observing { requests_left } => {
                let left = requests_left.saturating_sub(1);
                if left == 0 {
                    self.phase = RollbackPhase::Waiting;
                    self.requests_since_cycle = 0;
                    RollbackAction::OffloadLeftovers
                } else {
                    self.phase = RollbackPhase::Observing {
                        requests_left: left,
                    };
                    RollbackAction::None
                }
            }
            RollbackPhase::Waiting => {
                self.requests_since_cycle += 1;
                let window_met = self.requests_since_cycle >= window;
                let reference = self
                    .last_rollback
                    .or(self.armed_at)
                    .unwrap_or(SimTime::ZERO);
                let time_met = now.saturating_since(reference) >= self.min_interval;
                if window_met && time_met {
                    self.phase = RollbackPhase::Observing {
                        requests_left: window,
                    };
                    self.last_rollback = Some(now);
                    self.rollbacks_performed += 1;
                    RollbackAction::RollBack
                } else {
                    RollbackAction::None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn unarmed_cycle_is_inert() {
        let mut c = RollbackCycle::new(SimDuration::from_secs(10));
        assert!(!c.is_armed());
        for s in 0..100 {
            assert_eq!(c.on_request_end(t(s)), RollbackAction::None);
        }
        assert_eq!(c.rollbacks_performed(), 0);
    }

    #[test]
    fn full_cycle_rollback_then_offload() {
        let mut c = RollbackCycle::new(SimDuration::from_secs(10));
        c.arm(2, t(0));
        assert_eq!(c.on_request_end(t(11)), RollbackAction::None); // 1 of window 2
        assert_eq!(c.on_request_end(t(12)), RollbackAction::RollBack);
        assert_eq!(c.phase(), RollbackPhase::Observing { requests_left: 2 });
        assert_eq!(c.on_request_end(t(13)), RollbackAction::None);
        assert_eq!(c.on_request_end(t(14)), RollbackAction::OffloadLeftovers);
        assert_eq!(c.phase(), RollbackPhase::Waiting);
        assert_eq!(c.rollbacks_performed(), 1);
    }

    #[test]
    fn time_gate_blocks_frequent_rollbacks() {
        let mut c = RollbackCycle::new(SimDuration::from_secs(10));
        c.arm(1, t(0));
        assert_eq!(
            c.on_request_end(t(1)),
            RollbackAction::None,
            "too soon after arming"
        );
        assert_eq!(c.on_request_end(t(10)), RollbackAction::RollBack);
        assert_eq!(c.on_request_end(t(10)), RollbackAction::OffloadLeftovers);
        // Window met immediately, but < 10 s since the last rollback.
        assert_eq!(c.on_request_end(t(15)), RollbackAction::None);
        assert_eq!(c.on_request_end(t(21)), RollbackAction::RollBack);
        assert_eq!(c.rollbacks_performed(), 2);
    }

    #[test]
    fn window_gate_blocks_early_rollbacks() {
        let mut c = RollbackCycle::new(SimDuration::from_secs(1));
        c.arm(3, t(0));
        assert_eq!(c.on_request_end(t(100)), RollbackAction::None);
        assert_eq!(c.on_request_end(t(200)), RollbackAction::None);
        assert_eq!(c.on_request_end(t(300)), RollbackAction::RollBack);
    }

    #[test]
    fn window_of_one_alternates() {
        let mut c = RollbackCycle::new(SimDuration::ZERO);
        c.arm(1, t(0));
        assert_eq!(c.on_request_end(t(1)), RollbackAction::RollBack);
        assert_eq!(c.on_request_end(t(2)), RollbackAction::OffloadLeftovers);
        assert_eq!(c.on_request_end(t(3)), RollbackAction::RollBack);
        assert_eq!(c.on_request_end(t(4)), RollbackAction::OffloadLeftovers);
    }

    #[test]
    fn arm_clamps_zero_window() {
        let mut c = RollbackCycle::new(SimDuration::ZERO);
        c.arm(0, t(0));
        assert_eq!(c.on_request_end(t(1)), RollbackAction::RollBack);
    }

    proptest::proptest! {
        #[test]
        fn prop_rollback_intervals_respect_t(
            gaps in proptest::collection::vec(1u64..30, 1..200),
            window in 1u32..5,
            min_interval in 5u64..60,
        ) {
            let mut c = RollbackCycle::new(SimDuration::from_secs(min_interval));
            c.arm(window, SimTime::ZERO);
            let mut now = SimTime::ZERO;
            let mut rollback_times = Vec::new();
            for &g in &gaps {
                now += SimDuration::from_secs(g);
                if c.on_request_end(now) == RollbackAction::RollBack {
                    rollback_times.push(now);
                }
            }
            for pair in rollback_times.windows(2) {
                proptest::prop_assert!(
                    pair[1].saturating_since(pair[0]) >= SimDuration::from_secs(min_interval)
                );
            }
        }
    }
}
