//! The semi-warm period (paper §6).
//!
//! Cold-page offloading alone leaves a large hot working set resident for
//! the whole keep-alive — memory that is very likely never used again
//! (Fig 1: 89.2% inactive at a 10-minute timeout). FaaSMem therefore adds
//! a *semi-warm* period: after a per-function, pessimistically chosen
//! idle threshold, even hot pages drain to the pool, gradually and under
//! global bandwidth control. 95% of requests still find a fully warm
//! container; the unlucky tail pays a bounded recall penalty.

use std::collections::HashMap;

use faasmem_faas::FunctionId;
use faasmem_metrics::Cdf;
use faasmem_sim::{SimDuration, SimTime};

use crate::config::SemiWarmConfig;

/// Per-function semi-warm timing derived from observed container-reuse
/// intervals, plus the gradual-offload rate computation.
///
/// # Examples
///
/// ```
/// use faasmem_core::{SemiWarm, SemiWarmConfig};
/// use faasmem_sim::SimDuration;
/// use faasmem_workload::FunctionId;
///
/// let mut sw = SemiWarm::new(SemiWarmConfig::default());
/// let f = FunctionId(0);
/// for secs in [1u64, 2, 3, 4, 30] {
///     sw.record_reuse_interval(f, SimDuration::from_secs(secs));
/// }
/// // The 99th percentile of the observed intervals: 30 s.
/// assert_eq!(sw.start_timing(f), SimDuration::from_secs(30));
/// ```
#[derive(Debug, Clone)]
pub struct SemiWarm {
    config: SemiWarmConfig,
    intervals: HashMap<FunctionId, Vec<f64>>,
}

impl SemiWarm {
    /// Creates the tracker.
    pub fn new(config: SemiWarmConfig) -> Self {
        SemiWarm {
            config,
            intervals: HashMap::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SemiWarmConfig {
        &self.config
    }

    /// Records one observed container-reused interval for `function`.
    pub fn record_reuse_interval(&mut self, function: FunctionId, interval: SimDuration) {
        self.intervals
            .entry(function)
            .or_default()
            .push(interval.as_secs_f64());
    }

    /// Number of reuse samples gathered for `function`.
    pub fn samples_for(&self, function: FunctionId) -> usize {
        self.intervals.get(&function).map_or(0, Vec::len)
    }

    /// The semi-warm start timing for `function`: the configured
    /// percentile of the reuse-interval CDF once enough samples exist,
    /// else the configured default.
    pub fn start_timing(&self, function: FunctionId) -> SimDuration {
        match self.intervals.get(&function) {
            Some(samples) if samples.len() >= self.config.min_samples => {
                let cdf = Cdf::from_samples(samples.iter().copied());
                let secs = cdf
                    .quantile(self.config.start_percentile)
                    .expect("non-empty sample set");
                SimDuration::from_secs_f64(secs)
            }
            _ => self.config.default_start,
        }
    }

    /// Whether a container idle for `idle` should be in its semi-warm
    /// period.
    pub fn should_be_semi_warm(&self, function: FunctionId, idle: SimDuration) -> bool {
        idle >= self.start_timing(function)
    }

    /// How many whole pages to offload in one maintenance tick for a
    /// container with `resident_bytes`, applying the governor's uniform
    /// `throttle` factor (§6.2). Fractional page budgets accumulate in
    /// `carry` across ticks so slow rates still make progress.
    pub fn pages_this_tick(
        &self,
        resident_bytes: u64,
        page_size: u64,
        tick: SimDuration,
        throttle: f64,
        carry: &mut f64,
    ) -> u64 {
        debug_assert!(page_size > 0);
        let rate = self.config.rate.bytes_per_sec(resident_bytes) * throttle.clamp(0.0, 1.0);
        let budget_bytes = rate * tick.as_secs_f64() + *carry;
        let pages = (budget_bytes / page_size as f64).floor();
        *carry = budget_bytes - pages * page_size as f64;
        pages as u64
    }
}

/// A per-container semi-warm activity record, aggregated for the Fig 14
/// applicability analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SemiWarmActivity {
    /// When the container most recently entered semi-warm, if it is in
    /// one now.
    pub entered_at: Option<SimTime>,
    /// Total time the container has spent semi-warm so far.
    pub total: SimDuration,
    /// Bytes offloaded by semi-warm drains.
    pub bytes_offloaded: u64,
    /// Fractional-page carry between ticks.
    pub carry: f64,
}

impl SemiWarmActivity {
    /// Marks entry into semi-warm (idempotent while already in one).
    pub fn enter(&mut self, now: SimTime) {
        if self.entered_at.is_none() {
            self.entered_at = Some(now);
        }
    }

    /// Marks exit (a request arrived or the container is recycled),
    /// folding the elapsed span into the total.
    pub fn exit(&mut self, now: SimTime) {
        if let Some(t0) = self.entered_at.take() {
            self.total += now.saturating_since(t0);
        }
        self.carry = 0.0;
    }

    /// `true` while the container is in a semi-warm period.
    pub fn is_active(&self) -> bool {
        self.entered_at.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OffloadRate;

    fn config() -> SemiWarmConfig {
        SemiWarmConfig::default()
    }

    #[test]
    fn default_timing_until_enough_samples() {
        let mut sw = SemiWarm::new(config());
        let f = FunctionId(1);
        assert_eq!(sw.start_timing(f), config().default_start);
        for _ in 0..4 {
            sw.record_reuse_interval(f, SimDuration::from_secs(5));
        }
        assert_eq!(sw.samples_for(f), 4);
        assert_eq!(
            sw.start_timing(f),
            config().default_start,
            "4 < min_samples"
        );
        sw.record_reuse_interval(f, SimDuration::from_secs(5));
        assert_eq!(sw.start_timing(f), SimDuration::from_secs(5));
    }

    #[test]
    fn percentile_is_pessimistic() {
        let mut sw = SemiWarm::new(config());
        let f = FunctionId(0);
        // 95 short intervals and five long ones: the 99th percentile
        // must pick up the tail, not the median.
        for _ in 0..95 {
            sw.record_reuse_interval(f, SimDuration::from_secs(2));
        }
        for _ in 0..5 {
            sw.record_reuse_interval(f, SimDuration::from_secs(120));
        }
        assert_eq!(sw.start_timing(f), SimDuration::from_secs(120));
    }

    #[test]
    fn per_function_isolation() {
        let mut sw = SemiWarm::new(config());
        for _ in 0..10 {
            sw.record_reuse_interval(FunctionId(0), SimDuration::from_secs(1));
            sw.record_reuse_interval(FunctionId(1), SimDuration::from_secs(100));
        }
        assert!(sw.start_timing(FunctionId(0)) < sw.start_timing(FunctionId(1)));
    }

    #[test]
    fn should_be_semi_warm_threshold() {
        let mut sw = SemiWarm::new(config());
        let f = FunctionId(0);
        for _ in 0..10 {
            sw.record_reuse_interval(f, SimDuration::from_secs(10));
        }
        assert!(!sw.should_be_semi_warm(f, SimDuration::from_secs(9)));
        assert!(sw.should_be_semi_warm(f, SimDuration::from_secs(10)));
    }

    #[test]
    fn page_budget_amount_based() {
        let sw = SemiWarm::new(SemiWarmConfig {
            rate: OffloadRate::MibPerSec(1.0),
            ..config()
        });
        let mut carry = 0.0;
        // 1 MiB/s on 64 KiB pages over 1 s = 16 pages.
        let pages = sw.pages_this_tick(
            1 << 30,
            64 * 1024,
            SimDuration::from_secs(1),
            1.0,
            &mut carry,
        );
        assert_eq!(pages, 16);
        assert_eq!(carry, 0.0);
    }

    #[test]
    fn page_budget_respects_throttle() {
        let sw = SemiWarm::new(SemiWarmConfig {
            rate: OffloadRate::MibPerSec(1.0),
            ..config()
        });
        let mut carry = 0.0;
        let pages = sw.pages_this_tick(
            1 << 30,
            64 * 1024,
            SimDuration::from_secs(1),
            0.5,
            &mut carry,
        );
        assert_eq!(pages, 8);
    }

    #[test]
    fn fractional_budget_carries_over() {
        let sw = SemiWarm::new(SemiWarmConfig {
            rate: OffloadRate::MibPerSec(0.03), // ~0.5 page/s at 64 KiB
            ..config()
        });
        let mut carry = 0.0;
        let mut total = 0;
        for _ in 0..10 {
            total += sw.pages_this_tick(
                1 << 30,
                64 * 1024,
                SimDuration::from_secs(1),
                1.0,
                &mut carry,
            );
        }
        // 0.03 MiB/s × 10 s = 0.3 MiB = 4.8 pages → 4 whole pages.
        assert_eq!(total, 4);
        assert!(carry > 0.0);
    }

    #[test]
    fn percent_rate_scales_with_resident() {
        let sw = SemiWarm::new(SemiWarmConfig {
            rate: OffloadRate::PercentPerSec(0.01),
            ..config()
        });
        let mut carry = 0.0;
        let big = sw.pages_this_tick(
            1 << 30,
            64 * 1024,
            SimDuration::from_secs(1),
            1.0,
            &mut carry,
        );
        carry = 0.0;
        let small = sw.pages_this_tick(
            1 << 24,
            64 * 1024,
            SimDuration::from_secs(1),
            1.0,
            &mut carry,
        );
        assert!(big > small);
    }

    #[test]
    fn activity_accumulates_across_periods() {
        let mut a = SemiWarmActivity::default();
        assert!(!a.is_active());
        a.enter(SimTime::from_secs(10));
        assert!(a.is_active());
        a.enter(SimTime::from_secs(11)); // idempotent
        a.exit(SimTime::from_secs(25));
        assert_eq!(a.total, SimDuration::from_secs(15));
        assert!(!a.is_active());
        a.enter(SimTime::from_secs(100));
        a.exit(SimTime::from_secs(110));
        assert_eq!(a.total, SimDuration::from_secs(25));
    }

    #[test]
    fn exit_without_enter_is_noop() {
        let mut a = SemiWarmActivity::default();
        a.exit(SimTime::from_secs(5));
        assert_eq!(a.total, SimDuration::ZERO);
    }
}
