//! Mechanism-level statistics FaaSMem exposes to the experiments.
//!
//! Some of the paper's figures measure the *mechanism* rather than the
//! platform: Fig 8 counts Runtime-Pucket recalls, Fig 14 the share of
//! container lifetime spent semi-warm. The platform's
//! [`RunReport`](faasmem_faas::RunReport) cannot see those, so the policy
//! publishes them through a shared [`StatsHandle`] the experiment keeps.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use faasmem_faas::FunctionId;
use faasmem_sim::SimDuration;

/// One container's semi-warm activity over its lifetime (Fig 14 input).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SemiWarmRecord {
    /// The function the container served.
    pub function: FunctionId,
    /// Container lifetime (create → recycle).
    pub lifetime: SimDuration,
    /// Cumulative time spent in semi-warm periods.
    pub semi_warm_time: SimDuration,
}

impl SemiWarmRecord {
    /// Fraction of the lifetime spent semi-warm, in `[0, 1]`.
    pub fn semi_warm_fraction(&self) -> f64 {
        let life = self.lifetime.as_secs_f64();
        if life <= 0.0 {
            0.0
        } else {
            (self.semi_warm_time.as_secs_f64() / life).clamp(0.0, 1.0)
        }
    }
}

/// Aggregated FaaSMem mechanism statistics for one run.
#[derive(Debug, Clone, Default)]
pub struct FaasMemStats {
    /// Per-recycled-container semi-warm records.
    pub semi_warm_records: Vec<SemiWarmRecord>,
    /// Pages recalled into the hot pool from the Runtime Pucket *after*
    /// its reactive offload, summed per function (Fig 8).
    pub runtime_recalls: HashMap<FunctionId, u64>,
    /// Containers per function that performed the reactive runtime
    /// offload (the Fig 8 denominator).
    pub runtime_offloads: HashMap<FunctionId, u64>,
    /// Request-window sizes the gradient detector chose, per container.
    pub windows_chosen: Vec<(FunctionId, u32)>,
    /// Total hot-pool rollbacks performed.
    pub rollbacks: u64,
    /// Bytes offloaded by semi-warm gradual drains.
    pub semi_warm_bytes: u64,
}

impl FaasMemStats {
    /// Mean Runtime-Pucket recalls per container for `function`; `None`
    /// if no container of that function offloaded its Runtime Pucket.
    pub fn mean_runtime_recalls(&self, function: FunctionId) -> Option<f64> {
        let containers = *self.runtime_offloads.get(&function)?;
        if containers == 0 {
            return None;
        }
        let recalls = self.runtime_recalls.get(&function).copied().unwrap_or(0);
        Some(recalls as f64 / containers as f64)
    }

    /// Semi-warm lifetime fractions across all containers (Fig 14 CDF
    /// input).
    pub fn semi_warm_fractions(&self) -> Vec<f64> {
        self.semi_warm_records
            .iter()
            .map(SemiWarmRecord::semi_warm_fraction)
            .collect()
    }
}

/// Shared, interior-mutable handle to [`FaasMemStats`]: the policy holds
/// one clone and mutates it during the run; the experiment holds another
/// and reads it afterwards.
pub type StatsHandle = Rc<RefCell<FaasMemStats>>;

/// Creates a fresh stats handle.
pub fn new_stats_handle() -> StatsHandle {
    Rc::new(RefCell::new(FaasMemStats::default()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_is_clamped_and_safe() {
        let r = SemiWarmRecord {
            function: FunctionId(0),
            lifetime: SimDuration::from_secs(100),
            semi_warm_time: SimDuration::from_secs(60),
        };
        assert!((r.semi_warm_fraction() - 0.6).abs() < 1e-12);
        let zero = SemiWarmRecord {
            function: FunctionId(0),
            lifetime: SimDuration::ZERO,
            semi_warm_time: SimDuration::ZERO,
        };
        assert_eq!(zero.semi_warm_fraction(), 0.0);
    }

    #[test]
    fn mean_recalls_handles_missing_data() {
        let mut s = FaasMemStats::default();
        assert_eq!(s.mean_runtime_recalls(FunctionId(0)), None);
        s.runtime_offloads.insert(FunctionId(0), 4);
        assert_eq!(s.mean_runtime_recalls(FunctionId(0)), Some(0.0));
        s.runtime_recalls.insert(FunctionId(0), 6);
        assert_eq!(s.mean_runtime_recalls(FunctionId(0)), Some(1.5));
    }

    #[test]
    fn handle_is_shared() {
        let h = new_stats_handle();
        let h2 = Rc::clone(&h);
        h.borrow_mut().rollbacks = 3;
        assert_eq!(h2.borrow().rollbacks, 3);
    }

    #[test]
    fn fractions_collects_all_records() {
        let mut s = FaasMemStats::default();
        for (life, warm) in [(100u64, 50u64), (10, 10)] {
            s.semi_warm_records.push(SemiWarmRecord {
                function: FunctionId(0),
                lifetime: SimDuration::from_secs(life),
                semi_warm_time: SimDuration::from_secs(warm),
            });
        }
        let f = s.semi_warm_fractions();
        assert_eq!(f.len(), 2);
        assert!((f[0] - 0.5).abs() < 1e-12);
        assert!((f[1] - 1.0).abs() < 1e-12);
    }
}
