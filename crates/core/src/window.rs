//! Adaptive request-window detection for the Init Pucket (paper §5.2).
//!
//! The Init Pucket cannot be offloaded after the first request like the
//! Runtime Pucket: a page unaccessed by one request may well be needed by
//! a later one (Web's cached HTML pages). FaaSMem therefore watches the
//! *descent gradient* of the remaining inactive init pages as requests
//! complete — once it "tends to zero", further requests are unlikely to
//! reveal new hot pages and the remaining inactive pages are offloaded.

/// Tracks the shrinking Init-Pucket inactive list and decides when the
/// request window closes.
///
/// # Examples
///
/// ```
/// use faasmem_core::WindowTracker;
///
/// // ML-inference style: the hot set stabilises after one request.
/// let mut w = WindowTracker::new(1000, 0.005, 2, 20);
/// assert!(w.observe(600).is_none());  // request 1: big drop (allocated→hot)
/// assert!(w.observe(598).is_none());  // request 2: gradient ~0 (1st stable)
/// let window = w.observe(598);        // request 3: gradient 0 (2nd stable)
/// assert_eq!(window, Some(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowTracker {
    init_total: u64,
    epsilon_pages: u64,
    stable_rounds_needed: u32,
    cap: u32,
    prev_remaining: Option<u64>,
    stable_rounds: u32,
    requests_seen: u32,
    window: Option<u32>,
}

impl WindowTracker {
    /// Creates a tracker for an Init Pucket of `init_total` pages.
    ///
    /// * `epsilon` — gradient threshold as a fraction of `init_total`;
    ///   a drop of fewer than `epsilon × init_total` pages counts as
    ///   "gradient tends to zero".
    /// * `stable_rounds` — consecutive below-threshold requests needed.
    /// * `cap` — hard upper bound on the window.
    pub fn new(init_total: u64, epsilon: f64, stable_rounds: u32, cap: u32) -> Self {
        let epsilon_pages = ((init_total as f64 * epsilon).ceil() as u64).max(1);
        WindowTracker {
            init_total,
            epsilon_pages,
            stable_rounds_needed: stable_rounds.max(1),
            cap: cap.max(1),
            prev_remaining: None,
            stable_rounds: 0,
            requests_seen: 0,
            window: None,
        }
    }

    /// Feeds the inactive-page count observed after a completed request.
    /// Returns `Some(window_size)` exactly once, when the window closes.
    pub fn observe(&mut self, remaining_inactive: u64) -> Option<u32> {
        if self.window.is_some() {
            return None; // already closed
        }
        self.requests_seen += 1;
        let closed = match self.prev_remaining {
            Some(prev) => {
                let drop = prev.saturating_sub(remaining_inactive);
                if drop < self.epsilon_pages {
                    self.stable_rounds += 1;
                } else {
                    self.stable_rounds = 0;
                }
                self.stable_rounds >= self.stable_rounds_needed
            }
            None => {
                // An empty init pucket needs no window at all.
                self.init_total == 0 || remaining_inactive == 0
            }
        };
        if closed || self.requests_seen >= self.cap {
            let w = self.requests_seen.min(self.cap);
            self.window = Some(w);
            return Some(w);
        }
        self.prev_remaining = Some(remaining_inactive);
        None
    }

    /// The detected window size, once closed.
    pub fn window(&self) -> Option<u32> {
        self.window
    }

    /// Requests observed so far.
    pub fn requests_seen(&self) -> u32 {
        self.requests_seen
    }

    /// `true` once the window has closed (offload performed).
    pub fn is_closed(&self) -> bool {
        self.window.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_function_closes_quickly() {
        // Bert-like: hot set fixed → remaining stops dropping after req 1.
        let mut w = WindowTracker::new(1000, 0.005, 2, 20);
        assert_eq!(w.observe(560), None);
        assert_eq!(w.observe(556), None); // drop 4 < 5 → stable #1
        assert_eq!(w.observe(555), Some(3)); // stable #2 → close
        assert!(w.is_closed());
        assert_eq!(w.window(), Some(3));
    }

    #[test]
    fn scattered_accesses_need_larger_window() {
        // Web-like: each request reveals ~50 new hot pages for a while.
        let mut w = WindowTracker::new(1000, 0.005, 2, 20);
        let mut remaining = 1000u64;
        let mut closed_at = None;
        for req in 1..=20 {
            let drop = if req <= 10 { 50 } else { 2 };
            remaining -= drop.min(remaining);
            if let Some(win) = w.observe(remaining) {
                closed_at = Some(win);
                break;
            }
        }
        let win = closed_at.expect("window must close");
        assert!(win >= 12, "needs to see the stabilisation, got {win}");
    }

    #[test]
    fn cap_forces_closure() {
        let mut w = WindowTracker::new(10_000, 0.001, 3, 5);
        let mut remaining = 10_000u64;
        for req in 1..=5 {
            remaining -= 500; // always a big gradient
            let got = w.observe(remaining);
            if req < 5 {
                assert_eq!(got, None);
            } else {
                assert_eq!(got, Some(5), "cap reached");
            }
        }
    }

    #[test]
    fn empty_init_pucket_closes_immediately() {
        let mut w = WindowTracker::new(0, 0.005, 2, 20);
        assert_eq!(w.observe(0), Some(1));
    }

    #[test]
    fn fully_hot_init_closes_immediately() {
        // Micro-benchmark style: everything promoted by request 1.
        let mut w = WindowTracker::new(100, 0.005, 2, 20);
        assert_eq!(w.observe(0), Some(1));
    }

    #[test]
    fn observe_after_close_is_inert() {
        let mut w = WindowTracker::new(0, 0.005, 2, 20);
        assert_eq!(w.observe(0), Some(1));
        assert_eq!(w.observe(0), None);
        assert_eq!(w.requests_seen(), 1, "post-close observations not counted");
    }

    #[test]
    fn gradient_reset_on_new_drop() {
        let mut w = WindowTracker::new(1000, 0.005, 2, 50);
        assert_eq!(w.observe(500), None);
        assert_eq!(w.observe(499), None); // stable #1
        assert_eq!(w.observe(400), None); // big drop: reset
        assert_eq!(w.observe(399), None); // stable #1
        assert_eq!(w.observe(399), Some(5)); // stable #2 → close at 5
    }

    proptest::proptest! {
        #[test]
        fn prop_window_always_closes_within_cap(
            drops in proptest::collection::vec(0u64..100, 1..100),
            cap in 1u32..30,
        ) {
            let mut w = WindowTracker::new(5_000, 0.005, 2, cap);
            let mut remaining: u64 = 5_000;
            let mut window = None;
            for &d in &drops {
                remaining = remaining.saturating_sub(d);
                if let Some(win) = w.observe(remaining) {
                    window = Some(win);
                    break;
                }
            }
            if drops.len() as u32 >= cap {
                let win = window.expect("must close by the cap");
                proptest::prop_assert!(win <= cap);
                proptest::prop_assert!(win >= 1);
            }
        }
    }
}
