//! Cluster-scale simulation: many independent platform nodes, executed
//! in parallel across shards of nodes.
//!
//! The intra-node sharded driver ([`PlatformSim::run_sharded`]) keeps a
//! single node's event administration partitioned but must execute
//! handlers in the merged global order (one RNG, one link pair). Real
//! wall-clock speedup comes from this tier: a rack runs `N` nodes whose
//! simulations share nothing, so node shards advance on OS threads with
//! no synchronisation beyond work claiming. Every node's outcome is a
//! pure function of its node id and the cluster seed, which makes the
//! result **byte-identical for any shard count and any thread count** —
//! the property `bench_cluster` and the differential tests enforce.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

use faasmem_pool::PoolStats;
use faasmem_sim::{ShardMap, SimDuration, SimTime};
use faasmem_workload::{BenchmarkSpec, FunctionId, InvocationTrace, LoadClass, TraceSynthesizer};

use crate::platform::PlatformSim;
use crate::policy::MemoryPolicy;
use crate::shard::ShardSpec;

/// The workload a cluster run simulates: `nodes` platform nodes, each
/// serving `functions_per_node` functions drawn round-robin from the
/// benchmark catalog under synthesized traces.
#[derive(Debug, Clone, Copy)]
pub struct ClusterSpec {
    /// Number of independent platform nodes.
    pub nodes: u32,
    /// Functions registered (and traced) per node.
    pub functions_per_node: u32,
    /// Base seed; each node and function derives its own stream from it.
    pub seed: u64,
    /// Trace duration per function.
    pub duration: SimTime,
    /// Arrival intensity class for every synthesized trace.
    pub load: LoadClass,
    /// Whether arrivals cluster into bursts.
    pub bursty: bool,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            nodes: 8,
            functions_per_node: 3,
            seed: 0xC1A5,
            duration: SimTime::from_mins(8),
            load: LoadClass::High,
            bursty: true,
        }
    }
}

/// The `Send`able outcome of one node's simulation — everything the
/// cluster report aggregates, flattened out of the node's `RunReport`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeReport {
    /// The node's index within the cluster.
    pub node: u32,
    /// Requests the node completed.
    pub requests_completed: usize,
    /// Cold starts the node paid.
    pub cold_starts: usize,
    /// 95th-percentile end-to-end latency.
    pub p95_latency: SimDuration,
    /// Worst end-to-end latency.
    pub max_latency: SimDuration,
    /// Time-averaged node-local footprint in MiB.
    pub avg_local_mib: f64,
    /// Time-averaged remote (pooled) footprint in MiB.
    pub avg_remote_mib: f64,
    /// The node's pool traffic totals.
    pub pool_stats: PoolStats,
    /// Containers the node created and retired.
    pub containers: usize,
    /// When the node's drain completed.
    pub finished_at: SimTime,
}

/// Per-node outcomes in node order, plus cluster-wide aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// One entry per node, ordered by node id regardless of which shard
    /// or thread simulated it.
    pub nodes: Vec<NodeReport>,
}

impl ClusterReport {
    /// Requests completed across the cluster.
    pub fn total_requests(&self) -> usize {
        self.nodes.iter().map(|n| n.requests_completed).sum()
    }

    /// Cold starts across the cluster.
    pub fn total_cold_starts(&self) -> usize {
        self.nodes.iter().map(|n| n.cold_starts).sum()
    }

    /// A canonical textual rendering of every per-node outcome, with
    /// floats fixed to six decimals. Two runs are considered identical
    /// exactly when their digests are byte-equal — this is the string
    /// `bench_cluster` compares across shard/thread configurations.
    pub fn digest(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(self.nodes.len() * 160);
        for n in &self.nodes {
            writeln!(
                out,
                "node={} req={} cold={} p95_us={} max_us={} local_mib={:.6} \
                 remote_mib={:.6} out={} in={} out_ops={} in_ops={} \
                 containers={} finished_us={}",
                n.node,
                n.requests_completed,
                n.cold_starts,
                n.p95_latency.as_micros(),
                n.max_latency.as_micros(),
                n.avg_local_mib,
                n.avg_remote_mib,
                n.pool_stats.bytes_out,
                n.pool_stats.bytes_in,
                n.pool_stats.out_ops,
                n.pool_stats.in_ops,
                n.containers,
                n.finished_at.as_micros(),
            )
            .expect("writing to a String cannot fail");
        }
        out
    }
}

/// A cluster of independent [`PlatformSim`] nodes sharing a workload
/// recipe and a per-node policy factory.
///
/// The factory runs on worker threads, so it must be `Send + Sync`; it
/// receives the node id and returns that node's policy instance.
pub struct ClusterSim {
    spec: ClusterSpec,
    policy_factory: Box<dyn Fn(u32) -> Box<dyn MemoryPolicy> + Send + Sync>,
}

impl ClusterSim {
    /// A cluster that instantiates each node's policy via `factory`.
    pub fn new<F>(spec: ClusterSpec, factory: F) -> Self
    where
        F: Fn(u32) -> Box<dyn MemoryPolicy> + Send + Sync + 'static,
    {
        assert!(spec.nodes >= 1, "need at least one node");
        assert!(spec.functions_per_node >= 1, "need at least one function");
        ClusterSim {
            spec,
            policy_factory: Box::new(factory),
        }
    }

    /// The workload recipe.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Builds and runs node `node` from scratch. Deterministic in
    /// `(cluster seed, node)` alone, which is what makes the parallel
    /// schedule irrelevant to the output.
    fn run_node(&self, node: u32, shards: Option<u32>) -> NodeReport {
        let spec = &self.spec;
        let catalog = BenchmarkSpec::catalog();
        let mut builder = PlatformSim::builder();
        let mut trace = InvocationTrace::empty(spec.duration);
        for f in 0..spec.functions_per_node {
            let bench = catalog[((u64::from(node) * u64::from(spec.functions_per_node)
                + u64::from(f))
                % catalog.len() as u64) as usize]
                .clone();
            builder = builder.register_function(bench);
            let stream = spec.seed
                ^ (u64::from(node) << 32)
                ^ u64::from(f).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let t = TraceSynthesizer::new(stream)
                .load_class(spec.load)
                .bursty(spec.bursty)
                .duration(spec.duration)
                .synthesize_for(FunctionId(f));
            trace = trace.merge(&t);
        }
        let mut sim = builder
            .policy((self.policy_factory)(node))
            .seed(
                spec.seed
                    .wrapping_add(u64::from(node).wrapping_mul(0xA5A5_A5A5)),
            )
            .build();
        let mut report = match shards {
            None => sim.run(&trace),
            Some(s) => sim.run_sharded(&trace, &ShardSpec::new(s)),
        };
        NodeReport {
            node,
            requests_completed: report.requests_completed,
            cold_starts: report.cold_starts,
            p95_latency: report.p95_latency(),
            max_latency: report.latency.max().unwrap_or(SimDuration::ZERO),
            avg_local_mib: report.avg_local_mib(),
            avg_remote_mib: report.avg_remote_mib(),
            pool_stats: report.pool_stats,
            containers: report.containers.len(),
            finished_at: report.finished_at,
        }
    }

    /// The serial oracle: every node simulated on the calling thread
    /// through the serial platform driver.
    pub fn run_serial(&self) -> ClusterReport {
        let nodes = (0..self.spec.nodes)
            .map(|n| self.run_node(n, None))
            .collect();
        ClusterReport { nodes }
    }

    /// The parallel driver: nodes are partitioned into `shards` shards
    /// (round-robin by node id), worker threads claim whole shards from
    /// an atomic counter, and each node runs through the shard-parallel
    /// platform driver. Results are merged in node order, so the report
    /// is byte-identical to [`ClusterSim::run_serial`] for any shard
    /// and thread count.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero; `threads` is clamped to
    /// `[1, shards]`.
    pub fn run_sharded(&self, shards: u32, threads: usize) -> ClusterReport {
        let map = ShardMap::new(shards);
        let parts = map.partition((0..self.spec.nodes).map(u64::from));
        let workers = threads.clamp(1, shards as usize);
        let next_shard = AtomicU32::new(0);
        let slots: Mutex<Vec<Option<NodeReport>>> =
            Mutex::new(vec![None; self.spec.nodes as usize]);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let shard = next_shard.fetch_add(1, Ordering::Relaxed);
                    if shard >= shards {
                        break;
                    }
                    for &node in &parts[shard as usize] {
                        let report = self.run_node(node as u32, Some(shards));
                        slots.lock().expect("no panics hold this lock")[node as usize] =
                            Some(report);
                    }
                });
            }
        });

        let nodes = slots
            .into_inner()
            .expect("workers joined")
            .into_iter()
            .map(|r| r.expect("every node simulated exactly once"))
            .collect();
        ClusterReport { nodes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{NullPolicy, PolicyCtx};

    struct OffloadInitPolicy;

    impl MemoryPolicy for OffloadInitPolicy {
        fn name(&self) -> &'static str {
            "OffloadInit"
        }
        fn on_request_end(&mut self, ctx: &mut PolicyCtx<'_>) {
            ctx.offload_where(|_, m| m.segment() == faasmem_mem::Segment::Init);
        }
    }

    fn small_cluster() -> ClusterSim {
        ClusterSim::new(
            ClusterSpec {
                nodes: 5,
                functions_per_node: 2,
                seed: 0xBEEF,
                duration: SimTime::from_mins(3),
                load: LoadClass::High,
                bursty: true,
            },
            |_| Box::new(OffloadInitPolicy),
        )
    }

    #[test]
    fn sharded_cluster_is_byte_identical_for_any_schedule() {
        let cluster = small_cluster();
        let oracle = cluster.run_serial();
        assert!(oracle.total_requests() > 0, "workload must be non-trivial");
        let oracle_digest = oracle.digest();
        for (shards, threads) in [(1u32, 1usize), (2, 2), (4, 2), (3, 7), (5, 3)] {
            let run = cluster.run_sharded(shards, threads);
            assert_eq!(
                run.digest(),
                oracle_digest,
                "shards={shards} threads={threads} diverged"
            );
            assert_eq!(run, oracle);
        }
    }

    #[test]
    fn digest_is_sensitive_to_the_seed() {
        let a = small_cluster().run_serial();
        let b = ClusterSim::new(
            ClusterSpec {
                seed: 0xDEAD,
                ..*small_cluster().spec()
            },
            |_| Box::new(OffloadInitPolicy),
        )
        .run_serial();
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn policy_factory_receives_node_ids() {
        let seen = std::sync::Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        let cluster = ClusterSim::new(
            ClusterSpec {
                nodes: 3,
                functions_per_node: 1,
                duration: SimTime::from_mins(1),
                ..ClusterSpec::default()
            },
            move |node| {
                seen2.lock().unwrap().push(node);
                Box::new(NullPolicy)
            },
        );
        let report = cluster.run_sharded(2, 2);
        assert_eq!(report.nodes.len(), 3);
        let mut ids = seen.lock().unwrap().clone();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
