//! Serverless containers and their lifecycle.

use std::fmt;

use faasmem_mem::{mib_to_pages, PageRange, PageTable, Segment};
use faasmem_sim::{SimDuration, SimTime};
use faasmem_workload::{BenchmarkSpec, FunctionId};

/// Uniquely identifies a container within one platform run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContainerId(pub u64);

impl fmt::Display for ContainerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctr#{}", self.0)
    }
}

/// Lifecycle stage of a container (paper Fig 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContainerStage {
    /// Runtime image loading (cold start, phase 1).
    Launching,
    /// User-code initialization (cold start, phase 2).
    Initializing,
    /// Processing a request.
    Executing,
    /// Warm and idle, waiting for the next request (keep-alive).
    KeepAlive,
}

/// One serverless container: its page table, segment layout and timing
/// state.
///
/// Created by the platform on cold start; policies reach it through
/// [`PolicyCtx`](crate::PolicyCtx).
#[derive(Debug)]
pub struct Container {
    id: ContainerId,
    function: FunctionId,
    spec: BenchmarkSpec,
    table: PageTable,
    stage: ContainerStage,
    created_at: SimTime,
    last_used: SimTime,
    requests_served: u64,
    busy_time: SimDuration,
    runtime_range: PageRange,
    runtime_hot_pages: u32,
    init_range: PageRange,
    exec_range: Option<PageRange>,
    /// Remote-fault stall suffered by the most recent request; feedback
    /// signal for TMO-style policies.
    last_request_stall: SimDuration,
    last_request_faults: u32,
}

impl Container {
    /// Creates a container in the [`ContainerStage::Launching`] stage.
    /// No memory is allocated yet; the platform allocates the runtime and
    /// init segments as the corresponding lifecycle phases complete.
    pub fn new(
        id: ContainerId,
        function: FunctionId,
        spec: BenchmarkSpec,
        page_size: u64,
        now: SimTime,
    ) -> Self {
        Container {
            id,
            function,
            spec,
            table: PageTable::new(page_size),
            stage: ContainerStage::Launching,
            created_at: now,
            last_used: now,
            requests_served: 0,
            busy_time: SimDuration::ZERO,
            runtime_range: PageRange::EMPTY,
            runtime_hot_pages: 0,
            init_range: PageRange::EMPTY,
            exec_range: None,
            last_request_stall: SimDuration::ZERO,
            last_request_faults: 0,
        }
    }

    /// The container's id.
    pub fn id(&self) -> ContainerId {
        self.id
    }

    /// The function this container serves.
    pub fn function(&self) -> FunctionId {
        self.function
    }

    /// The benchmark model backing the function.
    pub fn spec(&self) -> &BenchmarkSpec {
        &self.spec
    }

    /// Current lifecycle stage.
    pub fn stage(&self) -> ContainerStage {
        self.stage
    }

    /// When the container was created (cold-start begin).
    pub fn created_at(&self) -> SimTime {
        self.created_at
    }

    /// When the container last started or finished serving a request.
    pub fn last_used(&self) -> SimTime {
        self.last_used
    }

    /// Requests completed so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Cumulative time spent executing requests (used by the Fig 1
    /// inactive-time analysis).
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// The container's page table.
    pub fn table(&self) -> &PageTable {
        &self.table
    }

    /// Mutable access to the page table, for policies.
    pub fn table_mut(&mut self) -> &mut PageTable {
        &mut self.table
    }

    /// The runtime segment's page range (Segment-1).
    pub fn runtime_range(&self) -> PageRange {
        self.runtime_range
    }

    /// Number of leading runtime pages in the action proxy's working set.
    pub fn runtime_hot_pages(&self) -> u32 {
        self.runtime_hot_pages
    }

    /// The init segment's page range (Segment-2).
    pub fn init_range(&self) -> PageRange {
        self.init_range
    }

    /// The in-flight execution segment, if a request is running.
    pub fn exec_range(&self) -> Option<PageRange> {
        self.exec_range
    }

    /// Remote-fault stall of the most recent request (TMO's feedback
    /// signal).
    pub fn last_request_stall(&self) -> SimDuration {
        self.last_request_stall
    }

    /// Remote faults taken by the most recent request.
    pub fn last_request_faults(&self) -> u32 {
        self.last_request_faults
    }

    /// Idle time since the last request activity, zero while executing.
    pub fn idle_since(&self, now: SimTime) -> SimDuration {
        match self.stage {
            ContainerStage::KeepAlive => now.saturating_since(self.last_used),
            _ => SimDuration::ZERO,
        }
    }

    // ---- platform-side lifecycle transitions -------------------------

    /// Allocates and touches the runtime segment; transitions to
    /// [`ContainerStage::Initializing`].
    ///
    /// # Panics
    ///
    /// Panics if the container is not in the launching stage.
    pub fn finish_launch(&mut self) {
        assert_eq!(self.stage, ContainerStage::Launching, "launch out of order");
        let pages = mib_to_pages(self.spec.runtime_mib, self.table.page_size()) as u32;
        self.runtime_range = self.table.alloc(Segment::Runtime, pages);
        self.runtime_hot_pages =
            mib_to_pages(self.spec.runtime_hot_mib, self.table.page_size()) as u32;
        self.table.touch_range(self.runtime_range);
        self.stage = ContainerStage::Initializing;
    }

    /// Allocates and touches the init segment; transitions to
    /// [`ContainerStage::Executing`] (a cold start always has a request
    /// waiting).
    ///
    /// # Panics
    ///
    /// Panics if the container is not in the initializing stage.
    pub fn finish_init(&mut self) {
        assert_eq!(
            self.stage,
            ContainerStage::Initializing,
            "init out of order"
        );
        let pages = mib_to_pages(self.spec.init_mib, self.table.page_size()) as u32;
        self.init_range = self.table.alloc(Segment::Init, pages);
        self.table.touch_range(self.init_range);
        self.stage = ContainerStage::Executing;
    }

    /// Marks the container as executing a request (warm start).
    ///
    /// # Panics
    ///
    /// Panics if the container is not idle in keep-alive.
    pub fn begin_execution(&mut self, now: SimTime) {
        assert_eq!(self.stage, ContainerStage::KeepAlive, "container busy");
        self.stage = ContainerStage::Executing;
        self.last_used = now;
    }

    /// Installs the execution segment of the running request.
    pub fn set_exec_range(&mut self, range: PageRange) {
        debug_assert!(self.exec_range.is_none(), "exec segment already present");
        self.exec_range = Some(range);
    }

    /// Records the fault penalty the running request suffered.
    pub fn record_request_penalty(&mut self, faults: u32, stall: SimDuration) {
        self.last_request_faults = faults;
        self.last_request_stall = stall;
    }

    /// Completes the running request: frees the execution segment,
    /// transitions to keep-alive.
    ///
    /// # Panics
    ///
    /// Panics if the container is not executing.
    pub fn finish_execution(&mut self, now: SimTime, busy: SimDuration) {
        assert_eq!(self.stage, ContainerStage::Executing, "finish out of order");
        if let Some(range) = self.exec_range.take() {
            self.table.free_range(range);
        }
        self.requests_served += 1;
        self.busy_time += busy;
        self.last_used = now;
        self.stage = ContainerStage::KeepAlive;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasmem_mem::PAGE_SIZE_4K;
    use faasmem_workload::BenchmarkSpec;

    fn container() -> Container {
        let spec = BenchmarkSpec::by_name("json").unwrap();
        Container::new(
            ContainerId(1),
            FunctionId(0),
            spec,
            PAGE_SIZE_4K,
            SimTime::from_secs(1),
        )
    }

    #[test]
    fn lifecycle_happy_path() {
        let mut c = container();
        assert_eq!(c.stage(), ContainerStage::Launching);
        assert!(c.table().is_empty());

        c.finish_launch();
        assert_eq!(c.stage(), ContainerStage::Initializing);
        let runtime_pages = mib_to_pages(c.spec().runtime_mib, PAGE_SIZE_4K);
        assert_eq!(c.table().local_pages(), runtime_pages);
        assert_eq!(u64::from(c.runtime_range().len()), runtime_pages);

        c.finish_init();
        assert_eq!(c.stage(), ContainerStage::Executing);
        let init_pages = mib_to_pages(c.spec().init_mib, PAGE_SIZE_4K);
        assert_eq!(c.table().local_pages(), runtime_pages + init_pages);

        let exec = c.table_mut().alloc(Segment::Execution, 10);
        c.set_exec_range(exec);
        c.finish_execution(SimTime::from_secs(2), SimDuration::from_millis(35));
        assert_eq!(c.stage(), ContainerStage::KeepAlive);
        assert_eq!(c.requests_served(), 1);
        assert_eq!(c.busy_time(), SimDuration::from_millis(35));
        assert_eq!(
            c.table().local_pages(),
            runtime_pages + init_pages,
            "exec pages freed"
        );
        assert!(c.exec_range().is_none());
    }

    #[test]
    fn warm_execution_roundtrip() {
        let mut c = container();
        c.finish_launch();
        c.finish_init();
        c.finish_execution(SimTime::from_secs(2), SimDuration::ZERO);
        c.begin_execution(SimTime::from_secs(10));
        assert_eq!(c.stage(), ContainerStage::Executing);
        assert_eq!(c.last_used(), SimTime::from_secs(10));
        c.finish_execution(SimTime::from_secs(11), SimDuration::from_secs(1));
        assert_eq!(c.requests_served(), 2);
    }

    #[test]
    fn idle_since_only_in_keepalive() {
        let mut c = container();
        assert_eq!(c.idle_since(SimTime::from_secs(100)), SimDuration::ZERO);
        c.finish_launch();
        c.finish_init();
        c.finish_execution(SimTime::from_secs(5), SimDuration::ZERO);
        assert_eq!(
            c.idle_since(SimTime::from_secs(65)),
            SimDuration::from_secs(60)
        );
    }

    #[test]
    fn request_penalty_recorded() {
        let mut c = container();
        c.record_request_penalty(17, SimDuration::from_millis(3));
        assert_eq!(c.last_request_faults(), 17);
        assert_eq!(c.last_request_stall(), SimDuration::from_millis(3));
    }

    #[test]
    #[should_panic(expected = "launch out of order")]
    fn double_launch_panics() {
        let mut c = container();
        c.finish_launch();
        c.finish_launch();
    }

    #[test]
    #[should_panic(expected = "init out of order")]
    fn init_before_launch_panics() {
        let mut c = container();
        c.finish_init();
    }

    #[test]
    #[should_panic(expected = "container busy")]
    fn begin_execution_while_launching_panics() {
        let mut c = container();
        c.begin_execution(SimTime::ZERO);
    }

    #[test]
    fn runtime_hot_pages_fraction() {
        let mut c = container();
        c.finish_launch();
        assert!(c.runtime_hot_pages() > 0);
        assert!(u64::from(c.runtime_hot_pages()) < u64::from(c.runtime_range().len()));
    }
}
