//! Deployment-density estimation (paper §8.6).
//!
//! In production each container is scheduled against a fixed memory
//! quota. The paper treats the amount a policy offloads as a *reducible
//! amount of the quota*: a 128 MB-quota container that keeps 28 MB remote
//! effectively needs a 100 MB quota, so a node of fixed DRAM can pack
//! `128/100 = 1.28×` more containers.

use crate::report::RunReport;
use faasmem_workload::BenchmarkSpec;

/// The density estimate for one function under one trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DensityEstimate {
    /// The function's scheduling quota in MiB.
    pub quota_mib: f64,
    /// Time-weighted mean offloaded MiB per live container.
    pub offloaded_per_container_mib: f64,
    /// Effective quota after subtracting the offloaded amount.
    pub effective_quota_mib: f64,
    /// Deployment-density multiplier (`quota / effective_quota`), ≥ 1.
    pub improvement: f64,
}

/// Estimates the density improvement of a run, following §8.6: the
/// time-weighted mean remote memory divided by the mean number of live
/// containers gives the average reducible quota per container.
///
/// Returns an improvement of exactly 1.0 when nothing was offloaded or no
/// container ever ran.
pub fn estimate_density(report: &RunReport, spec: &BenchmarkSpec) -> DensityEstimate {
    let quota_mib = spec.quota_mib as f64;
    let avg_containers = report.avg_live_containers();
    let offloaded_per_container_mib = if avg_containers > 0.0 {
        report.avg_remote_mib() / avg_containers
    } else {
        0.0
    };
    // The reducible amount can never exceed the quota itself; keep a
    // floor so pathological inputs don't divide by zero.
    let reducible = offloaded_per_container_mib.clamp(0.0, quota_mib * 0.9);
    let effective_quota_mib = quota_mib - reducible;
    DensityEstimate {
        quota_mib,
        offloaded_per_container_mib,
        effective_quota_mib,
        improvement: quota_mib / effective_quota_mib,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasmem_metrics::{LatencyRecorder, TimeSeries};
    use faasmem_sim::SimTime;
    use std::collections::HashMap;

    fn report_with(remote_mib: f64, containers: f64) -> RunReport {
        let finished = SimTime::from_secs(100);
        let mut remote_mem = TimeSeries::new();
        remote_mem.record(SimTime::ZERO, remote_mib * 1024.0 * 1024.0);
        let mut live = TimeSeries::new();
        live.record(SimTime::ZERO, containers);
        let mut local_mem = TimeSeries::new();
        local_mem.record(SimTime::ZERO, 0.0);
        RunReport {
            policy: "test",
            requests_completed: 0,
            cold_starts: 0,
            latency: LatencyRecorder::new(),
            requests: Vec::new(),
            local_mem,
            remote_mem,
            live_containers: live,
            pool_stats: Default::default(),
            containers: Vec::new(),
            reuse_intervals: HashMap::new(),
            finished_at: finished,
            faults: None,
            durability: None,
            blame: None,
            memory_anatomy: None,
            function_waste: Vec::new(),
            registry: faasmem_metrics::MetricsRegistry::new(),
            events_processed: 0,
        }
    }

    fn spec() -> BenchmarkSpec {
        BenchmarkSpec::by_name("json").unwrap() // quota 128 MiB
    }

    #[test]
    fn paper_example_28_of_128() {
        // One container holding 28 MiB remote on a 128 MiB quota → 1.28×.
        let report = report_with(28.0, 1.0);
        let d = estimate_density(&report, &spec());
        assert!((d.offloaded_per_container_mib - 28.0).abs() < 1e-6);
        assert!((d.effective_quota_mib - 100.0).abs() < 1e-6);
        assert!((d.improvement - 1.28).abs() < 1e-6);
    }

    #[test]
    fn no_offload_means_unity() {
        let d = estimate_density(&report_with(0.0, 3.0), &spec());
        assert_eq!(d.improvement, 1.0);
        assert_eq!(d.effective_quota_mib, 128.0);
    }

    #[test]
    fn no_containers_means_unity() {
        let d = estimate_density(&report_with(0.0, 0.0), &spec());
        assert_eq!(d.improvement, 1.0);
    }

    #[test]
    fn offload_split_across_containers() {
        // 56 MiB remote over 2 containers → 28 each → 1.28×.
        let d = estimate_density(&report_with(56.0, 2.0), &spec());
        assert!((d.improvement - 1.28).abs() < 1e-6);
    }

    #[test]
    fn improvement_is_capped() {
        // Even absurd offload cannot exceed the 10× cap implied by the
        // 90% reducible floor.
        let d = estimate_density(&report_with(10_000.0, 1.0), &spec());
        assert!(d.improvement <= 10.0 + 1e-9);
        assert!(d.improvement > 1.0);
    }
}
