//! Adaptive keep-alive (paper §10, "Keep-alive Strategy").
//!
//! The paper's platform uses a fixed 10-minute keep-alive; its related
//! work points at hybrid-histogram policies (Shahrad et al., ATC'20) that
//! set per-function timeouts from observed idle-time distributions, and
//! notes that "combining the above works can gain more benefits" with
//! FaaSMem. [`AdaptiveKeepAlive`] implements that combination: the
//! timeout for each function is a percentile of its observed
//! idle-before-reuse gaps, padded by a margin and clamped.

use faasmem_metrics::Cdf;
use faasmem_sim::SimDuration;

/// Configuration of the histogram-driven keep-alive.
///
/// # Examples
///
/// ```
/// use faasmem_faas::AdaptiveKeepAlive;
/// use faasmem_sim::SimDuration;
///
/// let ka = AdaptiveKeepAlive::default();
/// // No history yet: the conservative default applies.
/// assert_eq!(ka.timeout_from_samples(&[]), ka.default);
/// // A function always reused within ~30 s gets a tight timeout.
/// let samples: Vec<f64> = (0..50).map(|i| 20.0 + (i % 10) as f64).collect();
/// let t = ka.timeout_from_samples(&samples);
/// assert!(t < SimDuration::from_mins(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveKeepAlive {
    /// Percentile of the idle-gap distribution to cover.
    pub percentile: f64,
    /// Multiplicative safety margin on the percentile.
    pub margin: f64,
    /// Lower clamp (never recycle faster than this).
    pub min: SimDuration,
    /// Upper clamp (never keep longer than this).
    pub max: SimDuration,
    /// Samples required before trusting the histogram.
    pub min_samples: usize,
    /// Timeout applied while the history is too thin.
    pub default: SimDuration,
}

impl Default for AdaptiveKeepAlive {
    fn default() -> Self {
        AdaptiveKeepAlive {
            percentile: 0.99,
            margin: 1.25,
            min: SimDuration::from_secs(30),
            max: SimDuration::from_mins(10),
            min_samples: 8,
            default: SimDuration::from_mins(10),
        }
    }
}

impl AdaptiveKeepAlive {
    /// Computes the timeout from observed idle-before-reuse gaps in
    /// seconds.
    pub fn timeout_from_samples(&self, gaps_secs: &[f64]) -> SimDuration {
        if gaps_secs.len() < self.min_samples {
            return self.default;
        }
        let cdf = Cdf::from_samples(gaps_secs.iter().copied());
        let q = cdf
            .quantile(self.percentile)
            .unwrap_or(self.default.as_secs_f64());
        let padded = SimDuration::from_secs_f64(q * self.margin);
        padded.max(self.min).min(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thin_history_uses_default() {
        let ka = AdaptiveKeepAlive::default();
        assert_eq!(ka.timeout_from_samples(&[1.0; 7]), ka.default);
        assert_ne!(ka.timeout_from_samples(&[1.0; 8]), ka.default);
    }

    #[test]
    fn fast_reuse_shrinks_timeout() {
        let ka = AdaptiveKeepAlive::default();
        let gaps = vec![5.0; 100];
        let t = ka.timeout_from_samples(&gaps);
        // 5 s × 1.25 margin = 6.25 s, clamped up to the 30 s floor.
        assert_eq!(t, SimDuration::from_secs(30));
    }

    #[test]
    fn heavy_tail_respects_upper_clamp() {
        let ka = AdaptiveKeepAlive::default();
        let gaps = vec![3_600.0; 100];
        assert_eq!(ka.timeout_from_samples(&gaps), SimDuration::from_mins(10));
    }

    #[test]
    fn percentile_and_margin_apply() {
        let ka = AdaptiveKeepAlive {
            percentile: 0.5,
            margin: 2.0,
            min: SimDuration::ZERO,
            max: SimDuration::from_mins(60),
            min_samples: 1,
            default: SimDuration::from_mins(10),
        };
        let gaps = vec![100.0; 9];
        assert_eq!(ka.timeout_from_samples(&gaps), SimDuration::from_secs(200));
    }
}
