#![warn(missing_docs)]

//! A discrete-event serverless platform for the FaaSMem reproduction.
//!
//! This crate plays the role OpenWhisk plays in the paper's testbed
//! (§8.1): it registers functions, routes invocations to warm containers
//! or cold-starts new ones, runs the keep-alive policy (10-minute timeout
//! by default), and charges every request its end-to-end latency —
//! including the remote-memory fault penalties that the offloading policy
//! under test causes.
//!
//! The memory-management side is fully pluggable through the
//! [`MemoryPolicy`] trait: FaaSMem (in `faasmem-core`) and the TMO /
//! DAMON / no-offload baselines (in `faasmem-baselines`) all implement it,
//! so every comparison in the evaluation runs on an identical platform.
//!
//! # Architecture
//!
//! ```text
//!   InvocationTrace ──▶ PlatformSim (event loop)
//!                           │  route: warm container? else cold start
//!                           ▼
//!                      Container (PageTable per container)
//!                           │  lifecycle hooks
//!                           ▼
//!                    dyn MemoryPolicy  ──offload/fetch──▶  RemotePool
//! ```
//!
//! # Examples
//!
//! ```
//! use faasmem_faas::{PlatformSim, NullPolicy};
//! use faasmem_workload::{BenchmarkSpec, FunctionId, TraceSynthesizer, LoadClass};
//! use faasmem_sim::SimTime;
//!
//! let spec = BenchmarkSpec::by_name("json").unwrap();
//! let trace = TraceSynthesizer::new(1)
//!     .load_class(LoadClass::High)
//!     .duration(SimTime::from_mins(5))
//!     .synthesize_for(FunctionId(0));
//! let mut sim = PlatformSim::builder()
//!     .register_function(spec)
//!     .policy(NullPolicy::default())
//!     .build();
//! let report = sim.run(&trace);
//! assert!(report.requests_completed > 0);
//! assert_eq!(report.pool_stats.bytes_out, 0); // NullPolicy never offloads
//! ```

pub mod cluster;
pub mod container;
pub mod density;
pub mod keepalive;
pub mod platform;
pub mod policy;
pub mod rack;
pub mod report;
pub mod shard;

pub use cluster::{ClusterReport, ClusterSim, ClusterSpec, NodeReport};
pub use container::{Container, ContainerId, ContainerStage};
pub use density::{estimate_density, DensityEstimate};
pub use keepalive::AdaptiveKeepAlive;
pub use platform::{FaultConfig, PlatformBuilder, PlatformConfig, PlatformSim};
pub use policy::{MemoryPolicy, NullPolicy, PolicyCtx};
pub use rack::{NodeProfile, RackPlan, RackReport};
pub use report::{
    ContainerRecord, DurabilityReport, FaultReport, FunctionSummary, FunctionWaste,
    MemoryAnatomyReport, RequestRecord, RunReport, RunSummary,
};
pub use shard::{ShardSpec, CONTROL_SHARD};

// Re-export so downstream crates can name functions without depending on
// the workload crate directly.
pub use faasmem_workload::FunctionId;

// Re-export the blame vocabulary alongside the report types that carry
// it, so harness code can consume `RunReport::blame` without a direct
// metrics dependency.
pub use faasmem_metrics::{BlameComponent, BlameReport, ComponentBlame, BLAME_COMPONENTS};

// Same for the waste vocabulary carried by `RunReport::memory_anatomy`.
pub use faasmem_mem::{FlowMatrix, FlowRow, PageFlows, FLOW_STATES};
pub use faasmem_metrics::{
    byte_us_to_byte_secs, WasteComponent, WasteLedger, WasteReport, WasteSide, WASTE_COMPONENTS,
};
