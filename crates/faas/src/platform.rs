//! The platform simulator: event loop, routing, keep-alive.

use std::collections::HashMap;

use faasmem_mem::{mib_to_pages, FlowMatrix, PageId};
use faasmem_metrics::{
    BlameAccumulator, BlameBreakdown, BlameComponent, MetricsRegistry, SloTracker,
    WasteAccumulator, WasteComponent, WasteLedger,
};
use faasmem_pool::{
    BandwidthGovernor, CircuitBreaker, FabricConfig, PoolConfig, PoolFabric, RecallOutcome,
    RemoteFaultPolicy, RemotePool,
};
use faasmem_sim::faults::{FaultPlan, FaultSpec};
use faasmem_sim::{Clock, EventQueue, SimDuration, SimRng, SimTime};
use faasmem_telemetry::{Sampler, SeriesGroup};
use faasmem_trace::{EventKind, StallCause, Tracer};
use faasmem_workload::{BenchmarkSpec, FunctionId, Invocation, InvocationTrace, RequestAccess};

use crate::container::{Container, ContainerId, ContainerStage};
use crate::policy::{MemoryPolicy, NullPolicy, PolicyCtx};
use crate::report::{
    ContainerRecord, DurabilityReport, FaultReport, FunctionWaste, MemoryAnatomyReport,
    RequestRecord, RunReport,
};

/// Platform-wide configuration.
///
/// The default page size is 64 KiB rather than the kernel's 4 KiB: the
/// policies operate on page *sets*, so a 16× coarser granularity preserves
/// every decision boundary while keeping multi-gigabyte, hour-long traces
/// fast to simulate. Experiments that measure per-page costs (the Fig 15
/// overhead benches) use 4 KiB explicitly.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Bytes per simulated page.
    pub page_size: u64,
    /// Keep-alive timeout before an idle container is recycled
    /// (the paper's platform uses 10 minutes, §8.1).
    pub keep_alive: SimDuration,
    /// Remote pool and interconnect model.
    pub pool: PoolConfig,
    /// Multi-node pool fabric: placement, redundancy and repair. The
    /// default (one node, no redundancy) builds no fabric at all, so
    /// pre-fabric configurations stay byte-identical.
    pub fabric: FabricConfig,
    /// Sliding window of the offload-bandwidth governor.
    pub governor_window: SimDuration,
    /// Log-normal sigma of execution-time jitter.
    pub exec_jitter_sigma: f64,
    /// CPU cost of handling one demand fault (trap + mapping), in
    /// microseconds. Charged per faulted page and divided by the
    /// container's CPU share: fault handling is kernel work accounted to
    /// the (CPU-capped) container cgroup, which is why 0.1-core
    /// micro-benchmarks suffer the worst blow-ups in the paper's Fig 2.
    pub fault_cpu_micros: u64,
    /// FAASM-style runtime sharing (paper §9, "Memory sharing in
    /// serverless"): containers of the same function map one shared copy
    /// of the runtime segment, so node-local accounting counts each
    /// function's runtime once instead of per container. Orthogonal to —
    /// and combinable with — FaaSMem's offloading.
    pub share_runtime: bool,
    /// Optional hybrid-histogram keep-alive (paper §10's related work):
    /// when set, each function's timeout adapts to its observed
    /// idle-before-reuse distribution instead of the fixed `keep_alive`.
    pub adaptive_keep_alive: Option<crate::keepalive::AdaptiveKeepAlive>,
    /// RNG seed for all platform randomness.
    pub seed: u64,
    /// Seeded fault injection and the degradation policy reacting to it.
    /// `None` (the default) runs the healthy platform with zero fault
    /// machinery on any hot path.
    pub faults: Option<FaultConfig>,
    /// Per-invocation latency blame: decompose every request's
    /// end-to-end latency into named causal components (queue,
    /// cold-start, exec, and the stall families) and aggregate them
    /// into the report's blame block. Pure observation — no RNG draws,
    /// no extra events — so enabling it cannot perturb the run; off by
    /// default so pre-blame artifacts stay byte-identical by omission.
    pub blame: bool,
    /// Byte-second memory anatomy: integrate resident memory over sim
    /// time and decompose it into named occupancy components (active
    /// exec, keep-alive idle, init overhead, hot pool, pool primary,
    /// redundancy, repair backlog, in-flight), with the page-lifecycle
    /// flow matrix alongside. Pure observation like `blame` — no RNG
    /// draws, no extra events — and off by default so pre-anatomy
    /// artifacts stay byte-identical by omission.
    pub memory_anatomy: bool,
}

/// Fault injection plus the platform's reaction policy.
///
/// The fault timeline derives from [`FaultConfig::spec`]'s own seed, not
/// the platform seed, so enabling faults never perturbs the platform's
/// jitter stream and healthy runs stay byte-identical.
#[derive(Debug, Clone, Default)]
pub struct FaultConfig {
    /// Hazard rates; expanded to a timeline at run start.
    pub spec: FaultSpec,
    /// Timeout/backoff/circuit-breaker policy for remote page-ins.
    pub policy: RemoteFaultPolicy,
    /// Latency objective to measure violations against, if any.
    pub slo: Option<SimDuration>,
    /// Exact timeline to use instead of expanding `spec` — for tests
    /// that need a hand-built schedule (e.g. the empty plan).
    pub plan_override: Option<FaultPlan>,
}

impl PlatformConfig {
    /// Checks the configuration, returning every problem found so a bad
    /// grid fails at startup with messages instead of a backtrace
    /// mid-run.
    ///
    /// # Errors
    ///
    /// `Err` carries one human-readable message per problem.
    pub fn validate(&self) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        if self.page_size == 0 {
            problems.push("platform config: page size must be positive".into());
        }
        if !(self.exec_jitter_sigma.is_finite() && self.exec_jitter_sigma >= 0.0) {
            problems.push(format!(
                "platform config: exec jitter sigma {} must be finite and non-negative",
                self.exec_jitter_sigma
            ));
        }
        if self.governor_window.is_zero() {
            problems.push("platform config: governor window must be positive".into());
        }
        problems.extend(self.pool.validate());
        problems.extend(self.fabric.validate());
        if let Some(fc) = &self.faults {
            problems.extend(fc.spec.validate());
            problems.extend(fc.policy.validate());
            if fc.slo == Some(SimDuration::ZERO) {
                problems.push("platform config: SLO threshold must be positive".into());
            }
            if fc.spec.pool_node_loss_mtbf.is_some() && fc.spec.pool_node_count != self.fabric.nodes
            {
                problems.push(format!(
                    "platform config: fault spec draws pool-node losses over {} nodes but the fabric has {}",
                    fc.spec.pool_node_count, self.fabric.nodes
                ));
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            page_size: 64 * 1024,
            keep_alive: SimDuration::from_mins(10),
            pool: PoolConfig::default(),
            fabric: FabricConfig::default(),
            governor_window: SimDuration::from_secs(1),
            exec_jitter_sigma: 0.05,
            fault_cpu_micros: 8,
            share_runtime: false,
            adaptive_keep_alive: None,
            seed: 0xFAA5,
            faults: None,
            blame: false,
            memory_anatomy: false,
        }
    }
}

/// Builder for [`PlatformSim`].
pub struct PlatformBuilder {
    config: PlatformConfig,
    specs: Vec<BenchmarkSpec>,
    policy: Box<dyn MemoryPolicy>,
    tracer: Tracer,
    sampler: Sampler,
}

impl PlatformBuilder {
    fn new() -> Self {
        PlatformBuilder {
            config: PlatformConfig::default(),
            specs: Vec::new(),
            policy: Box::new(NullPolicy),
            tracer: Tracer::disabled(),
            sampler: Sampler::disabled(),
        }
    }

    /// Registers a function; functions get sequential [`FunctionId`]s in
    /// registration order (matching trace synthesis).
    pub fn register_function(mut self, spec: BenchmarkSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Registers many functions at once.
    pub fn register_functions<I: IntoIterator<Item = BenchmarkSpec>>(mut self, specs: I) -> Self {
        self.specs.extend(specs);
        self
    }

    /// Installs the memory policy under test.
    pub fn policy<P: MemoryPolicy + 'static>(mut self, policy: P) -> Self {
        self.policy = Box::new(policy);
        self
    }

    /// Replaces the whole configuration.
    pub fn config(mut self, config: PlatformConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides the keep-alive timeout.
    pub fn keep_alive(mut self, keep_alive: SimDuration) -> Self {
        self.config.keep_alive = keep_alive;
        self
    }

    /// Overrides the page size.
    pub fn page_size(mut self, page_size: u64) -> Self {
        self.config.page_size = page_size;
        self
    }

    /// Overrides the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Enables FAASM-style runtime sharing (see
    /// [`PlatformConfig::share_runtime`]).
    pub fn share_runtime(mut self, on: bool) -> Self {
        self.config.share_runtime = on;
        self
    }

    /// Installs a hybrid-histogram keep-alive policy (see
    /// [`PlatformConfig::adaptive_keep_alive`]).
    pub fn adaptive_keep_alive(mut self, policy: crate::keepalive::AdaptiveKeepAlive) -> Self {
        self.config.adaptive_keep_alive = Some(policy);
        self
    }

    /// Enables seeded fault injection (see [`FaultConfig`]).
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.config.faults = Some(faults);
        self
    }

    /// Enables per-invocation latency blame (see
    /// [`PlatformConfig::blame`]).
    pub fn blame(mut self, on: bool) -> Self {
        self.config.blame = on;
        self
    }

    /// Enables byte-second memory anatomy (see
    /// [`PlatformConfig::memory_anatomy`]).
    pub fn memory_anatomy(mut self, on: bool) -> Self {
        self.config.memory_anatomy = on;
        self
    }

    /// Configures the multi-node pool fabric (see [`FabricConfig`]).
    pub fn fabric(mut self, fabric: FabricConfig) -> Self {
        self.config.fabric = fabric;
        self
    }

    /// Installs an event tracer. The platform shares it with the pool
    /// and every container page table, so one sink observes all layers
    /// in `(sim_time, seq)` order. The default disabled tracer keeps
    /// every emission site a single branch.
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Installs a telemetry sampler. The platform snapshots gauges
    /// from every layer at each interval boundary the event loop
    /// crosses — no queue events are injected, so an enabled sampler
    /// cannot perturb the simulation. The default disabled sampler
    /// costs one branch per event.
    pub fn sampler(mut self, sampler: Sampler) -> Self {
        self.sampler = sampler;
        self
    }

    /// Builds the simulator.
    ///
    /// # Panics
    ///
    /// Panics if no functions were registered.
    pub fn build(self) -> PlatformSim {
        assert!(!self.specs.is_empty(), "register at least one function");
        let governor = BandwidthGovernor::new(
            self.config.pool.effective_out_bytes_per_sec(),
            self.config.governor_window,
        );
        let mut pool = RemotePool::new(self.config.pool.clone());
        pool.attach_tracer(self.tracer.clone());
        let fabric = if self.config.fabric.is_degenerate() {
            None
        } else {
            let mut fabric = PoolFabric::new(self.config.fabric.clone());
            fabric.attach_tracer(self.tracer.clone());
            Some(fabric)
        };
        let blame = self.config.blame.then(BlameAccumulator::new);
        let anatomy = self
            .config
            .memory_anatomy
            .then(|| AnatomyRuntime::new(self.specs.len()));
        PlatformSim {
            rng: SimRng::seed_from(self.config.seed),
            pool,
            fabric,
            governor,
            specs: self.specs,
            policy: self.policy,
            config: self.config,
            containers: HashMap::new(),
            in_flight: HashMap::new(),
            next_container: 0,
            reuse_gaps: HashMap::new(),
            faults: None,
            blame,
            anatomy,
            tracer: self.tracer,
            sampler: self.sampler,
            tick_scratch: Vec::new(),
            peak_local_bytes: 0,
            peak_live: 0,
            ran: false,
        }
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum Event {
    /// Index into the trace's invocation list.
    Invoke(u32),
    RuntimeLoaded(ContainerId),
    InitDone(ContainerId),
    FinishExec(ContainerId),
    RecycleCheck(ContainerId),
    Tick,
    /// Index into the fault plan's node-loss list.
    NodeLoss(u32),
    /// Index into the fault plan's crash list.
    ContainerCrash(u32),
    /// Index into the fault plan's pool-node-loss list.
    PoolNodeLoss(u32),
}

/// Scheduling surface the event handlers push through: implemented by
/// the serial [`EventQueue`] and by the sharded driver's routing sink
/// (see `crate::shard`), so handler bodies are shared verbatim between
/// both execution modes — the byte-identity contract reduces to the two
/// sinks agreeing on `(sim_time, seq)` order.
pub(crate) trait EventSink {
    /// Schedules one event.
    fn push(&mut self, at: SimTime, event: Event);
    /// Schedules a same-instant group in iterator order (the stable
    /// FIFO contract of [`EventQueue::push_at_many`]).
    fn push_group(&mut self, at: SimTime, events: &mut dyn Iterator<Item = Event>);
    /// Pre-sizes internal storage for `additional` upcoming pushes.
    fn reserve(&mut self, additional: usize);
    /// `true` while any event is still scheduled.
    fn has_pending(&self) -> bool;
}

impl EventSink for EventQueue<Event> {
    fn push(&mut self, at: SimTime, event: Event) {
        EventQueue::push(self, at, event);
    }
    fn push_group(&mut self, at: SimTime, events: &mut dyn Iterator<Item = Event>) {
        self.push_at_many(at, events);
    }
    fn reserve(&mut self, additional: usize) {
        EventQueue::reserve(self, additional);
    }
    fn has_pending(&self) -> bool {
        !self.is_empty()
    }
}

/// Everything [`PlatformSim::prepare`] derives from the trace before
/// seeding: the driver loops (serial and sharded) thread it through
/// [`PlatformSim::seed`] and [`PlatformSim::process_event`].
pub(crate) struct RunSetup {
    invocations: Vec<Invocation>,
    tick: Option<SimDuration>,
    trace_duration: SimTime,
}

/// Live fault-injection state: the expanded timeline plus the reaction
/// machinery and its counters. Exists only while `config.faults` is set.
struct FaultRuntime {
    plan: FaultPlan,
    policy: RemoteFaultPolicy,
    breaker: CircuitBreaker,
    slo: Option<SloTracker>,
    page_in_retries: u64,
    page_ins_gave_up: u64,
    forced_cold_restarts: u64,
    node_loss_events: u64,
    container_crashes: u64,
    lost_remote_bytes: u64,
    /// Breaker state observed on the previous event, so the run loop can
    /// trace the open→closed transition (the pool traces open).
    breaker_open_prev: bool,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    /// Invocation index within the trace — the trace subsystem's
    /// request id.
    req: u32,
    arrived: SimTime,
    exec_started: SimTime,
    cold: bool,
    faults: u32,
    /// Latency components charged so far. Execution start charges
    /// cold-start, pure exec and every stall addend — the exact
    /// [`SimDuration`]s the simulator folds into the timeline — so at
    /// finish the breakdown already sums to the measured latency.
    breakdown: BlameBreakdown,
    /// Instant until which this invocation sits blocked on remote
    /// recall work (stalls serialize at the head of the exec window);
    /// drives the `faas.invocations_stalled_remote` gauge.
    remote_stall_until: SimTime,
}

/// The blame component a traced stall cause charges. The trace and
/// metrics crates are deliberately decoupled (they agree on component
/// *names*, not types), so the platform — which depends on both — owns
/// the mapping.
fn stall_component(cause: StallCause) -> BlameComponent {
    match cause {
        StallCause::FaultCpu => BlameComponent::FaultCpu,
        StallCause::RecallStall => BlameComponent::RecallStall,
        StallCause::FailoverDetour => BlameComponent::FailoverDetour,
        StallCause::AbandonedWait => BlameComponent::AbandonedWait,
        StallCause::ForcedRebuild => BlameComponent::ForcedRebuild,
    }
}

/// Runtime state of byte-second memory anatomy (see
/// [`PlatformConfig::memory_anatomy`]): the interval integrator, the
/// per-function ledgers, and the lifecycle flow matrix.
#[derive(Debug)]
struct AnatomyRuntime {
    /// Run-wide integrator with the per-side conservation checks.
    acc: WasteAccumulator,
    /// Per-function ledgers indexed by function id: each function's
    /// compute-side charges plus the primary pool occupancy of its own
    /// offloaded pages.
    per_function: Vec<WasteLedger>,
    /// Lifecycle edges folded in once per container, at recycle time.
    flow: FlowMatrix,
    /// End of the last integrated interval.
    last: SimTime,
    /// Pool transfer byte-µs already charged to `offload_inflight`.
    last_transfer_byte_us: u128,
}

impl AnatomyRuntime {
    fn new(functions: usize) -> Self {
        AnatomyRuntime {
            acc: WasteAccumulator::new(),
            per_function: vec![WasteLedger::new(); functions],
            flow: FlowMatrix::new(),
            last: SimTime::ZERO,
            last_transfer_byte_us: 0,
        }
    }
}

/// The compute-side component a container's plain (non-hot-pool) local
/// pages occupy, by lifecycle stage.
fn stage_waste_component(stage: ContainerStage) -> WasteComponent {
    match stage {
        ContainerStage::Launching | ContainerStage::Initializing => WasteComponent::InitOverhead,
        ContainerStage::Executing => WasteComponent::ActiveExec,
        ContainerStage::KeepAlive => WasteComponent::KeepaliveIdle,
    }
}

/// The serverless-platform simulator.
///
/// Construct with [`PlatformSim::builder`], then call [`PlatformSim::run`]
/// with an invocation trace. A simulator instance runs one trace; build a
/// fresh one per experiment to keep runs independent and deterministic.
pub struct PlatformSim {
    config: PlatformConfig,
    specs: Vec<BenchmarkSpec>,
    policy: Box<dyn MemoryPolicy>,
    containers: HashMap<ContainerId, Container>,
    in_flight: HashMap<ContainerId, InFlight>,
    pool: RemotePool,
    governor: BandwidthGovernor,
    rng: SimRng,
    next_container: u64,
    /// Observed idle-before-reuse gaps per function, in seconds (drives
    /// the adaptive keep-alive).
    reuse_gaps: HashMap<FunctionId, Vec<f64>>,
    faults: Option<FaultRuntime>,
    /// Per-invocation blame accumulator; `Some` only when
    /// [`PlatformConfig::blame`] is set. Records in `handle_finish`
    /// order, which both drivers replay identically, so the resulting
    /// report is shard-invariant by the same argument as every other
    /// aggregate.
    blame: Option<BlameAccumulator>,
    /// Byte-second occupancy integrator; `Some` only when
    /// [`PlatformConfig::memory_anatomy`] is set. Charges at the top of
    /// `process_event` — before any state mutates — so each interval is
    /// integrated against the frozen pre-event state, in the global
    /// `(time, seq)` order both drivers replay identically.
    anatomy: Option<AnatomyRuntime>,
    /// Placement/durability ledger over the pool nodes; `None` for the
    /// degenerate single-node, no-redundancy configuration (the entire
    /// pre-fabric fast path).
    fabric: Option<PoolFabric>,
    tracer: Tracer,
    sampler: Sampler,
    /// Run-long scratch buffer for the tick handler's sorted container
    /// walk, reused so the steady-state event loop never allocates.
    tick_scratch: Vec<ContainerId>,
    /// Highest node-local footprint observed at any event (bytes).
    peak_local_bytes: u64,
    /// Highest live-container count observed at any event.
    peak_live: u64,
    ran: bool,
}

impl PlatformSim {
    /// Starts building a platform.
    pub fn builder() -> PlatformBuilder {
        PlatformBuilder::new()
    }

    /// The active configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// Runs the trace to completion (all containers recycled) and returns
    /// the measurements.
    ///
    /// # Panics
    ///
    /// Panics if called twice on the same simulator, or if the trace
    /// invokes an unregistered function.
    pub fn run(&mut self, trace: &InvocationTrace) -> RunReport {
        let setup = self.prepare(trace);
        let mut queue: EventQueue<Event> = EventQueue::with_capacity(setup.invocations.len() * 4);
        self.seed(&setup, &mut queue);
        let mut clock = Clock::new();
        let mut report = self.new_report(&setup);
        while let Some((at, event)) = queue.pop() {
            clock.advance_to(at);
            self.process_event(clock.now(), event, &setup, &mut queue, &mut report);
        }
        self.finish(clock.now(), &mut report);
        report
    }

    /// Validates the trace against the registered functions and captures
    /// what seeding and the event loop need.
    ///
    /// # Panics
    ///
    /// Panics if the simulator already ran, or if the trace invokes an
    /// unregistered function.
    pub(crate) fn prepare(&mut self, trace: &InvocationTrace) -> RunSetup {
        assert!(
            !self.ran,
            "PlatformSim::run consumes the simulator; build a fresh one"
        );
        self.ran = true;

        let invocations: Vec<_> = trace.iter().copied().collect();
        for inv in &invocations {
            assert!(
                (inv.function.0 as usize) < self.specs.len(),
                "trace invokes unregistered {}",
                inv.function
            );
        }
        RunSetup {
            invocations,
            tick: self.policy.tick_interval(),
            trace_duration: trace.duration(),
        }
    }

    /// Seeds the initial event population — invocations, the first policy
    /// tick, and the fault timeline — in the exact push order both
    /// drivers must share (seq/stamp assignment follows push order).
    pub(crate) fn seed(&mut self, setup: &RunSetup, queue: &mut dyn EventSink) {
        let invocations = &setup.invocations;
        // Bursty traces schedule many invocations at the same instant;
        // batching each same-time run keeps seq assignment identical to
        // pushing one by one while touching the heap allocator once.
        let mut i = 0;
        while i < invocations.len() {
            let at = invocations[i].at;
            let run_end = invocations[i..]
                .iter()
                .position(|inv| inv.at != at)
                .map_or(invocations.len(), |n| i + n);
            queue.push_group(at, &mut (i..run_end).map(|j| Event::Invoke(j as u32)));
            i = run_end;
        }
        if let Some(dt) = setup.tick {
            queue.push(SimTime::ZERO + dt, Event::Tick);
        }

        if let Some(fc) = self.config.faults.clone() {
            // Cover the trace plus the keep-alive drain so faults can
            // still hit idle containers after the last invocation.
            let horizon = setup
                .trace_duration
                .saturating_add(self.config.keep_alive * 2)
                .max(SimTime::from_micros(1));
            let plan = fc
                .plan_override
                .clone()
                .unwrap_or_else(|| fc.spec.plan(horizon));
            // The pool is untouched at this point; rebuild it around the
            // planned link schedule.
            self.pool = RemotePool::with_link_schedule(self.config.pool.clone(), plan.link.clone());
            self.pool.attach_tracer(self.tracer.clone());
            // The pool layer can't see the plan (it only observes the
            // degraded links), so the platform announces the windows.
            if self.tracer.wants(faasmem_trace::TraceLayer::Pool) {
                for w in plan.link.windows() {
                    self.tracer.emit(
                        None,
                        None,
                        EventKind::FaultWindow {
                            start_us: w.start.as_micros(),
                            end_us: w.end.as_micros(),
                            factor: w.factor,
                        },
                    );
                }
            }
            queue
                .reserve(plan.node_losses.len() + plan.crashes.len() + plan.pool_node_losses.len());
            for (i, loss) in plan.node_losses.iter().enumerate() {
                queue.push(loss.at, Event::NodeLoss(i as u32));
            }
            for (i, crash) in plan.crashes.iter().enumerate() {
                queue.push(crash.at, Event::ContainerCrash(i as u32));
            }
            for (i, loss) in plan.pool_node_losses.iter().enumerate() {
                queue.push(loss.at, Event::PoolNodeLoss(i as u32));
            }
            // A plan that kills pool nodes needs the placement ledger
            // even when the configured fabric is degenerate: materialize
            // a single-node fabric so the losses have a ledger to hit.
            if !plan.pool_node_losses.is_empty() && self.fabric.is_none() {
                let mut fabric = PoolFabric::new(self.config.fabric.clone());
                fabric.attach_tracer(self.tracer.clone());
                self.fabric = Some(fabric);
            }
            self.faults = Some(FaultRuntime {
                plan,
                policy: fc.policy,
                breaker: CircuitBreaker::from_policy(&fc.policy),
                slo: fc.slo.map(SloTracker::new),
                page_in_retries: 0,
                page_ins_gave_up: 0,
                forced_cold_restarts: 0,
                node_loss_events: 0,
                container_crashes: 0,
                lost_remote_bytes: 0,
                breaker_open_prev: false,
            });
        }
    }

    /// A fresh, empty [`RunReport`] with the time-series zero anchors
    /// both drivers start from.
    pub(crate) fn new_report(&self, setup: &RunSetup) -> RunReport {
        let mut report = RunReport {
            policy: self.policy.name(),
            requests_completed: 0,
            cold_starts: 0,
            latency: faasmem_metrics::LatencyRecorder::new(),
            requests: Vec::with_capacity(setup.invocations.len()),
            local_mem: faasmem_metrics::TimeSeries::new(),
            remote_mem: faasmem_metrics::TimeSeries::new(),
            live_containers: faasmem_metrics::TimeSeries::new(),
            pool_stats: Default::default(),
            containers: Vec::new(),
            reuse_intervals: HashMap::new(),
            finished_at: SimTime::ZERO,
            faults: None,
            durability: None,
            blame: None,
            memory_anatomy: None,
            function_waste: Vec::new(),
            registry: MetricsRegistry::new(),
            events_processed: 0,
        };
        report.local_mem.record(SimTime::ZERO, 0.0);
        report.remote_mem.record(SimTime::ZERO, 0.0);
        report.live_containers.record(SimTime::ZERO, 0.0);
        report
    }

    /// Handles one popped event: breaker bookkeeping, dispatch, and the
    /// post-event memory/telemetry sampling. Shared verbatim by the
    /// serial and sharded drivers.
    pub(crate) fn process_event(
        &mut self,
        now: SimTime,
        event: Event,
        setup: &RunSetup,
        queue: &mut dyn EventSink,
        report: &mut RunReport,
    ) {
        {
            report.events_processed += 1;
            self.tracer.set_now(now);
            // Integrate occupancy over the interval ending now, against
            // the state frozen since the previous event — before the
            // breaker, fabric repairs or the event mutate anything.
            self.anatomy_advance(now);
            if let Some(fr) = &mut self.faults {
                // Graceful degradation: while the breaker holds the pool
                // unhealthy, policies refuse new offloads and the
                // platform leans on local-memory keep-alive.
                let open = fr.breaker.is_open(now);
                self.pool.set_offloads_suspended(open);
                // The pool traces the open transition at trip time; the
                // close is only observable here, when the cooldown lapses.
                if fr.breaker_open_prev && !open {
                    self.tracer.emit(None, None, EventKind::BreakerClose);
                }
                fr.breaker_open_prev = open;
            }
            if let Some(fabric) = &mut self.fabric {
                // Apply background repairs that completed before this
                // instant, so recall decisions see the repaired state.
                fabric.advance(now);
            }
            match event {
                Event::Invoke(i) => {
                    let inv = setup.invocations[i as usize];
                    self.handle_invoke(now, i, inv.function, queue, report);
                }
                Event::RuntimeLoaded(id) => self.handle_runtime_loaded(now, id, queue),
                Event::InitDone(id) => self.handle_init_done(now, id, queue),
                Event::FinishExec(id) => self.handle_finish(now, id, queue, report),
                Event::RecycleCheck(id) => self.handle_recycle(now, id, queue, report),
                Event::Tick => {
                    // Visit containers in id order: tick-time offloads
                    // queue on the shared link, so HashMap iteration
                    // order would leak into link contention and make
                    // runs irreproducible. The id buffer lives on the
                    // simulator and is reused tick after tick, so the
                    // steady-state loop allocates nothing.
                    let mut ids = std::mem::take(&mut self.tick_scratch);
                    ids.clear();
                    ids.extend(self.containers.keys().copied());
                    ids.sort_unstable();
                    for id in ids.drain(..) {
                        let remote_before = self.remote_pages_of(id);
                        let container = self.containers.get_mut(&id).expect("live container");
                        let mut ctx = PolicyCtx {
                            now,
                            container,
                            pool: &mut self.pool,
                            governor: &mut self.governor,
                        };
                        self.policy.on_tick(&mut ctx);
                        self.sync_fabric(now, id, remote_before);
                    }
                    // Hand the (drained) buffer back for the next tick.
                    self.tick_scratch = ids;
                    if let Some(dt) = setup.tick {
                        if !self.containers.is_empty() || queue.has_pending() {
                            queue.push(now + dt, Event::Tick);
                        }
                    }
                }
                Event::NodeLoss(i) => self.handle_node_loss(now, i as usize, report),
                Event::ContainerCrash(i) => self.handle_crash(now, i as usize, report),
                Event::PoolNodeLoss(i) => self.handle_pool_node_loss(now, i as usize, report),
            }
            self.record_memory(now, report);
            self.sample_due(now, report);
        }
    }

    /// Drains leftover containers and fills the report's run-end fields.
    /// `now` is the final clock time after the event loop emptied.
    pub(crate) fn finish(&mut self, now: SimTime, report: &mut RunReport) {
        // Close the final occupancy interval before draining state.
        self.anatomy_advance(now);
        // Retire any containers still alive (should not happen after the
        // keep-alive drain, but be robust).
        let mut leftover: Vec<ContainerId> = self.containers.keys().copied().collect();
        leftover.sort_unstable();
        for id in leftover {
            self.recycle_container(now, id, report);
        }
        self.record_memory(now, report);
        self.sample_due(now, report);

        report.pool_stats = self.pool.stats();
        report.finished_at = now;
        if let Some(fr) = &self.faults {
            let finished = report.finished_at;
            let downtime = fr.plan.link.downtime_before(finished);
            let availability = if finished == SimTime::ZERO {
                1.0
            } else {
                1.0 - downtime.as_secs_f64() / finished.as_secs_f64()
            };
            report.faults = Some(FaultReport {
                link_availability: availability,
                link_downtime: downtime,
                page_in_retries: fr.page_in_retries,
                page_ins_gave_up: fr.page_ins_gave_up,
                forced_cold_restarts: fr.forced_cold_restarts,
                node_loss_events: fr.node_loss_events,
                container_crashes: fr.container_crashes,
                lost_remote_bytes: fr.lost_remote_bytes,
                offloads_refused: self.pool.offloads_refused(),
                breaker_opens: fr.breaker.opens(),
                slo_total: fr.slo.map_or(0, |s| s.total()),
                slo_violations: fr.slo.map_or(0, |s| s.violations()),
            });
        }
        report.durability = self.fabric.as_ref().map(|fabric| DurabilityReport {
            pool_nodes: fabric.nodes(),
            nodes_up: fabric.nodes_up(),
            under_replicated_final: fabric.under_replicated() as u64,
            repair_backlog_bytes: fabric.repair_backlog_bytes(),
            tracker: *fabric.tracker(),
        });
        report.blame = self.blame.as_ref().map(|acc| acc.report());
        if let Some(an) = &self.anatomy {
            report.memory_anatomy = Some(MemoryAnatomyReport {
                waste: an.acc.report(),
                flow: an.flow,
            });
            report.function_waste = an
                .per_function
                .iter()
                .enumerate()
                .filter(|(_, ledger)| ledger.total() > 0)
                .map(|(i, ledger)| FunctionWaste {
                    function: FunctionId(i as u32),
                    name: self.specs[i].name,
                    ledger: *ledger,
                })
                .collect();
        }
        self.fill_registry(report);
    }

    /// The conservative window lookahead for the sharded driver: half
    /// the shortest registered spec latency, floored at the pool's
    /// minimum transfer latency (and one microsecond). Any positive
    /// value is *correct* — the window contracts around cross-shard
    /// edges shorter than promised — so this only tunes how much work a
    /// window batches.
    pub(crate) fn cross_shard_lookahead(&self) -> SimDuration {
        let spec_min = self
            .specs
            .iter()
            .map(|s| s.launch_time.min(s.exec_time))
            .min()
            .unwrap_or(SimDuration::from_micros(1));
        spec_min
            .mul_f64(0.5)
            .max(self.config.pool.min_transfer_latency())
            .max(SimDuration::from_micros(1))
    }

    /// Mutable access to the remote pool for the sharded driver (shard
    /// accounting is enabled only after seeding, which may rebuild the
    /// pool around a fault plan's link schedule).
    pub(crate) fn pool_mut(&mut self) -> &mut RemotePool {
        &mut self.pool
    }

    /// Per-shard pool traffic recorded by the last
    /// [`PlatformSim::run_sharded`] call — empty after a serial
    /// [`PlatformSim::run`]. Diagnostic only: these counters never enter
    /// the report, so shard count cannot leak into any output artefact.
    pub fn pool_shard_traffic(&self) -> &[faasmem_pool::ShardTraffic] {
        self.pool.shard_traffic()
    }

    /// Integrates resident memory over the interval since the last event
    /// into the anatomy ledgers. Called at the top of
    /// [`PlatformSim::process_event`] — before any state mutates — so each
    /// interval is charged against the exact state that held throughout
    /// it (state is frozen between events, so piecewise-constant
    /// integration is exact). No-op when anatomy is off.
    fn anatomy_advance(&mut self, now: SimTime) {
        let Some(an) = self.anatomy.as_mut() else {
            return;
        };
        let elapsed = u128::from(now.saturating_since(an.last).as_micros());
        let transfer_now = self.pool.transfer_byte_micros();
        let inflight_delta = transfer_now - an.last_transfer_byte_us;
        if elapsed == 0 && inflight_delta == 0 {
            return;
        }
        an.last = now;
        an.last_transfer_byte_us = transfer_now;

        // Compute side: every container's local pages, split by lifecycle
        // stage with hot-pool pages carved out. HashMap iteration order is
        // fine here: u128 summation is order-independent, so the ledger is
        // identical however the containers are visited.
        let mut delta = WasteLedger::new();
        let mut measured_compute: u128 = 0;
        let mut remote_byte_us: u128 = 0;
        for c in self.containers.values() {
            let table = c.table();
            let local_bytes = u128::from(table.local_bytes());
            let hot_bytes = u128::from(table.hot_local_pages() * self.config.page_size);
            let plain_bytes = local_bytes.saturating_sub(hot_bytes);
            let stage = stage_waste_component(c.stage());
            delta.charge(stage, plain_bytes * elapsed);
            delta.charge(WasteComponent::LocalHotPool, hot_bytes * elapsed);
            measured_compute += local_bytes * elapsed;
            let remote = u128::from(table.remote_bytes()) * elapsed;
            remote_byte_us += remote;
            let ledger = &mut an.per_function[c.function().0 as usize];
            ledger.charge(stage, plain_bytes * elapsed);
            ledger.charge(WasteComponent::LocalHotPool, hot_bytes * elapsed);
            ledger.charge(WasteComponent::PoolPrimary, remote);
        }

        // Pool side. Primary occupancy comes from the pool's own ledger,
        // while the measured total is rebuilt from the page tables plus
        // fabric overheads — the conservation check is exactly the
        // cross-ledger reconciliation of those two views.
        delta.charge(
            WasteComponent::PoolPrimary,
            u128::from(self.pool.used_bytes()) * elapsed,
        );
        let occupancy = self
            .fabric
            .as_ref()
            .map(|f| f.occupancy())
            .unwrap_or_default();
        let overhead_byte_us =
            u128::from(occupancy.redundant_bytes + occupancy.repair_backlog_bytes) * elapsed;
        delta.charge(
            WasteComponent::RedundancyAmplification,
            u128::from(occupancy.redundant_bytes) * elapsed,
        );
        delta.charge(
            WasteComponent::RepairBacklog,
            u128::from(occupancy.repair_backlog_bytes) * elapsed,
        );
        delta.charge(WasteComponent::OffloadInflight, inflight_delta);
        let measured_pool = remote_byte_us + overhead_byte_us + inflight_delta;

        an.acc.record_step(&delta, measured_compute, measured_pool);
    }

    /// Snapshots the run's counters and gauges into the report registry.
    /// Runs once at run end so the hot path never touches the maps.
    fn fill_registry(&self, report: &mut RunReport) {
        let reg = &mut report.registry;
        reg.add("containers.created", self.next_container);
        reg.add("containers.recycled", report.containers.len() as u64);
        reg.add("requests.completed", report.requests_completed as u64);
        reg.add("requests.cold_starts", report.cold_starts as u64);
        reg.add(
            "mem.demand_faults",
            report.requests.iter().map(|r| u64::from(r.faults)).sum(),
        );
        reg.add("pool.bytes_out", report.pool_stats.bytes_out);
        reg.add("pool.bytes_in", report.pool_stats.bytes_in);
        reg.add("pool.out_ops", report.pool_stats.out_ops);
        reg.add("pool.in_ops", report.pool_stats.in_ops);
        reg.add("pool.offloads_refused", self.pool.offloads_refused());
        if let Some(fr) = &self.faults {
            reg.add("faults.page_in_retries", fr.page_in_retries);
            reg.add("faults.page_ins_gave_up", fr.page_ins_gave_up);
            reg.add("faults.forced_cold_restarts", fr.forced_cold_restarts);
            reg.add("faults.node_loss_events", fr.node_loss_events);
            reg.add("faults.container_crashes", fr.container_crashes);
            reg.add("faults.breaker_opens", fr.breaker.opens());
        }
        if let Some(fabric) = &self.fabric {
            let t = fabric.tracker();
            reg.add("durability.nodes_lost", t.nodes_lost);
            reg.add("durability.segments_lost", t.segments_lost);
            reg.add("durability.bytes_lost", t.bytes_lost);
            reg.add("durability.failover_recalls", t.failover_recalls);
            reg.add("durability.bytes_recovered", t.bytes_recovered);
            reg.add("durability.avoided_cold_rebuilds", t.avoided_cold_rebuilds);
            reg.add("durability.replica_bytes_out", t.replica_bytes_out);
            reg.add("durability.repair_bytes", t.repair_bytes);
            reg.add("durability.repairs_completed", t.repairs_completed);
            reg.add("durability.repairs_abandoned", t.repairs_abandoned);
        }
        reg.set_gauge("mem.peak_local_bytes", self.peak_local_bytes as f64);
        reg.set_gauge("containers.peak_live", self.peak_live as f64);
    }

    /// A pool node died: the affected fraction of idle containers lose
    /// their remote pages and are recycled — their next invocation pays
    /// a full cold start.
    fn handle_node_loss(&mut self, now: SimTime, index: usize, report: &mut RunReport) {
        let Some(fr) = &self.faults else { return };
        let fraction = fr.plan.node_losses[index].fraction;
        let mut victims: Vec<(ContainerId, u64)> = self
            .containers
            .values()
            .filter(|c| c.stage() == ContainerStage::KeepAlive && c.table().remote_pages() > 0)
            .map(|c| (c.id(), c.table().remote_pages()))
            .collect();
        victims.sort_by_key(|&(id, _)| id);
        let hit = ((victims.len() as f64 * fraction).ceil() as usize).min(victims.len());
        victims.truncate(hit);
        let mut lost_bytes = 0u64;
        for &(id, remote_pages) in &victims {
            lost_bytes += remote_pages * self.config.page_size;
            self.recycle_container(now, id, report);
        }
        let fr = self.faults.as_mut().expect("fault runtime");
        fr.node_loss_events += 1;
        fr.forced_cold_restarts += victims.len() as u64;
        fr.lost_remote_bytes += lost_bytes;
        self.tracer.emit(
            None,
            None,
            EventKind::NodeLoss {
                victims: victims.len() as u64,
                lost_bytes,
            },
        );
    }

    /// One idle container crashes; the planned `pick` selects the victim
    /// deterministically among the id-sorted idle set.
    fn handle_crash(&mut self, now: SimTime, index: usize, report: &mut RunReport) {
        let Some(fr) = &self.faults else { return };
        let pick = fr.plan.crashes[index].pick;
        let mut idle: Vec<ContainerId> = self
            .containers
            .values()
            .filter(|c| c.stage() == ContainerStage::KeepAlive)
            .map(|c| c.id())
            .collect();
        if idle.is_empty() {
            return; // nothing to crash at this instant
        }
        idle.sort();
        let victim = idle[(pick % idle.len() as u64) as usize];
        self.tracer
            .emit(Some(victim.0), None, EventKind::ContainerCrash);
        self.recycle_container(now, victim, report);
        self.faults
            .as_mut()
            .expect("fault runtime")
            .container_crashes += 1;
    }

    /// A whole pool node died. The fabric marks every fragment it
    /// hosted dead: segments that survive (enough replicas/fragments
    /// elsewhere) re-home and queue repairs; segments below the recovery
    /// threshold are gone — their idle owners are recycled here (a
    /// forced cold rebuild on next use), and owners caught mid-request
    /// hit the abandoned-recall path on their next demand fault.
    fn handle_pool_node_loss(&mut self, now: SimTime, index: usize, report: &mut RunReport) {
        let Some(fr) = &self.faults else { return };
        let node = fr.plan.pool_node_losses[index].node;
        let Some(fabric) = &mut self.fabric else {
            return;
        };
        let outcome = fabric.node_down(now, node);
        if fabric.all_nodes_down() {
            // Nowhere left to place anything: hold offloads down for the
            // rest of the run.
            self.pool.set_offloads_suspended(true);
        }
        let mut lost_bytes = 0u64;
        let mut victims = 0u64;
        for &(owner, bytes) in &outcome.lost {
            lost_bytes += bytes;
            let id = ContainerId(owner);
            let idle = self
                .containers
                .get(&id)
                .is_some_and(|c| c.stage() == ContainerStage::KeepAlive);
            if idle {
                victims += 1;
                self.recycle_container(now, id, report);
            }
        }
        let fr = self.faults.as_mut().expect("fault runtime");
        fr.node_loss_events += 1;
        fr.forced_cold_restarts += victims;
        fr.lost_remote_bytes += lost_bytes;
    }

    /// The keep-alive timeout currently applicable to `function`.
    fn timeout_for(&self, function: FunctionId) -> SimDuration {
        match self.config.adaptive_keep_alive {
            Some(policy) => {
                let gaps = self
                    .reuse_gaps
                    .get(&function)
                    .map(Vec::as_slice)
                    .unwrap_or(&[]);
                policy.timeout_from_samples(gaps)
            }
            None => self.config.keep_alive,
        }
    }

    /// Materialises telemetry rows for every sample-interval boundary
    /// crossed since the previous event. Called after each event is
    /// processed; between events the discrete-event state is frozen,
    /// so values observed here equal the values at the boundary.
    /// Gauges that decay continuously with wall-of-sim time (link
    /// utilisation, backlogs, the governor window) are evaluated at
    /// the exact boundary timestamp instead.
    fn sample_due(&mut self, now: SimTime, report: &RunReport) {
        if !self.sampler.is_enabled() {
            return;
        }
        let sampler = self.sampler.clone();
        sampler.record_due_rows(now, |at| self.telemetry_row(at, report, &sampler));
    }

    /// One row of the telemetry series catalog (see DESIGN.md
    /// §telemetry), restricted to the sampler's selected groups. All
    /// per-container aggregates are order-independent sums, so the
    /// `HashMap` iteration order cannot leak into the output.
    fn telemetry_row(
        &mut self,
        at: SimTime,
        report: &RunReport,
        sampler: &Sampler,
    ) -> Vec<(&'static str, f64)> {
        let mut row: Vec<(&'static str, f64)> = Vec::with_capacity(32);
        if sampler.wants(SeriesGroup::Faas) {
            let mut by_stage = [0u64; 4];
            let mut warm = 0u64;
            let mut semi_warm = 0u64;
            for c in self.containers.values() {
                let stage = c.stage();
                by_stage[stage as usize] += 1;
                if stage == ContainerStage::KeepAlive {
                    if c.table().remote_pages() > 0 {
                        semi_warm += 1;
                    } else {
                        warm += 1;
                    }
                }
            }
            row.push((
                "faas.launching",
                by_stage[ContainerStage::Launching as usize] as f64,
            ));
            row.push((
                "faas.initializing",
                by_stage[ContainerStage::Initializing as usize] as f64,
            ));
            row.push((
                "faas.executing",
                by_stage[ContainerStage::Executing as usize] as f64,
            ));
            row.push((
                "faas.keepalive",
                by_stage[ContainerStage::KeepAlive as usize] as f64,
            ));
            row.push(("faas.warm", warm as f64));
            row.push(("faas.semi_warm", semi_warm as f64));
            // The keep-alive queue holds every idle container, warm
            // and semi-warm alike.
            row.push(("faas.keepalive_queue_depth", (warm + semi_warm) as f64));
            // Invocations currently blocked on a remote recall: the
            // stall window sits at the head of the exec window, so an
            // in-flight request counts while the sample boundary falls
            // inside it. An order-independent count over the map.
            let stalled_remote = self
                .in_flight
                .values()
                .filter(|f| at < f.remote_stall_until)
                .count();
            row.push(("faas.invocations_stalled_remote", stalled_remote as f64));
        }
        if sampler.wants(SeriesGroup::Mem) {
            let mut local_pages = 0u64;
            let mut remote_pages = 0u64;
            let mut gen_hist = [0u64; 4];
            let mut keepalive_pages = 0u64;
            let mut active_pages = 0u64;
            for c in self.containers.values() {
                local_pages += c.table().local_pages();
                remote_pages += c.table().remote_pages();
                match c.stage() {
                    ContainerStage::KeepAlive => keepalive_pages += c.table().local_pages(),
                    ContainerStage::Executing => active_pages += c.table().local_pages(),
                    _ => {}
                }
                for (bucket, count) in c
                    .table()
                    .generation_age_histogram(4)
                    .into_iter()
                    .enumerate()
                {
                    gen_hist[bucket] += count;
                }
            }
            // Stage-split resident bytes feed the dashboard's memory
            // anatomy panel. Gated on the anatomy flag so pre-anatomy
            // series artefacts stay byte-identical by omission.
            if self.anatomy.is_some() {
                row.push((
                    "mem.keepalive_idle_bytes",
                    (keepalive_pages * self.config.page_size) as f64,
                ));
                row.push((
                    "mem.active_bytes",
                    (active_pages * self.config.page_size) as f64,
                ));
            }
            row.push(("mem.local_pages", local_pages as f64));
            row.push(("mem.remote_pages", remote_pages as f64));
            row.push((
                "mem.local_bytes",
                (local_pages * self.config.page_size) as f64,
            ));
            row.push((
                "mem.remote_bytes",
                (remote_pages * self.config.page_size) as f64,
            ));
            row.push(("mem.gen_age_0", gen_hist[0] as f64));
            row.push(("mem.gen_age_1", gen_hist[1] as f64));
            row.push(("mem.gen_age_2", gen_hist[2] as f64));
            row.push(("mem.gen_age_3p", gen_hist[3] as f64));
        }
        if sampler.wants(SeriesGroup::Pool) {
            row.push(("pool.out_busy_frac", self.pool.out_utilization(at)));
            row.push(("pool.in_busy_frac", self.pool.in_utilization(at)));
            row.push((
                "pool.out_backlog_secs",
                self.pool.out_backlog(at).as_secs_f64(),
            ));
            row.push((
                "pool.in_backlog_secs",
                self.pool.in_backlog(at).as_secs_f64(),
            ));
            row.push(("pool.in_flight", self.pool.in_flight_transfers(at) as f64));
            row.push(("pool.used_bytes", self.pool.used_bytes() as f64));
            row.push((
                "pool.governor_usage_bytes_per_sec",
                self.governor.current_usage(at),
            ));
            row.push(("pool.governor_throttle", self.governor.throttle_factor(at)));
            row.push((
                "pool.offloads_suspended",
                f64::from(u8::from(self.pool.offloads_suspended())),
            ));
            let breaker_open = self
                .faults
                .as_ref()
                .is_some_and(|fr| fr.breaker.is_open(at));
            row.push(("pool.breaker_open", f64::from(u8::from(breaker_open))));
            if let Some(fabric) = &self.fabric {
                row.push(("pool.nodes_up", f64::from(fabric.nodes_up())));
                row.push(("pool.under_replicated", fabric.under_replicated() as f64));
                row.push((
                    "pool.repair_backlog_bytes",
                    fabric.repair_backlog_bytes() as f64,
                ));
                row.push(("pool.redundant_bytes", fabric.redundant_bytes() as f64));
                // Per-node stored bytes need 'static names; eight covers
                // every fabric the experiments sweep.
                const NODE_BYTES: [&str; 8] = [
                    "pool.node0_bytes",
                    "pool.node1_bytes",
                    "pool.node2_bytes",
                    "pool.node3_bytes",
                    "pool.node4_bytes",
                    "pool.node5_bytes",
                    "pool.node6_bytes",
                    "pool.node7_bytes",
                ];
                for (i, name) in NODE_BYTES.iter().enumerate().take(fabric.nodes() as usize) {
                    row.push((name, fabric.node_stored_bytes(i as u32) as f64));
                }
            }
        }
        if sampler.wants(SeriesGroup::Registry) {
            // Registry-style counters are monotone totals; export the
            // per-interval delta so the series reads as a rate.
            let stats = self.pool.stats();
            for (name, cumulative) in [
                (
                    "registry.requests_completed",
                    report.requests_completed as f64,
                ),
                ("registry.cold_starts", report.cold_starts as f64),
                ("registry.containers_created", self.next_container as f64),
                ("registry.pool_bytes_out", stats.bytes_out as f64),
                ("registry.pool_bytes_in", stats.bytes_in as f64),
            ] {
                row.push((name, sampler.counter_delta(name, cumulative)));
            }
        }
        row
    }

    fn record_memory(&mut self, now: SimTime, report: &mut RunReport) {
        let mut local: u64 = self
            .containers
            .values()
            .map(|c| c.table().local_bytes())
            .sum();
        if self.config.share_runtime {
            // Runtime sharing: per function, all containers but one map
            // the same physical runtime pages — deduct the duplicates.
            let mut max_runtime: HashMap<FunctionId, u64> = HashMap::new();
            let mut sum_runtime: HashMap<FunctionId, u64> = HashMap::new();
            for c in self.containers.values() {
                let rt =
                    c.table().local_pages_in(faasmem_mem::Segment::Runtime) * self.config.page_size;
                let max = max_runtime.entry(c.function()).or_default();
                *max = (*max).max(rt);
                *sum_runtime.entry(c.function()).or_default() += rt;
            }
            for (f, sum) in sum_runtime {
                local -= sum - max_runtime[&f];
            }
        }
        let remote: u64 = self
            .containers
            .values()
            .map(|c| c.table().remote_bytes())
            .sum();
        report.local_mem.record(now, local as f64);
        report.remote_mem.record(now, remote as f64);
        report
            .live_containers
            .record(now, self.containers.len() as f64);
        self.peak_local_bytes = self.peak_local_bytes.max(local);
        self.peak_live = self.peak_live.max(self.containers.len() as u64);
    }

    /// Remote page count of `id`'s table (0 when the container is gone) —
    /// the before/after probe of [`PlatformSim::sync_fabric`].
    fn remote_pages_of(&self, id: ContainerId) -> u64 {
        self.containers
            .get(&id)
            .map_or(0, |c| c.table().remote_pages())
    }

    /// Reconciles the fabric ledger with a policy hook's table
    /// mutations: growth in the container's remote page count is an
    /// offload (place the segment, charge replica write overhead on the
    /// real link), shrink is pages coming home. Keeping the ledger out
    /// of [`PolicyCtx`] means policies stay fabric-oblivious and the
    /// no-fabric path is byte-identical by construction.
    fn sync_fabric(&mut self, now: SimTime, id: ContainerId, remote_before: u64) {
        if self.fabric.is_none() {
            return;
        }
        let remote_now = self.remote_pages_of(id);
        let page = self.config.page_size;
        let fabric = self.fabric.as_mut().expect("checked above");
        if remote_now > remote_before {
            fabric.on_offload(
                now,
                id.0,
                (remote_now - remote_before) * page,
                &mut self.pool,
            );
        } else if remote_before > remote_now {
            fabric.on_page_in(id.0, (remote_before - remote_now) * page);
        }
    }

    fn handle_invoke(
        &mut self,
        now: SimTime,
        req: u32,
        function: FunctionId,
        queue: &mut dyn EventSink,
        report: &mut RunReport,
    ) {
        self.tracer.emit(
            None,
            Some(u64::from(req)),
            EventKind::RequestArrive {
                function: function.0,
            },
        );
        // Route to the most-recently-used idle warm container, if any.
        let warm = self
            .containers
            .values()
            .filter(|c| c.function() == function && c.stage() == ContainerStage::KeepAlive)
            .max_by_key(|c| c.last_used())
            .map(|c| c.id());

        if let Some(id) = warm {
            let idle = {
                let c = self.containers.get(&id).expect("warm container");
                c.idle_since(now)
            };
            report
                .reuse_intervals
                .entry(function)
                .or_default()
                .push(idle);
            self.reuse_gaps
                .entry(function)
                .or_default()
                .push(idle.as_secs_f64());
            {
                let remote_before = self.remote_pages_of(id);
                let container = self.containers.get_mut(&id).expect("warm container");
                let mut ctx = PolicyCtx {
                    now,
                    container,
                    pool: &mut self.pool,
                    governor: &mut self.governor,
                };
                self.policy.on_request_start(&mut ctx, Some(idle));
                self.sync_fabric(now, id, remote_before);
            }
            self.containers
                .get_mut(&id)
                .expect("warm container")
                .begin_execution(now);
            self.start_execution(now, id, req, now, false, queue);
        } else {
            // Cold start.
            let id = ContainerId(self.next_container);
            self.next_container += 1;
            let spec = self.specs[function.0 as usize].clone();
            let launch = spec.launch_time;
            let mut container = Container::new(id, function, spec, self.config.page_size, now);
            container
                .table_mut()
                .attach_tracer(self.tracer.clone(), id.0);
            self.tracer.emit(
                Some(id.0),
                Some(u64::from(req)),
                EventKind::ContainerLaunch {
                    function: function.0,
                },
            );
            self.containers.insert(id, container);
            self.in_flight.insert(
                id,
                InFlight {
                    req,
                    arrived: now,
                    exec_started: now,
                    cold: true,
                    faults: 0,
                    breakdown: BlameBreakdown::new(),
                    remote_stall_until: SimTime::ZERO,
                },
            );
            let jitter = self.rng.lognormal_jitter(0.03);
            queue.push(now + launch.mul_f64(jitter), Event::RuntimeLoaded(id));
        }
    }

    fn handle_runtime_loaded(&mut self, now: SimTime, id: ContainerId, queue: &mut dyn EventSink) {
        self.tracer.emit(Some(id.0), None, EventKind::RuntimeLoaded);
        let init_time = {
            let container = self.containers.get_mut(&id).expect("launching container");
            container.finish_launch();
            container.spec().init_time
        };
        {
            let remote_before = self.remote_pages_of(id);
            let container = self.containers.get_mut(&id).expect("launching container");
            let mut ctx = PolicyCtx {
                now,
                container,
                pool: &mut self.pool,
                governor: &mut self.governor,
            };
            self.policy.on_runtime_loaded(&mut ctx);
            self.sync_fabric(now, id, remote_before);
        }
        let jitter = self.rng.lognormal_jitter(0.03);
        queue.push(now + init_time.mul_f64(jitter), Event::InitDone(id));
    }

    fn handle_init_done(&mut self, now: SimTime, id: ContainerId, queue: &mut dyn EventSink) {
        self.tracer.emit(Some(id.0), None, EventKind::InitDone);
        {
            let container = self
                .containers
                .get_mut(&id)
                .expect("initializing container");
            container.finish_init();
        }
        {
            let remote_before = self.remote_pages_of(id);
            let container = self
                .containers
                .get_mut(&id)
                .expect("initializing container");
            let mut ctx = PolicyCtx {
                now,
                container,
                pool: &mut self.pool,
                governor: &mut self.governor,
            };
            self.policy.on_init_done(&mut ctx);
            self.policy.on_request_start(&mut ctx, None);
            self.sync_fabric(now, id, remote_before);
        }
        let flight = *self.in_flight.get(&id).expect("pending request");
        self.start_execution(now, id, flight.req, flight.arrived, true, queue);
    }

    /// Plans the request's page accesses, charges remote faults, and
    /// schedules its completion.
    fn start_execution(
        &mut self,
        now: SimTime,
        id: ContainerId,
        req: u32,
        arrived: SimTime,
        cold: bool,
        queue: &mut dyn EventSink,
    ) {
        self.tracer.emit(
            Some(id.0),
            Some(u64::from(req)),
            EventKind::ExecStart { cold },
        );
        // Everything between arrival and this instant is cold-start
        // provisioning (launch + init, jitter included); requests never
        // queue for admission on this single-node platform, so `queue`
        // stays zero and warm starts (arrived == now) charge nothing.
        let mut breakdown = BlameBreakdown::new();
        breakdown.charge(BlameComponent::ColdStart, now.saturating_since(arrived));
        let page_size = self.config.page_size;
        let container = self.containers.get_mut(&id).expect("executing container");
        let spec = container.spec().clone();
        let exec_pages = mib_to_pages(spec.exec_mib, page_size) as u32;
        let plan = RequestAccess::plan_with_rare_runtime(
            spec.init_access,
            container.runtime_hot_pages(),
            container.runtime_range().len(),
            spec.runtime_rare_touch_prob,
            container.init_range().len(),
            exec_pages,
            &mut self.rng,
        );

        let runtime_base = container.runtime_range().start().0;
        let init_base = container.init_range().start().0;
        let table = container.table_mut();
        let mut outcome = table.touch_pages(plan.runtime.iter().map(|i| PageId(runtime_base + i)));
        outcome.merge(table.touch_pages(plan.init.iter().map(|i| PageId(init_base + i))));
        let exec_range = table.alloc(faasmem_mem::Segment::Execution, plan.exec_pages);
        table.touch_range(exec_range);
        container.set_exec_range(exec_range);

        let stall = if outcome.faulted > 0 {
            // Per-fault CPU handling, throttled by the container's CPU
            // share (cgroup-accounted kernel time).
            let cpu_micros = (u64::from(outcome.faulted) * self.config.fault_cpu_micros) as f64
                / spec.cpu_share.max(0.01);
            let cpu = SimDuration::from_micros(cpu_micros as u64);
            let faulted = u64::from(outcome.faulted);
            let bytes = faulted * page_size;
            match &mut self.faults {
                None => {
                    let link = self
                        .pool
                        .page_in(now, faulted, page_size)
                        .expect("faulted pages are held by the pool");
                    if let Some(fabric) = &mut self.fabric {
                        fabric.on_page_in(id.0, bytes);
                    }
                    breakdown.charge(BlameComponent::RecallStall, link);
                    breakdown.charge(BlameComponent::FaultCpu, cpu);
                    link + cpu
                }
                Some(fr) => {
                    // How the fabric sees this recall: `lost` means the
                    // segment was destroyed by a pool-node loss (no retry
                    // can help), `detour` means the primary path is dead
                    // or breaker-open but surviving replicas can serve it.
                    let (lost, detour) = match &self.fabric {
                        Some(f) if f.has_segment(id.0) => {
                            let can = f.can_failover(id.0);
                            let sick = f.primary_down(id.0) || fr.breaker.is_open(now);
                            (f.primary_down(id.0) && !can, sick && can)
                        }
                        Some(_) => (true, false),
                        None => (false, false),
                    };
                    if lost {
                        // The pages died with their pool node: abandon
                        // them and rebuild the container's state via the
                        // slow path (relaunch + reinit) locally.
                        fr.page_ins_gave_up += 1;
                        fr.forced_cold_restarts += 1;
                        self.pool
                            .discard(faulted, page_size)
                            .expect("faulted pages are held by the pool");
                        if let Some(fabric) = &mut self.fabric {
                            fabric.on_recall_lost(id.0);
                        }
                        let rebuild = spec.launch_time + spec.init_time;
                        self.tracer.emit(
                            Some(id.0),
                            Some(u64::from(req)),
                            EventKind::RecallAbandoned {
                                pages: faulted,
                                wasted_us: 0,
                                rebuild_us: rebuild.as_micros(),
                            },
                        );
                        breakdown.charge(BlameComponent::ForcedRebuild, rebuild);
                        rebuild
                    } else if detour {
                        // Failover recall: read from surviving replicas,
                        // skipping the sick primary path entirely.
                        let link = self
                            .pool
                            .page_in(now, faulted, page_size)
                            .expect("faulted pages are held by the pool");
                        let fabric = self.fabric.as_mut().expect("detour implies fabric");
                        let penalty = fabric.on_failover_recall(id.0, bytes);
                        breakdown.charge(BlameComponent::RecallStall, link);
                        breakdown.charge(BlameComponent::FailoverDetour, penalty);
                        breakdown.charge(BlameComponent::FaultCpu, cpu);
                        link + penalty + cpu
                    } else {
                        let recall = self
                            .pool
                            .page_in_resilient(now, faulted, page_size, &fr.policy, &mut fr.breaker)
                            .expect("faulted pages are held by the pool");
                        match recall {
                            RecallOutcome::Recovered { stall, retries } => {
                                fr.page_in_retries += u64::from(retries);
                                if let Some(fabric) = &mut self.fabric {
                                    fabric.on_page_in(id.0, bytes);
                                }
                                breakdown.charge(BlameComponent::RecallStall, stall);
                                breakdown.charge(BlameComponent::FaultCpu, cpu);
                                stall + cpu
                            }
                            RecallOutcome::GaveUp { wasted, retries } => {
                                fr.page_in_retries += u64::from(retries);
                                let replica =
                                    self.fabric.as_ref().is_some_and(|f| f.can_failover(id.0));
                                if replica {
                                    // The primary path timed out but a
                                    // replica survives: pay the wasted
                                    // retries, then detour.
                                    let link = self
                                        .pool
                                        .page_in(now + wasted, faulted, page_size)
                                        .expect("faulted pages are held by the pool");
                                    let fabric =
                                        self.fabric.as_mut().expect("replica implies fabric");
                                    let penalty = fabric.on_failover_recall(id.0, bytes);
                                    breakdown.charge(BlameComponent::AbandonedWait, wasted);
                                    breakdown.charge(BlameComponent::RecallStall, link);
                                    breakdown.charge(BlameComponent::FailoverDetour, penalty);
                                    breakdown.charge(BlameComponent::FaultCpu, cpu);
                                    wasted + link + penalty + cpu
                                } else {
                                    // The remote pages are unreachable:
                                    // abandon them and rebuild the
                                    // container's state via the slow path
                                    // (relaunch + reinit) locally.
                                    fr.page_ins_gave_up += 1;
                                    fr.forced_cold_restarts += 1;
                                    fr.lost_remote_bytes += bytes;
                                    self.pool
                                        .discard(faulted, page_size)
                                        .expect("faulted pages are held by the pool");
                                    if let Some(fabric) = &mut self.fabric {
                                        fabric.on_recall_lost(id.0);
                                    }
                                    let rebuild = spec.launch_time + spec.init_time;
                                    self.tracer.emit(
                                        Some(id.0),
                                        Some(u64::from(req)),
                                        EventKind::RecallAbandoned {
                                            pages: faulted,
                                            wasted_us: wasted.as_micros(),
                                            rebuild_us: rebuild.as_micros(),
                                        },
                                    );
                                    breakdown.charge(BlameComponent::AbandonedWait, wasted);
                                    breakdown.charge(BlameComponent::ForcedRebuild, rebuild);
                                    wasted + rebuild
                                }
                            }
                        }
                    }
                }
            }
        } else {
            SimDuration::ZERO
        };
        container.record_request_penalty(outcome.faulted, stall);

        // Begin-markers for the stall children of the exec span: one
        // synthetic `exec_stall` per nonzero component, in canonical
        // cause order (the span model serializes stalls at the head of
        // the exec window).
        if self.tracer.wants(faasmem_trace::TraceLayer::Container) {
            for cause in StallCause::ALL {
                let us = breakdown.get(stall_component(cause)).as_micros();
                if us > 0 {
                    self.tracer.emit(
                        Some(id.0),
                        Some(u64::from(req)),
                        EventKind::ExecStall { cause, us },
                    );
                }
            }
        }

        let jitter = self.rng.lognormal_jitter(self.config.exec_jitter_sigma);
        let service = spec.exec_time.mul_f64(jitter);
        breakdown.charge(BlameComponent::Exec, service);
        let exec_time = service + stall;
        // Wall time this request spends blocked on the remote pool:
        // the recall families, not fault CPU or the local rebuild.
        let remote_wait = breakdown.get(BlameComponent::RecallStall)
            + breakdown.get(BlameComponent::FailoverDetour)
            + breakdown.get(BlameComponent::AbandonedWait);
        self.in_flight.insert(
            id,
            InFlight {
                req,
                arrived,
                exec_started: now,
                cold,
                faults: outcome.faulted,
                breakdown,
                remote_stall_until: now + remote_wait,
            },
        );
        queue.push(now + exec_time, Event::FinishExec(id));
    }

    fn handle_finish(
        &mut self,
        now: SimTime,
        id: ContainerId,
        queue: &mut dyn EventSink,
        report: &mut RunReport,
    ) {
        let flight = self.in_flight.remove(&id).expect("in-flight request");
        let busy = now.saturating_since(flight.exec_started);
        {
            let container = self.containers.get_mut(&id).expect("executing container");
            container.finish_execution(now, busy);
        }
        {
            let remote_before = self.remote_pages_of(id);
            let container = self.containers.get_mut(&id).expect("container");
            let mut ctx = PolicyCtx {
                now,
                container,
                pool: &mut self.pool,
                governor: &mut self.governor,
            };
            self.policy.on_request_end(&mut ctx);
            self.sync_fabric(now, id, remote_before);
        }
        let function = self.containers.get(&id).expect("container").function();
        let latency = now.saturating_since(flight.arrived);
        if self.tracer.is_enabled() {
            self.tracer.emit(
                Some(id.0),
                Some(u64::from(flight.req)),
                EventKind::ExecEnd {
                    latency_us: latency.as_micros(),
                    faults: u64::from(flight.faults),
                },
            );
            self.tracer
                .emit(Some(id.0), None, EventKind::KeepAliveEnter);
        }
        if let Some(slo) = self.faults.as_mut().and_then(|fr| fr.slo.as_mut()) {
            slo.observe(latency);
        }
        report.latency.record(latency);
        if let Some(acc) = &mut self.blame {
            // Conservation is structural: the breakdown holds the exact
            // addends (cold-start, pure exec, stalls) this latency is
            // the sum of. `record` still checks and counts violations.
            acc.record(latency, flight.breakdown);
        }
        report.requests.push(RequestRecord {
            function,
            arrived: flight.arrived,
            latency,
            cold: flight.cold,
            faults: flight.faults,
        });
        report.requests_completed += 1;
        if flight.cold {
            report.cold_starts += 1;
        }
        queue.push(now + self.timeout_for(function), Event::RecycleCheck(id));
    }

    fn handle_recycle(
        &mut self,
        now: SimTime,
        id: ContainerId,
        queue: &mut dyn EventSink,
        report: &mut RunReport,
    ) {
        let Some(container) = self.containers.get(&id) else {
            return; // already recycled
        };
        if container.stage() != ContainerStage::KeepAlive {
            return; // busy again; a newer check is scheduled
        }
        let timeout = self.timeout_for(container.function());
        if container.idle_since(now) < timeout {
            // Reused since this check was scheduled, or the adaptive
            // timeout grew in the meantime: re-arm at the new deadline.
            let deadline = container.last_used() + timeout;
            if deadline > now {
                queue.push(deadline, Event::RecycleCheck(id));
            }
            return;
        }
        self.recycle_container(now, id, report);
    }

    fn recycle_container(&mut self, now: SimTime, id: ContainerId, report: &mut RunReport) {
        {
            let container = self.containers.get_mut(&id).expect("container to recycle");
            let mut ctx = PolicyCtx {
                now,
                container,
                pool: &mut self.pool,
                governor: &mut self.governor,
            };
            self.policy.on_container_recycled(&mut ctx);
        }
        let container = self.containers.remove(&id).expect("container to recycle");
        if let Some(an) = &mut self.anatomy {
            // Fold the table's lifecycle edges and still-resident pages
            // into the run-wide flow matrix at end of container life.
            an.flow.absorb(container.table());
        }
        let remote_pages = container.table().remote_pages();
        if remote_pages > 0 {
            self.pool
                .discard(remote_pages, self.config.page_size)
                .expect("pool holds this container's remote pages");
        }
        if let Some(fabric) = &mut self.fabric {
            fabric.on_discard(id.0);
        }
        self.tracer.emit(
            Some(id.0),
            None,
            EventKind::ContainerRetire {
                requests: container.requests_served(),
            },
        );
        report.containers.push(ContainerRecord {
            function: container.function(),
            created_at: container.created_at(),
            retired_at: now,
            requests_served: container.requests_served(),
            busy_time: container.busy_time(),
        });
        self.in_flight.remove(&id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasmem_workload::{Invocation, LoadClass, TraceSynthesizer};

    fn spec() -> BenchmarkSpec {
        BenchmarkSpec::by_name("json").unwrap()
    }

    fn one_function_trace(times_secs: &[u64]) -> InvocationTrace {
        let invs = times_secs
            .iter()
            .map(|&s| Invocation {
                at: SimTime::from_secs(s),
                function: FunctionId(0),
            })
            .collect();
        InvocationTrace::from_invocations(invs, SimTime::from_secs(2_000))
    }

    fn sim() -> PlatformSim {
        PlatformSim::builder()
            .register_function(spec())
            .seed(1)
            .build()
    }

    #[test]
    fn single_request_cold_starts_and_recycles() {
        let mut s = sim();
        let report = s.run(&one_function_trace(&[10]));
        assert_eq!(report.requests_completed, 1);
        assert_eq!(report.cold_starts, 1);
        assert_eq!(report.containers.len(), 1);
        let c = &report.containers[0];
        assert_eq!(c.requests_served, 1);
        // Latency includes launch + init + exec.
        let lat = report.requests[0].latency;
        assert!(lat >= spec().launch_time + spec().init_time);
        // Lifetime ≈ cold start + exec + keep-alive.
        assert!(c.lifetime() >= SimDuration::from_mins(10));
    }

    #[test]
    fn warm_request_avoids_cold_start() {
        let mut s = sim();
        let report = s.run(&one_function_trace(&[10, 30]));
        assert_eq!(report.requests_completed, 2);
        assert_eq!(report.cold_starts, 1);
        assert_eq!(report.containers.len(), 1, "same container reused");
        let warm = &report.requests[1];
        assert!(!warm.cold);
        assert!(
            warm.latency < spec().launch_time,
            "warm latency is just exec"
        );
        // Reuse interval was observed.
        let gaps = &report.reuse_intervals[&FunctionId(0)];
        assert_eq!(gaps.len(), 1);
        assert!(gaps[0] > SimDuration::from_secs(15) && gaps[0] < SimDuration::from_secs(25));
    }

    #[test]
    fn keep_alive_expiry_forces_new_cold_start() {
        let mut s = sim();
        // Second request 700 s later: beyond the 600 s keep-alive.
        let report = s.run(&one_function_trace(&[10, 710]));
        assert_eq!(report.cold_starts, 2);
        assert_eq!(report.containers.len(), 2);
    }

    #[test]
    fn concurrent_requests_scale_out() {
        let mut s = sim();
        // Two arrivals in the same second: the first container is still
        // cold-starting, so the second must scale out.
        let report = s.run(&one_function_trace(&[10, 10]));
        assert_eq!(report.cold_starts, 2);
        assert_eq!(report.containers.len(), 2);
    }

    #[test]
    fn memory_timeline_rises_and_falls() {
        let mut s = sim();
        let report = s.run(&one_function_trace(&[10]));
        let peak = report.local_mem.max_value().unwrap();
        let base_bytes = (spec().base_mib() * 1024 * 1024) as f64;
        assert!(peak >= base_bytes, "peak {peak} >= base {base_bytes}");
        // After recycle everything is released.
        assert_eq!(report.local_mem.last_value(), Some(0.0));
        assert_eq!(report.live_containers.last_value(), Some(0.0));
    }

    #[test]
    fn null_policy_never_touches_pool() {
        let mut s = sim();
        let report = s.run(&one_function_trace(&[10, 20, 30, 40]));
        assert_eq!(report.pool_stats.bytes_out, 0);
        assert_eq!(report.pool_stats.bytes_in, 0);
        assert!(report.requests.iter().all(|r| r.faults == 0));
    }

    #[test]
    fn deterministic_across_runs() {
        let trace = TraceSynthesizer::new(3)
            .load_class(LoadClass::High)
            .duration(SimTime::from_mins(10))
            .synthesize_for(FunctionId(0));
        let run = |seed| {
            let mut s = PlatformSim::builder()
                .register_function(spec())
                .seed(seed)
                .build();
            let mut r = s.run(&trace);
            (
                r.requests_completed,
                r.cold_starts,
                r.p95_latency(),
                r.avg_local_mib(),
            )
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).2, run(8).2, "different seeds should jitter latency");
    }

    #[test]
    #[should_panic(expected = "fresh one")]
    fn double_run_panics() {
        let mut s = sim();
        let t = one_function_trace(&[1]);
        let _ = s.run(&t);
        let _ = s.run(&t);
    }

    #[test]
    #[should_panic(expected = "unregistered")]
    fn unknown_function_panics() {
        let mut s = sim();
        let t = InvocationTrace::from_invocations(
            vec![Invocation {
                at: SimTime::ZERO,
                function: FunctionId(5),
            }],
            SimTime::from_secs(1),
        );
        let _ = s.run(&t);
    }

    #[test]
    #[should_panic(expected = "at least one function")]
    fn empty_builder_panics() {
        let _ = PlatformSim::builder().build();
    }

    #[test]
    fn multi_function_routing_is_isolated() {
        let mut s = PlatformSim::builder()
            .register_function(BenchmarkSpec::by_name("json").unwrap())
            .register_function(BenchmarkSpec::by_name("float").unwrap())
            .seed(2)
            .build();
        let invs = vec![
            Invocation {
                at: SimTime::from_secs(1),
                function: FunctionId(0),
            },
            Invocation {
                at: SimTime::from_secs(30),
                function: FunctionId(1),
            },
            Invocation {
                at: SimTime::from_secs(60),
                function: FunctionId(0),
            },
        ];
        let trace = InvocationTrace::from_invocations(invs, SimTime::from_secs(100));
        let report = s.run(&trace);
        assert_eq!(report.requests_completed, 3);
        // fn#1's container cannot serve fn#0: exactly 2 cold starts.
        assert_eq!(report.cold_starts, 2);
        assert_eq!(report.containers.len(), 2);
    }

    #[test]
    fn runtime_sharing_deducts_duplicates() {
        // Two concurrent containers of the same function: with sharing
        // on, the node counts one runtime copy instead of two.
        let run_with = |share: bool| {
            let mut s = PlatformSim::builder()
                .register_function(spec())
                .share_runtime(share)
                .seed(1)
                .build();
            let report = s.run(&one_function_trace(&[10, 10]));
            report.local_mem.max_value().unwrap()
        };
        let unshared = run_with(false);
        let shared = run_with(true);
        let runtime_bytes = (spec().runtime_mib * 1024 * 1024) as f64;
        let saved = unshared - shared;
        assert!(
            (saved - runtime_bytes).abs() < runtime_bytes * 0.2,
            "expected ~one runtime copy saved ({runtime_bytes}), got {saved}"
        );
    }

    #[test]
    fn busy_fraction_reflected_in_records() {
        let mut s = sim();
        let report = s.run(&one_function_trace(&[10, 20, 30]));
        let c = &report.containers[0];
        assert!(c.busy_time > SimDuration::ZERO);
        assert!(c.inactive_fraction() > 0.9, "mostly idle during keep-alive");
    }

    /// A minimal offloading policy so fault tests have remote pages to
    /// lose: pushes the init segment to the pool after every request.
    #[derive(Debug)]
    struct OffloadInitPolicy;

    impl MemoryPolicy for OffloadInitPolicy {
        fn name(&self) -> &'static str {
            "OffloadInit"
        }
        fn on_request_end(&mut self, ctx: &mut PolicyCtx<'_>) {
            ctx.offload_where(|_, m| m.segment() == faasmem_mem::Segment::Init);
        }
    }

    #[test]
    fn empty_fault_plan_is_behavioral_noop() {
        let run = |faults: Option<FaultConfig>| {
            let mut b = PlatformSim::builder()
                .register_function(spec())
                .policy(OffloadInitPolicy)
                .seed(5);
            if let Some(fc) = faults {
                b = b.faults(fc);
            }
            let mut s = b.build();
            let mut r = s.run(&one_function_trace(&[10, 30, 700]));
            (
                r.requests_completed,
                r.cold_starts,
                r.p95_latency(),
                r.avg_local_mib(),
                r.pool_stats,
            )
        };
        let healthy = run(None);
        let empty = run(Some(FaultConfig {
            plan_override: Some(FaultPlan::empty()),
            ..FaultConfig::default()
        }));
        assert_eq!(healthy, empty, "empty plan must not perturb the run");
    }

    #[test]
    fn empty_plan_reports_full_availability() {
        let mut s = PlatformSim::builder()
            .register_function(spec())
            .seed(5)
            .faults(FaultConfig {
                slo: Some(SimDuration::from_secs(30)),
                ..FaultConfig::default()
            })
            .build();
        let r = s.run(&one_function_trace(&[10]));
        let f = r.faults.expect("fault accounting present");
        assert_eq!(f.link_availability, 1.0);
        assert_eq!(f.link_downtime, SimDuration::ZERO);
        assert_eq!(f.forced_cold_restarts, 0);
        assert_eq!(f.page_ins_gave_up, 0);
        assert!(f.slo_total >= 1, "SLO tracker observed the request");
    }

    #[test]
    fn planned_crash_kills_idle_container() {
        let plan = FaultPlan {
            crashes: vec![faasmem_sim::faults::CrashEvent {
                at: SimTime::from_secs(60),
                pick: 0,
            }],
            ..FaultPlan::empty()
        };
        let mut s = PlatformSim::builder()
            .register_function(spec())
            .seed(5)
            .faults(FaultConfig {
                plan_override: Some(plan),
                ..FaultConfig::default()
            })
            .build();
        let r = s.run(&one_function_trace(&[10, 120]));
        assert_eq!(r.faults.unwrap().container_crashes, 1);
        assert_eq!(
            r.cold_starts, 2,
            "second request cold-starts after the crash"
        );
        assert_eq!(r.containers.len(), 2);
    }

    #[test]
    fn node_loss_forces_cold_restarts_for_remote_holders() {
        let plan = FaultPlan {
            node_losses: vec![faasmem_sim::faults::NodeLossEvent {
                at: SimTime::from_secs(60),
                fraction: 1.0,
            }],
            ..FaultPlan::empty()
        };
        let mut s = PlatformSim::builder()
            .register_function(spec())
            .policy(OffloadInitPolicy)
            .seed(5)
            .faults(FaultConfig {
                plan_override: Some(plan),
                ..FaultConfig::default()
            })
            .build();
        let r = s.run(&one_function_trace(&[10, 120]));
        let f = r.faults.unwrap();
        assert_eq!(f.node_loss_events, 1);
        assert_eq!(f.forced_cold_restarts, 1, "the idle remote-holder dies");
        assert!(f.lost_remote_bytes > 0);
        assert_eq!(r.cold_starts, 2);
    }

    #[test]
    fn pool_node_loss_without_redundancy_forces_cold_rebuild() {
        let plan = FaultPlan {
            pool_node_losses: vec![faasmem_sim::faults::PoolNodeLossEvent {
                at: SimTime::from_secs(60),
                node: 0,
            }],
            ..FaultPlan::empty()
        };
        let mut s = PlatformSim::builder()
            .register_function(spec())
            .policy(OffloadInitPolicy)
            .seed(5)
            .faults(FaultConfig {
                plan_override: Some(plan),
                ..FaultConfig::default()
            })
            .build();
        let r = s.run(&one_function_trace(&[10, 120]));
        let f = r.faults.unwrap();
        assert_eq!(f.node_loss_events, 1);
        assert_eq!(
            f.forced_cold_restarts, 1,
            "the idle remote-holder's pages died with the only node"
        );
        assert!(f.lost_remote_bytes > 0);
        // Even a degenerate config materializes a single-node fabric
        // once the plan kills pool nodes, so the loss has a ledger.
        let d = r.durability.expect("pool-node losses imply a fabric");
        assert_eq!(d.pool_nodes, 1);
        assert_eq!(d.nodes_up, 0);
        assert_eq!(d.tracker.nodes_lost, 1);
        assert!(d.tracker.bytes_lost > 0);
        assert_eq!(d.tracker.avoided_cold_rebuilds, 0);
        assert_eq!(r.cold_starts, 2);
    }

    #[test]
    fn mirrored_fabric_survives_a_pool_node_loss() {
        use faasmem_pool::RedundancyPolicy;
        // Same loss event as the no-redundancy test above, but the
        // fabric mirrors every segment across two nodes: the replica
        // carries the recall and the container is never recycled.
        let plan = FaultPlan {
            pool_node_losses: vec![faasmem_sim::faults::PoolNodeLossEvent {
                at: SimTime::from_secs(60),
                node: 0,
            }],
            ..FaultPlan::empty()
        };
        let mut s = PlatformSim::builder()
            .register_function(spec())
            .policy(OffloadInitPolicy)
            .fabric(FabricConfig {
                nodes: 2,
                redundancy: RedundancyPolicy::Mirror { k: 2 },
                ..FabricConfig::default()
            })
            .seed(5)
            .faults(FaultConfig {
                plan_override: Some(plan),
                ..FaultConfig::default()
            })
            .build();
        let r = s.run(&one_function_trace(&[10, 120]));
        let f = r.faults.unwrap();
        assert_eq!(f.node_loss_events, 1);
        assert_eq!(f.forced_cold_restarts, 0, "the mirror absorbed the loss");
        assert_eq!(f.lost_remote_bytes, 0);
        let d = r.durability.expect("fabric run reports durability");
        assert_eq!(d.pool_nodes, 2);
        assert_eq!(d.nodes_up, 1);
        assert_eq!(d.tracker.nodes_lost, 1);
        assert_eq!(d.tracker.bytes_lost, 0);
        assert!(d.tracker.avoided_cold_rebuilds >= 1);
        assert!(
            d.tracker.replica_bytes_out > 0,
            "mirroring writes replica traffic"
        );
        assert_eq!(r.cold_starts, 1, "the second request stays warm");
        assert_eq!(r.requests_completed, 2);
    }

    #[test]
    fn degenerate_fabric_reports_no_durability() {
        let mut s = PlatformSim::builder()
            .register_function(spec())
            .policy(OffloadInitPolicy)
            .seed(5)
            .build();
        let r = s.run(&one_function_trace(&[10, 30]));
        assert!(
            r.durability.is_none(),
            "one node + no redundancy must not grow a durability block"
        );
    }

    #[test]
    fn validate_rejects_fault_spec_fabric_mismatch() {
        use faasmem_pool::RedundancyPolicy;
        let config = PlatformConfig {
            fabric: FabricConfig {
                nodes: 4,
                redundancy: RedundancyPolicy::Mirror { k: 2 },
                ..FabricConfig::default()
            },
            faults: Some(FaultConfig {
                spec: FaultSpec::new(1).pool_node_losses(SimDuration::from_mins(5), 2),
                ..FaultConfig::default()
            }),
            ..PlatformConfig::default()
        };
        let problems = config.validate().expect_err("mismatch must be rejected");
        assert!(
            problems.iter().any(|p| p.contains("pool-node losses")),
            "{problems:?}"
        );
    }

    #[test]
    fn long_outage_abandons_recall_and_rebuilds_locally() {
        use faasmem_sim::faults::{LinkSchedule, LinkWindow};
        let plan = FaultPlan {
            link: LinkSchedule::from_windows(vec![LinkWindow {
                start: SimTime::from_secs(40),
                end: SimTime::from_secs(3_600),
                factor: 0.0,
            }]),
            ..FaultPlan::empty()
        };
        let mut s = PlatformSim::builder()
            .register_function(spec())
            .policy(OffloadInitPolicy)
            .seed(5)
            .faults(FaultConfig {
                plan_override: Some(plan),
                policy: RemoteFaultPolicy::hasty(),
                ..FaultConfig::default()
            })
            .build();
        // Request 2 warm-starts at t=60 and must recall the init pages
        // offloaded after request 1 — straight into the outage.
        let r = s.run(&one_function_trace(&[10, 60]));
        let f = r.faults.unwrap();
        assert!(f.page_ins_gave_up >= 1, "hasty policy gives up mid-outage");
        assert!(f.forced_cold_restarts >= 1);
        assert!(f.page_in_retries >= 1);
        assert!(f.lost_remote_bytes > 0);
        assert!(f.link_availability < 1.0);
        assert_eq!(r.requests_completed, 2, "the request still completes");
    }

    #[test]
    fn fault_injection_is_deterministic_per_seed() {
        let chaos = || {
            FaultSpec::new(99)
                .outages(SimDuration::from_mins(2), SimDuration::from_secs(20))
                .crashes(SimDuration::from_mins(3))
        };
        let run = || {
            let trace = TraceSynthesizer::new(3)
                .load_class(LoadClass::High)
                .duration(SimTime::from_mins(10))
                .synthesize_for(FunctionId(0));
            let mut s = PlatformSim::builder()
                .register_function(spec())
                .policy(OffloadInitPolicy)
                .seed(7)
                .faults(FaultConfig {
                    spec: chaos(),
                    slo: Some(SimDuration::from_secs(2)),
                    ..FaultConfig::default()
                })
                .build();
            let mut r = s.run(&trace);
            (r.summarize(), r.faults)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn tracer_observes_full_lifecycle_in_order() {
        use faasmem_trace::{LayerMask, TraceLayer, Tracer};
        let tracer = Tracer::recording(LayerMask::only(TraceLayer::Container));
        let mut s = PlatformSim::builder()
            .register_function(spec())
            .seed(1)
            .tracer(tracer.clone())
            .build();
        let report = s.run(&one_function_trace(&[10, 30]));
        let events = tracer.take_events();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
        assert_eq!(
            kinds,
            [
                "request_arrive",
                "container_launch",
                "runtime_loaded",
                "init_done",
                "exec_start",
                "exec_end",
                "keep_alive_enter",
                "request_arrive",
                "exec_start",
                "exec_end",
                "keep_alive_enter",
                "container_retire",
            ],
            "cold start, warm reuse, then keep-alive expiry"
        );
        assert!(
            events.windows(2).all(|w| w[0].key() < w[1].key()),
            "(time, seq) stamps are a strict total order"
        );
        // The registry snapshot agrees with the report.
        assert_eq!(report.registry.counter("containers.created"), 1);
        assert_eq!(report.registry.counter("requests.completed"), 2);
        assert_eq!(report.registry.counter("requests.cold_starts"), 1);
        assert_eq!(report.registry.gauge("containers.peak_live"), Some(1.0));
    }

    #[test]
    fn tracer_reports_fault_windows_and_recall_path() {
        use faasmem_sim::faults::{LinkSchedule, LinkWindow};
        use faasmem_trace::{LayerMask, Tracer};
        let plan = FaultPlan {
            link: LinkSchedule::from_windows(vec![LinkWindow {
                start: SimTime::from_secs(40),
                end: SimTime::from_secs(3_600),
                factor: 0.0,
            }]),
            ..FaultPlan::empty()
        };
        let tracer = Tracer::recording(LayerMask::ALL);
        let mut s = PlatformSim::builder()
            .register_function(spec())
            .policy(OffloadInitPolicy)
            .seed(5)
            .faults(FaultConfig {
                plan_override: Some(plan),
                policy: RemoteFaultPolicy::hasty(),
                ..FaultConfig::default()
            })
            .tracer(tracer.clone())
            .build();
        let _ = s.run(&one_function_trace(&[10, 60]));
        let events = tracer.take_events();
        let windows: Vec<_> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::FaultWindow { factor, .. } => Some(factor),
                _ => None,
            })
            .collect();
        assert_eq!(windows, [0.0], "the planned outage is announced");
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, EventKind::RecallGaveUp { .. })),
            "the abandoned recall shows up in the pool layer"
        );
    }

    #[test]
    fn sampler_records_boundary_aligned_rows() {
        use faasmem_telemetry::SampleSpec;
        let sampler = Sampler::recording(SampleSpec::every(SimDuration::from_secs(60)));
        let mut s = PlatformSim::builder()
            .register_function(spec())
            .seed(1)
            .sampler(sampler.clone())
            .build();
        let report = s.run(&one_function_trace(&[10, 30]));
        let ts = sampler.take_series();
        assert!(ts.is_rectangular());
        assert!(ts.len() > 2, "a 10-minute keep-alive spans many minutes");
        // Rows land exactly on interval boundaries, starting with the
        // t=0 baseline.
        assert_eq!(ts.ticks()[0], 0);
        assert!(ts.ticks().iter().all(|t| t % 60_000_000 == 0));
        assert!(ts.ticks().windows(2).all(|w| w[0] < w[1]));
        // The idle container is visible in the keep-alive series.
        let keepalive = ts.column("faas.keepalive").unwrap();
        assert_eq!(keepalive[0], 0.0);
        assert!(keepalive.contains(&1.0));
        assert!(ts
            .column("mem.local_pages")
            .unwrap()
            .iter()
            .any(|&v| v > 0.0));
        // Registry series are per-interval deltas: they sum back to
        // the cumulative total.
        let req: f64 = ts
            .column("registry.requests_completed")
            .unwrap()
            .iter()
            .sum();
        assert_eq!(req, report.requests_completed as f64);
        // Every catalog group contributed columns.
        for prefix in ["faas.", "mem.", "pool.", "registry."] {
            assert!(
                ts.column_names().any(|n| n.starts_with(prefix)),
                "missing {prefix}* series"
            );
        }
    }

    #[test]
    fn sampler_selects_only_requested_groups() {
        use faasmem_telemetry::{SampleSpec, SeriesMask};
        let sampler = Sampler::recording(SampleSpec {
            interval: SimDuration::from_secs(60),
            select: SeriesMask::only(SeriesGroup::Pool),
        });
        let mut s = PlatformSim::builder()
            .register_function(spec())
            .seed(1)
            .sampler(sampler.clone())
            .build();
        s.run(&one_function_trace(&[10]));
        let ts = sampler.take_series();
        assert!(
            ts.column_names().all(|n| n.starts_with("pool.")),
            "only pool series"
        );
        assert!(ts.column("pool.used_bytes").is_some());
    }

    #[test]
    fn sampler_does_not_perturb_the_run() {
        use faasmem_telemetry::SampleSpec;
        let baseline = sim().run(&one_function_trace(&[10, 30, 710]));
        let sampler = Sampler::recording(SampleSpec::every(SimDuration::from_secs(30)));
        let mut s = PlatformSim::builder()
            .register_function(spec())
            .seed(1)
            .sampler(sampler.clone())
            .build();
        let sampled = s.run(&one_function_trace(&[10, 30, 710]));
        assert!(!sampler.take_series().is_empty());
        // Sampling is lazy (no injected events), so the simulation is
        // bit-for-bit unaffected: same finish time, same counters.
        assert_eq!(sampled.finished_at, baseline.finished_at);
        assert_eq!(sampled.registry, baseline.registry);
        assert_eq!(sampled.requests_completed, baseline.requests_completed);
        assert_eq!(sampled.cold_starts, baseline.cold_starts);
        assert_eq!(sampled.pool_stats, baseline.pool_stats);
    }

    #[test]
    fn validate_reports_every_problem() {
        let mut config = PlatformConfig::default();
        assert!(config.validate().is_ok());
        config.page_size = 0;
        config.exec_jitter_sigma = f64::NAN;
        config.pool.link_bytes_per_sec = 0;
        config.faults = Some(FaultConfig {
            slo: Some(SimDuration::ZERO),
            ..FaultConfig::default()
        });
        let problems = config.validate().unwrap_err();
        assert!(problems.len() >= 4, "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("page size")));
        assert!(problems.iter().any(|p| p.contains("SLO")));
    }

    #[test]
    fn blame_is_off_by_default() {
        let mut s = sim();
        let r = s.run(&one_function_trace(&[10]));
        assert!(r.blame.is_none());
    }

    #[test]
    fn blame_conserves_and_matches_latencies() {
        use faasmem_metrics::BlameComponent;
        let mut s = PlatformSim::builder()
            .register_function(spec())
            .policy(OffloadInitPolicy)
            .blame(true)
            .seed(5)
            .build();
        let r = s.run(&one_function_trace(&[10, 30, 700]));
        let blame = r.blame.expect("blame enabled");
        assert_eq!(blame.invocations, r.requests_completed as u64);
        assert_eq!(blame.conservation_violations, 0);
        // Component totals sum to the sum of all end-to-end latencies:
        // per-invocation conservation, aggregated.
        let latency_sum: u64 = r.requests.iter().map(|q| q.latency.as_micros()).sum();
        let component_sum: u64 = BlameComponent::ALL
            .iter()
            .map(|&c| blame.component(c).total.as_micros())
            .sum();
        assert_eq!(component_sum, latency_sum);
        // The warm request at t=30 recalls the init pages offloaded
        // after the first request, so a recall stall is attributed.
        assert!(blame.component(BlameComponent::RecallStall).total > SimDuration::ZERO);
        assert!(blame.component(BlameComponent::FaultCpu).total > SimDuration::ZERO);
        assert!(blame.component(BlameComponent::ColdStart).total > SimDuration::ZERO);
        assert_eq!(
            blame.component(BlameComponent::Queue).total,
            SimDuration::ZERO
        );
    }

    #[test]
    fn blame_does_not_perturb_the_run() {
        let run = |on: bool| {
            let mut s = PlatformSim::builder()
                .register_function(spec())
                .policy(OffloadInitPolicy)
                .blame(on)
                .seed(5)
                .build();
            let mut r = s.run(&one_function_trace(&[10, 30, 700]));
            (
                r.requests_completed,
                r.cold_starts,
                r.p95_latency(),
                r.finished_at,
                r.pool_stats,
                r.registry.clone(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn blame_attributes_forced_rebuild_under_outage() {
        use faasmem_metrics::BlameComponent;
        use faasmem_sim::faults::{LinkSchedule, LinkWindow};
        let plan = FaultPlan {
            link: LinkSchedule::from_windows(vec![LinkWindow {
                start: SimTime::from_secs(40),
                end: SimTime::from_secs(3_600),
                factor: 0.0,
            }]),
            ..FaultPlan::empty()
        };
        let mut s = PlatformSim::builder()
            .register_function(spec())
            .policy(OffloadInitPolicy)
            .blame(true)
            .seed(5)
            .faults(FaultConfig {
                plan_override: Some(plan),
                policy: RemoteFaultPolicy::hasty(),
                ..FaultConfig::default()
            })
            .build();
        let r = s.run(&one_function_trace(&[10, 60]));
        let blame = r.blame.expect("blame enabled");
        assert_eq!(blame.conservation_violations, 0);
        // The mid-outage recall wastes its retries, then rebuilds
        // locally: both phases show up as named components.
        assert!(blame.component(BlameComponent::AbandonedWait).total > SimDuration::ZERO);
        assert!(blame.component(BlameComponent::ForcedRebuild).total > SimDuration::ZERO);
    }

    #[test]
    fn traced_run_yields_conserving_spans_matching_blame() {
        use faasmem_metrics::BlameComponent;
        use faasmem_trace::{build_spans, LayerMask, Tracer};
        let tracer = Tracer::recording(LayerMask::ALL);
        let mut s = PlatformSim::builder()
            .register_function(spec())
            .policy(OffloadInitPolicy)
            .blame(true)
            .seed(5)
            .tracer(tracer.clone())
            .build();
        let r = s.run(&one_function_trace(&[10, 30, 700]));
        let blame = r.blame.expect("blame enabled");
        let spans = build_spans(&tracer.take_events());
        assert_eq!(spans.len(), r.requests_completed);
        // Every reconstructed tree tiles its invocation exactly, and
        // summing span blame across invocations reproduces the
        // accumulator's per-component totals — the event stream and
        // the in-simulator accounting agree to the microsecond.
        let mut by_component: HashMap<&str, u64> = HashMap::new();
        for inv in &spans {
            assert!(inv.conserves(), "request {} spans must tile", inv.request);
            for (name, us) in inv.blame() {
                *by_component.entry(name).or_default() += us;
            }
        }
        for c in BlameComponent::ALL {
            assert_eq!(
                by_component.get(c.name()).copied().unwrap_or(0),
                blame.component(c).total.as_micros(),
                "component {} diverges between spans and blame",
                c.name()
            );
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(12))]
        // Conservation on real runs: random seeds, load and fault
        // injection; every completed invocation's components must sum
        // exactly to its measured latency (the accumulator counts — and
        // in debug builds asserts on — any violation).
        #[test]
        fn prop_blame_conserves_on_real_runs(
            seed in 0u64..1_000,
            fault_seed in 0u64..4,
            mins in 2u64..5,
        ) {
            let trace = TraceSynthesizer::new(seed ^ 0x5EED)
                .load_class(LoadClass::High)
                .duration(SimTime::from_mins(mins))
                .synthesize_for(FunctionId(0));
            let mut b = PlatformSim::builder()
                .register_function(spec())
                .policy(OffloadInitPolicy)
                .blame(true)
                .seed(seed);
            if fault_seed > 0 {
                b = b.faults(FaultConfig {
                    spec: FaultSpec::new(fault_seed)
                        .outages(SimDuration::from_mins(2), SimDuration::from_secs(20)),
                    ..FaultConfig::default()
                });
            }
            let mut s = b.build();
            let r = s.run(&trace);
            let blame = r.blame.expect("blame enabled");
            proptest::prop_assert_eq!(blame.conservation_violations, 0);
            proptest::prop_assert_eq!(blame.invocations, r.requests_completed as u64);
            let latency_sum: u64 = r.requests.iter().map(|q| q.latency.as_micros()).sum();
            let component_sum: u64 = faasmem_metrics::BlameComponent::ALL
                .iter()
                .map(|&c| blame.component(c).total.as_micros())
                .sum();
            proptest::prop_assert_eq!(component_sum, latency_sum);
        }
    }

    #[test]
    fn anatomy_is_off_by_default() {
        let mut s = sim();
        let r = s.run(&one_function_trace(&[10]));
        assert!(r.memory_anatomy.is_none());
        assert!(r.function_waste.is_empty());
    }

    #[test]
    fn anatomy_conserves_and_attributes_residency() {
        use faasmem_metrics::WasteComponent;
        let mut s = PlatformSim::builder()
            .register_function(spec())
            .policy(OffloadInitPolicy)
            .memory_anatomy(true)
            .seed(5)
            .build();
        let r = s.run(&one_function_trace(&[10, 30, 700]));
        let an = r.memory_anatomy.expect("anatomy enabled");
        assert_eq!(an.conservation_violations(), 0);
        let w = an.waste;
        assert!(w.steps > 0);
        assert!(w.component(WasteComponent::ActiveExec) > 0);
        // The container dwells in keep-alive between the bursts.
        assert!(w.component(WasteComponent::KeepaliveIdle) > 0);
        // Init pages offloaded by the policy occupy the pool and paid
        // link time on the way out.
        assert!(w.component(WasteComponent::PoolPrimary) > 0);
        assert!(w.component(WasteComponent::OffloadInflight) > 0);
        // Every table was folded into the flow ledger and its rows tile.
        assert_eq!(an.flow.row_violations(), 0);
        assert!(an.flow.tables >= 1);
        assert!(an.flow.flows.offloaded > 0);
        // Per-function ledgers tile the run-wide compute side exactly.
        assert!(!r.function_waste.is_empty());
        for c in [
            WasteComponent::ActiveExec,
            WasteComponent::KeepaliveIdle,
            WasteComponent::InitOverhead,
            WasteComponent::LocalHotPool,
        ] {
            let from_functions: u128 = r.function_waste.iter().map(|f| f.ledger.get(c)).sum();
            assert_eq!(from_functions, w.component(c), "component {}", c.name());
        }
    }

    #[test]
    fn anatomy_does_not_perturb_the_run() {
        let run = |on: bool| {
            let mut s = PlatformSim::builder()
                .register_function(spec())
                .policy(OffloadInitPolicy)
                .memory_anatomy(on)
                .seed(5)
                .build();
            let mut r = s.run(&one_function_trace(&[10, 30, 700]));
            (
                r.requests_completed,
                r.cold_starts,
                r.p95_latency(),
                r.finished_at,
                r.pool_stats,
                r.registry.clone(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(12))]
        // Anatomy conservation on real runs: both reconciliations — the
        // stage partition against local bytes and the pool's ledger
        // against the tables' remote bytes — must close on every
        // interval, with and without a redundant fabric under fault
        // injection.
        #[test]
        fn prop_anatomy_conserves_on_real_runs(
            seed in 0u64..1_000,
            fault_seed in 0u64..4,
            mins in 2u64..5,
        ) {
            let trace = TraceSynthesizer::new(seed ^ 0x0A7A)
                .load_class(LoadClass::High)
                .duration(SimTime::from_mins(mins))
                .synthesize_for(FunctionId(0));
            let mut b = PlatformSim::builder()
                .register_function(spec())
                .policy(OffloadInitPolicy)
                .memory_anatomy(true)
                .seed(seed);
            if fault_seed > 0 {
                b = b
                    .fabric(FabricConfig {
                        nodes: 2,
                        redundancy: faasmem_pool::RedundancyPolicy::Mirror { k: 2 },
                        ..FabricConfig::default()
                    })
                    .faults(FaultConfig {
                        spec: FaultSpec::new(fault_seed)
                            .outages(SimDuration::from_mins(2), SimDuration::from_secs(20)),
                        ..FaultConfig::default()
                    });
            }
            let mut s = b.build();
            let r = s.run(&trace);
            let an = r.memory_anatomy.expect("anatomy enabled");
            proptest::prop_assert_eq!(an.waste.conservation_violations, 0);
            proptest::prop_assert_eq!(an.flow.row_violations(), 0);
            proptest::prop_assert!(an.waste.steps > 0);
        }
    }
}
