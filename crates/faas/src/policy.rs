//! The memory-policy plug-in interface.
//!
//! All offloading mechanisms — FaaSMem and every baseline — implement
//! [`MemoryPolicy`] and observe the same container lifecycle hooks the
//! paper's kernel mechanism hooks:
//!
//! * runtime loaded → FaaSMem inserts the Runtime-Init time barrier;
//! * init done → the Init-Execution barrier;
//! * request start/end → Pucket maintenance, reactive/window offloading,
//!   semi-warm cancellation;
//! * periodic ticks → semi-warm gradual offloading, TMO's step-by-step
//!   offload, DAMON's sampling.

use faasmem_mem::PageId;
use faasmem_pool::{BandwidthGovernor, RemotePool};
use faasmem_sim::{SimDuration, SimTime};

use crate::container::Container;

/// Everything a policy may touch when a hook fires: the affected
/// container, the remote pool, and the shared bandwidth governor.
#[derive(Debug)]
pub struct PolicyCtx<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// The container the hook concerns.
    pub container: &'a mut Container,
    /// The node's remote memory pool.
    pub pool: &'a mut RemotePool,
    /// The node-wide offload-bandwidth governor.
    pub governor: &'a mut BandwidthGovernor,
}

impl<'a> PolicyCtx<'a> {
    /// Offloads the given pages of this container to the remote pool,
    /// updating the page table, pool occupancy and bandwidth accounting.
    /// Returns the number of pages actually moved (pages already remote
    /// or freed are skipped; on pool exhaustion the batch is truncated to
    /// what fits).
    pub fn offload_pages(&mut self, ids: &[PageId]) -> u32 {
        let page_size = self.container.table().page_size();
        if self.pool.offloads_suspended() || !self.pool.out_link_up(self.now) {
            // Graceful degradation: while the circuit breaker holds the
            // pool unhealthy — or the fabric itself is mid-outage, where
            // an RDMA write would fail immediately — keep pages in local
            // DRAM.
            self.pool.note_refused_offload();
            return 0;
        }
        // Determine how many of the candidates are actually local.
        let movable: Vec<PageId> = ids
            .iter()
            .copied()
            .filter(|&id| self.container.table().meta(id).state() == faasmem_mem::PageState::Local)
            .collect();
        if movable.is_empty() {
            return 0;
        }
        // Truncate to pool capacity.
        let fit = (self.pool.available_bytes() / page_size).min(movable.len() as u64) as usize;
        if fit == 0 {
            return 0;
        }
        let batch = &movable[..fit];
        let moved = self
            .container
            .table_mut()
            .offload_pages(batch.iter().copied());
        debug_assert_eq!(moved as usize, batch.len());
        let bytes = u64::from(moved) * page_size;
        self.pool
            .page_out(self.now, u64::from(moved), page_size)
            .expect("batch pre-sized to fit the pool");
        self.governor.record(self.now, bytes);
        moved
    }

    /// Prefetches the given remote pages of this container back to local
    /// DRAM in one batch, charging the pool's page-in path. Returns the
    /// number of pages moved. Unlike demand faults, prefetched pages are
    /// not marked accessed and do not count as faults; the batch occupies
    /// the link, so any demand faults issued right after queue behind it.
    pub fn prefetch_pages(&mut self, ids: &[PageId]) -> u32 {
        let page_size = self.container.table().page_size();
        if !self.pool.in_link_up(self.now) {
            // Prefetch is an optimization: mid-outage it is skipped
            // rather than queued behind the window. Demand faults still
            // recall the pages through the resilient path.
            return 0;
        }
        let moved = self
            .container
            .table_mut()
            .prefetch_pages(ids.iter().copied());
        if moved > 0 {
            self.pool
                .page_in(self.now, u64::from(moved), page_size)
                .expect("prefetched pages are held by the pool");
        }
        moved
    }

    /// Convenience: offload every live page matching `pred`.
    pub fn offload_where<F>(&mut self, pred: F) -> u32
    where
        F: Fn(PageId, faasmem_mem::PageMeta) -> bool,
    {
        let ids = self.container.table().collect_ids(pred);
        self.offload_pages(&ids)
    }
}

/// Lifecycle hooks a memory-management policy implements.
///
/// All hooks default to no-ops, so a policy only implements the events it
/// cares about. One policy instance manages *all* containers on the node;
/// per-container state should be keyed by [`Container::id`].
pub trait MemoryPolicy {
    /// Short name used in experiment output ("Baseline", "TMO", ...).
    fn name(&self) -> &'static str;

    /// If `Some`, the platform invokes [`MemoryPolicy::on_tick`] for every
    /// live container at this period.
    fn tick_interval(&self) -> Option<SimDuration> {
        None
    }

    /// The container runtime finished loading (cold start, phase 1 done).
    fn on_runtime_loaded(&mut self, _ctx: &mut PolicyCtx<'_>) {}

    /// Function initialization finished (cold start, phase 2 done).
    fn on_init_done(&mut self, _ctx: &mut PolicyCtx<'_>) {}

    /// A request is about to execute on this container. For warm starts,
    /// `idle` is how long the container sat in keep-alive — the paper's
    /// "container reused interval" that drives semi-warm timing.
    fn on_request_start(&mut self, _ctx: &mut PolicyCtx<'_>, _idle: Option<SimDuration>) {}

    /// A request just completed (execution segment already freed).
    fn on_request_end(&mut self, _ctx: &mut PolicyCtx<'_>) {}

    /// Periodic maintenance, fired per live container every
    /// [`MemoryPolicy::tick_interval`].
    fn on_tick(&mut self, _ctx: &mut PolicyCtx<'_>) {}

    /// The container hit its keep-alive timeout and is being recycled;
    /// fired before its memory is released.
    fn on_container_recycled(&mut self, _ctx: &mut PolicyCtx<'_>) {}
}

/// Boxed policies forward every hook, so policies chosen at run time
/// (e.g. by an experiment grid's policy axis) plug into
/// [`PlatformBuilder::policy`](crate::PlatformBuilder::policy) directly.
impl MemoryPolicy for Box<dyn MemoryPolicy> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn tick_interval(&self) -> Option<SimDuration> {
        (**self).tick_interval()
    }

    fn on_runtime_loaded(&mut self, ctx: &mut PolicyCtx<'_>) {
        (**self).on_runtime_loaded(ctx);
    }

    fn on_init_done(&mut self, ctx: &mut PolicyCtx<'_>) {
        (**self).on_init_done(ctx);
    }

    fn on_request_start(&mut self, ctx: &mut PolicyCtx<'_>, idle: Option<SimDuration>) {
        (**self).on_request_start(ctx, idle);
    }

    fn on_request_end(&mut self, ctx: &mut PolicyCtx<'_>) {
        (**self).on_request_end(ctx);
    }

    fn on_tick(&mut self, ctx: &mut PolicyCtx<'_>) {
        (**self).on_tick(ctx);
    }

    fn on_container_recycled(&mut self, ctx: &mut PolicyCtx<'_>) {
        (**self).on_container_recycled(ctx);
    }
}

/// A policy that never offloads anything: the paper's "Baseline"
/// (a FaaSMem variant without memory offloading, §8.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullPolicy;

impl MemoryPolicy for NullPolicy {
    fn name(&self) -> &'static str {
        "Baseline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::{Container, ContainerId};
    use faasmem_mem::{PageState, Segment, PAGE_SIZE_4K};
    use faasmem_pool::PoolConfig;
    use faasmem_workload::{BenchmarkSpec, FunctionId};

    fn harness() -> (Container, RemotePool, BandwidthGovernor) {
        let spec = BenchmarkSpec::by_name("json").unwrap();
        let mut c = Container::new(
            ContainerId(0),
            FunctionId(0),
            spec,
            PAGE_SIZE_4K,
            SimTime::ZERO,
        );
        c.finish_launch();
        c.finish_init();
        let pool = RemotePool::new(PoolConfig::slow_test_pool());
        let gov = BandwidthGovernor::new(100 * 1024 * 1024, SimDuration::from_secs(1));
        (c, pool, gov)
    }

    #[test]
    fn offload_pages_moves_and_accounts() {
        let (mut c, mut pool, mut gov) = harness();
        let ids: Vec<_> = c.runtime_range().take(10).iter().collect();
        let mut ctx = PolicyCtx {
            now: SimTime::from_secs(1),
            container: &mut c,
            pool: &mut pool,
            governor: &mut gov,
        };
        let moved = ctx.offload_pages(&ids);
        assert_eq!(moved, 10);
        assert_eq!(pool.used_bytes(), 10 * PAGE_SIZE_4K);
        assert_eq!(c.table().remote_pages(), 10);
        // Offloading the same pages again is a no-op.
        let mut ctx = PolicyCtx {
            now: SimTime::from_secs(2),
            container: &mut c,
            pool: &mut pool,
            governor: &mut gov,
        };
        assert_eq!(ctx.offload_pages(&ids), 0);
    }

    #[test]
    fn offload_truncates_at_pool_capacity() {
        let spec = BenchmarkSpec::by_name("json").unwrap();
        let mut c = Container::new(
            ContainerId(0),
            FunctionId(0),
            spec,
            PAGE_SIZE_4K,
            SimTime::ZERO,
        );
        c.finish_launch();
        let mut pool = RemotePool::new(PoolConfig {
            capacity_bytes: 3 * PAGE_SIZE_4K,
            ..PoolConfig::slow_test_pool()
        });
        let mut gov = BandwidthGovernor::new(1_000_000, SimDuration::from_secs(1));
        let ids: Vec<_> = c.runtime_range().take(10).iter().collect();
        let mut ctx = PolicyCtx {
            now: SimTime::ZERO,
            container: &mut c,
            pool: &mut pool,
            governor: &mut gov,
        };
        assert_eq!(ctx.offload_pages(&ids), 3, "only what fits moves");
        assert_eq!(c.table().remote_pages(), 3);
        let mut ctx = PolicyCtx {
            now: SimTime::ZERO,
            container: &mut c,
            pool: &mut pool,
            governor: &mut gov,
        };
        assert_eq!(ctx.offload_pages(&ids), 0, "pool now full");
    }

    #[test]
    fn prefetch_pages_returns_batch_and_accounts_pool() {
        let (mut c, mut pool, mut gov) = harness();
        let ids: Vec<_> = c.init_range().take(8).iter().collect();
        let mut ctx = PolicyCtx {
            now: SimTime::ZERO,
            container: &mut c,
            pool: &mut pool,
            governor: &mut gov,
        };
        ctx.offload_pages(&ids);
        let mut ctx = PolicyCtx {
            now: SimTime::from_secs(1),
            container: &mut c,
            pool: &mut pool,
            governor: &mut gov,
        };
        assert_eq!(ctx.prefetch_pages(&ids), 8);
        assert_eq!(pool.used_bytes(), 0);
        assert_eq!(c.table().remote_pages(), 0);
        assert_eq!(c.table().total_faulted(), 0);
    }

    #[test]
    fn offload_where_uses_metadata() {
        let (mut c, mut pool, mut gov) = harness();
        let mut ctx = PolicyCtx {
            now: SimTime::ZERO,
            container: &mut c,
            pool: &mut pool,
            governor: &mut gov,
        };
        let moved = ctx.offload_where(|_, m| m.segment() == Segment::Init);
        assert!(moved > 0);
        for id in c.init_range().iter() {
            assert_eq!(c.table().meta(id).state(), PageState::Remote);
        }
        for id in c.runtime_range().iter() {
            assert_eq!(c.table().meta(id).state(), PageState::Local);
        }
    }

    #[test]
    fn suspended_pool_refuses_offloads() {
        let (mut c, mut pool, mut gov) = harness();
        pool.set_offloads_suspended(true);
        let ids: Vec<_> = c.runtime_range().take(10).iter().collect();
        let mut ctx = PolicyCtx {
            now: SimTime::ZERO,
            container: &mut c,
            pool: &mut pool,
            governor: &mut gov,
        };
        assert_eq!(ctx.offload_pages(&ids), 0);
        assert_eq!(pool.used_bytes(), 0);
        assert_eq!(pool.offloads_refused(), 1);
        // Resuming lets the same batch through.
        pool.set_offloads_suspended(false);
        let mut ctx = PolicyCtx {
            now: SimTime::ZERO,
            container: &mut c,
            pool: &mut pool,
            governor: &mut gov,
        };
        assert_eq!(ctx.offload_pages(&ids), 10);
    }

    #[test]
    fn null_policy_is_inert() {
        let (mut c, mut pool, mut gov) = harness();
        let mut policy = NullPolicy;
        let mut ctx = PolicyCtx {
            now: SimTime::ZERO,
            container: &mut c,
            pool: &mut pool,
            governor: &mut gov,
        };
        policy.on_runtime_loaded(&mut ctx);
        policy.on_init_done(&mut ctx);
        policy.on_request_start(&mut ctx, None);
        policy.on_request_end(&mut ctx);
        policy.on_tick(&mut ctx);
        policy.on_container_recycled(&mut ctx);
        assert_eq!(policy.name(), "Baseline");
        assert_eq!(policy.tick_interval(), None);
        assert_eq!(pool.used_bytes(), 0);
        assert_eq!(c.table().remote_pages(), 0);
    }
}
