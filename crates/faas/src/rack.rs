//! Rack-level provisioning analysis (paper §9).
//!
//! The paper sizes the memory-pool architecture at rack granularity: ~10
//! compute nodes share one memory node, because cross-rack pooling costs
//! too much latency. Given per-node measurements (from [`RunReport`]s or
//! production constants), [`RackPlan`] answers the three §9 questions:
//!
//! 1. **Bandwidth** — does the aggregate offload + recall traffic fit the
//!    rack's RDMA fabric? (Paper: 5000 containers × 0.82 MB/s ≈ 32 Gbps
//!    per node, 320 Gbps per rack, under one 400 Gbps NIC.)
//! 2. **Pool capacity** — how much pool memory must the rack's memory
//!    node offer? (Paper: local:remote ≈ 1:0.8 → ~3 TB for 10 × 384 GB
//!    nodes.)
//! 3. **Cost** — what does the pool save versus upgrading every node's
//!    DRAM, given the pool can be built from reused memory? (Paper: ~44%
//!    DRAM cost reduction.)

use crate::report::RunReport;

/// Per-node inputs to the rack analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeProfile {
    /// Node-local DRAM in GiB.
    pub local_dram_gib: f64,
    /// Containers hosted per node.
    pub containers: f64,
    /// Mean remote-pool bandwidth per container, MB/s (offload + recall).
    pub bandwidth_per_container_mbps: f64,
    /// Remote:local memory ratio (the paper recommends ~0.8).
    pub remote_to_local_ratio: f64,
}

impl NodeProfile {
    /// The paper's production node (§9): 384 GB DRAM, up to 5000
    /// containers with FaaSMem's 2× density, ≤ 0.82 MB/s per container,
    /// 1:0.8 local:remote.
    pub fn paper_production() -> Self {
        NodeProfile {
            local_dram_gib: 384.0,
            containers: 5_000.0,
            bandwidth_per_container_mbps: 0.82,
            remote_to_local_ratio: 0.8,
        }
    }

    /// Derives a profile from a measured run: per-container bandwidth and
    /// the remote:local ratio come from the report; DRAM and container
    /// count are the planner's targets.
    pub fn from_report(report: &RunReport, local_dram_gib: f64, containers: f64) -> Self {
        let avg_containers = report.avg_live_containers().max(1e-9);
        let secs = report.finished_at.as_secs_f64().max(1e-9);
        let per_container_mbps = (report.pool_stats.bytes_out + report.pool_stats.bytes_in) as f64
            / secs
            / 1e6
            / avg_containers;
        let local = report
            .local_mem
            .time_weighted_mean(report.finished_at)
            .unwrap_or(0.0);
        let remote = report
            .remote_mem
            .time_weighted_mean(report.finished_at)
            .unwrap_or(0.0);
        NodeProfile {
            local_dram_gib,
            containers,
            bandwidth_per_container_mbps: per_container_mbps,
            remote_to_local_ratio: if local > 0.0 { remote / local } else { 0.0 },
        }
    }
}

/// A rack configuration to validate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RackPlan {
    /// Compute nodes per rack (paper: ~10).
    pub nodes: u32,
    /// Rack fabric bandwidth toward the memory node, Gbps (paper: up to
    /// 400 Gbps RDMA NICs, extensible with more adapters).
    pub fabric_gbps: f64,
    /// Relative cost of pool memory vs node DRAM (the pool reuses older
    /// or retired memory; < 1.0).
    pub pool_memory_cost_factor: f64,
}

impl Default for RackPlan {
    fn default() -> Self {
        RackPlan {
            nodes: 10,
            fabric_gbps: 400.0,
            pool_memory_cost_factor: 0.3,
        }
    }
}

/// The outcome of the §9 arithmetic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RackReport {
    /// Aggregate remote bandwidth demand of the rack, Gbps.
    pub demand_gbps: f64,
    /// Fraction of the fabric the demand consumes.
    pub fabric_utilization: f64,
    /// Pool memory the rack's memory node must offer, GiB.
    pub pool_gib: f64,
    /// DRAM cost of the pooled design relative to provisioning the same
    /// total memory as node DRAM (1.0 = no saving).
    pub relative_dram_cost: f64,
}

impl RackReport {
    /// Runs the analysis for `plan` with every node shaped like `node`.
    pub fn analyze(node: NodeProfile, plan: RackPlan) -> RackReport {
        let per_node_mbps = node.containers * node.bandwidth_per_container_mbps;
        let demand_gbps = per_node_mbps * 8.0 / 1_000.0 * f64::from(plan.nodes);
        let pool_gib = node.local_dram_gib * node.remote_to_local_ratio * f64::from(plan.nodes);
        // Cost comparison per §9: serving (local + remote) worth of
        // memory either as all-new node DRAM, or as node DRAM + cheap
        // (reused) pool memory.
        let local_total = node.local_dram_gib * f64::from(plan.nodes);
        let all_dram_cost = local_total + pool_gib; // everything at DRAM price
        let pooled_cost = local_total + pool_gib * plan.pool_memory_cost_factor;
        RackReport {
            demand_gbps,
            fabric_utilization: demand_gbps / plan.fabric_gbps,
            pool_gib,
            relative_dram_cost: pooled_cost / all_dram_cost,
        }
    }

    /// `true` when the fabric absorbs the demand with headroom.
    pub fn bandwidth_fits(&self) -> bool {
        self.fabric_utilization < 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_arithmetic_reproduced() {
        // §9: 5000 containers × 0.82 MB/s ≈ 32.8 Gbps per node,
        // ≈ 328 Gbps per 10-node rack — inside a 400 Gbps NIC.
        let r = RackReport::analyze(NodeProfile::paper_production(), RackPlan::default());
        assert!(
            (r.demand_gbps - 328.0).abs() < 1.0,
            "demand {}",
            r.demand_gbps
        );
        assert!(r.bandwidth_fits());
        assert!(r.fabric_utilization > 0.75 && r.fabric_utilization < 0.9);
        // §9: 10 × 384 GB × 0.8 ≈ 3 TB pool.
        assert!((r.pool_gib - 3_072.0).abs() < 1.0, "pool {}", r.pool_gib);
    }

    #[test]
    fn cost_saving_matches_44_percent_claim() {
        // §9 claims ~44% DRAM cost reduction. With 1:0.8 local:remote,
        // pooling turns 44% of the total memory (the remote share) into
        // cheap reused memory: 1 - (1 + 0.8·c)/(1.8). c = 0 gives the
        // upper bound 44.4%.
        let node = NodeProfile::paper_production();
        let plan = RackPlan {
            pool_memory_cost_factor: 0.0,
            ..RackPlan::default()
        };
        let r = RackReport::analyze(node, plan);
        let saving = 1.0 - r.relative_dram_cost;
        assert!((saving - 0.444).abs() < 0.01, "saving {saving}");
    }

    #[test]
    fn over_subscribed_fabric_is_flagged() {
        let node = NodeProfile {
            bandwidth_per_container_mbps: 3.0,
            ..NodeProfile::paper_production()
        };
        let r = RackReport::analyze(node, RackPlan::default());
        assert!(!r.bandwidth_fits());
        assert!(r.fabric_utilization > 1.0);
    }

    #[test]
    fn scaling_nodes_scales_demand_and_pool() {
        let node = NodeProfile::paper_production();
        let r10 = RackReport::analyze(node, RackPlan::default());
        let r5 = RackReport::analyze(
            node,
            RackPlan {
                nodes: 5,
                ..RackPlan::default()
            },
        );
        assert!((r10.demand_gbps / r5.demand_gbps - 2.0).abs() < 1e-9);
        assert!((r10.pool_gib / r5.pool_gib - 2.0).abs() < 1e-9);
        // Relative cost is scale-free.
        assert!((r10.relative_dram_cost - r5.relative_dram_cost).abs() < 1e-12);
    }
}
