//! Run reports: everything the experiments measure.

use std::collections::HashMap;

use faasmem_mem::FlowMatrix;
use faasmem_metrics::{
    BlameReport, Cdf, DurabilityTracker, LatencyRecorder, LatencySummary, MetricsRegistry,
    TimeSeries, WasteLedger, WasteReport,
};
use faasmem_pool::PoolStats;
use faasmem_sim::{SimDuration, SimTime};
use faasmem_workload::FunctionId;

/// Per-request measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestRecord {
    /// The invoked function.
    pub function: FunctionId,
    /// Arrival time at the gateway.
    pub arrived: SimTime,
    /// End-to-end latency (cold start + execution + fault stalls).
    pub latency: SimDuration,
    /// Whether the request triggered a cold start.
    pub cold: bool,
    /// Remote faults taken during execution.
    pub faults: u32,
}

/// Per-container lifetime measurement, recorded at recycle time (or at
/// the end of the run for containers still alive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContainerRecord {
    /// The function the container served.
    pub function: FunctionId,
    /// Cold-start begin.
    pub created_at: SimTime,
    /// Recycle time (or run end).
    pub retired_at: SimTime,
    /// Requests completed over the lifetime.
    pub requests_served: u64,
    /// Total time spent executing requests.
    pub busy_time: SimDuration,
}

impl ContainerRecord {
    /// Container lifetime.
    pub fn lifetime(&self) -> SimDuration {
        self.retired_at.saturating_since(self.created_at)
    }

    /// Fraction of the lifetime the container's memory sat inactive —
    /// the Fig 1 metric.
    pub fn inactive_fraction(&self) -> f64 {
        let life = self.lifetime().as_secs_f64();
        if life <= 0.0 {
            return 0.0;
        }
        (1.0 - self.busy_time.as_secs_f64() / life).max(0.0)
    }
}

/// The full output of one platform run.
#[derive(Debug)]
pub struct RunReport {
    /// Policy under test, as reported by [`MemoryPolicy::name`](crate::MemoryPolicy::name).
    pub policy: &'static str,
    /// Requests completed.
    pub requests_completed: usize,
    /// Requests that triggered a cold start.
    pub cold_starts: usize,
    /// End-to-end latency samples over all requests.
    pub latency: LatencyRecorder,
    /// Per-request records in completion order.
    pub requests: Vec<RequestRecord>,
    /// Node-wide local memory footprint over time (bytes).
    pub local_mem: TimeSeries,
    /// Node-wide remote (offloaded) memory over time (bytes).
    pub remote_mem: TimeSeries,
    /// Live containers over time.
    pub live_containers: TimeSeries,
    /// Remote pool traffic counters at run end.
    pub pool_stats: PoolStats,
    /// Lifetime records of all containers (recycled or alive at end).
    pub containers: Vec<ContainerRecord>,
    /// Observed container reused intervals per function (keep-alive gap
    /// before each warm start) — the semi-warm CDF input.
    pub reuse_intervals: HashMap<FunctionId, Vec<SimDuration>>,
    /// When the run ended (trace horizon + drain).
    pub finished_at: SimTime,
    /// Fault-injection accounting; `None` when the run had no fault
    /// configuration (every metric below would be trivially zero).
    pub faults: Option<FaultReport>,
    /// Durability accounting; `None` when the pool fabric is degenerate
    /// (one node, no redundancy) — i.e., on every pre-fabric config.
    pub durability: Option<DurabilityReport>,
    /// Per-invocation latency blame (component distributions and tail
    /// attribution); `None` unless the platform ran with blame enabled.
    pub blame: Option<BlameReport>,
    /// Byte-second memory anatomy (waste decomposition plus the page
    /// lifecycle flow matrix); `None` unless the platform ran with
    /// memory anatomy enabled.
    pub memory_anatomy: Option<MemoryAnatomyReport>,
    /// Per-function waste ledgers, sorted by function id; empty unless
    /// memory anatomy was enabled.
    pub function_waste: Vec<FunctionWaste>,
    /// Named counters and gauges snapshotted at run end — the
    /// introspection surface the harness serializes per cell.
    pub registry: MetricsRegistry,
    /// Events popped and processed by the drive loop. Identical across
    /// the serial and sharded drivers (both replay the same `(time,
    /// seq)` order), so it doubles as a cheap drive-equivalence check.
    /// Surfaced through the wall-clock `.timing.json` side channel —
    /// never serialized into the deterministic result JSON.
    pub events_processed: u64,
}

impl RunReport {
    /// Time-weighted mean of node-local memory in MiB — the paper's
    /// "average local memory usage".
    pub fn avg_local_mib(&self) -> f64 {
        self.local_mem
            .time_weighted_mean(self.finished_at)
            .unwrap_or(0.0)
            / (1024.0 * 1024.0)
    }

    /// Time-weighted mean of offloaded memory in MiB.
    pub fn avg_remote_mib(&self) -> f64 {
        self.remote_mem
            .time_weighted_mean(self.finished_at)
            .unwrap_or(0.0)
            / (1024.0 * 1024.0)
    }

    /// Time-weighted mean number of live containers.
    pub fn avg_live_containers(&self) -> f64 {
        self.live_containers
            .time_weighted_mean(self.finished_at)
            .unwrap_or(0.0)
    }

    /// P95 end-to-end latency, the paper's headline QoS metric.
    pub fn p95_latency(&mut self) -> SimDuration {
        self.latency.percentile(0.95).unwrap_or(SimDuration::ZERO)
    }

    /// Fraction of requests that cold-started.
    pub fn cold_start_ratio(&self) -> f64 {
        if self.requests_completed == 0 {
            0.0
        } else {
            self.cold_starts as f64 / self.requests_completed as f64
        }
    }

    /// Aggregate inactive-time fraction over all containers, weighted by
    /// lifetime (Fig 1's "memory inactive time").
    pub fn memory_inactive_fraction(&self) -> f64 {
        let total_life: f64 = self
            .containers
            .iter()
            .map(|c| c.lifetime().as_secs_f64())
            .sum();
        if total_life <= 0.0 {
            return 0.0;
        }
        let total_busy: f64 = self
            .containers
            .iter()
            .map(|c| c.busy_time.as_secs_f64())
            .sum();
        (1.0 - total_busy / total_life).max(0.0)
    }

    /// CDF of requests handled per container (Fig 5).
    pub fn requests_per_container_cdf(&self) -> Cdf {
        Cdf::from_samples(self.containers.iter().map(|c| c.requests_served as f64))
    }

    /// Per-function request summaries: latency digest, request count,
    /// cold starts and total faults, sorted by function id. The per-app
    /// rows of Table 1 and the multi-tenant examples build on this.
    pub fn per_function_summaries(&self) -> Vec<FunctionSummary> {
        let mut by_function: HashMap<FunctionId, (LatencyRecorder, usize, usize, u64)> =
            HashMap::new();
        for r in &self.requests {
            let entry = by_function.entry(r.function).or_default();
            entry.0.record(r.latency);
            entry.1 += 1;
            if r.cold {
                entry.2 += 1;
            }
            entry.3 += u64::from(r.faults);
        }
        let mut out: Vec<FunctionSummary> = by_function
            .into_iter()
            .map(
                |(function, (mut lat, requests, cold_starts, faults))| FunctionSummary {
                    function,
                    latency: lat.summary(),
                    requests,
                    cold_starts,
                    faults,
                },
            )
            .collect();
        out.sort_by_key(|s| s.function);
        out
    }

    /// Mean offload bandwidth per second of run, MB/s (Fig 16 y-axis).
    pub fn mean_offload_bandwidth_mbps(&self) -> f64 {
        let secs = self.finished_at.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.pool_stats.bytes_out as f64 / secs / 1e6
        }
    }

    /// Digests the report into the flat, plain-data [`RunSummary`] the
    /// experiment harness serializes. Needs `&mut self` because the
    /// latency percentiles sort the recorder in place.
    pub fn summarize(&mut self) -> RunSummary {
        let latency = self.latency.summary();
        let max_latency = self.latency.max().unwrap_or(SimDuration::ZERO);
        RunSummary {
            policy: self.policy,
            requests_completed: self.requests_completed,
            cold_starts: self.cold_starts,
            cold_start_ratio: self.cold_start_ratio(),
            latency,
            max_latency,
            avg_local_mib: self.avg_local_mib(),
            avg_remote_mib: self.avg_remote_mib(),
            avg_live_containers: self.avg_live_containers(),
            memory_inactive_fraction: self.memory_inactive_fraction(),
            pool_stats: self.pool_stats,
            mean_offload_bandwidth_mbps: self.mean_offload_bandwidth_mbps(),
            containers: self.containers.len(),
            sim_secs: self.finished_at.as_secs_f64(),
            faults: self.faults,
            durability: self.durability,
            blame: self.blame,
            memory_anatomy: self.memory_anatomy,
        }
    }
}

/// Byte-second memory anatomy of one run: the integrated-occupancy
/// waste decomposition and the page-lifecycle flow matrix, both with
/// their conservation checks folded in. `None`-gated on [`RunReport`]
/// exactly like [`FaultReport`] and [`BlameReport`], so runs without
/// anatomy keep byte-identical artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryAnatomyReport {
    /// The integrated byte-second waste decomposition.
    pub waste: WasteReport,
    /// Page-lifecycle flows aggregated over every container's table.
    pub flow: FlowMatrix,
}

impl MemoryAnatomyReport {
    /// Total conservation violations across both the waste side checks
    /// and the flow rows (zero by contract).
    pub fn conservation_violations(&self) -> u64 {
        self.waste.conservation_violations + self.flow.row_violations()
    }
}

/// One function's accumulated waste ledger (see
/// [`RunReport::function_waste`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunctionWaste {
    /// The function.
    pub function: FunctionId,
    /// The function's name from the workload spec.
    pub name: &'static str,
    /// Byte-µs charged to this function's containers (compute side) and
    /// its offloaded pages' primary pool occupancy.
    pub ledger: WasteLedger,
}

/// Durability outcomes of a run against a multi-node pool fabric: what
/// the redundancy scheme cost (capacity and bandwidth overhead) and what
/// it bought (failover recalls and avoided cold rebuilds) — the
/// `disc08` trade-off surface.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DurabilityReport {
    /// Pool nodes the fabric started with.
    pub pool_nodes: u32,
    /// Pool nodes still alive at run end.
    pub nodes_up: u32,
    /// Segments below full replication at run end (repairs outstanding
    /// or impossible).
    pub under_replicated_final: u64,
    /// Repair traffic still queued at run end, bytes.
    pub repair_backlog_bytes: u64,
    /// Counter snapshot from the fabric's [`DurabilityTracker`].
    pub tracker: DurabilityTracker,
}

/// Accounting of one run's injected faults and the platform's reaction —
/// the availability side of the "memory savings vs. availability"
/// trade-off the `disc07` experiment measures.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultReport {
    /// Fraction of the run during which the pool link carried traffic
    /// (1.0 = no full outage overlapped the run).
    pub link_availability: f64,
    /// Total full-outage time overlapping the run.
    pub link_downtime: SimDuration,
    /// Timed-out page-in attempts that were retried.
    pub page_in_retries: u64,
    /// Page-ins abandoned after exhausting every retry.
    pub page_ins_gave_up: u64,
    /// Warm containers cold-restarted because their remote pages were
    /// unreachable or lost.
    pub forced_cold_restarts: u64,
    /// Pool-node loss events injected.
    pub node_loss_events: u64,
    /// Idle-container crash events injected.
    pub container_crashes: u64,
    /// Remote bytes discarded to node loss or abandoned recalls.
    pub lost_remote_bytes: u64,
    /// Offload batches refused while the circuit breaker held offloading
    /// suspended.
    pub offloads_refused: u64,
    /// Times the circuit breaker declared the pool unhealthy.
    pub breaker_opens: u64,
    /// Requests measured against the latency SLO (0 when no SLO set).
    pub slo_total: u64,
    /// Requests that violated the latency SLO.
    pub slo_violations: u64,
}

impl FaultReport {
    /// Fraction of SLO-measured requests that violated the objective.
    pub fn slo_violation_ratio(&self) -> f64 {
        if self.slo_total == 0 {
            0.0
        } else {
            self.slo_violations as f64 / self.slo_total as f64
        }
    }
}

/// The flat digest of a [`RunReport`]: every headline metric of the
/// paper's evaluation as plain data, cheap to clone and to move across
/// threads — the unit the experiment harness aggregates and serializes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSummary {
    /// Policy under test.
    pub policy: &'static str,
    /// Requests completed.
    pub requests_completed: usize,
    /// Requests that triggered a cold start.
    pub cold_starts: usize,
    /// Fraction of requests that cold-started.
    pub cold_start_ratio: f64,
    /// Latency digest (avg, P50, P95, P99) over all requests.
    pub latency: LatencySummary,
    /// Worst-case end-to-end latency.
    pub max_latency: SimDuration,
    /// Time-weighted mean local memory, MiB.
    pub avg_local_mib: f64,
    /// Time-weighted mean offloaded memory, MiB.
    pub avg_remote_mib: f64,
    /// Time-weighted mean live containers.
    pub avg_live_containers: f64,
    /// Lifetime-weighted inactive-memory fraction (Fig 1).
    pub memory_inactive_fraction: f64,
    /// Remote-pool traffic counters at run end.
    pub pool_stats: PoolStats,
    /// Mean offload bandwidth, MB/s (Fig 16).
    pub mean_offload_bandwidth_mbps: f64,
    /// Containers created over the run.
    pub containers: usize,
    /// Simulated seconds covered by the run.
    pub sim_secs: f64,
    /// Fault-injection accounting; `None` when faults were not
    /// configured.
    pub faults: Option<FaultReport>,
    /// Durability accounting; `None` when the pool fabric is degenerate.
    pub durability: Option<DurabilityReport>,
    /// Latency-blame digest; `None` unless blame was enabled.
    pub blame: Option<BlameReport>,
    /// Byte-second memory anatomy; `None` unless anatomy was enabled.
    pub memory_anatomy: Option<MemoryAnatomyReport>,
}

/// One function's view of a run (see
/// [`RunReport::per_function_summaries`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FunctionSummary {
    /// The function.
    pub function: FunctionId,
    /// Latency digest over its requests.
    pub latency: LatencySummary,
    /// Requests completed.
    pub requests: usize,
    /// Requests that cold-started.
    pub cold_starts: usize,
    /// Total remote faults across its requests.
    pub faults: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn container_record_inactive_fraction() {
        let rec = ContainerRecord {
            function: FunctionId(0),
            created_at: SimTime::from_secs(0),
            retired_at: SimTime::from_secs(100),
            requests_served: 5,
            busy_time: SimDuration::from_secs(10),
        };
        assert_eq!(rec.lifetime(), SimDuration::from_secs(100));
        assert!((rec.inactive_fraction() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn zero_lifetime_is_not_nan() {
        let rec = ContainerRecord {
            function: FunctionId(0),
            created_at: SimTime::from_secs(5),
            retired_at: SimTime::from_secs(5),
            requests_served: 0,
            busy_time: SimDuration::ZERO,
        };
        assert_eq!(rec.inactive_fraction(), 0.0);
    }

    fn empty_report() -> RunReport {
        RunReport {
            policy: "test",
            requests_completed: 0,
            cold_starts: 0,
            latency: LatencyRecorder::new(),
            requests: Vec::new(),
            local_mem: TimeSeries::new(),
            remote_mem: TimeSeries::new(),
            live_containers: TimeSeries::new(),
            pool_stats: PoolStats::default(),
            containers: Vec::new(),
            reuse_intervals: HashMap::new(),
            finished_at: SimTime::from_secs(10),
            faults: None,
            durability: None,
            blame: None,
            memory_anatomy: None,
            function_waste: Vec::new(),
            registry: MetricsRegistry::new(),
            events_processed: 0,
        }
    }

    #[test]
    fn empty_report_metrics_are_zero() {
        let mut r = empty_report();
        assert_eq!(r.avg_local_mib(), 0.0);
        assert_eq!(r.avg_remote_mib(), 0.0);
        assert_eq!(r.cold_start_ratio(), 0.0);
        assert_eq!(r.memory_inactive_fraction(), 0.0);
        assert_eq!(r.p95_latency(), SimDuration::ZERO);
        assert_eq!(r.mean_offload_bandwidth_mbps(), 0.0);
        assert!(r.requests_per_container_cdf().is_empty());
    }

    #[test]
    fn aggregate_inactive_fraction_weighted_by_lifetime() {
        let mut r = empty_report();
        r.containers.push(ContainerRecord {
            function: FunctionId(0),
            created_at: SimTime::ZERO,
            retired_at: SimTime::from_secs(100),
            requests_served: 1,
            busy_time: SimDuration::from_secs(50),
        });
        r.containers.push(ContainerRecord {
            function: FunctionId(0),
            created_at: SimTime::ZERO,
            retired_at: SimTime::from_secs(300),
            requests_served: 1,
            busy_time: SimDuration::ZERO,
        });
        // busy 50 over total 400 → 87.5% inactive.
        assert!((r.memory_inactive_fraction() - 0.875).abs() < 1e-12);
    }

    #[test]
    fn per_function_summaries_split_and_sort() {
        let mut r = empty_report();
        for (f, ms, cold, faults) in [
            (1u32, 10u64, true, 5u32),
            (0, 20, false, 0),
            (1, 30, false, 2),
        ] {
            r.requests.push(RequestRecord {
                function: FunctionId(f),
                arrived: SimTime::ZERO,
                latency: SimDuration::from_millis(ms),
                cold,
                faults,
            });
        }
        let summaries = r.per_function_summaries();
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].function, FunctionId(0));
        assert_eq!(summaries[0].requests, 1);
        assert_eq!(summaries[1].function, FunctionId(1));
        assert_eq!(summaries[1].requests, 2);
        assert_eq!(summaries[1].cold_starts, 1);
        assert_eq!(summaries[1].faults, 7);
        assert_eq!(summaries[1].latency.p50, SimDuration::from_millis(10));
    }

    #[test]
    fn cold_start_ratio_counts() {
        let mut r = empty_report();
        r.requests_completed = 4;
        r.cold_starts = 1;
        assert_eq!(r.cold_start_ratio(), 0.25);
    }
}
