//! Shard-parallel platform driver.
//!
//! [`PlatformSim::run_sharded`] partitions the event population across
//! `S` per-shard queues (containers round-robin by id, control events
//! on shard 0) and drains them through conservative windows — the
//! DSLab-style parallel-FaaS engine shape. Both drivers share the
//! handler bodies verbatim through the `EventSink` seam, and the
//! sharded queue's global stamp counter reproduces the serial queue's
//! `(sim_time, seq)` total order exactly, so the report, series and
//! trace output are **byte-identical for any shard count** (the
//! differential tests below and in `tests/` enforce this).
//!
//! The simulated platform is one node with globally shared state (one
//! RNG stream, one pool link pair, one tracer sequence), so handlers
//! must execute in the merged global order — this driver parallelises
//! the *event administration* (per-shard heaps, windowed delivery,
//! per-shard link ledgers), not the handler bodies. Thread-level
//! speedup comes from the cluster tier ([`crate::cluster`]), where
//! whole nodes are independent.

use faasmem_sim::shard::ShardedEventQueue;
use faasmem_sim::{Clock, SimTime};
use faasmem_workload::InvocationTrace;

use crate::container::ContainerId;
use crate::platform::{Event, EventSink, PlatformSim};
use crate::report::RunReport;

/// The shard that owns every non-container event: invocation routing,
/// policy ticks, and the fault timeline.
pub const CONTROL_SHARD: u32 = 0;

/// How a sharded run partitions its containers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    shards: u32,
}

impl ShardSpec {
    /// A partition into `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero.
    pub fn new(shards: u32) -> Self {
        assert!(shards >= 1, "need at least one shard");
        ShardSpec { shards }
    }

    /// The shard count.
    pub fn shards(&self) -> u32 {
        self.shards
    }
}

/// The shard owning an event: container-keyed events follow their
/// container (round-robin by id), everything else is control-plane
/// work on [`CONTROL_SHARD`].
fn target_shard(event: &Event, shards: u32) -> u32 {
    let container = |id: ContainerId| (id.0 % u64::from(shards)) as u32;
    match *event {
        Event::RuntimeLoaded(id)
        | Event::InitDone(id)
        | Event::FinishExec(id)
        | Event::RecycleCheck(id) => container(id),
        Event::Invoke(_)
        | Event::Tick
        | Event::NodeLoss(_)
        | Event::ContainerCrash(_)
        | Event::PoolNodeLoss(_) => CONTROL_SHARD,
    }
}

/// The sharded queue seen through the handlers' [`EventSink`] seam:
/// every push is routed to its owning shard, originating from the
/// shard whose event is currently being handled.
struct ShardSink<'a> {
    queue: &'a mut ShardedEventQueue<Event>,
    shards: u32,
}

impl EventSink for ShardSink<'_> {
    fn push(&mut self, at: SimTime, event: Event) {
        let origin = self.queue.current_shard();
        let target = target_shard(&event, self.shards);
        self.queue.push_from(origin, target, at, event);
    }

    fn push_group(&mut self, at: SimTime, events: &mut dyn Iterator<Item = Event>) {
        for event in events {
            self.push(at, event);
        }
    }

    fn reserve(&mut self, additional: usize) {
        self.queue.reserve_current(additional);
    }

    fn has_pending(&self) -> bool {
        self.queue.has_pending()
    }
}

impl PlatformSim {
    /// Runs the trace through the shard-parallel driver. Produces a
    /// report byte-identical to [`PlatformSim::run`] for any shard
    /// count — the differential tests race both drivers as oracles.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`PlatformSim::run`].
    pub fn run_sharded(&mut self, trace: &InvocationTrace, spec: &ShardSpec) -> RunReport {
        let shards = spec.shards();
        let setup = self.prepare(trace);
        let mut queue: ShardedEventQueue<Event> = ShardedEventQueue::new(shards);
        {
            let mut sink = ShardSink {
                queue: &mut queue,
                shards,
            };
            self.seed(&setup, &mut sink);
        }
        // After seeding: a fault plan rebuilds the pool around its link
        // schedule, which would have wiped earlier ledgers.
        self.pool_mut().enable_shard_accounting(shards);

        let lookahead = self.cross_shard_lookahead();
        let mut clock = Clock::new();
        let mut report = self.new_report(&setup);
        while queue.begin_window(lookahead).is_some() {
            while let Some((at, event)) = queue.pop_window() {
                clock.advance_to(at);
                let shard = queue.current_shard();
                // Link-ownership token: transfers this handler performs
                // are charged to the owning shard's ledger.
                self.pool_mut().set_active_shard(shard);
                let mut sink = ShardSink {
                    queue: &mut queue,
                    shards,
                };
                self.process_event(clock.now(), event, &setup, &mut sink, &mut report);
            }
            queue.flush_window();
        }
        // The post-loop drain (leftover recycles) is control-plane work.
        self.pool_mut().set_active_shard(CONTROL_SHARD);
        self.finish(clock.now(), &mut report);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{FaultConfig, PlatformConfig};
    use crate::policy::{MemoryPolicy, NullPolicy};
    use faasmem_metrics::TimeSeries;
    use faasmem_pool::PoolStats;
    use faasmem_sim::faults::FaultSpec;
    use faasmem_sim::SimDuration;
    use faasmem_trace::{LayerMask, TraceEvent, Tracer};
    use faasmem_workload::{BenchmarkSpec, FunctionId, LoadClass, TraceSynthesizer};

    use crate::report::{ContainerRecord, FaultReport, RequestRecord};

    /// Exercises the pool on every request: offloads the init segment
    /// at request end and wakes up on a policy tick, so sharded runs
    /// cover cross-shard pool transfers and Tick control events.
    struct OffloadInitPolicy;

    impl MemoryPolicy for OffloadInitPolicy {
        fn name(&self) -> &'static str {
            "OffloadInit"
        }
        fn tick_interval(&self) -> Option<SimDuration> {
            Some(SimDuration::from_secs(30))
        }
        fn on_request_end(&mut self, ctx: &mut crate::policy::PolicyCtx<'_>) {
            ctx.offload_where(|_, m| m.segment() == faasmem_mem::Segment::Init);
        }
    }

    /// Everything observable about a run, for exact comparison. The
    /// latency recorder has no `PartialEq` but is fully determined by
    /// the per-request records.
    #[derive(Debug, PartialEq)]
    struct Fingerprint {
        requests_completed: usize,
        cold_starts: usize,
        requests: Vec<RequestRecord>,
        containers: Vec<ContainerRecord>,
        local_mem: TimeSeries,
        remote_mem: TimeSeries,
        live_containers: TimeSeries,
        pool_stats: PoolStats,
        finished_at: SimTime,
        faults: Option<FaultReport>,
        registry: faasmem_metrics::MetricsRegistry,
        events_processed: u64,
        trace: Vec<TraceEvent>,
    }

    fn fingerprint(report: RunReport, tracer: &Tracer) -> Fingerprint {
        Fingerprint {
            requests_completed: report.requests_completed,
            cold_starts: report.cold_starts,
            requests: report.requests,
            containers: report.containers,
            local_mem: report.local_mem,
            remote_mem: report.remote_mem,
            live_containers: report.live_containers,
            pool_stats: report.pool_stats,
            finished_at: report.finished_at,
            faults: report.faults,
            registry: report.registry,
            events_processed: report.events_processed,
            trace: tracer.take_events(),
        }
    }

    fn chaos_config() -> PlatformConfig {
        PlatformConfig {
            faults: Some(FaultConfig {
                spec: FaultSpec::new(0xC0FFEE)
                    .outages(SimDuration::from_mins(4), SimDuration::from_secs(25))
                    .node_losses(SimDuration::from_mins(15), 0.5)
                    .crashes(SimDuration::from_mins(8)),
                slo: Some(SimDuration::from_secs(2)),
                ..FaultConfig::default()
            }),
            ..Default::default()
        }
    }

    fn drive(
        policy: impl MemoryPolicy + 'static,
        config: PlatformConfig,
        shards: Option<u32>,
    ) -> Fingerprint {
        let spec = BenchmarkSpec::by_name("web").unwrap();
        let trace = TraceSynthesizer::new(7)
            .load_class(LoadClass::High)
            .bursty(true)
            .duration(SimTime::from_mins(12))
            .synthesize_for(FunctionId(0));
        let tracer = Tracer::recording(LayerMask::ALL);
        let mut sim = PlatformSim::builder()
            .register_function(spec)
            .policy(policy)
            .config(config)
            .seed(3)
            .tracer(tracer.clone())
            .build();
        let report = match shards {
            None => sim.run(&trace),
            Some(s) => sim.run_sharded(&trace, &ShardSpec::new(s)),
        };
        fingerprint(report, &tracer)
    }

    #[test]
    fn sharded_run_matches_serial_for_every_shard_count() {
        let serial = drive(OffloadInitPolicy, PlatformConfig::default(), None);
        for shards in [1u32, 2, 3, 4, 7] {
            let sharded = drive(OffloadInitPolicy, PlatformConfig::default(), Some(shards));
            assert_eq!(serial, sharded, "shards={shards} diverged from serial");
        }
    }

    #[test]
    fn sharded_chaos_run_matches_serial() {
        let serial = drive(NullPolicy, chaos_config(), None);
        for shards in [1u32, 2, 4, 7] {
            let sharded = drive(NullPolicy, chaos_config(), Some(shards));
            assert_eq!(serial, sharded, "shards={shards} diverged under chaos");
        }
    }

    #[test]
    fn shard_ledgers_partition_total_pool_traffic() {
        let spec = BenchmarkSpec::by_name("web").unwrap();
        let trace = TraceSynthesizer::new(5)
            .load_class(LoadClass::High)
            .duration(SimTime::from_mins(10))
            .synthesize_for(FunctionId(0));
        let mut sim = PlatformSim::builder()
            .register_function(spec)
            .policy(OffloadInitPolicy)
            .seed(2)
            .build();
        let report = sim.run_sharded(&trace, &ShardSpec::new(3));
        let ledgers = sim.pool_shard_traffic();
        assert_eq!(ledgers.len(), 3);
        assert_eq!(
            ledgers.iter().map(|t| t.bytes_out).sum::<u64>(),
            report.pool_stats.bytes_out
        );
        assert_eq!(
            ledgers.iter().map(|t| t.bytes_in).sum::<u64>(),
            report.pool_stats.bytes_in
        );
        assert_eq!(
            ledgers.iter().map(|t| t.out_ops).sum::<u64>(),
            report.pool_stats.out_ops
        );
        assert_eq!(
            ledgers.iter().map(|t| t.in_ops).sum::<u64>(),
            report.pool_stats.in_ops
        );
    }

    #[test]
    fn control_events_stay_on_shard_zero() {
        assert_eq!(target_shard(&Event::Invoke(9), 4), CONTROL_SHARD);
        assert_eq!(target_shard(&Event::Tick, 4), CONTROL_SHARD);
        assert_eq!(target_shard(&Event::NodeLoss(1), 4), CONTROL_SHARD);
        assert_eq!(target_shard(&Event::PoolNodeLoss(1), 4), CONTROL_SHARD);
        assert_eq!(
            target_shard(&Event::FinishExec(ContainerId(6)), 4),
            2,
            "container events follow their container"
        );
    }
}
