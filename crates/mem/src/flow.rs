//! Page-lifecycle flow accounting.
//!
//! Every page in a container's [`PageTable`](crate::PageTable) moves
//! through a small residency state machine — local DRAM, the remote
//! pool, the freed list — and each transition is one of seven named
//! edges. The table counts every edge exactly once at the mutation
//! site, which gives each state a conservation law: pages that entered
//! a state either left it along a counted edge or are still resident
//! there. A [`FlowMatrix`] aggregates those edge counts across
//! containers (absorbing each table when its container is recycled)
//! and checks the three row-conservation identities, so a missed or
//! double-counted transition anywhere in the platform shows up as a
//! non-zero violation count instead of silently skewing the anatomy.
//!
//! ```text
//!            allocated           offloaded
//!   (fresh) ──────────▶ Local ─────────────▶ Remote
//!                        ▲  ▲                  │
//!                 reused │  └──────────────────┘
//!                        │   recalled_demand /
//!                        │   recalled_prefetch
//!            freed_local ▼                     │ freed_remote
//!                       Freed ◀────────────────┘
//! ```

use crate::table::PageTable;

/// Lifetime page-lifecycle edge counts of one page table.
///
/// Each field counts one edge of the residency state machine; see the
/// module docs for the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PageFlows {
    /// Fresh local pages created (`alloc` without recycling).
    pub allocated: u64,
    /// Freed execution pages recycled back to local.
    pub reused: u64,
    /// Local pages moved out to the remote pool.
    pub offloaded: u64,
    /// Remote pages faulted back in on access (demand recall).
    pub recalled_demand: u64,
    /// Remote pages brought back ahead of demand (prefetch recall).
    pub recalled_prefetch: u64,
    /// Local pages freed.
    pub freed_local: u64,
    /// Remote pages freed (released in the pool without coming back).
    pub freed_remote: u64,
}

impl PageFlows {
    /// Adds every edge of `other` into this count.
    pub fn merge(&mut self, other: &PageFlows) {
        self.allocated += other.allocated;
        self.reused += other.reused;
        self.offloaded += other.offloaded;
        self.recalled_demand += other.recalled_demand;
        self.recalled_prefetch += other.recalled_prefetch;
        self.freed_local += other.freed_local;
        self.freed_remote += other.freed_remote;
    }

    /// Total remote→local recalls, demand plus prefetch.
    pub fn recalled(&self) -> u64 {
        self.recalled_demand + self.recalled_prefetch
    }
}

/// Residency states of the flow matrix, in row order.
pub const FLOW_STATES: [&str; 3] = ["local", "remote", "freed"];

/// One row of the conservation check: pages that entered a state must
/// have left it or still be resident there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowRow {
    /// Residency state name (one of [`FLOW_STATES`]).
    pub state: &'static str,
    /// Pages that entered the state along counted edges.
    pub entered: u64,
    /// Pages that left the state along counted edges.
    pub left: u64,
    /// Pages still resident in the state when their table was absorbed
    /// (or snapshotted).
    pub resident: u64,
}

impl FlowRow {
    /// `true` when the row conserves: `entered == left + resident`.
    pub fn conserves(&self) -> bool {
        self.entered == self.left + self.resident
    }
}

/// Aggregated page-lifecycle flows across many page tables, with the
/// still-resident remainder of each state captured at absorb time.
///
/// `Copy` so it can ride along in a run summary like the waste report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowMatrix {
    /// Summed edge counts of every absorbed table.
    pub flows: PageFlows,
    /// Pages still local when their table was absorbed.
    pub resident_local: u64,
    /// Pages still remote when their table was absorbed.
    pub resident_remote: u64,
    /// Pages still on the freed list when their table was absorbed.
    pub resident_freed: u64,
    /// Tables absorbed.
    pub tables: u64,
}

impl FlowMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one table's flows and current residents into the matrix —
    /// call exactly once per table, at end of life (or at snapshot time
    /// for still-live tables).
    pub fn absorb(&mut self, table: &PageTable) {
        self.flows.merge(&table.flows());
        self.resident_local += table.local_pages();
        self.resident_remote += table.remote_pages();
        self.resident_freed += table.freed_pages();
        self.tables += 1;
    }

    /// The three conservation rows, in [`FLOW_STATES`] order.
    pub fn rows(&self) -> [FlowRow; 3] {
        let f = &self.flows;
        [
            FlowRow {
                state: FLOW_STATES[0],
                entered: f.allocated + f.reused + f.recalled(),
                left: f.offloaded + f.freed_local,
                resident: self.resident_local,
            },
            FlowRow {
                state: FLOW_STATES[1],
                entered: f.offloaded,
                left: f.recalled() + f.freed_remote,
                resident: self.resident_remote,
            },
            FlowRow {
                state: FLOW_STATES[2],
                entered: f.freed_local + f.freed_remote,
                left: f.reused,
                resident: self.resident_freed,
            },
        ]
    }

    /// How many rows fail conservation (zero by contract).
    pub fn row_violations(&self) -> u64 {
        self.rows().iter().filter(|r| !r.conserves()).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PageRange, PageTable, Segment, PAGE_SIZE_4K};

    #[test]
    fn empty_matrix_conserves_trivially() {
        let m = FlowMatrix::new();
        assert_eq!(m.row_violations(), 0);
        assert_eq!(m.tables, 0);
        for row in m.rows() {
            assert_eq!(row.entered, 0);
            assert!(row.conserves());
        }
    }

    #[test]
    fn absorbed_table_rows_conserve_through_a_lifecycle() {
        let mut t = PageTable::new(PAGE_SIZE_4K);
        let runtime = t.alloc(Segment::Runtime, 100);
        let exec = t.alloc(Segment::Execution, 40);
        t.offload_range(runtime); // 100 local -> remote
        t.touch_range(PageRange::new(runtime.start(), 10)); // 10 demand recalls
        t.page_in_range(PageRange::new(runtime.start(), 30)); // 20 prefetch recalls
        t.free_range(exec); // 40 local freed
        let exec2 = t.alloc(Segment::Execution, 15); // 15 reused
        t.offload_range(exec2);
        t.free_range(exec2); // 15 remote freed

        let f = t.flows();
        assert_eq!(f.allocated, 140);
        assert_eq!(f.reused, 15);
        assert_eq!(f.offloaded, 115);
        assert_eq!(f.recalled_demand, 10);
        assert_eq!(f.recalled_prefetch, 20);
        assert_eq!(f.freed_local, 40);
        assert_eq!(f.freed_remote, 15);

        let mut m = FlowMatrix::new();
        m.absorb(&t);
        assert_eq!(m.tables, 1);
        assert_eq!(m.row_violations(), 0);
        let [local, remote, freed] = m.rows();
        assert_eq!(local.entered, 140 + 15 + 30);
        assert_eq!(local.left, 115 + 40);
        assert_eq!(local.resident, t.local_pages());
        assert_eq!(remote.entered, 115);
        assert_eq!(remote.resident, t.remote_pages());
        assert_eq!(freed.entered, 55);
        assert_eq!(freed.left, 15);
        assert_eq!(freed.resident, t.freed_pages());
    }

    #[test]
    fn matrix_merges_across_tables() {
        let mut m = FlowMatrix::new();
        for pages in [10u32, 20, 30] {
            let mut t = PageTable::new(PAGE_SIZE_4K);
            let r = t.alloc(Segment::Init, pages);
            t.offload_range(r);
            m.absorb(&t);
        }
        assert_eq!(m.tables, 3);
        assert_eq!(m.flows.allocated, 60);
        assert_eq!(m.flows.offloaded, 60);
        assert_eq!(m.resident_remote, 60);
        assert_eq!(m.row_violations(), 0);
    }

    #[test]
    fn violation_detected_on_inconsistent_rows() {
        let mut m = FlowMatrix::new();
        m.flows.allocated = 10; // entered local, never left, no residents
        assert_eq!(m.row_violations(), 1);
        m.resident_local = 10;
        assert_eq!(m.row_violations(), 0);
    }

    proptest::proptest! {
        #[test]
        fn prop_flow_rows_conserve_under_random_ops(
            ops in proptest::collection::vec((0u8..6, 1u32..50), 1..150)
        ) {
            // Whatever interleaving of alloc/offload/touch/prefetch/free
            // the platform performs, pages entering each residency state
            // equal pages leaving plus pages still there — the table
            // counts every edge exactly once.
            let mut t = PageTable::new(PAGE_SIZE_4K);
            let mut ranges: Vec<PageRange> = Vec::new();
            for (i, &(op, n)) in ops.iter().enumerate() {
                match op {
                    0 => ranges.push(t.alloc(Segment::ALL[i % 3], n)),
                    1 => {
                        if let Some(&r) = ranges.get(i % ranges.len().max(1)) {
                            t.offload_range(r);
                        }
                    }
                    2 => {
                        if let Some(&r) = ranges.get(i % ranges.len().max(1)) {
                            t.touch_range(r);
                        }
                    }
                    3 => {
                        if let Some(&r) = ranges.get(i % ranges.len().max(1)) {
                            t.page_in_range(r);
                        }
                    }
                    4 => {
                        if let Some(&r) = ranges.get(i % ranges.len().max(1)) {
                            for id in r.iter().take(3) {
                                t.set_in_hot_pool(id, n % 2 == 0);
                            }
                        }
                    }
                    _ => {
                        if !ranges.is_empty() {
                            let r = ranges.swap_remove(i % ranges.len());
                            t.free_range(r);
                        }
                    }
                }
            }
            let mut m = FlowMatrix::new();
            m.absorb(&t);
            proptest::prop_assert_eq!(m.row_violations(), 0);
            let [local, remote, freed] = m.rows();
            proptest::prop_assert_eq!(local.resident, t.local_pages());
            proptest::prop_assert_eq!(remote.resident, t.remote_pages());
            proptest::prop_assert_eq!(freed.resident, t.freed_pages());
            // The incremental hot-local counter matches a metadata recount.
            let hot_recount = t
                .collect_ids(|_, meta| {
                    meta.in_hot_pool() && meta.state() == crate::PageState::Local
                })
                .len() as u64;
            proptest::prop_assert_eq!(t.hot_local_pages(), hot_recount);
        }
    }
}
