#![warn(missing_docs)]

//! Page-level memory model for the FaaSMem reproduction.
//!
//! The paper implements FaaSMem inside the Linux kernel by layering Puckets
//! on the Multi-gen LRU (MGLRU) and porting Fastswap for the remote swap
//! path (§7). This crate reproduces the *kernel-visible state* those
//! mechanisms manipulate, in userspace:
//!
//! * [`PageTable`] — one per container, holding compact per-page metadata:
//!   residency ([`PageState`]), the segment the page was allocated in
//!   ([`Segment`]), the hardware Access bit, and the MGLRU generation.
//! * Generation operations ([`PageTable::create_generation`]) — the MGLRU
//!   interface FaaSMem uses to insert *time barriers*: creating a new
//!   generation means every page allocated afterwards is distinguishable
//!   from every page allocated before.
//! * Access-bit scans ([`PageTable::scan_accessed`]) — the sampling
//!   primitive both FaaSMem's Pucket maintenance and the DAMON baseline
//!   build on.
//! * [`MemStats`] — cgroup-style local/remote byte accounting.
//!
//! Page size is configurable per table (default 4 KiB, like the paper's
//! x86 target); experiments that model multi-gigabyte containers may
//! coarsen it to trade fidelity for speed.
//!
//! # Examples
//!
//! ```
//! use faasmem_mem::{PageTable, Segment, PAGE_SIZE_4K};
//!
//! let mut table = PageTable::new(PAGE_SIZE_4K);
//! let runtime = table.alloc(Segment::Runtime, 1024); // 4 MiB of runtime pages
//! let outcome = table.touch_range(runtime);
//! assert_eq!(outcome.touched, 1024);
//! assert_eq!(outcome.faulted, 0); // all local, no remote faults
//! ```

pub mod flow;
pub mod page;
pub mod reference;
pub mod regions;
pub mod stats;
pub mod table;

pub use flow::{FlowMatrix, FlowRow, PageFlows, FLOW_STATES};
pub use page::{PageId, PageMeta, PageRange, PageState, Segment};
pub use reference::ReferencePageTable;
pub use regions::{Region, RegionConfig, RegionMonitor};
pub use stats::MemStats;
pub use table::{Generation, PageTable, TouchOutcome};

/// The x86 page size the paper's kernel implementation manages.
pub const PAGE_SIZE_4K: u64 = 4096;

/// Bytes in one mebibyte; footprints in the paper are quoted in MB.
pub const MIB: u64 = 1024 * 1024;

/// Converts a number of pages of the given size to mebibytes.
pub fn pages_to_mib(pages: u64, page_size: u64) -> f64 {
    (pages * page_size) as f64 / MIB as f64
}

/// Converts mebibytes to a page count of the given size (rounding up).
pub fn mib_to_pages(mib: u64, page_size: u64) -> u64 {
    (mib * MIB).div_ceil(page_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_roundtrip() {
        assert_eq!(mib_to_pages(1, PAGE_SIZE_4K), 256);
        assert_eq!(pages_to_mib(256, PAGE_SIZE_4K), 1.0);
        assert_eq!(mib_to_pages(100, PAGE_SIZE_4K), 25_600);
    }

    #[test]
    fn mib_to_pages_rounds_up() {
        assert_eq!(mib_to_pages(1, 3 * MIB), 1);
        assert_eq!(mib_to_pages(4, 3 * MIB), 2);
    }
}
