//! Per-page types: identifiers, ranges, segments and compact metadata.

use std::fmt;

/// Index of a page within a container's [`PageTable`](crate::PageTable).
///
/// Page ids are dense and allocation-ordered, which is exactly the
/// property FaaSMem's time barriers rely on: every page allocated before a
/// barrier has a smaller id than every page allocated after it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u32);

impl PageId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

/// A contiguous, allocation-ordered run of pages `[start, start + len)`.
///
/// # Examples
///
/// ```
/// use faasmem_mem::{PageId, PageRange};
///
/// let r = PageRange::new(PageId(10), 4);
/// let ids: Vec<u32> = r.iter().map(|p| p.0).collect();
/// assert_eq!(ids, [10, 11, 12, 13]);
/// assert!(r.contains(PageId(12)));
/// assert!(!r.contains(PageId(14)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageRange {
    start: u32,
    len: u32,
}

impl PageRange {
    /// An empty range at the origin.
    pub const EMPTY: PageRange = PageRange { start: 0, len: 0 };

    /// Creates a range of `len` pages starting at `start`.
    pub const fn new(start: PageId, len: u32) -> Self {
        PageRange {
            start: start.0,
            len,
        }
    }

    /// First page of the range.
    pub const fn start(self) -> PageId {
        PageId(self.start)
    }

    /// One past the last page of the range.
    pub const fn end(self) -> PageId {
        PageId(self.start + self.len)
    }

    /// Number of pages.
    pub const fn len(self) -> u32 {
        self.len
    }

    /// `true` when the range holds no pages.
    pub const fn is_empty(self) -> bool {
        self.len == 0
    }

    /// `true` when `page` falls inside the range.
    pub const fn contains(self, page: PageId) -> bool {
        page.0 >= self.start && page.0 < self.start + self.len
    }

    /// Iterates over the page ids in the range.
    pub fn iter(self) -> impl Iterator<Item = PageId> {
        (self.start..self.start + self.len).map(PageId)
    }

    /// The sub-range formed by the first `n` pages (clamped).
    pub fn take(self, n: u32) -> PageRange {
        PageRange {
            start: self.start,
            len: self.len.min(n),
        }
    }

    /// The sub-range formed by skipping the first `n` pages (clamped).
    pub fn skip(self, n: u32) -> PageRange {
        let n = n.min(self.len);
        PageRange {
            start: self.start + n,
            len: self.len - n,
        }
    }
}

/// The container-lifecycle segment a page was allocated in (paper §3).
///
/// * [`Segment::Runtime`] — pages allocated while the language runtime
///   loads, before user code runs (Segment-1).
/// * [`Segment::Init`] — pages allocated during function initialization:
///   imports, models, caches (Segment-2).
/// * [`Segment::Execution`] — per-request temporaries, freed when the
///   request completes (Segment-3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Segment {
    /// Container-runtime pages (Segment-1).
    Runtime,
    /// Function-initialization pages (Segment-2).
    Init,
    /// Per-request execution pages (Segment-3).
    Execution,
}

impl Segment {
    /// All segments in lifecycle order.
    pub const ALL: [Segment; 3] = [Segment::Runtime, Segment::Init, Segment::Execution];

    /// Stable small index for array-backed per-segment state.
    pub const fn index(self) -> usize {
        match self {
            Segment::Runtime => 0,
            Segment::Init => 1,
            Segment::Execution => 2,
        }
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Segment::Runtime => "runtime",
            Segment::Init => "init",
            Segment::Execution => "execution",
        };
        f.write_str(name)
    }
}

/// Residency of a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageState {
    /// Backed by local DRAM on the compute node.
    Local,
    /// Swapped out to the remote memory pool; access triggers a fault.
    Remote,
    /// Returned to the allocator (execution-segment pages after a request).
    Freed,
}

const STATE_LOCAL: u8 = 0;
const STATE_REMOTE: u8 = 1;
const STATE_FREED: u8 = 2;
const STATE_MASK: u8 = 0b0000_0011;
const FLAG_ACCESSED: u8 = 0b0000_0100;
const FLAG_HOT_POOL: u8 = 0b0000_1000;
const FLAG_FAULTED: u8 = 0b0100_0000;
const SEG_SHIFT: u8 = 4;
const SEG_MASK: u8 = 0b0011_0000;

/// Compact per-page metadata: 8 bytes per page.
///
/// Packs residency state, the simulated Access bit, hot-page-pool
/// membership and the segment into one byte, plus the MGLRU generation
/// number, a 16-bit access counter used by sampling policies, and an
/// idle-scan counter (how many consecutive aging scans found the page
/// untouched) used by the DAMON-style baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageMeta {
    flags: u8,
    idle_scans: u8,
    access_count: u16,
    generation: u32,
}

impl PageMeta {
    /// A freshly allocated local page in `segment` and `generation`.
    pub fn new(segment: Segment, generation: u32) -> Self {
        PageMeta {
            flags: STATE_LOCAL | ((segment.index() as u8) << SEG_SHIFT),
            idle_scans: 0,
            access_count: 0,
            generation,
        }
    }

    /// Assembles a snapshot from the table's column-oriented storage.
    /// The table keeps flags in bitmaps and the rest in dense columns;
    /// this reconstitutes the value-type view callers see via
    /// [`PageTable::meta`](crate::PageTable::meta).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        state: PageState,
        segment: Segment,
        accessed: bool,
        in_hot_pool: bool,
        recently_faulted: bool,
        idle_scans: u8,
        access_count: u16,
        generation: u32,
    ) -> Self {
        let state_bits = match state {
            PageState::Local => STATE_LOCAL,
            PageState::Remote => STATE_REMOTE,
            PageState::Freed => STATE_FREED,
        };
        let mut flags = state_bits | ((segment.index() as u8) << SEG_SHIFT);
        if accessed {
            flags |= FLAG_ACCESSED;
        }
        if in_hot_pool {
            flags |= FLAG_HOT_POOL;
        }
        if recently_faulted {
            flags |= FLAG_FAULTED;
        }
        PageMeta {
            flags,
            idle_scans,
            access_count,
            generation,
        }
    }

    /// Residency state.
    pub fn state(self) -> PageState {
        match self.flags & STATE_MASK {
            STATE_LOCAL => PageState::Local,
            STATE_REMOTE => PageState::Remote,
            _ => PageState::Freed,
        }
    }

    pub(crate) fn set_state(&mut self, state: PageState) {
        let bits = match state {
            PageState::Local => STATE_LOCAL,
            PageState::Remote => STATE_REMOTE,
            PageState::Freed => STATE_FREED,
        };
        self.flags = (self.flags & !STATE_MASK) | bits;
    }

    /// Which lifecycle segment the page was allocated in.
    pub fn segment(self) -> Segment {
        match (self.flags & SEG_MASK) >> SEG_SHIFT {
            0 => Segment::Runtime,
            1 => Segment::Init,
            _ => Segment::Execution,
        }
    }

    /// The simulated hardware Access bit.
    pub fn accessed(self) -> bool {
        self.flags & FLAG_ACCESSED != 0
    }

    pub(crate) fn set_accessed(&mut self, on: bool) {
        if on {
            self.flags |= FLAG_ACCESSED;
        } else {
            self.flags &= !FLAG_ACCESSED;
        }
    }

    /// Whether the page currently sits in FaaSMem's shared hot page pool.
    pub fn in_hot_pool(self) -> bool {
        self.flags & FLAG_HOT_POOL != 0
    }

    pub(crate) fn set_in_hot_pool(&mut self, on: bool) {
        if on {
            self.flags |= FLAG_HOT_POOL;
        } else {
            self.flags &= !FLAG_HOT_POOL;
        }
    }

    /// MGLRU generation the page belongs to.
    pub fn generation(self) -> u32 {
        self.generation
    }

    pub(crate) fn set_generation(&mut self, generation: u32) {
        self.generation = generation;
    }

    /// Saturating lifetime access counter (used by sampling baselines).
    pub fn access_count(self) -> u16 {
        self.access_count
    }

    pub(crate) fn bump_access_count(&mut self) {
        self.access_count = self.access_count.saturating_add(1);
    }

    pub(crate) fn reset_access_count(&mut self) {
        self.access_count = 0;
    }

    /// `true` if the page was faulted back from remote memory since the
    /// last Access-bit scan — the "recall" signal Fig 8 counts.
    pub fn recently_faulted(self) -> bool {
        self.flags & FLAG_FAULTED != 0
    }

    pub(crate) fn set_recently_faulted(&mut self, on: bool) {
        if on {
            self.flags |= FLAG_FAULTED;
        } else {
            self.flags &= !FLAG_FAULTED;
        }
    }

    /// Consecutive aging scans that found this page untouched.
    pub fn idle_scans(self) -> u8 {
        self.idle_scans
    }

    pub(crate) fn bump_idle_scans(&mut self) {
        self.idle_scans = self.idle_scans.saturating_add(1);
    }

    pub(crate) fn reset_idle_scans(&mut self) {
        self.idle_scans = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_iteration_and_bounds() {
        let r = PageRange::new(PageId(5), 3);
        assert_eq!(r.len(), 3);
        assert_eq!(r.start(), PageId(5));
        assert_eq!(r.end(), PageId(8));
        assert!(!r.is_empty());
        assert_eq!(r.iter().count(), 3);
        assert!(r.contains(PageId(5)));
        assert!(r.contains(PageId(7)));
        assert!(!r.contains(PageId(8)));
        assert!(!r.contains(PageId(4)));
    }

    #[test]
    fn empty_range() {
        assert!(PageRange::EMPTY.is_empty());
        assert_eq!(PageRange::EMPTY.iter().count(), 0);
        assert!(!PageRange::EMPTY.contains(PageId(0)));
    }

    #[test]
    fn take_and_skip_partition() {
        let r = PageRange::new(PageId(0), 10);
        let head = r.take(4);
        let tail = r.skip(4);
        assert_eq!(head.len(), 4);
        assert_eq!(tail.len(), 6);
        assert_eq!(head.end(), tail.start());
        assert_eq!(r.take(100).len(), 10);
        assert!(r.skip(100).is_empty());
    }

    #[test]
    fn meta_roundtrips_every_field() {
        for seg in Segment::ALL {
            let mut m = PageMeta::new(seg, 7);
            assert_eq!(m.segment(), seg);
            assert_eq!(m.state(), PageState::Local);
            assert_eq!(m.generation(), 7);
            assert!(!m.accessed());
            assert!(!m.in_hot_pool());

            m.set_state(PageState::Remote);
            m.set_accessed(true);
            m.set_in_hot_pool(true);
            m.set_generation(9);
            m.bump_access_count();
            assert_eq!(m.state(), PageState::Remote);
            assert_eq!(m.segment(), seg); // untouched by other setters
            assert!(m.accessed());
            assert!(m.in_hot_pool());
            assert_eq!(m.generation(), 9);
            assert_eq!(m.access_count(), 1);

            m.set_state(PageState::Freed);
            m.set_accessed(false);
            m.set_in_hot_pool(false);
            m.reset_access_count();
            assert_eq!(m.state(), PageState::Freed);
            assert!(!m.accessed());
            assert!(!m.in_hot_pool());
            assert_eq!(m.access_count(), 0);
        }
    }

    #[test]
    fn access_count_saturates() {
        let mut m = PageMeta::new(Segment::Init, 0);
        for _ in 0..100_000 {
            m.bump_access_count();
        }
        assert_eq!(m.access_count(), u16::MAX);
    }

    #[test]
    fn meta_is_compact() {
        assert!(std::mem::size_of::<PageMeta>() <= 8);
    }

    #[test]
    fn segment_indices_are_stable() {
        assert_eq!(Segment::Runtime.index(), 0);
        assert_eq!(Segment::Init.index(), 1);
        assert_eq!(Segment::Execution.index(), 2);
        assert_eq!(Segment::ALL.len(), 3);
    }
}
