//! A naive per-page reference model of the page table.
//!
//! [`ReferencePageTable`] keeps one [`PageMeta`] per page in a plain
//! `Vec` and walks it a page at a time — exactly the layout the table
//! used before the bitmap/SoA rework (DESIGN § data layout). It exists
//! for two reasons:
//!
//! * **Equivalence testing.** The property test below drives a
//!   [`PageTable`] and a reference table through the same random
//!   alloc/free/touch/offload/scan interleavings and asserts every
//!   observable output matches: returned ids (values *and* order),
//!   per-page metadata, counters, histograms, and — for sampled aging —
//!   the coin-draw sequence. This is what lets the word-wise bitmap
//!   path claim byte-identical simulation results.
//! * **Benchmarking.** `bench_mem` measures scan throughput against
//!   this model to report the speedup of the data-oriented layout.
//!
//! The reference deliberately emits no trace events and performs no
//! recycling of its scratch vectors; it is the simplest correct
//! implementation, not a fast one.

use crate::page::{PageId, PageMeta, PageRange, PageState, Segment};
use crate::table::{Generation, TouchOutcome};

/// Naive per-page implementation of the [`crate::PageTable`] semantics.
#[derive(Debug, Clone)]
pub struct ReferencePageTable {
    page_size: u64,
    pages: Vec<PageMeta>,
    current_gen: u32,
    free_exec: Vec<PageRange>,
    local_pages: u64,
    remote_pages: u64,
    freed_pages: u64,
    local_by_segment: [u64; 3],
    total_offloaded: u64,
    total_faulted: u64,
}

impl ReferencePageTable {
    /// Creates an empty table with the given page size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero.
    pub fn new(page_size: u64) -> Self {
        assert!(page_size > 0, "page size must be positive");
        ReferencePageTable {
            page_size,
            pages: Vec::new(),
            current_gen: 0,
            free_exec: Vec::new(),
            local_pages: 0,
            remote_pages: 0,
            freed_pages: 0,
            local_by_segment: [0; 3],
            total_offloaded: 0,
            total_faulted: 0,
        }
    }

    /// Bytes per page.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Total pages ever allocated (including freed slots awaiting reuse).
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// `true` when no pages have been allocated.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// The generation newly allocated pages are tagged with.
    pub fn current_generation(&self) -> Generation {
        Generation(self.current_gen)
    }

    /// Starts a new MGLRU generation and returns it.
    pub fn create_generation(&mut self) -> Generation {
        self.current_gen += 1;
        Generation(self.current_gen)
    }

    /// Allocates `count` local pages in `segment`, recycling freed
    /// execution ranges when possible.
    pub fn alloc(&mut self, segment: Segment, count: u32) -> PageRange {
        if count == 0 {
            return PageRange::EMPTY;
        }
        if segment == Segment::Execution {
            if let Some(range) = self.take_free_exec(count) {
                for id in range.iter() {
                    let gen = self.current_gen;
                    let meta = &mut self.pages[id.index()];
                    debug_assert_eq!(meta.state(), PageState::Freed);
                    *meta = PageMeta::new(Segment::Execution, gen);
                }
                self.freed_pages -= u64::from(range.len());
                self.local_pages += u64::from(range.len());
                self.local_by_segment[Segment::Execution.index()] += u64::from(range.len());
                return range;
            }
        }
        let start = PageId(self.pages.len() as u32);
        self.pages.extend(std::iter::repeat_n(
            PageMeta::new(segment, self.current_gen),
            count as usize,
        ));
        self.local_pages += u64::from(count);
        self.local_by_segment[segment.index()] += u64::from(count);
        PageRange::new(start, count)
    }

    fn take_free_exec(&mut self, count: u32) -> Option<PageRange> {
        let pos = self.free_exec.iter().rposition(|r| r.len() >= count)?;
        let range = self.free_exec[pos];
        let taken = range.take(count);
        let rest = range.skip(count);
        if rest.is_empty() {
            self.free_exec.swap_remove(pos);
        } else {
            self.free_exec[pos] = rest;
        }
        Some(taken)
    }

    /// Metadata for one page.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never allocated.
    pub fn meta(&self, id: PageId) -> PageMeta {
        self.pages[id.index()]
    }

    /// Touches one page; returns `true` if it faulted back from remote.
    pub fn touch(&mut self, id: PageId) -> bool {
        let meta = &mut self.pages[id.index()];
        match meta.state() {
            PageState::Freed => false,
            PageState::Local => {
                meta.set_accessed(true);
                meta.bump_access_count();
                false
            }
            PageState::Remote => {
                meta.set_accessed(true);
                meta.bump_access_count();
                meta.set_state(PageState::Local);
                meta.set_recently_faulted(true);
                let seg = meta.segment();
                self.remote_pages -= 1;
                self.local_pages += 1;
                self.local_by_segment[seg.index()] += 1;
                self.total_faulted += 1;
                true
            }
        }
    }

    /// Touches every page of a range.
    pub fn touch_range(&mut self, range: PageRange) -> TouchOutcome {
        let mut out = TouchOutcome::default();
        for id in range.iter() {
            if self.pages[id.index()].state() == PageState::Freed {
                continue;
            }
            out.touched += 1;
            if self.touch(id) {
                out.faulted += 1;
            }
        }
        out
    }

    /// Brings one remote page local without marking it accessed.
    pub fn prefetch(&mut self, id: PageId) -> bool {
        let meta = &mut self.pages[id.index()];
        if meta.state() != PageState::Remote {
            return false;
        }
        meta.set_state(PageState::Local);
        let seg = meta.segment();
        self.remote_pages -= 1;
        self.local_pages += 1;
        self.local_by_segment[seg.index()] += 1;
        true
    }

    /// Brings every remote page of `range` local; returns how many moved.
    pub fn page_in_range(&mut self, range: PageRange) -> u32 {
        range.iter().filter(|&id| self.prefetch(id)).count() as u32
    }

    /// Moves one local page to the remote pool.
    pub fn offload(&mut self, id: PageId) -> bool {
        let meta = &mut self.pages[id.index()];
        if meta.state() != PageState::Local {
            return false;
        }
        meta.set_state(PageState::Remote);
        let seg = meta.segment();
        self.local_pages -= 1;
        self.local_by_segment[seg.index()] -= 1;
        self.remote_pages += 1;
        self.total_offloaded += 1;
        true
    }

    /// Offloads every local page in `range`; returns how many moved.
    pub fn offload_range(&mut self, range: PageRange) -> u32 {
        range.iter().filter(|&id| self.offload(id)).count() as u32
    }

    /// Frees a range; the pages become available for execution reuse.
    pub fn free_range(&mut self, range: PageRange) {
        if range.is_empty() {
            return;
        }
        for id in range.iter() {
            let meta = &mut self.pages[id.index()];
            match meta.state() {
                PageState::Local => {
                    self.local_pages -= 1;
                    self.local_by_segment[meta.segment().index()] -= 1;
                }
                PageState::Remote => {
                    self.remote_pages -= 1;
                }
                PageState::Freed => continue,
            }
            meta.set_state(PageState::Freed);
            meta.set_accessed(false);
            meta.set_in_hot_pool(false);
            self.freed_pages += 1;
        }
        self.free_exec.push(range);
    }

    /// Scans and clears the Access bits; returns the accessed ids.
    pub fn scan_accessed(&mut self) -> Vec<PageId> {
        self.scan_accessed_with_faults()
            .into_iter()
            .map(|(id, _)| id)
            .collect()
    }

    /// Scan variant also reporting the recently-faulted flag per hit.
    pub fn scan_accessed_with_faults(&mut self) -> Vec<(PageId, bool)> {
        let mut hits = Vec::new();
        for (i, meta) in self.pages.iter_mut().enumerate() {
            if meta.state() == PageState::Freed {
                continue;
            }
            if meta.accessed() {
                hits.push((PageId(i as u32), meta.recently_faulted()));
                meta.set_accessed(false);
            }
            meta.set_recently_faulted(false);
        }
        hits
    }

    /// One exact aging scan; returns local pages at the idle threshold.
    pub fn age_and_collect_idle(&mut self, idle_threshold: u8) -> Vec<PageId> {
        let mut cold = Vec::new();
        for (i, meta) in self.pages.iter_mut().enumerate() {
            if meta.state() == PageState::Freed {
                continue;
            }
            if meta.accessed() {
                meta.set_accessed(false);
                meta.reset_idle_scans();
            } else {
                meta.bump_idle_scans();
                if meta.idle_scans() >= idle_threshold && meta.state() == PageState::Local {
                    cold.push(PageId(i as u32));
                }
            }
        }
        cold
    }

    /// One sampled aging scan; `coin` is flipped once per accessed page
    /// in ascending page order.
    ///
    /// # Panics
    ///
    /// Panics if `sample_prob` is not in `(0, 1]`.
    pub fn age_and_collect_idle_sampled<F: FnMut() -> f64>(
        &mut self,
        idle_threshold: u8,
        sample_prob: f64,
        mut coin: F,
    ) -> Vec<PageId> {
        assert!(
            sample_prob > 0.0 && sample_prob <= 1.0,
            "sample probability {sample_prob} out of range"
        );
        let mut cold = Vec::new();
        for (i, meta) in self.pages.iter_mut().enumerate() {
            if meta.state() == PageState::Freed {
                continue;
            }
            let observed_access = meta.accessed() && coin() < sample_prob;
            if meta.accessed() {
                meta.set_accessed(false);
            }
            if observed_access {
                meta.reset_idle_scans();
            } else {
                meta.bump_idle_scans();
                if meta.idle_scans() >= idle_threshold && meta.state() == PageState::Local {
                    cold.push(PageId(i as u32));
                }
            }
        }
        cold
    }

    /// Collects ids of live pages matching a predicate.
    pub fn collect_ids<F: Fn(PageId, PageMeta) -> bool>(&self, pred: F) -> Vec<PageId> {
        self.pages
            .iter()
            .enumerate()
            .filter_map(|(i, &m)| {
                let id = PageId(i as u32);
                (m.state() != PageState::Freed && pred(id, m)).then_some(id)
            })
            .collect()
    }

    /// Marks hot-page-pool membership for one page.
    pub fn set_in_hot_pool(&mut self, id: PageId, on: bool) {
        self.pages[id.index()].set_in_hot_pool(on);
    }

    /// Clears hot-pool membership on every live local page; returns how
    /// many were cleared.
    pub fn clear_local_hot_pool(&mut self) -> u32 {
        let mut cleared = 0u32;
        for meta in &mut self.pages {
            if meta.state() == PageState::Local && meta.in_hot_pool() {
                meta.set_in_hot_pool(false);
                cleared += 1;
            }
        }
        cleared
    }

    /// Reassigns a page's generation.
    pub fn set_generation(&mut self, id: PageId, generation: Generation) {
        self.pages[id.index()].set_generation(generation.0);
    }

    /// Clears the lifetime access counter of a page.
    pub fn reset_access_count(&mut self, id: PageId) {
        self.pages[id.index()].reset_access_count();
    }

    /// O(pages) live-page age histogram (see
    /// [`crate::PageTable::generation_age_histogram`]).
    pub fn generation_age_histogram(&self, buckets: usize) -> Vec<u64> {
        assert!(buckets > 0, "histogram needs at least one bucket");
        let mut hist = vec![0u64; buckets];
        for meta in &self.pages {
            if meta.state() == PageState::Freed {
                continue;
            }
            let age = self.current_gen.saturating_sub(meta.generation()) as usize;
            hist[age.min(buckets - 1)] += 1;
        }
        hist
    }

    /// Pages currently resident in local DRAM.
    pub fn local_pages(&self) -> u64 {
        self.local_pages
    }

    /// Pages currently swapped out to the remote pool.
    pub fn remote_pages(&self) -> u64 {
        self.remote_pages
    }

    /// Pages in the freed state awaiting reuse.
    pub fn freed_pages(&self) -> u64 {
        self.freed_pages
    }

    /// Local pages belonging to `segment`.
    pub fn local_pages_in(&self, segment: Segment) -> u64 {
        self.local_by_segment[segment.index()]
    }

    /// Lifetime count of pages offloaded to the pool.
    pub fn total_offloaded(&self) -> u64 {
        self.total_offloaded
    }

    /// Lifetime count of remote pages faulted back in.
    pub fn total_faulted(&self) -> u64 {
        self.total_faulted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PageTable, PAGE_SIZE_4K};

    /// Deterministic coin stream for sampled-aging comparisons: both
    /// tables get an identical sequence, so any divergence in *when*
    /// coins are drawn shows up as diverging outputs.
    struct Coin(u64);

    impl Coin {
        fn next(&mut self) -> f64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            (x >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn assert_same_observables(new: &PageTable, reference: &ReferencePageTable) {
        assert_eq!(new.len(), reference.len());
        assert_eq!(new.local_pages(), reference.local_pages());
        assert_eq!(new.remote_pages(), reference.remote_pages());
        assert_eq!(new.freed_pages(), reference.freed_pages());
        assert_eq!(new.total_offloaded(), reference.total_offloaded());
        assert_eq!(new.total_faulted(), reference.total_faulted());
        for seg in Segment::ALL {
            assert_eq!(new.local_pages_in(seg), reference.local_pages_in(seg));
        }
        for i in 0..reference.len() {
            let id = PageId(i as u32);
            assert_eq!(new.meta(id), reference.meta(id), "page {i} diverged");
        }
        for buckets in [1, 3, 7] {
            assert_eq!(
                new.generation_age_histogram(buckets),
                reference.generation_age_histogram(buckets),
                "histogram with {buckets} buckets diverged"
            );
        }
    }

    proptest::proptest! {
        // The bitmap/SoA table is observably equivalent to the naive
        // per-page model: same returned ids in the same (ascending)
        // order, same idle counters and flags, same accounting — across
        // random alloc/free/touch/offload/scan/age interleavings.
        #[test]
        fn prop_bitmap_path_matches_reference(
            ops in proptest::collection::vec(0u32..70_000, 1..90),
        ) {
            let mut new = PageTable::new(PAGE_SIZE_4K);
            let mut reference = ReferencePageTable::new(PAGE_SIZE_4K);
            let mut ranges: Vec<PageRange> = Vec::new();
            let mut coin_seed = 0x5EED_0001u64;
            for (i, &v) in ops.iter().enumerate() {
                let arg = v / 10;
                match v % 10 {
                    0 => {
                        // Allocations cross word boundaries on purpose:
                        // up to 80 pages lands mid-word more often than
                        // not.
                        let seg = Segment::ALL[arg as usize % 3];
                        let count = arg % 80 + 1;
                        let a = new.alloc(seg, count);
                        let b = reference.alloc(seg, count);
                        proptest::prop_assert_eq!(a, b);
                        ranges.push(a);
                    }
                    1 => {
                        if !ranges.is_empty() {
                            let r = ranges.swap_remove(arg as usize % ranges.len());
                            new.free_range(r);
                            reference.free_range(r);
                        }
                    }
                    2 => {
                        if let Some(&r) = ranges.get(arg as usize % ranges.len().max(1)) {
                            proptest::prop_assert_eq!(
                                new.touch_range(r),
                                reference.touch_range(r)
                            );
                        }
                    }
                    3 => {
                        if let Some(&r) = ranges.get(arg as usize % ranges.len().max(1)) {
                            proptest::prop_assert_eq!(
                                new.offload_range(r),
                                reference.offload_range(r)
                            );
                        }
                    }
                    4 => {
                        if let Some(&r) = ranges.get(arg as usize % ranges.len().max(1)) {
                            proptest::prop_assert_eq!(
                                new.page_in_range(r),
                                reference.page_in_range(r)
                            );
                        }
                    }
                    5 => {
                        proptest::prop_assert_eq!(
                            new.scan_accessed_with_faults(),
                            reference.scan_accessed_with_faults()
                        );
                    }
                    6 => {
                        let thr = (arg % 3 + 1) as u8;
                        proptest::prop_assert_eq!(
                            new.age_and_collect_idle(thr),
                            reference.age_and_collect_idle(thr)
                        );
                    }
                    7 => {
                        // Twin coin streams: equality of the collected
                        // ids implies the draw sequences stayed aligned.
                        let thr = (arg % 3 + 1) as u8;
                        let prob = 0.35 + f64::from(arg % 50) / 100.0;
                        let mut c1 = Coin(coin_seed);
                        let mut c2 = Coin(coin_seed);
                        coin_seed = coin_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
                        let a = new.age_and_collect_idle_sampled(thr, prob, || c1.next());
                        let b = reference.age_and_collect_idle_sampled(thr, prob, || c2.next());
                        proptest::prop_assert_eq!(a, b);
                        proptest::prop_assert_eq!(c1.0, c2.0, "coin draw counts diverged");
                    }
                    8 => {
                        if !new.is_empty() {
                            let id = PageId(arg % new.len() as u32);
                            let on = i % 2 == 0;
                            new.set_in_hot_pool(id, on);
                            reference.set_in_hot_pool(id, on);
                        } else {
                            proptest::prop_assert_eq!(
                                new.clear_local_hot_pool(),
                                reference.clear_local_hot_pool()
                            );
                        }
                        if i % 5 == 0 {
                            proptest::prop_assert_eq!(
                                new.clear_local_hot_pool(),
                                reference.clear_local_hot_pool()
                            );
                        }
                    }
                    _ => {
                        if i % 4 == 0 {
                            let g = new.create_generation();
                            proptest::prop_assert_eq!(g, reference.create_generation());
                        } else if !new.is_empty() {
                            let id = PageId(arg % new.len() as u32);
                            let g = Generation(arg % (new.current_generation().0 + 1));
                            new.set_generation(id, g);
                            reference.set_generation(id, g);
                        }
                    }
                }
            }
            assert_same_observables(&new, &reference);
        }
    }

    #[test]
    fn reference_and_table_agree_on_a_worked_example() {
        let mut n = PageTable::new(PAGE_SIZE_4K);
        let mut r = ReferencePageTable::new(PAGE_SIZE_4K);
        n.alloc(Segment::Runtime, 100);
        r.alloc(Segment::Runtime, 100);
        n.create_generation();
        r.create_generation();
        let e1 = n.alloc(Segment::Execution, 30);
        assert_eq!(e1, r.alloc(Segment::Execution, 30));
        assert_eq!(
            n.offload_range(PageRange::new(PageId(10), 50)),
            r.offload_range(PageRange::new(PageId(10), 50))
        );
        assert_eq!(
            n.touch_range(PageRange::new(PageId(0), 70)),
            r.touch_range(PageRange::new(PageId(0), 70))
        );
        n.free_range(e1);
        r.free_range(e1);
        assert_eq!(n.scan_accessed_with_faults(), r.scan_accessed_with_faults());
        assert_eq!(n.age_and_collect_idle(1), r.age_and_collect_idle(1));
        assert_same_observables(&n, &r);
    }
}
