//! A DAMON-style region monitor.
//!
//! The real DAMON does not track every page: it partitions an address
//! space into *regions*, samples one random page per region per sampling
//! interval to estimate the whole region's hotness, and adaptively
//! *splits* regions whose halves behave differently while *merging*
//! adjacent regions with similar access counts. That design caps the
//! monitoring overhead regardless of memory size — and is also why DAMON
//! misclassifies: a region's estimate comes from sampling, not ground
//! truth.
//!
//! [`RegionMonitor`] reproduces that machinery over a [`PageTable`]. The
//! DAMON baseline policy can run either on exact Access-bit scans (the
//! `age_and_collect_idle` fast path) or on this region monitor for full
//! fidelity to DAMON's accuracy characteristics.

use crate::page::{PageId, PageState};
use crate::table::PageTable;

/// One monitored region: a contiguous page range with an access estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First page of the region.
    pub start: u32,
    /// Pages in the region.
    pub len: u32,
    /// Sampling hits in the current aggregation window.
    pub nr_accesses: u32,
    /// Consecutive aggregation windows with zero estimated accesses.
    pub age_idle: u32,
}

impl Region {
    /// The page id one past the region's end.
    pub fn end(&self) -> u32 {
        self.start + self.len
    }
}

/// Configuration of the region monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionConfig {
    /// Minimum number of regions to maintain.
    pub min_regions: u32,
    /// Maximum number of regions (caps monitoring overhead).
    pub max_regions: u32,
    /// Samples taken per region per aggregation window.
    pub samples_per_region: u32,
    /// Merge adjacent regions whose access counts differ by at most this.
    pub merge_threshold: u32,
}

impl Default for RegionConfig {
    fn default() -> Self {
        RegionConfig {
            min_regions: 10,
            max_regions: 100,
            samples_per_region: 3,
            merge_threshold: 1,
        }
    }
}

/// DAMON-style adaptive region monitoring over one page table.
///
/// # Examples
///
/// ```
/// use faasmem_mem::{PageTable, RegionMonitor, RegionConfig, Segment, PAGE_SIZE_4K};
///
/// let mut table = PageTable::new(PAGE_SIZE_4K);
/// let range = table.alloc(Segment::Init, 1000);
/// let mut monitor = RegionMonitor::new(RegionConfig::default());
/// table.touch_range(range.take(100)); // hot head
/// let mut draw = 0u64;
/// monitor.aggregate(&mut table, || { draw += 7; (draw % 97) as f64 / 97.0 });
/// assert!(monitor.regions().len() >= 10);
/// ```
#[derive(Debug, Clone)]
pub struct RegionMonitor {
    config: RegionConfig,
    regions: Vec<Region>,
    monitored_pages: u32,
}

impl RegionMonitor {
    /// Creates a monitor; regions are initialised lazily from the table
    /// on the first aggregation.
    pub fn new(config: RegionConfig) -> Self {
        assert!(config.min_regions >= 1, "need at least one region");
        assert!(config.max_regions >= config.min_regions, "max < min");
        RegionMonitor {
            config,
            regions: Vec::new(),
            monitored_pages: 0,
        }
    }

    /// Current regions.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    fn init_regions(&mut self, total_pages: u32) {
        self.monitored_pages = total_pages;
        self.regions.clear();
        let n = self.config.min_regions.min(total_pages.max(1));
        let base = total_pages / n;
        let mut start = 0;
        for i in 0..n {
            let len = if i == n - 1 {
                total_pages - start
            } else {
                base
            };
            if len > 0 {
                self.regions.push(Region {
                    start,
                    len,
                    nr_accesses: 0,
                    age_idle: 0,
                });
            }
            start += len;
        }
    }

    /// One aggregation window: samples each region's Access bits (via the
    /// supplied uniform `coin` in `[0,1)`), updates estimates, then
    /// splits/merges. Consumes the table's Access bits.
    pub fn aggregate<F: FnMut() -> f64>(&mut self, table: &mut PageTable, mut coin: F) {
        let total_pages = table.len() as u32;
        if total_pages == 0 {
            return;
        }
        if self.regions.is_empty() || self.monitored_pages != total_pages {
            self.init_regions(total_pages);
        }
        // Sample: for each region, probe `samples_per_region` pages.
        for region in &mut self.regions {
            let mut hits = 0;
            for _ in 0..self.config.samples_per_region {
                let offset = (coin() * f64::from(region.len)) as u32;
                let id = PageId(region.start + offset.min(region.len - 1));
                let meta = table.meta(id);
                if meta.state() != PageState::Freed && meta.accessed() {
                    hits += 1;
                }
            }
            region.nr_accesses = hits;
            if hits == 0 {
                region.age_idle += 1;
            } else {
                region.age_idle = 0;
            }
        }
        // The window is over: clear all Access bits (DAMON's PTE reset).
        table.clear_accessed();
        self.split(&mut coin);
        self.merge();
    }

    /// Splits each region in two at a random point, while under the
    /// region budget — DAMON's mechanism for discovering sub-region
    /// behaviour differences in the next window.
    fn split<F: FnMut() -> f64>(&mut self, coin: &mut F) {
        if self.regions.len() * 2 > self.config.max_regions as usize {
            return;
        }
        let mut out = Vec::with_capacity(self.regions.len() * 2);
        for r in &self.regions {
            if r.len < 2 {
                out.push(*r);
                continue;
            }
            let cut = 1 + (coin() * f64::from(r.len - 1)) as u32;
            let cut = cut.min(r.len - 1);
            out.push(Region {
                start: r.start,
                len: cut,
                ..*r
            });
            out.push(Region {
                start: r.start + cut,
                len: r.len - cut,
                ..*r
            });
        }
        self.regions = out;
    }

    /// Merges adjacent regions with similar access estimates, keeping at
    /// least `min_regions`.
    fn merge(&mut self) {
        let mut budget = self
            .regions
            .len()
            .saturating_sub(self.config.min_regions as usize);
        let mut merged: Vec<Region> = Vec::with_capacity(self.regions.len());
        for r in self.regions.iter().copied() {
            let mergeable = budget > 0
                && merged.last().is_some_and(|prev| {
                    prev.end() == r.start
                        && prev.nr_accesses.abs_diff(r.nr_accesses) <= self.config.merge_threshold
                });
            if mergeable {
                let prev = merged.last_mut().expect("checked non-empty");
                prev.len += r.len;
                prev.nr_accesses = prev.nr_accesses.max(r.nr_accesses);
                prev.age_idle = prev.age_idle.min(r.age_idle);
                budget -= 1;
            } else {
                merged.push(r);
            }
        }
        self.regions = merged;
    }

    /// Pages of regions whose idle age reached `idle_threshold` — the
    /// cold candidates a DAMON_RECLAIM-style policy offloads. Only local
    /// pages are returned.
    pub fn cold_pages(&self, table: &PageTable, idle_threshold: u32) -> Vec<PageId> {
        let mut out = Vec::new();
        self.cold_pages_into(table, idle_threshold, &mut out);
        out
    }

    /// Allocation-free variant of [`RegionMonitor::cold_pages`]: clears
    /// `out` and fills it in ascending page order.
    pub fn cold_pages_into(&self, table: &PageTable, idle_threshold: u32, out: &mut Vec<PageId>) {
        out.clear();
        for region in &self.regions {
            if region.age_idle < idle_threshold {
                continue;
            }
            let range = crate::PageRange::new(PageId(region.start), region.len);
            table.append_local_in_range(range, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Segment, PAGE_SIZE_4K};

    /// A deterministic coin for tests.
    fn coin_stream() -> impl FnMut() -> f64 {
        let mut x = 0x2545F491u64;
        move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % 10_000) as f64 / 10_000.0
        }
    }

    fn table_with(pages: u32) -> PageTable {
        let mut t = PageTable::new(PAGE_SIZE_4K);
        t.alloc(Segment::Init, pages);
        t
    }

    #[test]
    fn regions_cover_table_exactly() {
        let mut t = table_with(1000);
        let mut m = RegionMonitor::new(RegionConfig::default());
        let mut coin = coin_stream();
        m.aggregate(&mut t, &mut coin);
        for _ in 0..10 {
            m.aggregate(&mut t, &mut coin);
            // Invariant: regions tile [0, pages) without gaps/overlaps.
            let mut expected = 0;
            for r in m.regions() {
                assert_eq!(r.start, expected, "gap/overlap at {expected}");
                expected = r.end();
            }
            assert_eq!(expected, 1000);
            assert!(m.regions().len() <= 100);
        }
    }

    #[test]
    fn hot_head_is_distinguished_from_cold_tail() {
        let mut t = table_with(1000);
        let mut m = RegionMonitor::new(RegionConfig::default());
        let mut coin = coin_stream();
        let hot = crate::PageRange::new(PageId(0), 200);
        for _ in 0..8 {
            t.touch_range(hot);
            m.aggregate(&mut t, &mut coin);
        }
        // Regions wholly in the hot head should carry accesses; regions
        // deep in the tail should be idle-aged.
        let head_access: u32 = m
            .regions()
            .iter()
            .filter(|r| r.end() <= 200)
            .map(|r| r.nr_accesses)
            .sum();
        let tail_idle = m
            .regions()
            .iter()
            .filter(|r| r.start >= 500)
            .all(|r| r.age_idle >= 1);
        assert!(head_access > 0, "hot head sampled");
        assert!(tail_idle, "cold tail aged");
    }

    #[test]
    fn cold_pages_come_from_aged_regions_only() {
        let mut t = table_with(400);
        let mut m = RegionMonitor::new(RegionConfig::default());
        let mut coin = coin_stream();
        let hot = crate::PageRange::new(PageId(0), 100);
        for _ in 0..6 {
            t.touch_range(hot);
            m.aggregate(&mut t, &mut coin);
        }
        let cold = m.cold_pages(&t, 3);
        assert!(!cold.is_empty(), "tail must age out");
        // Sampling noise may cool a head region occasionally, but the
        // bulk of the cold set must be tail pages.
        let tail_share = cold.iter().filter(|id| id.0 >= 100).count() as f64 / cold.len() as f64;
        assert!(tail_share > 0.8, "tail share {tail_share}");
    }

    #[test]
    fn empty_table_is_a_noop() {
        let mut t = PageTable::new(PAGE_SIZE_4K);
        let mut m = RegionMonitor::new(RegionConfig::default());
        m.aggregate(&mut t, coin_stream());
        assert!(m.regions().is_empty());
        assert!(m.cold_pages(&t, 0).is_empty());
    }

    #[test]
    fn growing_table_reinitialises() {
        let mut t = table_with(100);
        let mut m = RegionMonitor::new(RegionConfig::default());
        let mut coin = coin_stream();
        m.aggregate(&mut t, &mut coin);
        t.alloc(Segment::Execution, 100);
        m.aggregate(&mut t, &mut coin);
        let covered: u32 = m.regions().iter().map(|r| r.len).sum();
        assert_eq!(covered, 200);
    }

    #[test]
    #[should_panic(expected = "max < min")]
    fn bad_config_panics() {
        let _ = RegionMonitor::new(RegionConfig {
            min_regions: 10,
            max_regions: 5,
            ..RegionConfig::default()
        });
    }

    proptest::proptest! {
        #[test]
        fn prop_regions_always_tile(pages in 1u32..5000, rounds in 1usize..8, seed in 0u64..500) {
            let mut t = table_with(pages);
            let mut m = RegionMonitor::new(RegionConfig::default());
            let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let mut coin = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 10_000) as f64 / 10_000.0
            };
            for _ in 0..rounds {
                m.aggregate(&mut t, &mut coin);
                let mut expected = 0;
                for r in m.regions() {
                    proptest::prop_assert_eq!(r.start, expected);
                    proptest::prop_assert!(r.len > 0);
                    expected = r.end();
                }
                proptest::prop_assert_eq!(expected, pages);
            }
        }
    }
}
