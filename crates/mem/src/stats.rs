//! Cgroup-style memory accounting snapshots.

use std::fmt;
use std::iter::Sum;
use std::ops::Add;

/// A point-in-time snapshot of a container's (or node's) memory state.
///
/// Snapshots add together, so node-level accounting is just the sum over
/// containers.
///
/// # Examples
///
/// ```
/// use faasmem_mem::MemStats;
///
/// let a = MemStats { local_bytes: 100, remote_bytes: 20, ..MemStats::default() };
/// let b = MemStats { local_bytes: 50, remote_bytes: 0, ..MemStats::default() };
/// let node = a + b;
/// assert_eq!(node.local_bytes, 150);
/// assert_eq!(node.resident_bytes(), 170);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Bytes resident in local DRAM.
    pub local_bytes: u64,
    /// Bytes swapped out to the remote memory pool.
    pub remote_bytes: u64,
    /// Pages resident in local DRAM.
    pub local_pages: u64,
    /// Pages in the remote pool.
    pub remote_pages: u64,
    /// Lifetime pages offloaded (page-out traffic).
    pub total_offloaded: u64,
    /// Lifetime pages faulted back in (page-in traffic).
    pub total_faulted: u64,
}

impl MemStats {
    /// Total resident bytes: local plus remote.
    pub fn resident_bytes(&self) -> u64 {
        self.local_bytes + self.remote_bytes
    }

    /// Fraction of resident memory that has been offloaded, in `[0, 1]`;
    /// zero when nothing is resident.
    pub fn offload_ratio(&self) -> f64 {
        let total = self.resident_bytes();
        if total == 0 {
            0.0
        } else {
            self.remote_bytes as f64 / total as f64
        }
    }

    /// Local footprint in MiB (the unit the paper's figures use).
    pub fn local_mib(&self) -> f64 {
        self.local_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Remote footprint in MiB.
    pub fn remote_mib(&self) -> f64 {
        self.remote_bytes as f64 / (1024.0 * 1024.0)
    }
}

impl Add for MemStats {
    type Output = MemStats;
    fn add(self, rhs: MemStats) -> MemStats {
        MemStats {
            local_bytes: self.local_bytes + rhs.local_bytes,
            remote_bytes: self.remote_bytes + rhs.remote_bytes,
            local_pages: self.local_pages + rhs.local_pages,
            remote_pages: self.remote_pages + rhs.remote_pages,
            total_offloaded: self.total_offloaded + rhs.total_offloaded,
            total_faulted: self.total_faulted + rhs.total_faulted,
        }
    }
}

impl Sum for MemStats {
    fn sum<I: Iterator<Item = MemStats>>(iter: I) -> MemStats {
        iter.fold(MemStats::default(), Add::add)
    }
}

impl fmt::Display for MemStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "local {:.1} MiB, remote {:.1} MiB ({:.1}% offloaded)",
            self.local_mib(),
            self.remote_mib(),
            self.offload_ratio() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_ratio_is_zero() {
        assert_eq!(MemStats::default().offload_ratio(), 0.0);
        assert_eq!(MemStats::default().resident_bytes(), 0);
    }

    #[test]
    fn ratio_and_units() {
        let s = MemStats {
            local_bytes: 3 * 1024 * 1024,
            remote_bytes: 1024 * 1024,
            ..MemStats::default()
        };
        assert!((s.offload_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(s.local_mib(), 3.0);
        assert_eq!(s.remote_mib(), 1.0);
    }

    #[test]
    fn sum_over_containers() {
        let parts = vec![
            MemStats {
                local_bytes: 1,
                local_pages: 1,
                ..MemStats::default()
            },
            MemStats {
                local_bytes: 2,
                remote_bytes: 5,
                remote_pages: 2,
                ..MemStats::default()
            },
            MemStats {
                total_offloaded: 7,
                total_faulted: 3,
                ..MemStats::default()
            },
        ];
        let node: MemStats = parts.into_iter().sum();
        assert_eq!(node.local_bytes, 3);
        assert_eq!(node.remote_bytes, 5);
        assert_eq!(node.local_pages, 1);
        assert_eq!(node.remote_pages, 2);
        assert_eq!(node.total_offloaded, 7);
        assert_eq!(node.total_faulted, 3);
    }

    #[test]
    fn display_is_nonempty() {
        let s = MemStats::default();
        assert!(!s.to_string().is_empty());
    }
}
