//! The per-container page table.
//!
//! A [`PageTable`] is the moral equivalent of a container cgroup's memory
//! state in the paper's modified kernel: every page the container has
//! allocated, its residency (local DRAM vs remote pool), its simulated
//! Access bit, its MGLRU generation, and which lifecycle segment it was
//! allocated in. All policy code — FaaSMem's Puckets as well as the TMO
//! and DAMON baselines — operates purely through this interface, which is
//! what keeps the head-to-head evaluation honest.
//!
//! # Data layout
//!
//! The table is column-oriented (see DESIGN § data layout). Single-bit
//! page attributes — the Access bit, the recently-faulted flag, freed
//! state, remote residency, hot-pool membership — live in packed `u64`
//! bitmaps, one bit per page; multi-bit attributes (generation, idle-scan
//! counter, access counter, segment tag) live in dense parallel columns.
//! Batch operations iterate word-wise: an all-zero mask word skips 64
//! pages in one branch, and set bits are visited in ascending page-id
//! order via `trailing_zeros`. Every scan-like operation has an `_into`
//! variant writing into a caller-owned scratch buffer, so steady-state
//! simulation allocates nothing per scan.
//!
//! The `freed` bitmap carries a *tail guard*: bits at indices `>= len`
//! (the slack of the last partial word) are kept set, so the live-page
//! mask of any word is simply `!freed[w]` with no last-word special case.

use crate::flow::PageFlows;
use crate::page::{PageId, PageMeta, PageRange, PageState, Segment};
use crate::stats::MemStats;
use faasmem_trace::{EventKind, TraceLayer, Tracer};

/// An MGLRU generation number.
///
/// Creating a new generation is how FaaSMem inserts a *time barrier*
/// (paper §7): pages allocated afterwards carry the new generation, so the
/// barrier cleanly segregates runtime, init and execution pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Generation(pub u32);

/// Result of touching a set of pages during request execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TouchOutcome {
    /// Pages whose Access bit was set (resident or faulted-in).
    pub touched: u32,
    /// Pages that were remote and had to be faulted back from the pool.
    pub faulted: u32,
}

impl TouchOutcome {
    /// Accumulates another outcome into this one.
    pub fn merge(&mut self, other: TouchOutcome) {
        self.touched += other.touched;
        self.faulted += other.faulted;
    }
}

/// `(word index, bit mask)` addressing one page in a bitmap.
#[inline]
fn word_bit(index: usize) -> (usize, u64) {
    (index >> 6, 1u64 << (index & 63))
}

/// Iterates the bitmap words overlapping `[start, end)`, yielding each
/// word index with the mask of span bits inside it. `start < end`.
#[inline]
fn span_words(start: usize, end: usize) -> impl Iterator<Item = (usize, u64)> {
    debug_assert!(start < end);
    let first = start >> 6;
    let last = (end - 1) >> 6;
    (first..=last).map(move |w| {
        let mut mask = !0u64;
        if w == first {
            mask &= !0u64 << (start & 63);
        }
        if w == last && (end & 63) != 0 {
            mask &= (1u64 << (end & 63)) - 1;
        }
        (w, mask)
    })
}

/// Per-container page table with MGLRU generations and residency tracking.
///
/// # Examples
///
/// ```
/// use faasmem_mem::{PageTable, Segment, PageState, PAGE_SIZE_4K};
///
/// let mut t = PageTable::new(PAGE_SIZE_4K);
/// let runtime = t.alloc(Segment::Runtime, 100);
/// let barrier = t.create_generation(); // Runtime-Init time barrier
/// let init = t.alloc(Segment::Init, 50);
/// assert!(t.meta(runtime.start()).generation() < barrier.0);
/// assert_eq!(t.meta(init.start()).generation(), barrier.0);
/// let n = t.offload_range(runtime);
/// assert_eq!(n, 100);
/// assert_eq!(t.meta(runtime.start()).state(), PageState::Remote);
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    page_size: u64,
    /// Total pages ever allocated; bitmap bits `>= len` are dead slack
    /// (set in `freed`, clear everywhere else).
    len: usize,
    /// Simulated Access bits. Invariant: subset of live pages.
    accessed: Vec<u64>,
    /// "Faulted back since the last scan" flags. May linger on freed
    /// pages (frees do not consume the flag; scans clear live bits and
    /// recycling resets it).
    recently_faulted: Vec<u64>,
    /// Freed-state bits, tail-guarded: slack bits past `len` stay set so
    /// `!freed[w]` is the live mask of any word.
    freed: Vec<u64>,
    /// Remote-residency bits. Invariant: subset of live pages.
    remote: Vec<u64>,
    /// Hot-page-pool membership bits (policy-owned, see `set_in_hot_pool`).
    hot_pool: Vec<u64>,
    /// MGLRU generation per page.
    generation: Vec<u32>,
    /// DAMON-style idle-scan counter per page.
    idle_scans: Vec<u8>,
    /// Lifetime access counter per page (saturating).
    access_count: Vec<u16>,
    /// Lifecycle segment tag per page (`Segment::ALL` index).
    segment: Vec<u8>,
    /// Live pages per generation, indexed by generation number — keeps
    /// `generation_age_histogram` O(generations) instead of O(pages).
    gen_live: Vec<u64>,
    current_gen: u32,
    /// Freed execution ranges available for reuse, newest last.
    free_exec: Vec<PageRange>,
    local_pages: u64,
    remote_pages: u64,
    freed_pages: u64,
    local_by_segment: [u64; 3],
    /// Live local pages currently flagged hot-pool — the `hot_pool`
    /// bitmap restricted to local residency, maintained incrementally
    /// at every transition so occupancy accounting reads it in O(1).
    hot_local_pages: u64,
    /// Lifetime counters for bandwidth accounting.
    total_offloaded: u64,
    total_faulted: u64,
    /// Lifetime page-lifecycle edge counters beyond the two above:
    /// together with them they form the flow matrix (see
    /// [`crate::flow`]). Every residency transition increments exactly
    /// one edge, which is what makes the flow rows conserve.
    total_allocated: u64,
    total_reused: u64,
    total_prefetched: u64,
    total_freed_local: u64,
    total_freed_remote: u64,
    /// Trace emission handle (disabled by default) and the container id
    /// batch events are attributed to.
    tracer: Tracer,
    owner: Option<u64>,
}

impl PageTable {
    /// Creates an empty table with the given page size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero.
    pub fn new(page_size: u64) -> Self {
        assert!(page_size > 0, "page size must be positive");
        PageTable {
            page_size,
            len: 0,
            accessed: Vec::new(),
            recently_faulted: Vec::new(),
            freed: Vec::new(),
            remote: Vec::new(),
            hot_pool: Vec::new(),
            generation: Vec::new(),
            idle_scans: Vec::new(),
            access_count: Vec::new(),
            segment: Vec::new(),
            gen_live: Vec::new(),
            current_gen: 0,
            free_exec: Vec::new(),
            local_pages: 0,
            remote_pages: 0,
            freed_pages: 0,
            local_by_segment: [0; 3],
            hot_local_pages: 0,
            total_offloaded: 0,
            total_faulted: 0,
            total_allocated: 0,
            total_reused: 0,
            total_prefetched: 0,
            total_freed_local: 0,
            total_freed_remote: 0,
            tracer: Tracer::disabled(),
            owner: None,
        }
    }

    /// Attaches a trace emission handle. Batch operations (scans, aging
    /// walks, bulk offload/page-in) emit memory-layer events attributed
    /// to container `owner`; single-page primitives stay silent so a
    /// batch never double-reports.
    pub fn attach_tracer(&mut self, tracer: Tracer, owner: u64) {
        self.tracer = tracer;
        self.owner = Some(owner);
    }

    /// Bytes per page.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Total pages ever allocated (including freed slots awaiting reuse).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no pages have been allocated.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of bitmap words in play.
    #[inline]
    fn words(&self) -> usize {
        self.freed.len()
    }

    #[inline]
    fn assert_allocated(&self, id: PageId) {
        assert!(
            id.index() < self.len,
            "page {} was never allocated (table has {})",
            id.index(),
            self.len
        );
    }

    /// Asserts `range` lies within the allocated id space and returns its
    /// `(start, end)` indices; `None` for an empty range.
    #[inline]
    fn range_bounds(&self, range: PageRange) -> Option<(usize, usize)> {
        if range.is_empty() {
            return None;
        }
        let start = range.start().index();
        let end = start + range.len() as usize;
        assert!(
            end <= self.len,
            "range {}..{} exceeds allocated pages ({})",
            start,
            end,
            self.len
        );
        Some((start, end))
    }

    fn bump_gen_live(&mut self, generation: u32, count: u64) {
        let g = generation as usize;
        if self.gen_live.len() <= g {
            self.gen_live.resize(g + 1, 0);
        }
        self.gen_live[g] += count;
    }

    /// The generation newly allocated pages are tagged with.
    pub fn current_generation(&self) -> Generation {
        Generation(self.current_gen)
    }

    /// Starts a new MGLRU generation and returns it. This is the
    /// time-barrier insertion primitive: pages allocated from now on carry
    /// the returned generation.
    pub fn create_generation(&mut self) -> Generation {
        self.current_gen += 1;
        if self.tracer.wants(TraceLayer::Memory) {
            self.tracer.emit(
                self.owner,
                None,
                EventKind::GenerationCreate {
                    generation: u64::from(self.current_gen),
                },
            );
        }
        Generation(self.current_gen)
    }

    /// Allocates `count` local pages in `segment`, tagged with the current
    /// generation. Execution pages are recycled from previously freed
    /// ranges when an exact-fit or larger range is available.
    pub fn alloc(&mut self, segment: Segment, count: u32) -> PageRange {
        if count == 0 {
            return PageRange::EMPTY;
        }
        if segment == Segment::Execution {
            if let Some(range) = self.take_free_exec(count) {
                self.recycle(range);
                return range;
            }
        }
        let start = self.len;
        let new_len = start + count as usize;
        let words = new_len.div_ceil(64);
        self.accessed.resize(words, 0);
        self.recently_faulted.resize(words, 0);
        self.remote.resize(words, 0);
        self.hot_pool.resize(words, 0);
        // New freed words arrive all-ones (tail guard), then the newly
        // allocated span is carved out as live.
        self.freed.resize(words, !0u64);
        for (w, mask) in span_words(start, new_len) {
            self.freed[w] &= !mask;
        }
        self.generation.resize(new_len, self.current_gen);
        self.idle_scans.resize(new_len, 0);
        self.access_count.resize(new_len, 0);
        self.segment.resize(new_len, segment.index() as u8);
        self.len = new_len;
        self.local_pages += u64::from(count);
        self.local_by_segment[segment.index()] += u64::from(count);
        self.total_allocated += u64::from(count);
        self.bump_gen_live(self.current_gen, u64::from(count));
        PageRange::new(PageId(start as u32), count)
    }

    /// Resets a previously freed execution range to freshly allocated
    /// state, exactly as `PageMeta::new` would.
    fn recycle(&mut self, range: PageRange) {
        let (start, end) = self.range_bounds(range).expect("recycled range non-empty");
        for (w, mask) in span_words(start, end) {
            debug_assert_eq!(self.freed[w] & mask, mask, "recycled pages must be freed");
            self.freed[w] &= !mask;
            self.accessed[w] &= !mask;
            self.recently_faulted[w] &= !mask;
            self.remote[w] &= !mask;
            self.hot_pool[w] &= !mask;
        }
        self.generation[start..end].fill(self.current_gen);
        self.idle_scans[start..end].fill(0);
        self.access_count[start..end].fill(0);
        self.segment[start..end].fill(Segment::Execution.index() as u8);
        self.freed_pages -= u64::from(range.len());
        self.local_pages += u64::from(range.len());
        self.local_by_segment[Segment::Execution.index()] += u64::from(range.len());
        self.total_reused += u64::from(range.len());
        self.bump_gen_live(self.current_gen, u64::from(range.len()));
    }

    fn take_free_exec(&mut self, count: u32) -> Option<PageRange> {
        let pos = self.free_exec.iter().rposition(|r| r.len() >= count)?;
        let range = self.free_exec[pos];
        let taken = range.take(count);
        let rest = range.skip(count);
        if rest.is_empty() {
            self.free_exec.swap_remove(pos);
        } else {
            self.free_exec[pos] = rest;
        }
        Some(taken)
    }

    /// Metadata for one page, reassembled from the columns.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never allocated.
    pub fn meta(&self, id: PageId) -> PageMeta {
        self.assert_allocated(id);
        self.meta_idx(id.index())
    }

    fn meta_idx(&self, i: usize) -> PageMeta {
        let (w, b) = word_bit(i);
        let state = if self.freed[w] & b != 0 {
            PageState::Freed
        } else if self.remote[w] & b != 0 {
            PageState::Remote
        } else {
            PageState::Local
        };
        PageMeta::from_parts(
            state,
            Segment::ALL[self.segment[i] as usize],
            self.accessed[w] & b != 0,
            self.hot_pool[w] & b != 0,
            self.recently_faulted[w] & b != 0,
            self.idle_scans[i],
            self.access_count[i],
            self.generation[i],
        )
    }

    /// Touches one page: sets its Access bit and bumps its access counter.
    /// Returns `true` if the page was remote and got faulted back in.
    ///
    /// Freed pages are ignored (returns `false`).
    pub fn touch(&mut self, id: PageId) -> bool {
        self.assert_allocated(id);
        let i = id.index();
        let (w, b) = word_bit(i);
        if self.freed[w] & b != 0 {
            return false;
        }
        self.accessed[w] |= b;
        self.access_count[i] = self.access_count[i].saturating_add(1);
        if self.remote[w] & b != 0 {
            self.remote[w] &= !b;
            self.recently_faulted[w] |= b;
            self.remote_pages -= 1;
            self.local_pages += 1;
            self.local_by_segment[self.segment[i] as usize] += 1;
            self.hot_local_pages += u64::from(self.hot_pool[w] & b != 0);
            self.total_faulted += 1;
            true
        } else {
            false
        }
    }

    /// Touches every page of a range.
    pub fn touch_range(&mut self, range: PageRange) -> TouchOutcome {
        let mut out = TouchOutcome::default();
        if let Some((start, end)) = self.range_bounds(range) {
            for (w, mask) in span_words(start, end) {
                let live = mask & !self.freed[w];
                if live == 0 {
                    continue;
                }
                out.touched += live.count_ones();
                self.accessed[w] |= live;
                let mut bits = live;
                while bits != 0 {
                    let i = (w << 6) | bits.trailing_zeros() as usize;
                    self.access_count[i] = self.access_count[i].saturating_add(1);
                    bits &= bits - 1;
                }
                let faulted = live & self.remote[w];
                if faulted != 0 {
                    out.faulted += faulted.count_ones();
                    self.remote[w] &= !faulted;
                    self.recently_faulted[w] |= faulted;
                    let n = u64::from(faulted.count_ones());
                    self.remote_pages -= n;
                    self.local_pages += n;
                    self.hot_local_pages += u64::from((faulted & self.hot_pool[w]).count_ones());
                    self.total_faulted += n;
                    let mut bits = faulted;
                    while bits != 0 {
                        let i = (w << 6) | bits.trailing_zeros() as usize;
                        self.local_by_segment[self.segment[i] as usize] += 1;
                        bits &= bits - 1;
                    }
                }
            }
        }
        self.trace_demand_faults(out.faulted);
        out
    }

    /// Touches an arbitrary set of pages.
    pub fn touch_pages<I: IntoIterator<Item = PageId>>(&mut self, ids: I) -> TouchOutcome {
        let mut out = TouchOutcome::default();
        for id in ids {
            self.assert_allocated(id);
            let (w, b) = word_bit(id.index());
            if self.freed[w] & b != 0 {
                continue;
            }
            out.touched += 1;
            if self.touch(id) {
                out.faulted += 1;
            }
        }
        self.trace_demand_faults(out.faulted);
        out
    }

    fn trace_demand_faults(&self, faulted: u32) {
        if faulted > 0 && self.tracer.wants(TraceLayer::Memory) {
            self.tracer.emit(
                self.owner,
                None,
                EventKind::MemPageIn {
                    pages: u64::from(faulted),
                    demand: true,
                },
            );
        }
    }

    /// Brings one remote page back to local DRAM *without* marking it
    /// accessed — the prefetch path (Leap-style prefetchers pull pages
    /// ahead of demand, so no Access bit flips and no fault is counted).
    /// Returns `true` if the page was remote.
    pub fn prefetch(&mut self, id: PageId) -> bool {
        self.assert_allocated(id);
        let i = id.index();
        let (w, b) = word_bit(i);
        if self.remote[w] & b == 0 {
            return false;
        }
        self.remote[w] &= !b;
        self.remote_pages -= 1;
        self.local_pages += 1;
        self.local_by_segment[self.segment[i] as usize] += 1;
        self.hot_local_pages += u64::from(self.hot_pool[w] & b != 0);
        self.total_prefetched += 1;
        true
    }

    /// Prefetches the given pages; returns how many moved.
    pub fn prefetch_pages<I: IntoIterator<Item = PageId>>(&mut self, ids: I) -> u32 {
        let moved = ids.into_iter().filter(|&id| self.prefetch(id)).count() as u32;
        self.trace_page_in(moved);
        moved
    }

    /// Brings every remote page in `range` back to local DRAM without
    /// marking it accessed — the bulk prefetch path. Returns how many
    /// pages moved.
    pub fn page_in_range(&mut self, range: PageRange) -> u32 {
        let mut moved = 0u32;
        if let Some((start, end)) = self.range_bounds(range) {
            for (w, mask) in span_words(start, end) {
                // Remote bits are a subset of live bits, so the mask
                // alone selects exactly the movable pages.
                let movable = mask & self.remote[w];
                if movable == 0 {
                    continue;
                }
                moved += movable.count_ones();
                self.remote[w] &= !movable;
                self.hot_local_pages += u64::from((movable & self.hot_pool[w]).count_ones());
                let mut bits = movable;
                while bits != 0 {
                    let i = (w << 6) | bits.trailing_zeros() as usize;
                    self.local_by_segment[self.segment[i] as usize] += 1;
                    bits &= bits - 1;
                }
            }
        }
        self.remote_pages -= u64::from(moved);
        self.local_pages += u64::from(moved);
        self.total_prefetched += u64::from(moved);
        self.trace_page_in(moved);
        moved
    }

    fn trace_page_in(&self, moved: u32) {
        if moved > 0 && self.tracer.wants(TraceLayer::Memory) {
            self.tracer.emit(
                self.owner,
                None,
                EventKind::MemPageIn {
                    pages: u64::from(moved),
                    demand: false,
                },
            );
        }
    }

    /// Moves one local page to the remote pool. Returns `true` if the page
    /// was local (and is now remote); remote and freed pages are no-ops.
    pub fn offload(&mut self, id: PageId) -> bool {
        self.assert_allocated(id);
        let i = id.index();
        let (w, b) = word_bit(i);
        if (self.freed[w] | self.remote[w]) & b != 0 {
            return false;
        }
        self.remote[w] |= b;
        self.local_pages -= 1;
        self.local_by_segment[self.segment[i] as usize] -= 1;
        self.remote_pages += 1;
        self.hot_local_pages -= u64::from(self.hot_pool[w] & b != 0);
        self.total_offloaded += 1;
        true
    }

    /// Offloads every local page in `range`; returns how many moved.
    pub fn offload_range(&mut self, range: PageRange) -> u32 {
        let mut moved = 0u32;
        if let Some((start, end)) = self.range_bounds(range) {
            for (w, mask) in span_words(start, end) {
                let movable = mask & !self.freed[w] & !self.remote[w];
                if movable == 0 {
                    continue;
                }
                moved += movable.count_ones();
                self.remote[w] |= movable;
                self.hot_local_pages -= u64::from((movable & self.hot_pool[w]).count_ones());
                let mut bits = movable;
                while bits != 0 {
                    let i = (w << 6) | bits.trailing_zeros() as usize;
                    self.local_by_segment[self.segment[i] as usize] -= 1;
                    bits &= bits - 1;
                }
            }
        }
        self.local_pages -= u64::from(moved);
        self.remote_pages += u64::from(moved);
        self.total_offloaded += u64::from(moved);
        self.trace_offload(moved);
        moved
    }

    /// Offloads the given pages; returns how many moved.
    pub fn offload_pages<I: IntoIterator<Item = PageId>>(&mut self, ids: I) -> u32 {
        let moved = ids.into_iter().filter(|&id| self.offload(id)).count() as u32;
        self.trace_offload(moved);
        moved
    }

    fn trace_offload(&self, moved: u32) {
        if moved > 0 && self.tracer.wants(TraceLayer::Memory) {
            self.tracer.emit(
                self.owner,
                None,
                EventKind::MemOffload {
                    pages: u64::from(moved),
                },
            );
        }
    }

    /// Frees a range (execution pages after a request). Local and remote
    /// pages both transition to [`PageState::Freed`]; the range becomes
    /// available for execution-segment reuse.
    pub fn free_range(&mut self, range: PageRange) {
        let Some((start, end)) = self.range_bounds(range) else {
            return;
        };
        for (w, mask) in span_words(start, end) {
            let live = mask & !self.freed[w];
            if live != 0 {
                let remote = live & self.remote[w];
                let mut bits = live;
                while bits != 0 {
                    let t = bits.trailing_zeros() as usize;
                    let i = (w << 6) | t;
                    self.gen_live[self.generation[i] as usize] -= 1;
                    if remote & (1u64 << t) == 0 {
                        self.local_by_segment[self.segment[i] as usize] -= 1;
                    }
                    bits &= bits - 1;
                }
                let n = u64::from(live.count_ones());
                let nr = u64::from(remote.count_ones());
                self.freed_pages += n;
                self.remote_pages -= nr;
                self.local_pages -= n - nr;
                self.total_freed_local += n - nr;
                self.total_freed_remote += nr;
                self.hot_local_pages -= u64::from((live & self.hot_pool[w] & !remote).count_ones());
                self.freed[w] |= live;
                // The recently-faulted flag deliberately survives a free
                // (scans consume it; recycling resets it).
                self.remote[w] &= !live;
                self.accessed[w] &= !live;
                self.hot_pool[w] &= !live;
            }
        }
        self.free_exec.push(range);
    }

    /// Scans the Access bits over all live pages, clears them, and returns
    /// the ids of pages that were accessed since the previous scan.
    ///
    /// This is the MGLRU aging walk the paper's mechanisms (and the DAMON
    /// baseline) sample from. The per-page "recently faulted" flag is
    /// consumed (cleared) by the scan as well.
    pub fn scan_accessed(&mut self) -> Vec<PageId> {
        let mut out = Vec::new();
        self.scan_accessed_into(&mut out);
        out
    }

    /// Allocation-free variant of [`PageTable::scan_accessed`]: clears
    /// `out` and fills it with the accessed ids in ascending order.
    pub fn scan_accessed_into(&mut self, out: &mut Vec<PageId>) {
        out.clear();
        for w in 0..self.words() {
            let live = !self.freed[w];
            if live == 0 {
                continue;
            }
            let hits = self.accessed[w] & live;
            if hits != 0 {
                let mut bits = hits;
                while bits != 0 {
                    out.push(PageId(((w << 6) | bits.trailing_zeros() as usize) as u32));
                    bits &= bits - 1;
                }
                self.accessed[w] &= !hits;
            }
            self.recently_faulted[w] &= !live;
        }
        self.trace_scan(out.len() as u64);
    }

    /// Like [`PageTable::scan_accessed`], but also reports per page
    /// whether the access faulted it back from remote memory since the
    /// previous scan — the signal recall accounting (Fig 8) needs.
    pub fn scan_accessed_with_faults(&mut self) -> Vec<(PageId, bool)> {
        let mut out = Vec::new();
        self.scan_accessed_with_faults_into(&mut out);
        out
    }

    /// Allocation-free variant of
    /// [`PageTable::scan_accessed_with_faults`]: clears `out` and fills
    /// it in ascending page order.
    pub fn scan_accessed_with_faults_into(&mut self, out: &mut Vec<(PageId, bool)>) {
        out.clear();
        for w in 0..self.words() {
            let live = !self.freed[w];
            if live == 0 {
                continue;
            }
            let hits = self.accessed[w] & live;
            if hits != 0 {
                let rf = self.recently_faulted[w];
                let mut bits = hits;
                while bits != 0 {
                    let t = bits.trailing_zeros() as usize;
                    out.push((PageId(((w << 6) | t) as u32), rf >> t & 1 != 0));
                    bits &= bits - 1;
                }
                self.accessed[w] &= !hits;
            }
            self.recently_faulted[w] &= !live;
        }
        self.trace_scan(out.len() as u64);
    }

    /// Clears all Access bits (and recently-faulted flags) without
    /// collecting the accessed ids — for callers that only want to reset
    /// scan state. Observably identical to [`PageTable::scan_accessed`]
    /// with the returned ids discarded (including the emitted trace
    /// event); returns how many live pages had their Access bit set.
    pub fn clear_accessed(&mut self) -> u64 {
        let mut hits = 0u64;
        for w in 0..self.words() {
            let live = !self.freed[w];
            if live == 0 {
                continue;
            }
            hits += u64::from((self.accessed[w] & live).count_ones());
            self.accessed[w] &= !live;
            self.recently_faulted[w] &= !live;
        }
        self.trace_scan(hits);
        hits
    }

    fn trace_scan(&self, accessed: u64) {
        if self.tracer.wants(TraceLayer::Memory) {
            self.tracer.emit(
                self.owner,
                None,
                EventKind::AccessScan {
                    live: self.local_pages + self.remote_pages,
                    accessed,
                },
            );
        }
    }

    /// Performs one DAMON-style aging scan: pages accessed since the last
    /// scan get their idle counter reset (and Access bit cleared); pages
    /// untouched get it incremented. Returns the ids of *local* pages
    /// whose idle count has reached `idle_threshold` — the cold-region
    /// candidates a sampling policy would offload.
    pub fn age_and_collect_idle(&mut self, idle_threshold: u8) -> Vec<PageId> {
        let mut out = Vec::new();
        self.age_and_collect_idle_into(idle_threshold, &mut out);
        out
    }

    /// Allocation-free variant of [`PageTable::age_and_collect_idle`]:
    /// clears `out` and fills it with the cold local ids in ascending
    /// order.
    pub fn age_and_collect_idle_into(&mut self, idle_threshold: u8, out: &mut Vec<PageId>) {
        out.clear();
        for w in 0..self.words() {
            let live = !self.freed[w];
            if live == 0 {
                continue;
            }
            let hot = self.accessed[w] & live;
            if hot != 0 {
                self.accessed[w] &= !hot;
                let mut bits = hot;
                while bits != 0 {
                    let i = (w << 6) | bits.trailing_zeros() as usize;
                    self.idle_scans[i] = 0;
                    bits &= bits - 1;
                }
            }
            // Cold candidates stay ascending: hot pages never collect, so
            // walking the idle subset in bit order preserves the global
            // per-page order of the naive walk.
            let mut idle = live & !hot;
            while idle != 0 {
                let t = idle.trailing_zeros() as usize;
                let i = (w << 6) | t;
                let scans = self.idle_scans[i].saturating_add(1);
                self.idle_scans[i] = scans;
                if scans >= idle_threshold && self.remote[w] & (1u64 << t) == 0 {
                    out.push(PageId(i as u32));
                }
                idle &= idle - 1;
            }
        }
        self.trace_aging(idle_threshold, out.len() as u64);
    }

    fn trace_aging(&self, threshold: u8, collected: u64) {
        if self.tracer.wants(TraceLayer::Memory) {
            self.tracer.emit(
                self.owner,
                None,
                EventKind::GenerationAge {
                    threshold: u64::from(threshold),
                    collected,
                },
            );
        }
    }

    /// A hardware-sampled variant of [`PageTable::age_and_collect_idle`]
    /// (paper §9: PEBS-style samplers reduce cold-page identification
    /// overhead). Instead of reading every Access bit, each accessed page
    /// is *observed* only with probability `sample_prob`; unobserved
    /// accesses are invisible, so hot pages can be misclassified as cold
    /// — the accuracy/overhead trade-off hardware sampling makes.
    ///
    /// `coin` supplies the per-page sampling randomness (a closure so the
    /// table stays RNG-agnostic).
    ///
    /// # Panics
    ///
    /// Panics if `sample_prob` is not in `(0, 1]`.
    pub fn age_and_collect_idle_sampled<F: FnMut() -> f64>(
        &mut self,
        idle_threshold: u8,
        sample_prob: f64,
        coin: F,
    ) -> Vec<PageId> {
        let mut out = Vec::new();
        self.age_and_collect_idle_sampled_into(idle_threshold, sample_prob, coin, &mut out);
        out
    }

    /// Allocation-free variant of
    /// [`PageTable::age_and_collect_idle_sampled`]. The coin is flipped
    /// once per *accessed* live page, in ascending page order — the same
    /// draw sequence as the naive per-page walk, so seeded runs are
    /// reproducible across layouts.
    ///
    /// # Panics
    ///
    /// Panics if `sample_prob` is not in `(0, 1]`.
    pub fn age_and_collect_idle_sampled_into<F: FnMut() -> f64>(
        &mut self,
        idle_threshold: u8,
        sample_prob: f64,
        mut coin: F,
        out: &mut Vec<PageId>,
    ) {
        assert!(
            sample_prob > 0.0 && sample_prob <= 1.0,
            "sample probability {sample_prob} out of range"
        );
        out.clear();
        for w in 0..self.words() {
            let live = !self.freed[w];
            if live == 0 {
                continue;
            }
            let accessed = self.accessed[w] & live;
            let mut bits = live;
            while bits != 0 {
                let t = bits.trailing_zeros() as usize;
                let i = (w << 6) | t;
                let observed = accessed >> t & 1 != 0 && coin() < sample_prob;
                if observed {
                    self.idle_scans[i] = 0;
                } else {
                    let scans = self.idle_scans[i].saturating_add(1);
                    self.idle_scans[i] = scans;
                    if scans >= idle_threshold && self.remote[w] & (1u64 << t) == 0 {
                        out.push(PageId(i as u32));
                    }
                }
                bits &= bits - 1;
            }
            self.accessed[w] &= !accessed;
        }
        self.trace_aging(idle_threshold, out.len() as u64);
    }

    /// Collects ids of live pages matching a predicate over their metadata.
    pub fn collect_ids<F: Fn(PageId, PageMeta) -> bool>(&self, pred: F) -> Vec<PageId> {
        let mut out = Vec::new();
        self.collect_ids_into(pred, &mut out);
        out
    }

    /// Allocation-free variant of [`PageTable::collect_ids`]: clears
    /// `out` and fills it in ascending order.
    pub fn collect_ids_into<F: Fn(PageId, PageMeta) -> bool>(
        &self,
        pred: F,
        out: &mut Vec<PageId>,
    ) {
        out.clear();
        for w in 0..self.words() {
            let mut bits = !self.freed[w];
            while bits != 0 {
                let i = (w << 6) | bits.trailing_zeros() as usize;
                let id = PageId(i as u32);
                if pred(id, self.meta_idx(i)) {
                    out.push(id);
                }
                bits &= bits - 1;
            }
        }
    }

    /// Appends the ids of live *local* pages to `out` (no clear) — the
    /// residency sweep semi-warm reclamation uses when Puckets are off.
    pub fn append_local(&self, out: &mut Vec<PageId>) {
        for w in 0..self.words() {
            let mut bits = !self.freed[w] & !self.remote[w];
            while bits != 0 {
                out.push(PageId(((w << 6) | bits.trailing_zeros() as usize) as u32));
                bits &= bits - 1;
            }
        }
    }

    /// Appends the ids of live local pages inside `range` to `out` (no
    /// clear) — the region-granular collection DAMON's region monitor
    /// performs.
    pub fn append_local_in_range(&self, range: PageRange, out: &mut Vec<PageId>) {
        let Some((start, end)) = self.range_bounds(range) else {
            return;
        };
        for (w, mask) in span_words(start, end) {
            let mut bits = mask & !self.freed[w] & !self.remote[w];
            while bits != 0 {
                out.push(PageId(((w << 6) | bits.trailing_zeros() as usize) as u32));
                bits &= bits - 1;
            }
        }
    }

    /// Appends the ids of *inactive* pages — live, local, outside the hot
    /// pool — whose generation lies in `[gen_lo, gen_hi)`, in ascending
    /// order (no clear). This is a Pucket's inactive list expressed as a
    /// generation interval.
    pub fn append_inactive_in_gen_range(&self, gen_lo: u32, gen_hi: u32, out: &mut Vec<PageId>) {
        for w in 0..self.words() {
            let mut bits = !self.freed[w] & !self.remote[w] & !self.hot_pool[w];
            while bits != 0 {
                let i = (w << 6) | bits.trailing_zeros() as usize;
                let g = self.generation[i];
                if g >= gen_lo && g < gen_hi {
                    out.push(PageId(i as u32));
                }
                bits &= bits - 1;
            }
        }
    }

    /// Counts what [`PageTable::append_inactive_in_gen_range`] would
    /// append, without materialising the ids.
    pub fn count_inactive_in_gen_range(&self, gen_lo: u32, gen_hi: u32) -> u64 {
        let mut count = 0u64;
        for w in 0..self.words() {
            let mut bits = !self.freed[w] & !self.remote[w] & !self.hot_pool[w];
            while bits != 0 {
                let i = (w << 6) | bits.trailing_zeros() as usize;
                let g = self.generation[i];
                if g >= gen_lo && g < gen_hi {
                    count += 1;
                }
                bits &= bits - 1;
            }
        }
        count
    }

    /// Appends the ids of live *local* hot-pool pages to `out` (no
    /// clear), ascending. Remote pages keep their hot-pool flag (it is
    /// what marks them for recall prefetch) but are not reported here.
    pub fn append_hot_pool_local(&self, out: &mut Vec<PageId>) {
        for w in 0..self.words() {
            let mut bits = self.hot_pool[w] & !self.freed[w] & !self.remote[w];
            while bits != 0 {
                out.push(PageId(((w << 6) | bits.trailing_zeros() as usize) as u32));
                bits &= bits - 1;
            }
        }
    }

    /// Clears hot-pool membership on every live *local* page (the §5.3
    /// rollback). Remote pages keep the flag so recall prefetch can still
    /// find them. Returns how many pages were rolled back.
    pub fn clear_local_hot_pool(&mut self) -> u32 {
        let mut cleared = 0u32;
        for w in 0..self.words() {
            let local_hot = self.hot_pool[w] & !self.freed[w] & !self.remote[w];
            if local_hot != 0 {
                cleared += local_hot.count_ones();
                self.hot_pool[w] &= !local_hot;
            }
        }
        self.hot_local_pages -= u64::from(cleared);
        cleared
    }

    /// Iterates over `(id, meta)` for every live (non-freed) page.
    pub fn iter_live(&self) -> impl Iterator<Item = (PageId, PageMeta)> + '_ {
        (0..self.len).filter_map(move |i| {
            let (w, b) = word_bit(i);
            (self.freed[w] & b == 0).then(|| (PageId(i as u32), self.meta_idx(i)))
        })
    }

    /// Histogram of live-page ages in generations: bucket `i` counts
    /// pages whose generation lags the table's current generation by
    /// exactly `i`, with everything older collapsed into the last
    /// bucket. Feeds the `mem.gen_age_*` telemetry series; an empty
    /// table yields all-zero buckets. Served from incrementally
    /// maintained per-generation live counts, so the cost scales with
    /// the number of generations, not the number of pages.
    pub fn generation_age_histogram(&self, buckets: usize) -> Vec<u64> {
        assert!(buckets > 0, "histogram needs at least one bucket");
        let mut hist = vec![0u64; buckets];
        for (g, &n) in self.gen_live.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let age = self.current_gen.saturating_sub(g as u32) as usize;
            hist[age.min(buckets - 1)] += n;
        }
        hist
    }

    /// Marks hot-page-pool membership for one page.
    pub fn set_in_hot_pool(&mut self, id: PageId, on: bool) {
        self.assert_allocated(id);
        let (w, b) = word_bit(id.index());
        let was = self.hot_pool[w] & b != 0;
        if was == on {
            return;
        }
        if on {
            self.hot_pool[w] |= b;
        } else {
            self.hot_pool[w] &= !b;
        }
        if (self.freed[w] | self.remote[w]) & b == 0 {
            if on {
                self.hot_local_pages += 1;
            } else {
                self.hot_local_pages -= 1;
            }
        }
    }

    /// Reassigns a page's generation (used when rolling hot pages back to
    /// their original Pucket).
    pub fn set_generation(&mut self, id: PageId, generation: Generation) {
        self.assert_allocated(id);
        let i = id.index();
        let old = self.generation[i];
        let new = generation.0;
        if old != new {
            let (w, b) = word_bit(i);
            if self.freed[w] & b == 0 {
                self.gen_live[old as usize] -= 1;
                self.bump_gen_live(new, 1);
            }
            self.generation[i] = new;
        }
    }

    /// Clears the lifetime access counter of a page.
    pub fn reset_access_count(&mut self, id: PageId) {
        self.assert_allocated(id);
        self.access_count[id.index()] = 0;
    }

    /// Pages currently resident in local DRAM.
    pub fn local_pages(&self) -> u64 {
        self.local_pages
    }

    /// Pages currently swapped out to the remote pool.
    pub fn remote_pages(&self) -> u64 {
        self.remote_pages
    }

    /// Pages in the freed state awaiting execution-segment reuse.
    pub fn freed_pages(&self) -> u64 {
        self.freed_pages
    }

    /// Local pages belonging to `segment`.
    pub fn local_pages_in(&self, segment: Segment) -> u64 {
        self.local_by_segment[segment.index()]
    }

    /// Local memory footprint in bytes.
    pub fn local_bytes(&self) -> u64 {
        self.local_pages * self.page_size
    }

    /// Remote memory footprint in bytes.
    pub fn remote_bytes(&self) -> u64 {
        self.remote_pages * self.page_size
    }

    /// Lifetime count of pages offloaded to the pool.
    pub fn total_offloaded(&self) -> u64 {
        self.total_offloaded
    }

    /// Lifetime count of remote pages faulted back in.
    pub fn total_faulted(&self) -> u64 {
        self.total_faulted
    }

    /// Live local pages currently flagged hot-pool, in O(1) — the
    /// occupancy-accounting view of the hot pool (the `LocalHotPool`
    /// waste component charges these bytes).
    pub fn hot_local_pages(&self) -> u64 {
        self.hot_local_pages
    }

    /// The table's lifetime page-lifecycle edge counts: one increment
    /// per residency transition, so each flow row conserves against
    /// the current resident counts (see [`crate::flow::FlowMatrix`]).
    pub fn flows(&self) -> PageFlows {
        PageFlows {
            allocated: self.total_allocated,
            reused: self.total_reused,
            offloaded: self.total_offloaded,
            recalled_demand: self.total_faulted,
            recalled_prefetch: self.total_prefetched,
            freed_local: self.total_freed_local,
            freed_remote: self.total_freed_remote,
        }
    }

    /// A cgroup-style accounting snapshot.
    pub fn stats(&self) -> MemStats {
        MemStats {
            local_bytes: self.local_bytes(),
            remote_bytes: self.remote_bytes(),
            local_pages: self.local_pages,
            remote_pages: self.remote_pages,
            total_offloaded: self.total_offloaded,
            total_faulted: self.total_faulted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAGE_SIZE_4K;

    fn table() -> PageTable {
        PageTable::new(PAGE_SIZE_4K)
    }

    #[test]
    fn alloc_tags_segment_and_generation() {
        let mut t = table();
        let r = t.alloc(Segment::Runtime, 10);
        assert_eq!(r.len(), 10);
        for id in r.iter() {
            let m = t.meta(id);
            assert_eq!(m.segment(), Segment::Runtime);
            assert_eq!(m.generation(), 0);
            assert_eq!(m.state(), PageState::Local);
        }
        let g = t.create_generation();
        assert_eq!(g, Generation(1));
        let r2 = t.alloc(Segment::Init, 5);
        assert_eq!(t.meta(r2.start()).generation(), 1);
    }

    #[test]
    fn generation_age_histogram_buckets_by_lag_and_clamps_tail() {
        let mut t = table();
        assert_eq!(t.generation_age_histogram(3), [0, 0, 0]);
        t.alloc(Segment::Runtime, 4); // gen 0
        t.create_generation();
        t.alloc(Segment::Init, 2); // gen 1
        t.create_generation();
        t.alloc(Segment::Execution, 1); // gen 2 == current
                                        // Ages: exec=0, init=1, runtime=2.
        assert_eq!(t.generation_age_histogram(3), [1, 2, 4]);
        // With two buckets the runtime pages collapse into the tail.
        assert_eq!(t.generation_age_histogram(2), [1, 6]);
        // Another barrier shifts everything one bucket older.
        t.create_generation();
        assert_eq!(t.generation_age_histogram(4), [0, 1, 2, 4]);
    }

    #[test]
    fn histogram_tracks_frees_recycling_and_reassignment() {
        let mut t = table();
        t.alloc(Segment::Runtime, 4); // gen 0
        t.create_generation();
        let e = t.alloc(Segment::Execution, 3); // gen 1
        assert_eq!(t.generation_age_histogram(2), [3, 4]);
        // Freed pages leave the histogram.
        t.free_range(e);
        assert_eq!(t.generation_age_histogram(2), [0, 4]);
        // Recycled pages re-enter at the current generation.
        t.create_generation();
        let e2 = t.alloc(Segment::Execution, 3);
        assert_eq!(e, e2, "recycled in place");
        assert_eq!(t.generation_age_histogram(3), [3, 0, 4]);
        // Reassignment moves a live page between buckets...
        t.set_generation(PageId(0), t.current_generation());
        assert_eq!(t.generation_age_histogram(3), [4, 0, 3]);
        // ...but a freed page only updates the column, not the counts.
        t.free_range(e2);
        t.set_generation(e2.start(), Generation(0));
        assert_eq!(t.generation_age_histogram(3), [1, 0, 3]);
    }

    #[test]
    fn alloc_zero_is_empty() {
        let mut t = table();
        assert!(t.alloc(Segment::Init, 0).is_empty());
        assert!(t.is_empty());
    }

    #[test]
    fn touch_sets_access_bit_and_faults_remote() {
        let mut t = table();
        let r = t.alloc(Segment::Init, 4);
        assert_eq!(t.offload_range(r), 4);
        assert_eq!(t.remote_pages(), 4);
        let out = t.touch_range(r);
        assert_eq!(
            out,
            TouchOutcome {
                touched: 4,
                faulted: 4
            }
        );
        assert_eq!(t.remote_pages(), 0);
        assert_eq!(t.local_pages(), 4);
        // Second touch: no faults.
        let out = t.touch_range(r);
        assert_eq!(
            out,
            TouchOutcome {
                touched: 4,
                faulted: 0
            }
        );
        assert_eq!(t.total_faulted(), 4);
    }

    #[test]
    fn scan_accessed_clears_bits() {
        let mut t = table();
        let r = t.alloc(Segment::Runtime, 8);
        t.touch_range(r.take(3));
        let hits = t.scan_accessed();
        assert_eq!(hits.len(), 3);
        assert!(t.scan_accessed().is_empty());
    }

    #[test]
    fn scan_into_reuses_buffer_and_orders_ascending() {
        let mut t = table();
        let r = t.alloc(Segment::Runtime, 200);
        t.touch_pages([PageId(190), PageId(3), PageId(64), PageId(65)]);
        let mut buf = vec![PageId(999)]; // stale contents must be cleared
        t.scan_accessed_into(&mut buf);
        assert_eq!(buf, vec![PageId(3), PageId(64), PageId(65), PageId(190)]);
        t.touch_range(r.take(1));
        t.scan_accessed_into(&mut buf);
        assert_eq!(buf, vec![PageId(0)]);
    }

    #[test]
    fn clear_accessed_matches_discarded_scan() {
        let mk = || {
            let mut t = table();
            let r = t.alloc(Segment::Init, 100);
            t.offload_range(r.take(10));
            t.touch_range(r.take(30)); // 10 fault back, setting rf
            t
        };
        let mut scanned = mk();
        let mut cleared = mk();
        let hits = scanned.scan_accessed().len() as u64;
        assert_eq!(cleared.clear_accessed(), hits);
        for i in 0..100 {
            assert_eq!(
                scanned.meta(PageId(i)),
                cleared.meta(PageId(i)),
                "page {i} diverged"
            );
        }
        assert_eq!(cleared.clear_accessed(), 0);
    }

    #[test]
    fn page_in_range_matches_prefetch_pages() {
        let mut t = table();
        let r = t.alloc(Segment::Init, 130);
        t.offload_range(r.take(70));
        t.free_range(r.skip(100)); // freed tail stays put
        assert_eq!(t.page_in_range(r), 70);
        assert_eq!(t.remote_pages(), 0);
        assert_eq!(t.local_pages(), 100);
        assert_eq!(t.total_faulted(), 0, "bulk page-in is not a fault");
        for id in r.take(100).iter() {
            assert_eq!(t.meta(id).state(), PageState::Local);
            assert!(!t.meta(id).accessed());
        }
        assert_eq!(t.page_in_range(r), 0, "idempotent");
    }

    #[test]
    fn prefetch_restores_without_access_or_fault() {
        let mut t = table();
        let r = t.alloc(Segment::Init, 4);
        t.offload_range(r);
        t.scan_accessed(); // clear allocation bits
        assert_eq!(t.prefetch_pages(r.iter()), 4);
        assert_eq!(t.remote_pages(), 0);
        assert_eq!(t.local_pages(), 4);
        assert_eq!(t.total_faulted(), 0, "prefetch is not a fault");
        for id in r.iter() {
            assert!(!t.meta(id).accessed(), "prefetch leaves Access bits clear");
            assert!(!t.meta(id).recently_faulted());
        }
        // Prefetching local pages is a no-op.
        assert_eq!(t.prefetch_pages(r.iter()), 0);
    }

    #[test]
    fn offload_is_idempotent() {
        let mut t = table();
        let r = t.alloc(Segment::Runtime, 2);
        assert!(t.offload(r.start()));
        assert!(!t.offload(r.start()));
        assert_eq!(t.total_offloaded(), 1);
        assert_eq!(t.local_pages(), 1);
        assert_eq!(t.remote_pages(), 1);
    }

    #[test]
    fn free_releases_local_and_remote() {
        let mut t = table();
        let r = t.alloc(Segment::Execution, 6);
        t.offload_range(r.take(2));
        t.free_range(r);
        assert_eq!(t.local_pages(), 0);
        assert_eq!(t.remote_pages(), 0);
        assert_eq!(t.freed_pages(), 6);
        assert_eq!(t.local_bytes(), 0);
    }

    #[test]
    fn freed_exec_pages_are_recycled() {
        let mut t = table();
        let r1 = t.alloc(Segment::Execution, 100);
        t.free_range(r1);
        let r2 = t.alloc(Segment::Execution, 100);
        assert_eq!(r1, r2, "exact-fit reuse");
        assert_eq!(t.len(), 100, "no new slots created");
        assert_eq!(t.freed_pages(), 0);
        assert_eq!(t.local_pages(), 100);
    }

    #[test]
    fn partial_reuse_splits_range() {
        let mut t = table();
        let r1 = t.alloc(Segment::Execution, 10);
        t.free_range(r1);
        let r2 = t.alloc(Segment::Execution, 4);
        assert_eq!(r2.len(), 4);
        let r3 = t.alloc(Segment::Execution, 6);
        assert_eq!(r3.len(), 6);
        assert_eq!(t.len(), 10);
        assert!(!r2.contains(r3.start()));
    }

    #[test]
    fn recycled_pages_get_fresh_metadata() {
        let mut t = table();
        let r1 = t.alloc(Segment::Execution, 3);
        t.touch_range(r1);
        t.free_range(r1);
        t.create_generation();
        let r2 = t.alloc(Segment::Execution, 3);
        for id in r2.iter() {
            let m = t.meta(id);
            assert!(!m.accessed());
            assert_eq!(m.generation(), 1);
            assert_eq!(m.state(), PageState::Local);
        }
    }

    #[test]
    fn touch_freed_page_is_ignored() {
        let mut t = table();
        let r = t.alloc(Segment::Execution, 2);
        t.free_range(r);
        assert!(!t.touch(r.start()));
        let out = t.touch_range(r);
        assert_eq!(out, TouchOutcome::default());
    }

    #[test]
    fn per_segment_accounting() {
        let mut t = table();
        t.alloc(Segment::Runtime, 10);
        t.alloc(Segment::Init, 20);
        let e = t.alloc(Segment::Execution, 5);
        assert_eq!(t.local_pages_in(Segment::Runtime), 10);
        assert_eq!(t.local_pages_in(Segment::Init), 20);
        assert_eq!(t.local_pages_in(Segment::Execution), 5);
        t.free_range(e);
        assert_eq!(t.local_pages_in(Segment::Execution), 0);
        t.offload_range(PageRange::new(PageId(0), 4));
        assert_eq!(t.local_pages_in(Segment::Runtime), 6);
    }

    #[test]
    fn collect_ids_filters_live_pages() {
        let mut t = table();
        let run = t.alloc(Segment::Runtime, 3);
        t.create_generation();
        let init = t.alloc(Segment::Init, 3);
        t.touch(init.start());
        let runtime_ids = t.collect_ids(|_, m| m.segment() == Segment::Runtime);
        assert_eq!(runtime_ids.len(), 3);
        let accessed = t.collect_ids(|_, m| m.accessed());
        assert_eq!(accessed, vec![init.start()]);
        t.free_range(run);
        assert!(t
            .collect_ids(|_, m| m.segment() == Segment::Runtime)
            .is_empty());
    }

    #[test]
    fn append_queries_respect_residency_and_hot_pool() {
        let mut t = table();
        t.alloc(Segment::Runtime, 70); // gen 0
        t.create_generation();
        let init = t.alloc(Segment::Init, 70); // gen 1
        t.offload_range(PageRange::new(PageId(0), 3));
        t.set_in_hot_pool(PageId(65), true);
        t.set_in_hot_pool(init.start(), true);

        let mut out = Vec::new();
        t.append_local(&mut out);
        assert_eq!(out.len(), 140 - 3);
        assert_eq!(out[0], PageId(3));

        out.clear();
        t.append_local_in_range(PageRange::new(PageId(0), 70), &mut out);
        assert_eq!(out.len(), 67);

        // Runtime pucket = generations [0, 1): live local non-hot.
        out.clear();
        t.append_inactive_in_gen_range(0, 1, &mut out);
        assert_eq!(out.len(), 70 - 3 - 1);
        assert!(!out.contains(&PageId(65)));
        assert_eq!(t.count_inactive_in_gen_range(0, 1), 66);
        assert_eq!(t.count_inactive_in_gen_range(1, u32::MAX), 69);

        out.clear();
        t.append_hot_pool_local(&mut out);
        assert_eq!(out, vec![PageId(65), init.start()]);

        // An offloaded hot page keeps its flag but stops being reported
        // as local, and rollback leaves it flagged for recall.
        t.offload(PageId(65));
        out.clear();
        t.append_hot_pool_local(&mut out);
        assert_eq!(out, vec![init.start()]);
        assert_eq!(t.clear_local_hot_pool(), 1);
        assert!(t.meta(PageId(65)).in_hot_pool());
        assert!(!t.meta(init.start()).in_hot_pool());
    }

    #[test]
    fn aging_scan_accumulates_idleness() {
        let mut t = table();
        let r = t.alloc(Segment::Init, 4);
        t.touch_range(r.take(1)); // page 0 hot, pages 1-3 idle
        assert!(
            t.age_and_collect_idle(2).is_empty(),
            "first scan: idle=1 < 2"
        );
        let cold = t.age_and_collect_idle(2);
        assert_eq!(cold.len(), 3, "second scan: pages 1-3 reach idle=2");
        assert!(!cold.contains(&r.start()));
        // Touching a cold page resets its idle counter; page 0 (untouched
        // since the first scan) now crosses the threshold too.
        t.touch(PageId(1));
        let cold = t.age_and_collect_idle(2);
        assert_eq!(cold.len(), 3);
        assert!(!cold.contains(&PageId(1)));
    }

    #[test]
    fn aging_scan_skips_remote_and_freed() {
        let mut t = table();
        let r = t.alloc(Segment::Execution, 3);
        t.offload(r.start());
        let cold = t.age_and_collect_idle(1);
        assert_eq!(cold.len(), 2, "remote page excluded");
        t.free_range(r);
        assert!(t.age_and_collect_idle(1).is_empty());
    }

    #[test]
    fn sampled_aging_with_full_probability_matches_exact() {
        let mk = || {
            let mut t = table();
            let r = t.alloc(Segment::Init, 8);
            t.touch_range(r.take(3));
            t
        };
        let mut exact = mk();
        let mut sampled = mk();
        let a = exact.age_and_collect_idle(1);
        let b = sampled.age_and_collect_idle_sampled(1, 1.0, || 0.5);
        assert_eq!(a, b, "p=1.0 sampling is exact");
    }

    #[test]
    fn sampled_aging_misses_accesses_at_low_probability() {
        let mut t = table();
        let r = t.alloc(Segment::Init, 100);
        t.touch_range(r); // everything hot
                          // Probability ~0: every access goes unobserved, so the whole hot
                          // set looks idle — the misclassification hazard of sampling.
        let cold = t.age_and_collect_idle_sampled(1, 1e-9, || 0.5);
        assert_eq!(cold.len(), 100);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sampled_aging_rejects_bad_probability() {
        let mut t = table();
        t.alloc(Segment::Init, 1);
        let _ = t.age_and_collect_idle_sampled(1, 0.0, || 0.5);
    }

    #[test]
    fn sampled_aging_draws_one_coin_per_accessed_page() {
        let mut t = table();
        let r = t.alloc(Segment::Init, 100);
        t.free_range(PageRange::new(PageId(90), 10));
        t.touch_range(r.take(40));
        let mut draws = 0u32;
        t.age_and_collect_idle_sampled(1, 0.5, || {
            draws += 1;
            0.9
        });
        assert_eq!(draws, 40, "idle and freed pages flip no coin");
    }

    #[test]
    fn stats_snapshot_consistent() {
        let mut t = table();
        let r = t.alloc(Segment::Init, 8);
        t.offload_range(r.take(3));
        let s = t.stats();
        assert_eq!(s.local_pages, 5);
        assert_eq!(s.remote_pages, 3);
        assert_eq!(s.local_bytes, 5 * PAGE_SIZE_4K);
        assert_eq!(s.remote_bytes, 3 * PAGE_SIZE_4K);
        assert_eq!(s.total_offloaded, 3);
        assert_eq!(s.resident_bytes(), 8 * PAGE_SIZE_4K);
    }

    #[test]
    fn generation_rollback_reassignment() {
        let mut t = table();
        let r = t.alloc(Segment::Runtime, 1);
        let barrier = t.create_generation();
        t.set_generation(r.start(), barrier);
        assert_eq!(t.meta(r.start()).generation(), 1);
    }

    #[test]
    #[should_panic]
    fn meta_of_unallocated_page_panics() {
        let t = table();
        let _ = t.meta(PageId(0));
    }

    #[test]
    fn attached_tracer_reports_batch_memory_events() {
        use faasmem_trace::{LayerMask, Tracer};

        let tracer = Tracer::recording(LayerMask::ALL);
        let mut t = table();
        t.attach_tracer(tracer.clone(), 7);
        let r = t.alloc(Segment::Init, 8);
        t.create_generation();
        t.offload_range(r.take(4));
        t.touch_range(r.take(2)); // 2 remote pages fault back in
        t.prefetch_pages(r.skip(2).take(2).iter());
        t.scan_accessed();
        t.age_and_collect_idle(1);

        let events = tracer.take_events();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
        assert_eq!(
            kinds,
            vec![
                "generation_create",
                "mem_offload",
                "mem_page_in", // demand
                "mem_page_in", // prefetch
                "access_scan",
                "generation_age",
            ]
        );
        assert!(events.iter().all(|e| e.container == Some(7)));
        assert_eq!(
            events[2].kind,
            faasmem_trace::EventKind::MemPageIn {
                pages: 2,
                demand: true
            }
        );
        assert_eq!(
            events[3].kind,
            faasmem_trace::EventKind::MemPageIn {
                pages: 2,
                demand: false
            }
        );
    }

    #[test]
    fn silent_batches_emit_nothing() {
        use faasmem_trace::{LayerMask, Tracer};

        let tracer = Tracer::recording(LayerMask::ALL);
        let mut t = table();
        t.attach_tracer(tracer.clone(), 0);
        let r = t.alloc(Segment::Init, 4);
        // Nothing remote: touch faults none, offload of remote pages
        // moves none the second time, prefetch of local moves none.
        t.touch_range(r);
        t.offload_range(r);
        t.offload_range(r);
        t.prefetch_pages(std::iter::empty());
        let kinds: Vec<&str> = tracer.take_events().iter().map(|e| e.kind.name()).collect();
        assert_eq!(kinds, vec!["mem_offload"]);
    }

    proptest::proptest! {
        #[test]
        fn prop_counters_match_state(ops in proptest::collection::vec(0u8..4, 1..120)) {
            let mut t = table();
            let mut ranges: Vec<PageRange> = Vec::new();
            for (i, op) in ops.iter().enumerate() {
                match op {
                    0 => ranges.push(t.alloc(Segment::ALL[i % 3], (i as u32 % 7) + 1)),
                    1 => {
                        if let Some(&r) = ranges.get(i % ranges.len().max(1)) {
                            t.offload_range(r);
                        }
                    }
                    2 => {
                        if let Some(&r) = ranges.get(i % ranges.len().max(1)) {
                            t.touch_range(r);
                        }
                    }
                    _ => {
                        if !ranges.is_empty() {
                            let r = ranges.swap_remove(i % ranges.len());
                            t.free_range(r);
                        }
                    }
                }
            }
            // Recount from raw metadata and compare with the counters.
            let mut local = 0u64;
            let mut remote = 0u64;
            let mut freed = 0u64;
            let mut by_seg = [0u64; 3];
            for i in 0..t.len() {
                let m = t.meta(PageId(i as u32));
                match m.state() {
                    PageState::Local => { local += 1; by_seg[m.segment().index()] += 1; }
                    PageState::Remote => remote += 1,
                    PageState::Freed => freed += 1,
                }
            }
            proptest::prop_assert_eq!(local, t.local_pages());
            proptest::prop_assert_eq!(remote, t.remote_pages());
            proptest::prop_assert_eq!(freed, t.freed_pages());
            for seg in Segment::ALL {
                proptest::prop_assert_eq!(by_seg[seg.index()], t.local_pages_in(seg));
            }
        }
    }
}
