//! The per-container page table.
//!
//! A [`PageTable`] is the moral equivalent of a container cgroup's memory
//! state in the paper's modified kernel: every page the container has
//! allocated, its residency (local DRAM vs remote pool), its simulated
//! Access bit, its MGLRU generation, and which lifecycle segment it was
//! allocated in. All policy code — FaaSMem's Puckets as well as the TMO
//! and DAMON baselines — operates purely through this interface, which is
//! what keeps the head-to-head evaluation honest.

use crate::page::{PageId, PageMeta, PageRange, PageState, Segment};
use crate::stats::MemStats;
use faasmem_trace::{EventKind, TraceLayer, Tracer};

/// An MGLRU generation number.
///
/// Creating a new generation is how FaaSMem inserts a *time barrier*
/// (paper §7): pages allocated afterwards carry the new generation, so the
/// barrier cleanly segregates runtime, init and execution pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Generation(pub u32);

/// Result of touching a set of pages during request execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TouchOutcome {
    /// Pages whose Access bit was set (resident or faulted-in).
    pub touched: u32,
    /// Pages that were remote and had to be faulted back from the pool.
    pub faulted: u32,
}

impl TouchOutcome {
    /// Accumulates another outcome into this one.
    pub fn merge(&mut self, other: TouchOutcome) {
        self.touched += other.touched;
        self.faulted += other.faulted;
    }
}

/// Per-container page table with MGLRU generations and residency tracking.
///
/// # Examples
///
/// ```
/// use faasmem_mem::{PageTable, Segment, PageState, PAGE_SIZE_4K};
///
/// let mut t = PageTable::new(PAGE_SIZE_4K);
/// let runtime = t.alloc(Segment::Runtime, 100);
/// let barrier = t.create_generation(); // Runtime-Init time barrier
/// let init = t.alloc(Segment::Init, 50);
/// assert!(t.meta(runtime.start()).generation() < barrier.0);
/// assert_eq!(t.meta(init.start()).generation(), barrier.0);
/// let n = t.offload_range(runtime);
/// assert_eq!(n, 100);
/// assert_eq!(t.meta(runtime.start()).state(), PageState::Remote);
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    page_size: u64,
    pages: Vec<PageMeta>,
    current_gen: u32,
    /// Freed execution ranges available for reuse, newest last.
    free_exec: Vec<PageRange>,
    local_pages: u64,
    remote_pages: u64,
    freed_pages: u64,
    local_by_segment: [u64; 3],
    /// Lifetime counters for bandwidth accounting.
    total_offloaded: u64,
    total_faulted: u64,
    /// Trace emission handle (disabled by default) and the container id
    /// batch events are attributed to.
    tracer: Tracer,
    owner: Option<u64>,
}

impl PageTable {
    /// Creates an empty table with the given page size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero.
    pub fn new(page_size: u64) -> Self {
        assert!(page_size > 0, "page size must be positive");
        PageTable {
            page_size,
            pages: Vec::new(),
            current_gen: 0,
            free_exec: Vec::new(),
            local_pages: 0,
            remote_pages: 0,
            freed_pages: 0,
            local_by_segment: [0; 3],
            total_offloaded: 0,
            total_faulted: 0,
            tracer: Tracer::disabled(),
            owner: None,
        }
    }

    /// Attaches a trace emission handle. Batch operations (scans, aging
    /// walks, bulk offload/page-in) emit memory-layer events attributed
    /// to container `owner`; single-page primitives stay silent so a
    /// batch never double-reports.
    pub fn attach_tracer(&mut self, tracer: Tracer, owner: u64) {
        self.tracer = tracer;
        self.owner = Some(owner);
    }

    /// Bytes per page.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Total pages ever allocated (including freed slots awaiting reuse).
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// `true` when no pages have been allocated.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// The generation newly allocated pages are tagged with.
    pub fn current_generation(&self) -> Generation {
        Generation(self.current_gen)
    }

    /// Starts a new MGLRU generation and returns it. This is the
    /// time-barrier insertion primitive: pages allocated from now on carry
    /// the returned generation.
    pub fn create_generation(&mut self) -> Generation {
        self.current_gen += 1;
        if self.tracer.wants(TraceLayer::Memory) {
            self.tracer.emit(
                self.owner,
                None,
                EventKind::GenerationCreate {
                    generation: u64::from(self.current_gen),
                },
            );
        }
        Generation(self.current_gen)
    }

    /// Allocates `count` local pages in `segment`, tagged with the current
    /// generation. Execution pages are recycled from previously freed
    /// ranges when an exact-fit or larger range is available.
    pub fn alloc(&mut self, segment: Segment, count: u32) -> PageRange {
        if count == 0 {
            return PageRange::EMPTY;
        }
        if segment == Segment::Execution {
            if let Some(range) = self.take_free_exec(count) {
                for id in range.iter() {
                    let gen = self.current_gen;
                    let meta = &mut self.pages[id.index()];
                    debug_assert_eq!(meta.state(), PageState::Freed);
                    *meta = PageMeta::new(Segment::Execution, gen);
                }
                self.freed_pages -= u64::from(range.len());
                self.local_pages += u64::from(range.len());
                self.local_by_segment[Segment::Execution.index()] += u64::from(range.len());
                return range;
            }
        }
        let start = PageId(self.pages.len() as u32);
        self.pages.extend(std::iter::repeat_n(
            PageMeta::new(segment, self.current_gen),
            count as usize,
        ));
        self.local_pages += u64::from(count);
        self.local_by_segment[segment.index()] += u64::from(count);
        PageRange::new(start, count)
    }

    fn take_free_exec(&mut self, count: u32) -> Option<PageRange> {
        let pos = self.free_exec.iter().rposition(|r| r.len() >= count)?;
        let range = self.free_exec[pos];
        let taken = range.take(count);
        let rest = range.skip(count);
        if rest.is_empty() {
            self.free_exec.swap_remove(pos);
        } else {
            self.free_exec[pos] = rest;
        }
        Some(taken)
    }

    /// Metadata for one page.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never allocated.
    pub fn meta(&self, id: PageId) -> PageMeta {
        self.pages[id.index()]
    }

    /// Touches one page: sets its Access bit and bumps its access counter.
    /// Returns `true` if the page was remote and got faulted back in.
    ///
    /// Freed pages are ignored (returns `false`).
    pub fn touch(&mut self, id: PageId) -> bool {
        let meta = &mut self.pages[id.index()];
        match meta.state() {
            PageState::Freed => false,
            PageState::Local => {
                meta.set_accessed(true);
                meta.bump_access_count();
                false
            }
            PageState::Remote => {
                meta.set_accessed(true);
                meta.bump_access_count();
                meta.set_state(PageState::Local);
                meta.set_recently_faulted(true);
                let seg = meta.segment();
                self.remote_pages -= 1;
                self.local_pages += 1;
                self.local_by_segment[seg.index()] += 1;
                self.total_faulted += 1;
                true
            }
        }
    }

    /// Touches every page of a range.
    pub fn touch_range(&mut self, range: PageRange) -> TouchOutcome {
        let mut out = TouchOutcome::default();
        for id in range.iter() {
            if self.pages[id.index()].state() == PageState::Freed {
                continue;
            }
            out.touched += 1;
            if self.touch(id) {
                out.faulted += 1;
            }
        }
        self.trace_demand_faults(out.faulted);
        out
    }

    /// Touches an arbitrary set of pages.
    pub fn touch_pages<I: IntoIterator<Item = PageId>>(&mut self, ids: I) -> TouchOutcome {
        let mut out = TouchOutcome::default();
        for id in ids {
            if self.pages[id.index()].state() == PageState::Freed {
                continue;
            }
            out.touched += 1;
            if self.touch(id) {
                out.faulted += 1;
            }
        }
        self.trace_demand_faults(out.faulted);
        out
    }

    fn trace_demand_faults(&self, faulted: u32) {
        if faulted > 0 && self.tracer.wants(TraceLayer::Memory) {
            self.tracer.emit(
                self.owner,
                None,
                EventKind::MemPageIn {
                    pages: u64::from(faulted),
                    demand: true,
                },
            );
        }
    }

    /// Brings one remote page back to local DRAM *without* marking it
    /// accessed — the prefetch path (Leap-style prefetchers pull pages
    /// ahead of demand, so no Access bit flips and no fault is counted).
    /// Returns `true` if the page was remote.
    pub fn prefetch(&mut self, id: PageId) -> bool {
        let meta = &mut self.pages[id.index()];
        if meta.state() != PageState::Remote {
            return false;
        }
        meta.set_state(PageState::Local);
        let seg = meta.segment();
        self.remote_pages -= 1;
        self.local_pages += 1;
        self.local_by_segment[seg.index()] += 1;
        true
    }

    /// Prefetches the given pages; returns how many moved.
    pub fn prefetch_pages<I: IntoIterator<Item = PageId>>(&mut self, ids: I) -> u32 {
        let moved = ids.into_iter().filter(|&id| self.prefetch(id)).count() as u32;
        if moved > 0 && self.tracer.wants(TraceLayer::Memory) {
            self.tracer.emit(
                self.owner,
                None,
                EventKind::MemPageIn {
                    pages: u64::from(moved),
                    demand: false,
                },
            );
        }
        moved
    }

    /// Moves one local page to the remote pool. Returns `true` if the page
    /// was local (and is now remote); remote and freed pages are no-ops.
    pub fn offload(&mut self, id: PageId) -> bool {
        let meta = &mut self.pages[id.index()];
        if meta.state() != PageState::Local {
            return false;
        }
        meta.set_state(PageState::Remote);
        let seg = meta.segment();
        self.local_pages -= 1;
        self.local_by_segment[seg.index()] -= 1;
        self.remote_pages += 1;
        self.total_offloaded += 1;
        true
    }

    /// Offloads every local page in `range`; returns how many moved.
    pub fn offload_range(&mut self, range: PageRange) -> u32 {
        let moved = range.iter().filter(|&id| self.offload(id)).count() as u32;
        self.trace_offload(moved);
        moved
    }

    /// Offloads the given pages; returns how many moved.
    pub fn offload_pages<I: IntoIterator<Item = PageId>>(&mut self, ids: I) -> u32 {
        let moved = ids.into_iter().filter(|&id| self.offload(id)).count() as u32;
        self.trace_offload(moved);
        moved
    }

    fn trace_offload(&self, moved: u32) {
        if moved > 0 && self.tracer.wants(TraceLayer::Memory) {
            self.tracer.emit(
                self.owner,
                None,
                EventKind::MemOffload {
                    pages: u64::from(moved),
                },
            );
        }
    }

    /// Frees a range (execution pages after a request). Local and remote
    /// pages both transition to [`PageState::Freed`]; the range becomes
    /// available for execution-segment reuse.
    pub fn free_range(&mut self, range: PageRange) {
        if range.is_empty() {
            return;
        }
        for id in range.iter() {
            let meta = &mut self.pages[id.index()];
            match meta.state() {
                PageState::Local => {
                    self.local_pages -= 1;
                    self.local_by_segment[meta.segment().index()] -= 1;
                }
                PageState::Remote => {
                    self.remote_pages -= 1;
                }
                PageState::Freed => continue,
            }
            meta.set_state(PageState::Freed);
            meta.set_accessed(false);
            meta.set_in_hot_pool(false);
            self.freed_pages += 1;
        }
        self.free_exec.push(range);
    }

    /// Scans the Access bits over all live pages, clears them, and returns
    /// the ids of pages that were accessed since the previous scan.
    ///
    /// This is the MGLRU aging walk the paper's mechanisms (and the DAMON
    /// baseline) sample from. The per-page "recently faulted" flag is
    /// consumed (cleared) by the scan as well.
    pub fn scan_accessed(&mut self) -> Vec<PageId> {
        self.scan_accessed_with_faults()
            .into_iter()
            .map(|(id, _)| id)
            .collect()
    }

    /// Like [`PageTable::scan_accessed`], but also reports per page
    /// whether the access faulted it back from remote memory since the
    /// previous scan — the signal recall accounting (Fig 8) needs.
    pub fn scan_accessed_with_faults(&mut self) -> Vec<(PageId, bool)> {
        let mut hits = Vec::new();
        for (i, meta) in self.pages.iter_mut().enumerate() {
            if meta.state() == PageState::Freed {
                continue;
            }
            if meta.accessed() {
                hits.push((PageId(i as u32), meta.recently_faulted()));
                meta.set_accessed(false);
            }
            meta.set_recently_faulted(false);
        }
        if self.tracer.wants(TraceLayer::Memory) {
            self.tracer.emit(
                self.owner,
                None,
                EventKind::AccessScan {
                    live: self.local_pages + self.remote_pages,
                    accessed: hits.len() as u64,
                },
            );
        }
        hits
    }

    /// Performs one DAMON-style aging scan: pages accessed since the last
    /// scan get their idle counter reset (and Access bit cleared); pages
    /// untouched get it incremented. Returns the ids of *local* pages
    /// whose idle count has reached `idle_threshold` — the cold-region
    /// candidates a sampling policy would offload.
    pub fn age_and_collect_idle(&mut self, idle_threshold: u8) -> Vec<PageId> {
        let mut cold = Vec::new();
        for (i, meta) in self.pages.iter_mut().enumerate() {
            if meta.state() == PageState::Freed {
                continue;
            }
            if meta.accessed() {
                meta.set_accessed(false);
                meta.reset_idle_scans();
            } else {
                meta.bump_idle_scans();
                if meta.idle_scans() >= idle_threshold && meta.state() == PageState::Local {
                    cold.push(PageId(i as u32));
                }
            }
        }
        self.trace_aging(idle_threshold, cold.len() as u64);
        cold
    }

    fn trace_aging(&self, threshold: u8, collected: u64) {
        if self.tracer.wants(TraceLayer::Memory) {
            self.tracer.emit(
                self.owner,
                None,
                EventKind::GenerationAge {
                    threshold: u64::from(threshold),
                    collected,
                },
            );
        }
    }

    /// A hardware-sampled variant of [`PageTable::age_and_collect_idle`]
    /// (paper §9: PEBS-style samplers reduce cold-page identification
    /// overhead). Instead of reading every Access bit, each accessed page
    /// is *observed* only with probability `sample_prob`; unobserved
    /// accesses are invisible, so hot pages can be misclassified as cold
    /// — the accuracy/overhead trade-off hardware sampling makes.
    ///
    /// `coin` supplies the per-page sampling randomness (a closure so the
    /// table stays RNG-agnostic).
    ///
    /// # Panics
    ///
    /// Panics if `sample_prob` is not in `(0, 1]`.
    pub fn age_and_collect_idle_sampled<F: FnMut() -> f64>(
        &mut self,
        idle_threshold: u8,
        sample_prob: f64,
        mut coin: F,
    ) -> Vec<PageId> {
        assert!(
            sample_prob > 0.0 && sample_prob <= 1.0,
            "sample probability {sample_prob} out of range"
        );
        let mut cold = Vec::new();
        for (i, meta) in self.pages.iter_mut().enumerate() {
            if meta.state() == PageState::Freed {
                continue;
            }
            let observed_access = meta.accessed() && coin() < sample_prob;
            if meta.accessed() {
                meta.set_accessed(false);
            }
            if observed_access {
                meta.reset_idle_scans();
            } else {
                meta.bump_idle_scans();
                if meta.idle_scans() >= idle_threshold && meta.state() == PageState::Local {
                    cold.push(PageId(i as u32));
                }
            }
        }
        self.trace_aging(idle_threshold, cold.len() as u64);
        cold
    }

    /// Collects ids of live pages matching a predicate over their metadata.
    pub fn collect_ids<F: Fn(PageId, PageMeta) -> bool>(&self, pred: F) -> Vec<PageId> {
        self.pages
            .iter()
            .enumerate()
            .filter_map(|(i, &m)| {
                let id = PageId(i as u32);
                (m.state() != PageState::Freed && pred(id, m)).then_some(id)
            })
            .collect()
    }

    /// Iterates over `(id, meta)` for every live (non-freed) page.
    pub fn iter_live(&self) -> impl Iterator<Item = (PageId, PageMeta)> + '_ {
        self.pages
            .iter()
            .enumerate()
            .filter(|(_, m)| m.state() != PageState::Freed)
            .map(|(i, &m)| (PageId(i as u32), m))
    }

    /// Histogram of live-page ages in generations: bucket `i` counts
    /// pages whose generation lags the table's current generation by
    /// exactly `i`, with everything older collapsed into the last
    /// bucket. Feeds the `mem.gen_age_*` telemetry series; an empty
    /// table yields all-zero buckets.
    pub fn generation_age_histogram(&self, buckets: usize) -> Vec<u64> {
        assert!(buckets > 0, "histogram needs at least one bucket");
        let mut hist = vec![0u64; buckets];
        let current = self.current_generation().0;
        for (_, meta) in self.iter_live() {
            let age = current.saturating_sub(meta.generation()) as usize;
            hist[age.min(buckets - 1)] += 1;
        }
        hist
    }

    /// Marks hot-page-pool membership for one page.
    pub fn set_in_hot_pool(&mut self, id: PageId, on: bool) {
        self.pages[id.index()].set_in_hot_pool(on);
    }

    /// Reassigns a page's generation (used when rolling hot pages back to
    /// their original Pucket).
    pub fn set_generation(&mut self, id: PageId, generation: Generation) {
        self.pages[id.index()].set_generation(generation.0);
    }

    /// Clears the lifetime access counter of a page.
    pub fn reset_access_count(&mut self, id: PageId) {
        self.pages[id.index()].reset_access_count();
    }

    /// Pages currently resident in local DRAM.
    pub fn local_pages(&self) -> u64 {
        self.local_pages
    }

    /// Pages currently swapped out to the remote pool.
    pub fn remote_pages(&self) -> u64 {
        self.remote_pages
    }

    /// Pages in the freed state awaiting execution-segment reuse.
    pub fn freed_pages(&self) -> u64 {
        self.freed_pages
    }

    /// Local pages belonging to `segment`.
    pub fn local_pages_in(&self, segment: Segment) -> u64 {
        self.local_by_segment[segment.index()]
    }

    /// Local memory footprint in bytes.
    pub fn local_bytes(&self) -> u64 {
        self.local_pages * self.page_size
    }

    /// Remote memory footprint in bytes.
    pub fn remote_bytes(&self) -> u64 {
        self.remote_pages * self.page_size
    }

    /// Lifetime count of pages offloaded to the pool.
    pub fn total_offloaded(&self) -> u64 {
        self.total_offloaded
    }

    /// Lifetime count of remote pages faulted back in.
    pub fn total_faulted(&self) -> u64 {
        self.total_faulted
    }

    /// A cgroup-style accounting snapshot.
    pub fn stats(&self) -> MemStats {
        MemStats {
            local_bytes: self.local_bytes(),
            remote_bytes: self.remote_bytes(),
            local_pages: self.local_pages,
            remote_pages: self.remote_pages,
            total_offloaded: self.total_offloaded,
            total_faulted: self.total_faulted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAGE_SIZE_4K;

    fn table() -> PageTable {
        PageTable::new(PAGE_SIZE_4K)
    }

    #[test]
    fn alloc_tags_segment_and_generation() {
        let mut t = table();
        let r = t.alloc(Segment::Runtime, 10);
        assert_eq!(r.len(), 10);
        for id in r.iter() {
            let m = t.meta(id);
            assert_eq!(m.segment(), Segment::Runtime);
            assert_eq!(m.generation(), 0);
            assert_eq!(m.state(), PageState::Local);
        }
        let g = t.create_generation();
        assert_eq!(g, Generation(1));
        let r2 = t.alloc(Segment::Init, 5);
        assert_eq!(t.meta(r2.start()).generation(), 1);
    }

    #[test]
    fn generation_age_histogram_buckets_by_lag_and_clamps_tail() {
        let mut t = table();
        assert_eq!(t.generation_age_histogram(3), [0, 0, 0]);
        t.alloc(Segment::Runtime, 4); // gen 0
        t.create_generation();
        t.alloc(Segment::Init, 2); // gen 1
        t.create_generation();
        t.alloc(Segment::Execution, 1); // gen 2 == current
                                        // Ages: exec=0, init=1, runtime=2.
        assert_eq!(t.generation_age_histogram(3), [1, 2, 4]);
        // With two buckets the runtime pages collapse into the tail.
        assert_eq!(t.generation_age_histogram(2), [1, 6]);
        // Another barrier shifts everything one bucket older.
        t.create_generation();
        assert_eq!(t.generation_age_histogram(4), [0, 1, 2, 4]);
    }

    #[test]
    fn alloc_zero_is_empty() {
        let mut t = table();
        assert!(t.alloc(Segment::Init, 0).is_empty());
        assert!(t.is_empty());
    }

    #[test]
    fn touch_sets_access_bit_and_faults_remote() {
        let mut t = table();
        let r = t.alloc(Segment::Init, 4);
        assert_eq!(t.offload_range(r), 4);
        assert_eq!(t.remote_pages(), 4);
        let out = t.touch_range(r);
        assert_eq!(
            out,
            TouchOutcome {
                touched: 4,
                faulted: 4
            }
        );
        assert_eq!(t.remote_pages(), 0);
        assert_eq!(t.local_pages(), 4);
        // Second touch: no faults.
        let out = t.touch_range(r);
        assert_eq!(
            out,
            TouchOutcome {
                touched: 4,
                faulted: 0
            }
        );
        assert_eq!(t.total_faulted(), 4);
    }

    #[test]
    fn scan_accessed_clears_bits() {
        let mut t = table();
        let r = t.alloc(Segment::Runtime, 8);
        t.touch_range(r.take(3));
        let hits = t.scan_accessed();
        assert_eq!(hits.len(), 3);
        assert!(t.scan_accessed().is_empty());
    }

    #[test]
    fn prefetch_restores_without_access_or_fault() {
        let mut t = table();
        let r = t.alloc(Segment::Init, 4);
        t.offload_range(r);
        t.scan_accessed(); // clear allocation bits
        assert_eq!(t.prefetch_pages(r.iter()), 4);
        assert_eq!(t.remote_pages(), 0);
        assert_eq!(t.local_pages(), 4);
        assert_eq!(t.total_faulted(), 0, "prefetch is not a fault");
        for id in r.iter() {
            assert!(!t.meta(id).accessed(), "prefetch leaves Access bits clear");
            assert!(!t.meta(id).recently_faulted());
        }
        // Prefetching local pages is a no-op.
        assert_eq!(t.prefetch_pages(r.iter()), 0);
    }

    #[test]
    fn offload_is_idempotent() {
        let mut t = table();
        let r = t.alloc(Segment::Runtime, 2);
        assert!(t.offload(r.start()));
        assert!(!t.offload(r.start()));
        assert_eq!(t.total_offloaded(), 1);
        assert_eq!(t.local_pages(), 1);
        assert_eq!(t.remote_pages(), 1);
    }

    #[test]
    fn free_releases_local_and_remote() {
        let mut t = table();
        let r = t.alloc(Segment::Execution, 6);
        t.offload_range(r.take(2));
        t.free_range(r);
        assert_eq!(t.local_pages(), 0);
        assert_eq!(t.remote_pages(), 0);
        assert_eq!(t.freed_pages(), 6);
        assert_eq!(t.local_bytes(), 0);
    }

    #[test]
    fn freed_exec_pages_are_recycled() {
        let mut t = table();
        let r1 = t.alloc(Segment::Execution, 100);
        t.free_range(r1);
        let r2 = t.alloc(Segment::Execution, 100);
        assert_eq!(r1, r2, "exact-fit reuse");
        assert_eq!(t.len(), 100, "no new slots created");
        assert_eq!(t.freed_pages(), 0);
        assert_eq!(t.local_pages(), 100);
    }

    #[test]
    fn partial_reuse_splits_range() {
        let mut t = table();
        let r1 = t.alloc(Segment::Execution, 10);
        t.free_range(r1);
        let r2 = t.alloc(Segment::Execution, 4);
        assert_eq!(r2.len(), 4);
        let r3 = t.alloc(Segment::Execution, 6);
        assert_eq!(r3.len(), 6);
        assert_eq!(t.len(), 10);
        assert!(!r2.contains(r3.start()));
    }

    #[test]
    fn recycled_pages_get_fresh_metadata() {
        let mut t = table();
        let r1 = t.alloc(Segment::Execution, 3);
        t.touch_range(r1);
        t.free_range(r1);
        t.create_generation();
        let r2 = t.alloc(Segment::Execution, 3);
        for id in r2.iter() {
            let m = t.meta(id);
            assert!(!m.accessed());
            assert_eq!(m.generation(), 1);
            assert_eq!(m.state(), PageState::Local);
        }
    }

    #[test]
    fn touch_freed_page_is_ignored() {
        let mut t = table();
        let r = t.alloc(Segment::Execution, 2);
        t.free_range(r);
        assert!(!t.touch(r.start()));
        let out = t.touch_range(r);
        assert_eq!(out, TouchOutcome::default());
    }

    #[test]
    fn per_segment_accounting() {
        let mut t = table();
        t.alloc(Segment::Runtime, 10);
        t.alloc(Segment::Init, 20);
        let e = t.alloc(Segment::Execution, 5);
        assert_eq!(t.local_pages_in(Segment::Runtime), 10);
        assert_eq!(t.local_pages_in(Segment::Init), 20);
        assert_eq!(t.local_pages_in(Segment::Execution), 5);
        t.free_range(e);
        assert_eq!(t.local_pages_in(Segment::Execution), 0);
        t.offload_range(PageRange::new(PageId(0), 4));
        assert_eq!(t.local_pages_in(Segment::Runtime), 6);
    }

    #[test]
    fn collect_ids_filters_live_pages() {
        let mut t = table();
        let run = t.alloc(Segment::Runtime, 3);
        t.create_generation();
        let init = t.alloc(Segment::Init, 3);
        t.touch(init.start());
        let runtime_ids = t.collect_ids(|_, m| m.segment() == Segment::Runtime);
        assert_eq!(runtime_ids.len(), 3);
        let accessed = t.collect_ids(|_, m| m.accessed());
        assert_eq!(accessed, vec![init.start()]);
        t.free_range(run);
        assert!(t
            .collect_ids(|_, m| m.segment() == Segment::Runtime)
            .is_empty());
    }

    #[test]
    fn aging_scan_accumulates_idleness() {
        let mut t = table();
        let r = t.alloc(Segment::Init, 4);
        t.touch_range(r.take(1)); // page 0 hot, pages 1-3 idle
        assert!(
            t.age_and_collect_idle(2).is_empty(),
            "first scan: idle=1 < 2"
        );
        let cold = t.age_and_collect_idle(2);
        assert_eq!(cold.len(), 3, "second scan: pages 1-3 reach idle=2");
        assert!(!cold.contains(&r.start()));
        // Touching a cold page resets its idle counter; page 0 (untouched
        // since the first scan) now crosses the threshold too.
        t.touch(PageId(1));
        let cold = t.age_and_collect_idle(2);
        assert_eq!(cold.len(), 3);
        assert!(!cold.contains(&PageId(1)));
    }

    #[test]
    fn aging_scan_skips_remote_and_freed() {
        let mut t = table();
        let r = t.alloc(Segment::Execution, 3);
        t.offload(r.start());
        let cold = t.age_and_collect_idle(1);
        assert_eq!(cold.len(), 2, "remote page excluded");
        t.free_range(r);
        assert!(t.age_and_collect_idle(1).is_empty());
    }

    #[test]
    fn sampled_aging_with_full_probability_matches_exact() {
        let mk = || {
            let mut t = table();
            let r = t.alloc(Segment::Init, 8);
            t.touch_range(r.take(3));
            t
        };
        let mut exact = mk();
        let mut sampled = mk();
        let a = exact.age_and_collect_idle(1);
        let b = sampled.age_and_collect_idle_sampled(1, 1.0, || 0.5);
        assert_eq!(a, b, "p=1.0 sampling is exact");
    }

    #[test]
    fn sampled_aging_misses_accesses_at_low_probability() {
        let mut t = table();
        let r = t.alloc(Segment::Init, 100);
        t.touch_range(r); // everything hot
                          // Probability ~0: every access goes unobserved, so the whole hot
                          // set looks idle — the misclassification hazard of sampling.
        let cold = t.age_and_collect_idle_sampled(1, 1e-9, || 0.5);
        assert_eq!(cold.len(), 100);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sampled_aging_rejects_bad_probability() {
        let mut t = table();
        t.alloc(Segment::Init, 1);
        let _ = t.age_and_collect_idle_sampled(1, 0.0, || 0.5);
    }

    #[test]
    fn stats_snapshot_consistent() {
        let mut t = table();
        let r = t.alloc(Segment::Init, 8);
        t.offload_range(r.take(3));
        let s = t.stats();
        assert_eq!(s.local_pages, 5);
        assert_eq!(s.remote_pages, 3);
        assert_eq!(s.local_bytes, 5 * PAGE_SIZE_4K);
        assert_eq!(s.remote_bytes, 3 * PAGE_SIZE_4K);
        assert_eq!(s.total_offloaded, 3);
        assert_eq!(s.resident_bytes(), 8 * PAGE_SIZE_4K);
    }

    #[test]
    fn generation_rollback_reassignment() {
        let mut t = table();
        let r = t.alloc(Segment::Runtime, 1);
        let barrier = t.create_generation();
        t.set_generation(r.start(), barrier);
        assert_eq!(t.meta(r.start()).generation(), 1);
    }

    #[test]
    #[should_panic]
    fn meta_of_unallocated_page_panics() {
        let t = table();
        let _ = t.meta(PageId(0));
    }

    #[test]
    fn attached_tracer_reports_batch_memory_events() {
        use faasmem_trace::{LayerMask, Tracer};

        let tracer = Tracer::recording(LayerMask::ALL);
        let mut t = table();
        t.attach_tracer(tracer.clone(), 7);
        let r = t.alloc(Segment::Init, 8);
        t.create_generation();
        t.offload_range(r.take(4));
        t.touch_range(r.take(2)); // 2 remote pages fault back in
        t.prefetch_pages(r.skip(2).take(2).iter());
        t.scan_accessed();
        t.age_and_collect_idle(1);

        let events = tracer.take_events();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
        assert_eq!(
            kinds,
            vec![
                "generation_create",
                "mem_offload",
                "mem_page_in", // demand
                "mem_page_in", // prefetch
                "access_scan",
                "generation_age",
            ]
        );
        assert!(events.iter().all(|e| e.container == Some(7)));
        assert_eq!(
            events[2].kind,
            faasmem_trace::EventKind::MemPageIn {
                pages: 2,
                demand: true
            }
        );
        assert_eq!(
            events[3].kind,
            faasmem_trace::EventKind::MemPageIn {
                pages: 2,
                demand: false
            }
        );
    }

    #[test]
    fn silent_batches_emit_nothing() {
        use faasmem_trace::{LayerMask, Tracer};

        let tracer = Tracer::recording(LayerMask::ALL);
        let mut t = table();
        t.attach_tracer(tracer.clone(), 0);
        let r = t.alloc(Segment::Init, 4);
        // Nothing remote: touch faults none, offload of remote pages
        // moves none the second time, prefetch of local moves none.
        t.touch_range(r);
        t.offload_range(r);
        t.offload_range(r);
        t.prefetch_pages(std::iter::empty());
        let kinds: Vec<&str> = tracer.take_events().iter().map(|e| e.kind.name()).collect();
        assert_eq!(kinds, vec!["mem_offload"]);
    }

    proptest::proptest! {
        #[test]
        fn prop_counters_match_state(ops in proptest::collection::vec(0u8..4, 1..120)) {
            let mut t = table();
            let mut ranges: Vec<PageRange> = Vec::new();
            for (i, op) in ops.iter().enumerate() {
                match op {
                    0 => ranges.push(t.alloc(Segment::ALL[i % 3], (i as u32 % 7) + 1)),
                    1 => {
                        if let Some(&r) = ranges.get(i % ranges.len().max(1)) {
                            t.offload_range(r);
                        }
                    }
                    2 => {
                        if let Some(&r) = ranges.get(i % ranges.len().max(1)) {
                            t.touch_range(r);
                        }
                    }
                    _ => {
                        if !ranges.is_empty() {
                            let r = ranges.swap_remove(i % ranges.len());
                            t.free_range(r);
                        }
                    }
                }
            }
            // Recount from raw metadata and compare with the counters.
            let mut local = 0u64;
            let mut remote = 0u64;
            let mut freed = 0u64;
            let mut by_seg = [0u64; 3];
            for i in 0..t.len() {
                let m = t.meta(PageId(i as u32));
                match m.state() {
                    PageState::Local => { local += 1; by_seg[m.segment().index()] += 1; }
                    PageState::Remote => remote += 1,
                    PageState::Freed => freed += 1,
                }
            }
            proptest::prop_assert_eq!(local, t.local_pages());
            proptest::prop_assert_eq!(remote, t.remote_pages());
            proptest::prop_assert_eq!(freed, t.freed_pages());
            for seg in Segment::ALL {
                proptest::prop_assert_eq!(by_seg[seg.index()], t.local_pages_in(seg));
            }
        }
    }
}
