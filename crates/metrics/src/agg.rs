//! Scalar aggregation helpers shared by the experiment harness.
//!
//! The harness summarizes per-cell wall-clock and throughput numbers and
//! the binaries average metrics across benchmarks; these free functions
//! keep that arithmetic in one tested place.

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Geometric mean of strictly positive values; `None` for an empty slice
/// or any non-positive value. The right average for ratios such as
/// "FaaSMem memory relative to Baseline" across benchmarks.
pub fn geo_mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    Some((log_sum / xs.len() as f64).exp())
}

/// Smallest and largest value; `None` for an empty slice. NaNs are
/// ignored; a slice of only NaNs yields `None`.
pub fn min_max(xs: &[f64]) -> Option<(f64, f64)> {
    let mut out: Option<(f64, f64)> = None;
    for &x in xs {
        if x.is_nan() {
            continue;
        }
        out = Some(match out {
            None => (x, x),
            Some((lo, hi)) => (lo.min(x), hi.max(x)),
        });
    }
    out
}

/// Sum of all values.
pub fn total(xs: &[f64]) -> f64 {
    xs.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
    }

    #[test]
    fn geo_mean_basic() {
        assert_eq!(geo_mean(&[]), None);
        assert_eq!(geo_mean(&[4.0, 0.0]), None);
        assert_eq!(geo_mean(&[4.0, -1.0]), None);
        let g = geo_mean(&[2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12, "{g}");
    }

    #[test]
    fn min_max_skips_nans() {
        assert_eq!(min_max(&[]), None);
        assert_eq!(min_max(&[f64::NAN]), None);
        assert_eq!(min_max(&[3.0, f64::NAN, -1.0, 2.0]), Some((-1.0, 3.0)));
    }

    #[test]
    fn total_sums() {
        assert_eq!(total(&[]), 0.0);
        assert_eq!(total(&[1.5, 2.5]), 4.0);
    }
}
