//! Per-invocation latency blame: exact decomposition of end-to-end
//! latency into named causal components.
//!
//! The platform charges every invocation a measured end-to-end latency;
//! this module splits that latency into *components* — queueing,
//! cold-start, pure execution, and the stall families the memory-pool
//! architecture introduces (page-fault CPU, remote recall stalls,
//! failover detours, abandoned waits, forced rebuilds). The split obeys
//! an **exact conservation invariant**: for every invocation the
//! components, in integer microseconds, sum to the measured latency —
//! not approximately, exactly. The platform records each component as
//! the very [`SimDuration`] addend the simulator folds into the
//! invocation's timeline, so conservation is structural, and a property
//! test pins it.
//!
//! Aggregation answers two questions per run:
//!
//! * *distribution*: per-component AVG/P50/P95/P99 over all invocations
//!   (zeros included, so a rare-but-huge component shows a zero median
//!   and a violent P99 — exactly the shape that matters);
//! * *tail attribution*: the mean of every component over the slowest
//!   1% of invocations, i.e. "where does P99 come from?".
//!
//! Everything here is integer arithmetic over samples recorded in the
//! simulator's deterministic `(sim_time, seq)` event order, so reports
//! are byte-identical across `--jobs` and `--shards` like every other
//! subsystem.

use crate::latency::{LatencyRecorder, LatencySummary};
use faasmem_sim::SimDuration;

/// The named causes an invocation's latency is charged to.
///
/// `Queue` and `ColdStart` cover the pre-execution segment, `Exec` the
/// jitter-scaled service time, and the remaining five are the stall
/// families the remote memory pool can inject at execution start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlameComponent {
    /// Time between arrival and the start of container provisioning
    /// (zero on today's single-node platform; the seam the cluster
    /// scheduler will fill).
    Queue,
    /// Cold-start provisioning: runtime launch plus initialization.
    ColdStart,
    /// Pure execution time (jittered service time, stalls excluded).
    Exec,
    /// CPU cost of servicing page faults (local and remote).
    FaultCpu,
    /// Wall time stalled waiting on remote page transfers, including
    /// retry backoff of the resilient page-in path.
    RecallStall,
    /// Extra penalty of recalling from a redundancy replica after the
    /// primary pool node died or the breaker forced a detour.
    FailoverDetour,
    /// Time wasted on a recall attempt that ultimately gave up.
    AbandonedWait,
    /// Slow-path cold rebuild after remote state was lost beyond
    /// recovery.
    ForcedRebuild,
}

/// Number of blame components; the length of every per-component array.
pub const BLAME_COMPONENTS: usize = 8;

impl BlameComponent {
    /// Every component, in canonical (reporting) order.
    pub const ALL: [BlameComponent; BLAME_COMPONENTS] = [
        BlameComponent::Queue,
        BlameComponent::ColdStart,
        BlameComponent::Exec,
        BlameComponent::FaultCpu,
        BlameComponent::RecallStall,
        BlameComponent::FailoverDetour,
        BlameComponent::AbandonedWait,
        BlameComponent::ForcedRebuild,
    ];

    /// Stable snake_case name used in JSON exports and query filters.
    pub fn name(self) -> &'static str {
        match self {
            BlameComponent::Queue => "queue",
            BlameComponent::ColdStart => "cold_start",
            BlameComponent::Exec => "exec",
            BlameComponent::FaultCpu => "fault_cpu",
            BlameComponent::RecallStall => "recall_stall",
            BlameComponent::FailoverDetour => "failover_detour",
            BlameComponent::AbandonedWait => "abandoned_wait",
            BlameComponent::ForcedRebuild => "forced_rebuild",
        }
    }

    /// Parses a component from its canonical name.
    pub fn from_name(name: &str) -> Option<BlameComponent> {
        BlameComponent::ALL.into_iter().find(|c| c.name() == name)
    }

    /// Position in [`BlameComponent::ALL`] (and every component array).
    pub fn index(self) -> usize {
        BlameComponent::ALL
            .iter()
            .position(|&c| c == self)
            .expect("component in ALL")
    }
}

/// One invocation's latency split into components (integer micros).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlameBreakdown {
    parts: [u64; BLAME_COMPONENTS],
}

impl BlameBreakdown {
    /// An all-zero breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a duration to one component.
    pub fn charge(&mut self, component: BlameComponent, amount: SimDuration) {
        self.parts[component.index()] += amount.as_micros();
    }

    /// The amount charged to one component.
    pub fn get(&self, component: BlameComponent) -> SimDuration {
        SimDuration::from_micros(self.parts[component.index()])
    }

    /// Sum of all components — by the conservation invariant, the
    /// invocation's measured end-to-end latency.
    pub fn total(&self) -> SimDuration {
        SimDuration::from_micros(self.parts.iter().sum())
    }

    /// Raw per-component microsecond values in [`BlameComponent::ALL`]
    /// order.
    pub fn parts(&self) -> &[u64; BLAME_COMPONENTS] {
        &self.parts
    }
}

/// Collects per-invocation breakdowns during a run and folds them into
/// a [`BlameReport`] at the end.
///
/// Breakdowns must be recorded in the deterministic event order the
/// simulator completes invocations in; the accumulator adds no ordering
/// of its own, so the resulting report is a pure function of the run.
#[derive(Debug, Clone, Default)]
pub struct BlameAccumulator {
    /// `(end-to-end latency in micros, breakdown)` per invocation, in
    /// completion order.
    samples: Vec<(u64, BlameBreakdown)>,
    /// Invocations whose components failed to sum to the measured
    /// latency. Always zero when the platform keeps its conservation
    /// contract; surfaced in the report so a violation cannot hide.
    conservation_violations: u64,
}

impl BlameAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed invocation.
    ///
    /// Checks conservation (`breakdown.total() == latency`) and counts —
    /// never drops — violating samples, so the invariant is observable
    /// in the report and enforceable in tests.
    pub fn record(&mut self, latency: SimDuration, breakdown: BlameBreakdown) {
        if breakdown.total() != latency {
            self.conservation_violations += 1;
        }
        debug_assert_eq!(
            breakdown.total(),
            latency,
            "blame components must sum exactly to the measured latency"
        );
        self.samples.push((latency.as_micros(), breakdown));
    }

    /// Number of invocations recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Folds all recorded invocations into a report.
    ///
    /// The tail set is the slowest `ceil(1%)` of invocations (at least
    /// one when any exist); ties at the cutoff break by completion
    /// order, which is itself deterministic.
    pub fn report(&self) -> BlameReport {
        let mut report = BlameReport::empty();
        report.invocations = self.samples.len() as u64;
        report.conservation_violations = self.conservation_violations;
        if self.samples.is_empty() {
            return report;
        }

        let mut recorders: [LatencyRecorder; BLAME_COMPONENTS] = Default::default();
        for (_, breakdown) in &self.samples {
            for (i, &part) in breakdown.parts().iter().enumerate() {
                recorders[i].record(SimDuration::from_micros(part));
            }
        }

        // Slowest 1%: stable sort on latency keeps completion order
        // among ties, so the selected set is deterministic.
        let mut order: Vec<usize> = (0..self.samples.len()).collect();
        order.sort_by_key(|&i| self.samples[i].0);
        let tail_n = self.samples.len().div_ceil(100).max(1);
        let tail = &order[self.samples.len() - tail_n..];

        let mut tail_latency_sum: u128 = 0;
        let mut tail_part_sums = [0u128; BLAME_COMPONENTS];
        for &i in tail {
            let (latency, breakdown) = &self.samples[i];
            tail_latency_sum += u128::from(*latency);
            for (acc, &part) in tail_part_sums.iter_mut().zip(breakdown.parts()) {
                *acc += u128::from(part);
            }
        }

        report.tail_invocations = tail_n as u64;
        report.tail_cutoff = SimDuration::from_micros(self.samples[tail[0]].0);
        report.tail_mean_latency =
            SimDuration::from_micros((tail_latency_sum / tail_n as u128) as u64);
        for (i, component) in report.components.iter_mut().enumerate() {
            component.dist = recorders[i].summary();
            component.total = SimDuration::from_micros(
                self.samples.iter().map(|(_, b)| b.parts()[i]).sum::<u64>(),
            );
            component.tail_mean =
                SimDuration::from_micros((tail_part_sums[i] / tail_n as u128) as u64);
        }
        report
    }
}

/// One component's aggregate view in a [`BlameReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentBlame {
    /// Sum of this component over every invocation.
    pub total: SimDuration,
    /// Distribution over all invocations (zeros included).
    pub dist: LatencySummary,
    /// Mean of this component over the slowest-1% tail set.
    pub tail_mean: SimDuration,
}

impl ComponentBlame {
    fn empty() -> Self {
        ComponentBlame {
            total: SimDuration::ZERO,
            dist: LatencySummary::empty(),
            tail_mean: SimDuration::ZERO,
        }
    }
}

/// The run-level blame digest: per-component distributions plus tail
/// attribution. `Copy` so it rides along in `RunSummary` like the fault
/// and durability blocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlameReport {
    /// Invocations the report covers.
    pub invocations: u64,
    /// Size of the slowest-1% tail set.
    pub tail_invocations: u64,
    /// End-to-end latency of the fastest tail member (the P99-ish
    /// cutoff the tail attribution is conditioned on).
    pub tail_cutoff: SimDuration,
    /// Mean end-to-end latency over the tail set.
    pub tail_mean_latency: SimDuration,
    /// Invocations that violated conservation (zero by contract).
    pub conservation_violations: u64,
    /// Per-component aggregates in [`BlameComponent::ALL`] order.
    pub components: [ComponentBlame; BLAME_COMPONENTS],
}

impl BlameReport {
    /// A report over zero invocations.
    pub fn empty() -> Self {
        BlameReport {
            invocations: 0,
            tail_invocations: 0,
            tail_cutoff: SimDuration::ZERO,
            tail_mean_latency: SimDuration::ZERO,
            conservation_violations: 0,
            components: [ComponentBlame::empty(); BLAME_COMPONENTS],
        }
    }

    /// One component's aggregate.
    pub fn component(&self, component: BlameComponent) -> &ComponentBlame {
        &self.components[component.index()]
    }

    /// This component's share of the tail set's mean latency, in
    /// `[0, 1]` (0 when the tail is empty).
    pub fn tail_share(&self, component: BlameComponent) -> f64 {
        let mean = self.tail_mean_latency.as_micros();
        if mean == 0 {
            return 0.0;
        }
        self.component(component).tail_mean.as_micros() as f64 / mean as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    fn breakdown(parts: &[(BlameComponent, u64)]) -> BlameBreakdown {
        let mut b = BlameBreakdown::new();
        for &(c, v) in parts {
            b.charge(c, us(v));
        }
        b
    }

    #[test]
    fn component_names_roundtrip() {
        for c in BlameComponent::ALL {
            assert_eq!(BlameComponent::from_name(c.name()), Some(c));
            assert_eq!(BlameComponent::ALL[c.index()], c);
        }
        assert_eq!(BlameComponent::from_name("nope"), None);
    }

    #[test]
    fn breakdown_total_sums_components() {
        let b = breakdown(&[
            (BlameComponent::ColdStart, 700),
            (BlameComponent::Exec, 250),
            (BlameComponent::RecallStall, 50),
        ]);
        assert_eq!(b.total(), us(1000));
        assert_eq!(b.get(BlameComponent::ColdStart), us(700));
        assert_eq!(b.get(BlameComponent::Queue), us(0));
    }

    #[test]
    fn empty_accumulator_reports_zeros() {
        let report = BlameAccumulator::new().report();
        assert_eq!(report.invocations, 0);
        assert_eq!(report.tail_invocations, 0);
        assert_eq!(report.conservation_violations, 0);
        assert_eq!(report.tail_share(BlameComponent::Exec), 0.0);
    }

    #[test]
    fn tail_attribution_isolates_the_slow_one_percent() {
        let mut acc = BlameAccumulator::new();
        // 99 fast invocations: pure exec.
        for _ in 0..99 {
            acc.record(us(100), breakdown(&[(BlameComponent::Exec, 100)]));
        }
        // One slow invocation dominated by a forced rebuild.
        acc.record(
            us(10_000),
            breakdown(&[
                (BlameComponent::Exec, 100),
                (BlameComponent::ForcedRebuild, 9_900),
            ]),
        );
        let report = acc.report();
        assert_eq!(report.invocations, 100);
        assert_eq!(report.tail_invocations, 1);
        assert_eq!(report.tail_cutoff, us(10_000));
        assert_eq!(report.tail_mean_latency, us(10_000));
        assert_eq!(
            report.component(BlameComponent::ForcedRebuild).tail_mean,
            us(9_900)
        );
        assert_eq!(report.component(BlameComponent::Exec).tail_mean, us(100));
        assert!(report.tail_share(BlameComponent::ForcedRebuild) > 0.98);
        // Distribution over all invocations still sees the rebuild only
        // at the extreme quantile.
        let rebuild = report.component(BlameComponent::ForcedRebuild).dist;
        assert_eq!(rebuild.p50, us(0));
        assert_eq!(rebuild.p99, us(0));
        assert_eq!(
            report.component(BlameComponent::ForcedRebuild).total,
            us(9_900)
        );
    }

    #[test]
    fn tail_is_ceil_of_one_percent_and_at_least_one() {
        let mut acc = BlameAccumulator::new();
        for i in 0..250u64 {
            acc.record(us(i + 1), breakdown(&[(BlameComponent::Exec, i + 1)]));
        }
        let report = acc.report();
        // ceil(250 / 100) = 3 slowest: 248, 249, 250.
        assert_eq!(report.tail_invocations, 3);
        assert_eq!(report.tail_cutoff, us(248));
        assert_eq!(report.tail_mean_latency, us(249));

        let mut tiny = BlameAccumulator::new();
        tiny.record(us(5), breakdown(&[(BlameComponent::Exec, 5)]));
        assert_eq!(tiny.report().tail_invocations, 1);
    }

    #[test]
    fn conservation_violations_are_counted() {
        let mut acc = BlameAccumulator::new();
        let b = breakdown(&[(BlameComponent::Exec, 90)]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            acc.record(us(100), b);
        }));
        if cfg!(debug_assertions) {
            assert!(result.is_err(), "debug build must assert on violation");
        } else {
            assert!(result.is_ok());
            assert_eq!(acc.report().conservation_violations, 1);
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_report_tail_means_sum_to_tail_latency(
            samples in proptest::collection::vec(
                (0u64..2_000, 0u64..500, 0u64..300), 1..200)
        ) {
            // Conservation in, conservation out: when every recorded
            // breakdown sums to its latency, the tail attribution's
            // component means sum back to the tail's mean latency
            // (up to the integer floor of each mean).
            let mut acc = BlameAccumulator::new();
            for &(exec, cold, stall) in &samples {
                let b = breakdown(&[
                    (BlameComponent::Exec, exec),
                    (BlameComponent::ColdStart, cold),
                    (BlameComponent::RecallStall, stall),
                ]);
                acc.record(b.total(), b);
            }
            let report = acc.report();
            proptest::prop_assert_eq!(report.conservation_violations, 0);
            let sum: u64 = BlameComponent::ALL
                .iter()
                .map(|&c| report.component(c).tail_mean.as_micros())
                .sum();
            let mean = report.tail_mean_latency.as_micros();
            // Each of the 8 means floors independently.
            proptest::prop_assert!(sum <= mean && mean - sum < BLAME_COMPONENTS as u64);
        }
    }
}
