//! Empirical cumulative distribution functions.
//!
//! FaaSMem's semi-warm policy is driven by the CDF of *container reused
//! intervals* (paper §6.1, Fig 11): the 99th percentile of that CDF sets
//! the semi-warm start timing. The evaluation also reports CDFs of
//! requests-per-container (Fig 5) and semi-warm share (Fig 14).

/// An empirical CDF over `f64` samples.
///
/// # Examples
///
/// ```
/// use faasmem_metrics::Cdf;
///
/// let cdf = Cdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cdf.quantile(0.5), Some(2.0));
/// assert!((cdf.fraction_at_most(2.0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from raw samples. Non-finite samples are discarded.
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|v| v.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Cdf { sorted }
    }

    /// Number of samples behind the CDF.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` when the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Nearest-rank quantile: the smallest sample `x` such that at least a
    /// `q` fraction of samples are `<= x`.
    ///
    /// Returns `None` when the CDF is empty or `q` is NaN or outside
    /// `[0, 1]` — never panics, so percentile queries are safe on any
    /// input. With a single sample, every valid `q` returns it.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if q.is_nan() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        if self.sorted.is_empty() {
            return None;
        }
        let n = self.sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.sorted[rank - 1])
    }

    /// Fraction of samples `<= x`; 0.0 when empty.
    pub fn fraction_at_most(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Smallest sample; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest sample; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Arithmetic mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// Population standard deviation; `None` when empty.
    ///
    /// Fig 16 correlates density improvement with the standard deviation of
    /// request intervals, which this computes.
    pub fn std_dev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var =
            self.sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / self.sorted.len() as f64;
        Some(var.sqrt())
    }

    /// Evenly spaced `(value, cumulative_fraction)` points suitable for
    /// plotting, at most `points` of them.
    pub fn plot_points(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let n = self.sorted.len();
        let step = (n.max(points) / points).max(1);
        let mut out = Vec::with_capacity(points + 1);
        let mut i = 0;
        while i < n {
            out.push((self.sorted[i], (i + 1) as f64 / n as f64));
            i += step;
        }
        if out.last().map(|&(v, _)| v) != self.sorted.last().copied() {
            out.push((self.sorted[n - 1], 1.0));
        }
        out
    }
}

impl FromIterator<f64> for Cdf {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Cdf::from_samples(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cdf_behaves() {
        let cdf = Cdf::from_samples(Vec::new());
        assert!(cdf.is_empty());
        assert_eq!(cdf.quantile(0.5), None);
        assert_eq!(cdf.fraction_at_most(10.0), 0.0);
        assert_eq!(cdf.mean(), None);
        assert_eq!(cdf.std_dev(), None);
        assert!(cdf.plot_points(10).is_empty());
    }

    #[test]
    fn quantiles_nearest_rank() {
        let cdf: Cdf = (1..=100).map(|v| v as f64).collect();
        assert_eq!(cdf.quantile(0.01), Some(1.0));
        assert_eq!(cdf.quantile(0.5), Some(50.0));
        assert_eq!(cdf.quantile(0.99), Some(99.0));
        assert_eq!(cdf.quantile(1.0), Some(100.0));
        assert_eq!(cdf.quantile(0.0), Some(1.0));
    }

    #[test]
    fn single_sample_quantiles() {
        let cdf = Cdf::from_samples(vec![3.5]);
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(cdf.quantile(q), Some(3.5), "q={q}");
        }
        assert_eq!(cdf.mean(), Some(3.5));
        assert_eq!(cdf.std_dev(), Some(0.0));
    }

    #[test]
    fn invalid_q_is_none_not_panic() {
        let cdf = Cdf::from_samples(vec![1.0, 2.0]);
        assert_eq!(cdf.quantile(-0.5), None);
        assert_eq!(cdf.quantile(1.5), None);
        assert_eq!(cdf.quantile(f64::NAN), None);
        let empty = Cdf::default();
        assert_eq!(empty.quantile(f64::NAN), None);
    }

    #[test]
    fn fraction_at_most_boundaries() {
        let cdf = Cdf::from_samples(vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(cdf.fraction_at_most(0.5), 0.0);
        assert_eq!(cdf.fraction_at_most(2.0), 0.75);
        assert_eq!(cdf.fraction_at_most(4.0), 1.0);
        assert_eq!(cdf.fraction_at_most(100.0), 1.0);
    }

    #[test]
    fn non_finite_samples_discarded() {
        let cdf = Cdf::from_samples(vec![1.0, f64::NAN, f64::INFINITY, 2.0]);
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf.max(), Some(2.0));
    }

    #[test]
    fn stats_are_exact() {
        let cdf = Cdf::from_samples(vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(cdf.mean(), Some(5.0));
        assert_eq!(cdf.std_dev(), Some(2.0));
        assert_eq!(cdf.min(), Some(2.0));
        assert_eq!(cdf.max(), Some(9.0));
    }

    #[test]
    fn plot_points_cover_range() {
        let cdf: Cdf = (1..=1000).map(|v| v as f64).collect();
        let pts = cdf.plot_points(50);
        assert!(pts.len() <= 52);
        assert_eq!(pts.last().unwrap().1, 1.0);
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
    }

    proptest::proptest! {
        #[test]
        fn prop_quantile_and_fraction_inverse(vals in proptest::collection::vec(0.0f64..1e6, 1..200), q in 0.01f64..1.0) {
            let cdf = Cdf::from_samples(vals);
            let x = cdf.quantile(q).unwrap();
            // At least q of the mass lies at or below the q-quantile.
            proptest::prop_assert!(cdf.fraction_at_most(x) + 1e-12 >= q);
        }
    }
}
