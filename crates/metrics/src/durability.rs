//! Durability accounting for the redundant memory-pool fabric.
//!
//! A redundant pool trades capacity and link bandwidth for the ability
//! to survive pool-node losses. [`DurabilityTracker`] collects both
//! sides of that trade for one run: what redundancy *cost* (replica
//! bytes pushed over the out link, repair traffic, peak extra capacity
//! held) and what it *bought* (segments recalled from a surviving
//! replica instead of being lost, cold rebuilds avoided, time back to
//! full redundancy after each loss).
//!
//! The tracker is a plain `Copy` value so the platform can embed a
//! snapshot of it directly in its run report; all counters are exact
//! and deterministic.
//!
//! # Examples
//!
//! ```
//! use faasmem_metrics::DurabilityTracker;
//! use faasmem_sim::SimDuration;
//!
//! let mut t = DurabilityTracker::default();
//! t.record_failover(4 << 20);
//! t.record_repair(1 << 20, SimDuration::from_secs(3));
//! t.record_repair(1 << 20, SimDuration::from_secs(1));
//! assert_eq!(t.failover_recalls, 1);
//! assert_eq!(t.mean_mttr(), Some(SimDuration::from_secs(2)));
//! ```

use faasmem_sim::SimDuration;

/// Cumulative durability counters for one simulated run.
///
/// All byte counters are exact. "MTTR" here is the time from a pool-node
/// loss to the repair that restored a segment's full redundancy — one
/// sample per completed repair item.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DurabilityTracker {
    /// Pool nodes that died during the run.
    pub nodes_lost: u64,
    /// Remote bytes whose surviving replicas/fragments dropped below the
    /// recovery threshold — unrecoverable, forcing a cold rebuild.
    pub bytes_lost: u64,
    /// Segments (one per owning container) lost that way.
    pub segments_lost: u64,
    /// Recalls served from a surviving replica / reconstructed from
    /// fragments after the primary path failed.
    pub failover_recalls: u64,
    /// Remote bytes brought home through those failover recalls.
    pub bytes_recovered: u64,
    /// Cold rebuilds that redundancy avoided: segments that lost a
    /// fragment to a node death but stayed above the recovery threshold.
    pub avoided_cold_rebuilds: u64,
    /// Extra bytes pushed over the out link to create replicas/fragments
    /// at offload time (write-amplification overhead).
    pub replica_bytes_out: u64,
    /// Bytes moved by the background repair queue.
    pub repair_bytes: u64,
    /// Repair items completed (redundancy restored for one fragment).
    pub repairs_completed: u64,
    /// Repair items abandoned because the segment vanished (paged in or
    /// discarded) or no eligible target node remained.
    pub repairs_abandoned: u64,
    /// Peak extra capacity held for redundancy at any sampled instant.
    pub peak_redundant_bytes: u64,
    /// Peak number of simultaneously under-replicated segments.
    pub peak_under_replicated: u64,
    /// Sum of loss→repair latencies across completed repairs.
    mttr_total: SimDuration,
    /// Largest single loss→repair latency.
    mttr_max: SimDuration,
}

impl DurabilityTracker {
    /// Records a pool-node death.
    pub fn record_node_loss(&mut self) {
        self.nodes_lost += 1;
    }

    /// Records one segment dropping below the recovery threshold.
    pub fn record_loss(&mut self, bytes: u64) {
        self.segments_lost += 1;
        self.bytes_lost += bytes;
    }

    /// Records a recall served from a surviving replica / fragment set.
    pub fn record_failover(&mut self, bytes: u64) {
        self.failover_recalls += 1;
        self.bytes_recovered += bytes;
    }

    /// Records a segment that survived a node death above threshold.
    pub fn record_avoided_rebuild(&mut self) {
        self.avoided_cold_rebuilds += 1;
    }

    /// Records replica/fragment bytes pushed at offload time.
    pub fn record_replica_out(&mut self, bytes: u64) {
        self.replica_bytes_out += bytes;
    }

    /// Records a completed repair item and its loss→repair latency.
    pub fn record_repair(&mut self, bytes: u64, mttr: SimDuration) {
        self.repairs_completed += 1;
        self.repair_bytes += bytes;
        self.mttr_total += mttr;
        if mttr > self.mttr_max {
            self.mttr_max = mttr;
        }
    }

    /// Records a repair item that could not be applied.
    pub fn record_repair_abandoned(&mut self) {
        self.repairs_abandoned += 1;
    }

    /// Folds an instantaneous redundant-capacity observation into the peak.
    pub fn note_redundant_bytes(&mut self, bytes: u64) {
        self.peak_redundant_bytes = self.peak_redundant_bytes.max(bytes);
    }

    /// Folds an instantaneous under-replicated-segment count into the peak.
    pub fn note_under_replicated(&mut self, count: u64) {
        self.peak_under_replicated = self.peak_under_replicated.max(count);
    }

    /// Mean time-to-repair across completed repairs; `None` before the
    /// first repair completes.
    pub fn mean_mttr(&self) -> Option<SimDuration> {
        if self.repairs_completed == 0 {
            return None;
        }
        Some(SimDuration::from_micros(
            self.mttr_total.as_micros() / self.repairs_completed,
        ))
    }

    /// Largest single time-to-repair; `None` before the first repair.
    pub fn max_mttr(&self) -> Option<SimDuration> {
        if self.repairs_completed == 0 {
            return None;
        }
        Some(self.mttr_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_all_zero() {
        let t = DurabilityTracker::default();
        assert_eq!(t, DurabilityTracker::default());
        assert_eq!(t.mean_mttr(), None);
        assert_eq!(t.max_mttr(), None);
    }

    #[test]
    fn counters_accumulate() {
        let mut t = DurabilityTracker::default();
        t.record_node_loss();
        t.record_loss(4096);
        t.record_loss(8192);
        t.record_failover(1 << 20);
        t.record_avoided_rebuild();
        t.record_replica_out(2 << 20);
        t.record_repair_abandoned();
        assert_eq!(t.nodes_lost, 1);
        assert_eq!(t.segments_lost, 2);
        assert_eq!(t.bytes_lost, 12288);
        assert_eq!(t.failover_recalls, 1);
        assert_eq!(t.bytes_recovered, 1 << 20);
        assert_eq!(t.avoided_cold_rebuilds, 1);
        assert_eq!(t.replica_bytes_out, 2 << 20);
        assert_eq!(t.repairs_abandoned, 1);
    }

    #[test]
    fn mttr_tracks_mean_and_max() {
        let mut t = DurabilityTracker::default();
        t.record_repair(100, SimDuration::from_secs(4));
        t.record_repair(100, SimDuration::from_secs(2));
        assert_eq!(t.repairs_completed, 2);
        assert_eq!(t.repair_bytes, 200);
        assert_eq!(t.mean_mttr(), Some(SimDuration::from_secs(3)));
        assert_eq!(t.max_mttr(), Some(SimDuration::from_secs(4)));
    }

    #[test]
    fn peaks_keep_the_maximum_observation() {
        let mut t = DurabilityTracker::default();
        t.note_redundant_bytes(10);
        t.note_redundant_bytes(5);
        t.note_under_replicated(3);
        t.note_under_replicated(1);
        assert_eq!(t.peak_redundant_bytes, 10);
        assert_eq!(t.peak_under_replicated, 3);
    }
}
