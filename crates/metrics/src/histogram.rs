//! Fixed-width histograms for access-count heat maps.
//!
//! Figures 6 and 9 of the paper are Access-bit scans: page address on the
//! y-axis, time on the x-axis, colour = access count. [`Histogram`] is the
//! binning primitive the scan experiments use to aggregate page accesses
//! into plottable cells.

/// A histogram over `[0, max)` with `bins` equal-width buckets.
///
/// Values at or above `max` land in the last bucket (saturating), so the
/// histogram never drops samples.
///
/// # Examples
///
/// ```
/// use faasmem_metrics::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.add(1.0);
/// h.add(9.5);
/// h.add(100.0); // clamped into the last bucket
/// assert_eq!(h.count(0), 1);
/// assert_eq!(h.count(4), 2);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "empty histogram range {lo}..{hi}");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Number of buckets.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// The bucket index a value falls into (clamped to the valid range).
    pub fn bin_of(&self, value: f64) -> usize {
        let frac = (value - self.lo) / (self.hi - self.lo);
        let idx = (frac * self.counts.len() as f64).floor();
        (idx.max(0.0) as usize).min(self.counts.len() - 1)
    }

    /// Adds one sample. Non-finite values are discarded (previously a
    /// NaN would land silently in bucket 0 and skew percentiles).
    pub fn add(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let bin = self.bin_of(value);
        self.counts[bin] += 1;
    }

    /// Adds `weight` samples at `value`. Non-finite values are
    /// discarded, matching [`add`](Self::add).
    pub fn add_weighted(&mut self, value: f64, weight: u64) {
        if !value.is_finite() {
            return;
        }
        let bin = self.bin_of(value);
        self.counts[bin] += weight;
    }

    /// Count in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= bins()`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Total samples across all buckets.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The inclusive lower edge of bucket `i`.
    pub fn bin_lower_edge(&self, i: usize) -> f64 {
        self.lo + (self.hi - self.lo) * i as f64 / self.counts.len() as f64
    }

    /// Iterates over `(lower_edge, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.bin_lower_edge(i), c))
    }

    /// Nearest-rank percentile estimated from the binned mass: the
    /// lower edge of the bucket holding the `q`-th sample.
    ///
    /// Returns `None` when the histogram is empty or `q` is NaN or
    /// outside `[0, 1]` — never panics and never divides by zero, so
    /// callers can query unconditionally. With a single sample every
    /// valid `q` returns that sample's bucket edge.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if q.is_nan() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let total = self.total();
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Some(self.bin_lower_edge(i));
            }
        }
        unreachable!("rank {rank} <= total {total}")
    }

    /// Resets all buckets to zero.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_expected_bins() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        h.add(0.0);
        h.add(9.99);
        h.add(10.0);
        h.add(99.0);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(9), 1);
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.add(-5.0);
        h.add(15.0);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 1);
    }

    #[test]
    fn weighted_adds() {
        let mut h = Histogram::new(0.0, 1.0, 1);
        h.add_weighted(0.5, 42);
        assert_eq!(h.total(), 42);
    }

    #[test]
    fn edges_are_linear() {
        let h = Histogram::new(10.0, 20.0, 5);
        assert_eq!(h.bin_lower_edge(0), 10.0);
        assert_eq!(h.bin_lower_edge(4), 18.0);
    }

    #[test]
    fn clear_zeroes() {
        let mut h = Histogram::new(0.0, 1.0, 3);
        h.add(0.1);
        h.clear();
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn percentile_on_empty_is_none() {
        let h = Histogram::new(0.0, 10.0, 4);
        assert_eq!(h.percentile(0.0), None);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.percentile(1.0), None);
    }

    #[test]
    fn percentile_on_single_sample_is_its_bucket() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(7.3);
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), Some(7.0), "q={q}");
        }
    }

    #[test]
    fn percentile_rejects_invalid_q_without_panicking() {
        let mut h = Histogram::new(0.0, 10.0, 4);
        h.add(1.0);
        assert_eq!(h.percentile(-0.1), None);
        assert_eq!(h.percentile(1.1), None);
        assert_eq!(h.percentile(f64::NAN), None);
    }

    #[test]
    fn percentile_walks_binned_mass() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        h.add_weighted(5.0, 50); // bucket 0
        h.add_weighted(95.0, 50); // bucket 9
        assert_eq!(h.percentile(0.25), Some(0.0));
        assert_eq!(h.percentile(0.5), Some(0.0));
        assert_eq!(h.percentile(0.51), Some(90.0));
        assert_eq!(h.percentile(1.0), Some(90.0));
    }

    #[test]
    fn non_finite_samples_are_discarded() {
        let mut h = Histogram::new(0.0, 10.0, 4);
        h.add(f64::NAN);
        h.add(f64::INFINITY);
        h.add(f64::NEG_INFINITY);
        h.add_weighted(f64::NAN, 100);
        assert_eq!(h.total(), 0);
        assert_eq!(h.percentile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "empty histogram range")]
    fn inverted_range_panics() {
        let _ = Histogram::new(2.0, 1.0, 4);
    }

    proptest::proptest! {
        #[test]
        fn prop_total_equals_samples(vals in proptest::collection::vec(-50.0f64..150.0, 0..500)) {
            let mut h = Histogram::new(0.0, 100.0, 13);
            for &v in &vals {
                h.add(v);
            }
            proptest::prop_assert_eq!(h.total(), vals.len() as u64);
        }
    }
}
