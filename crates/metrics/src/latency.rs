//! Latency sample collection and percentile queries.

use faasmem_sim::SimDuration;

/// Collects latency samples and answers exact percentile queries.
///
/// Percentiles use the nearest-rank method on the sorted sample set, which
/// is what the paper's evaluation scripts compute. Sorting is deferred and
/// cached, so interleaved `record`/`percentile` calls stay cheap.
///
/// # Examples
///
/// ```
/// use faasmem_metrics::LatencyRecorder;
/// use faasmem_sim::SimDuration;
///
/// let mut rec = LatencyRecorder::new();
/// rec.record(SimDuration::from_millis(10));
/// rec.record(SimDuration::from_millis(30));
/// rec.record(SimDuration::from_millis(20));
/// assert_eq!(rec.percentile(0.50).unwrap(), SimDuration::from_millis(20));
/// assert_eq!(rec.max().unwrap(), SimDuration::from_millis(30));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples: Vec<u64>,
    sorted: bool,
}

/// A digest of the percentiles the paper reports (Fig 13): average, P50,
/// P95 and P99.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Arithmetic mean latency.
    pub avg: SimDuration,
    /// Median latency.
    pub p50: SimDuration,
    /// 95th-percentile latency (the paper's headline QoS metric).
    pub p95: SimDuration,
    /// 99th-percentile latency.
    pub p99: SimDuration,
    /// Number of samples the summary is built from.
    pub count: usize,
}

impl LatencySummary {
    /// A summary of an empty recorder: all zeros.
    pub fn empty() -> Self {
        LatencySummary {
            avg: SimDuration::ZERO,
            p50: SimDuration::ZERO,
            p95: SimDuration::ZERO,
            p99: SimDuration::ZERO,
            count: 0,
        }
    }
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a recorder pre-sized for `capacity` samples.
    pub fn with_capacity(capacity: usize) -> Self {
        LatencyRecorder {
            samples: Vec::with_capacity(capacity),
            sorted: true,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: SimDuration) {
        self.samples.push(latency.as_micros());
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) by nearest rank.
    ///
    /// Returns `None` when empty or when `q` is NaN or outside
    /// `[0, 1]` — never panics, matching [`Cdf::quantile`](crate::Cdf::quantile).
    pub fn percentile(&mut self, q: f64) -> Option<SimDuration> {
        if q.is_nan() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(SimDuration::from_micros(self.samples[rank - 1]))
    }

    /// Arithmetic mean of the samples, or `None` when empty.
    pub fn mean(&self) -> Option<SimDuration> {
        if self.samples.is_empty() {
            return None;
        }
        let sum: u128 = self.samples.iter().map(|&s| s as u128).sum();
        Some(SimDuration::from_micros(
            (sum / self.samples.len() as u128) as u64,
        ))
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&mut self) -> Option<SimDuration> {
        self.ensure_sorted();
        self.samples.last().map(|&s| SimDuration::from_micros(s))
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&mut self) -> Option<SimDuration> {
        self.ensure_sorted();
        self.samples.first().map(|&s| SimDuration::from_micros(s))
    }

    /// The AVG/P50/P95/P99 digest the paper's figures report.
    pub fn summary(&mut self) -> LatencySummary {
        if self.samples.is_empty() {
            return LatencySummary::empty();
        }
        LatencySummary {
            avg: self.mean().expect("non-empty"),
            p50: self.percentile(0.50).expect("non-empty"),
            p95: self.percentile(0.95).expect("non-empty"),
            p99: self.percentile(0.99).expect("non-empty"),
            count: self.samples.len(),
        }
    }

    /// Drops all samples.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.sorted = true;
    }

    /// Iterates over the raw samples in insertion order is not guaranteed;
    /// samples may have been sorted by a previous percentile query.
    pub fn samples(&self) -> impl Iterator<Item = SimDuration> + '_ {
        self.samples.iter().map(|&s| SimDuration::from_micros(s))
    }

    /// Merges another recorder's samples into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

impl Extend<SimDuration> for LatencyRecorder {
    fn extend<I: IntoIterator<Item = SimDuration>>(&mut self, iter: I) {
        for d in iter {
            self.record(d);
        }
    }
}

impl FromIterator<SimDuration> for LatencyRecorder {
    fn from_iter<I: IntoIterator<Item = SimDuration>>(iter: I) -> Self {
        let mut rec = LatencyRecorder::new();
        rec.extend(iter);
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn empty_recorder_returns_none() {
        let mut rec = LatencyRecorder::new();
        assert!(rec.is_empty());
        assert_eq!(rec.percentile(0.5), None);
        assert_eq!(rec.mean(), None);
        assert_eq!(rec.max(), None);
        assert_eq!(rec.min(), None);
        assert_eq!(rec.summary(), LatencySummary::empty());
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut rec: LatencyRecorder = [ms(42)].into_iter().collect();
        assert_eq!(rec.percentile(0.0).unwrap(), ms(42));
        assert_eq!(rec.percentile(0.5).unwrap(), ms(42));
        assert_eq!(rec.percentile(1.0).unwrap(), ms(42));
    }

    #[test]
    fn nearest_rank_percentiles() {
        let mut rec: LatencyRecorder = (1..=100).map(ms).collect();
        assert_eq!(rec.percentile(0.50).unwrap(), ms(50));
        assert_eq!(rec.percentile(0.95).unwrap(), ms(95));
        assert_eq!(rec.percentile(0.99).unwrap(), ms(99));
        assert_eq!(rec.percentile(1.0).unwrap(), ms(100));
    }

    #[test]
    fn mean_is_exact() {
        let rec: LatencyRecorder = [ms(10), ms(20), ms(60)].into_iter().collect();
        assert_eq!(rec.mean().unwrap(), ms(30));
    }

    #[test]
    fn summary_fields_consistent() {
        let mut rec: LatencyRecorder = (1..=1000).map(ms).collect();
        let s = rec.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.p50, ms(500));
        assert_eq!(s.p95, ms(950));
        assert_eq!(s.p99, ms(990));
        assert!(s.avg >= ms(500) && s.avg <= ms(501));
    }

    #[test]
    fn interleaved_record_and_query() {
        let mut rec = LatencyRecorder::new();
        rec.record(ms(5));
        assert_eq!(rec.percentile(1.0).unwrap(), ms(5));
        rec.record(ms(1));
        assert_eq!(rec.percentile(0.0).unwrap(), ms(1));
        rec.record(ms(9));
        assert_eq!(rec.max().unwrap(), ms(9));
        assert_eq!(rec.min().unwrap(), ms(1));
    }

    #[test]
    fn merge_combines_samples() {
        let mut a: LatencyRecorder = [ms(1), ms(2)].into_iter().collect();
        let b: LatencyRecorder = [ms(3)].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.max().unwrap(), ms(3));
    }

    #[test]
    fn clear_resets() {
        let mut rec: LatencyRecorder = [ms(1)].into_iter().collect();
        rec.clear();
        assert!(rec.is_empty());
    }

    #[test]
    fn out_of_range_quantile_is_none() {
        let mut rec: LatencyRecorder = [ms(1)].into_iter().collect();
        assert_eq!(rec.percentile(1.5), None);
        assert_eq!(rec.percentile(-0.1), None);
        assert_eq!(rec.percentile(f64::NAN), None);
    }

    #[test]
    fn single_sample_percentiles() {
        let mut rec: LatencyRecorder = [ms(7)].into_iter().collect();
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(rec.percentile(q), Some(ms(7)), "q={q}");
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_percentile_monotone(mut vals in proptest::collection::vec(0u64..1_000_000, 1..300)) {
            let mut rec = LatencyRecorder::new();
            for v in vals.drain(..) {
                rec.record(SimDuration::from_micros(v));
            }
            let p50 = rec.percentile(0.5).unwrap();
            let p95 = rec.percentile(0.95).unwrap();
            let p99 = rec.percentile(0.99).unwrap();
            proptest::prop_assert!(p50 <= p95);
            proptest::prop_assert!(p95 <= p99);
            proptest::prop_assert!(p99 <= rec.max().unwrap());
            proptest::prop_assert!(rec.min().unwrap() <= p50);
        }

        #[test]
        fn prop_mean_between_min_max(vals in proptest::collection::vec(0u64..1_000_000, 1..300)) {
            let mut rec = LatencyRecorder::new();
            for &v in &vals {
                rec.record(SimDuration::from_micros(v));
            }
            let mean = rec.mean().unwrap();
            proptest::prop_assert!(rec.min().unwrap() <= mean);
            proptest::prop_assert!(mean <= rec.max().unwrap());
        }
    }
}
