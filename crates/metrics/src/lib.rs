#![warn(missing_docs)]

//! Measurement utilities shared by the FaaSMem experiments.
//!
//! The paper reports three families of numbers: latency percentiles
//! (P50/P95/P99 end-to-end latency), distribution shapes (CDFs of reuse
//! intervals, requests per container, semi-warm share) and time-weighted
//! memory footprints ("average local memory usage"). This crate provides
//! exact, allocation-friendly implementations of all three:
//!
//! * [`LatencyRecorder`] — collects samples and answers percentile queries.
//! * [`Cdf`] — an empirical CDF with quantile and fraction-below queries.
//! * [`TimeSeries`] — a step function of a value over simulated time with
//!   time-weighted averaging, used for memory-usage timelines.
//! * [`Histogram`] — fixed-width binning for access-count heat maps.
//!
//! # Examples
//!
//! ```
//! use faasmem_metrics::LatencyRecorder;
//! use faasmem_sim::SimDuration;
//!
//! let mut rec = LatencyRecorder::new();
//! for ms in 1..=100 {
//!     rec.record(SimDuration::from_millis(ms));
//! }
//! assert_eq!(rec.percentile(0.95).unwrap(), SimDuration::from_millis(95));
//! ```

pub mod agg;
pub mod blame;
pub mod cdf;
pub mod durability;
pub mod histogram;
pub mod latency;
pub mod registry;
pub mod slo;
pub mod timeseries;
pub mod waste;

pub use blame::{
    BlameAccumulator, BlameBreakdown, BlameComponent, BlameReport, ComponentBlame, BLAME_COMPONENTS,
};
pub use cdf::Cdf;
pub use durability::DurabilityTracker;
pub use histogram::Histogram;
pub use latency::{LatencyRecorder, LatencySummary};
pub use registry::MetricsRegistry;
pub use slo::SloTracker;
pub use timeseries::TimeSeries;
pub use waste::{
    byte_us_to_byte_secs, WasteAccumulator, WasteComponent, WasteLedger, WasteReport, WasteSide,
    WASTE_COMPONENTS,
};
