//! A small counter/gauge registry snapshotted into each cell's JSON.
//!
//! The platform accumulates named counters (monotone `u64` totals) and
//! gauges (point-in-time `f64` readings) over a run and stores the
//! registry in its report; the harness serializes it under the
//! `registry` key of every cell.
//!
//! **Ordering guarantee.** [`MetricsRegistry::counters`] and
//! [`MetricsRegistry::gauges`] yield entries in ascending
//! lexicographic key order, independent of insertion order. This is
//! an explicit API contract, not an implementation accident: the
//! cell-JSON byte-identity guarantee and the telemetry series derived
//! from registry snapshots both depend on it, so any future storage
//! change must preserve sorted iteration (and the unit test below
//! will catch a regression).

use std::collections::BTreeMap;

/// Named counters and gauges with deterministic iteration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Increments counter `name` by one.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Adds `delta` to counter `name`, creating it at zero first.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Sets gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Reads counter `name` (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads gauge `name`, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Counters in ascending lexicographic key order (guaranteed —
    /// see the module docs).
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Gauges in ascending lexicographic key order (guaranteed — see
    /// the module docs).
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// `true` when no counter or gauge has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut reg = MetricsRegistry::new();
        assert!(reg.is_empty());
        reg.inc("requests.completed");
        reg.add("requests.completed", 4);
        reg.add("pool.bytes_out", 4096);
        assert_eq!(reg.counter("requests.completed"), 5);
        assert_eq!(reg.counter("pool.bytes_out"), 4096);
        assert_eq!(reg.counter("never.touched"), 0);
        assert!(!reg.is_empty());
    }

    #[test]
    fn gauges_overwrite() {
        let mut reg = MetricsRegistry::new();
        assert_eq!(reg.gauge("mem.peak_local_bytes"), None);
        reg.set_gauge("mem.peak_local_bytes", 1024.0);
        reg.set_gauge("mem.peak_local_bytes", 2048.0);
        assert_eq!(reg.gauge("mem.peak_local_bytes"), Some(2048.0));
    }

    #[test]
    fn iteration_is_key_ordered_regardless_of_insertion() {
        let mut reg = MetricsRegistry::new();
        reg.inc("z.last");
        reg.inc("a.first");
        reg.inc("m.middle");
        let keys: Vec<&str> = reg.counters().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a.first", "m.middle", "z.last"]);

        // The same contract holds for gauges: snapshot order is the
        // sorted key order, never insertion order.
        reg.set_gauge("pool.level", 1.0);
        reg.set_gauge("containers.live", 2.0);
        reg.set_gauge("mem.resident", 3.0);
        let gauge_keys: Vec<&str> = reg.gauges().map(|(k, _)| k).collect();
        assert_eq!(
            gauge_keys,
            vec!["containers.live", "mem.resident", "pool.level"]
        );
        let mut resorted = gauge_keys.clone();
        resorted.sort_unstable();
        assert_eq!(gauge_keys, resorted);
    }
}
