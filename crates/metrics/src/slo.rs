//! Service-level-objective accounting.
//!
//! Fault-injection experiments ask a question the paper's healthy-pool
//! evaluation never had to: *how many requests blew their latency
//! objective while the pool misbehaved?* [`SloTracker`] answers it with
//! a single threshold and two counters, cheap enough to update on every
//! completed request.

use faasmem_sim::SimDuration;

/// Counts requests whose end-to-end latency exceeded a fixed objective.
///
/// # Examples
///
/// ```
/// use faasmem_metrics::SloTracker;
/// use faasmem_sim::SimDuration;
///
/// let mut slo = SloTracker::new(SimDuration::from_secs(1));
/// slo.observe(SimDuration::from_millis(250));
/// slo.observe(SimDuration::from_secs(3));
/// assert_eq!(slo.total(), 2);
/// assert_eq!(slo.violations(), 1);
/// assert_eq!(slo.violation_ratio(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloTracker {
    threshold: SimDuration,
    total: u64,
    violations: u64,
}

impl SloTracker {
    /// A tracker with the given latency objective. Latencies strictly
    /// above the threshold count as violations.
    pub fn new(threshold: SimDuration) -> Self {
        SloTracker {
            threshold,
            total: 0,
            violations: 0,
        }
    }

    /// The configured latency objective.
    pub fn threshold(&self) -> SimDuration {
        self.threshold
    }

    /// Records one completed request's end-to-end latency.
    pub fn observe(&mut self, latency: SimDuration) {
        self.total += 1;
        if latency > self.threshold {
            self.violations += 1;
        }
    }

    /// Requests observed so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Requests that exceeded the objective.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Fraction of observed requests that violated the objective; zero
    /// when nothing has been observed.
    pub fn violation_ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.violations as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tracker_reports_zero() {
        let slo = SloTracker::new(SimDuration::from_secs(1));
        assert_eq!(slo.total(), 0);
        assert_eq!(slo.violations(), 0);
        assert_eq!(slo.violation_ratio(), 0.0);
    }

    #[test]
    fn threshold_is_exclusive() {
        let mut slo = SloTracker::new(SimDuration::from_millis(100));
        slo.observe(SimDuration::from_millis(100)); // exactly at: OK
        slo.observe(SimDuration::from_micros(100_001)); // just over
        assert_eq!(slo.violations(), 1);
        assert_eq!(slo.total(), 2);
    }

    #[test]
    fn ratio_tracks_counts() {
        let mut slo = SloTracker::new(SimDuration::from_millis(10));
        for ms in [1u64, 5, 20, 30] {
            slo.observe(SimDuration::from_millis(ms));
        }
        assert_eq!(slo.violation_ratio(), 0.5);
    }
}
