//! Step-function time series with time-weighted statistics.
//!
//! The paper's "average local memory usage" (Fig 12, Table 1) is a
//! *time-weighted* mean of the memory footprint: a container that holds
//! 1 GB for nine minutes and 100 MB for one minute averages 910 MB, not
//! 550 MB. [`TimeSeries`] records value changes as they happen and
//! integrates exactly over simulated time.

use faasmem_sim::{SimDuration, SimTime};

/// A right-continuous step function of a `f64` value over simulated time.
///
/// # Examples
///
/// ```
/// use faasmem_metrics::TimeSeries;
/// use faasmem_sim::SimTime;
///
/// let mut ts = TimeSeries::new();
/// ts.record(SimTime::ZERO, 100.0);
/// ts.record(SimTime::from_secs(9), 0.0);
/// // 100.0 for 9s then 0.0 for 1s = 90.0 time-weighted average.
/// assert_eq!(ts.time_weighted_mean(SimTime::from_secs(10)), Some(90.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that the value became `value` at instant `at`.
    ///
    /// Repeated records at the same instant overwrite (the last write
    /// wins); consecutive identical values are coalesced.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the last recorded instant.
    pub fn record(&mut self, at: SimTime, value: f64) {
        if let Some(&mut (last_t, ref mut last_v)) = self.points.last_mut() {
            assert!(at >= last_t, "time series must be recorded in order");
            if at == last_t {
                *last_v = value;
                return;
            }
            if *last_v == value {
                return; // coalesce
            }
        }
        self.points.push((at, value));
    }

    /// Number of recorded change points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The value at instant `at` (the most recent change at or before
    /// `at`), or `None` if `at` precedes the first record.
    pub fn value_at(&self, at: SimTime) -> Option<f64> {
        let idx = self.points.partition_point(|&(t, _)| t <= at);
        if idx == 0 {
            None
        } else {
            Some(self.points[idx - 1].1)
        }
    }

    /// The most recently recorded value.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Integral of the series from the first record to `until`
    /// (value × seconds). `None` if the series is empty or `until`
    /// precedes the first record.
    pub fn integral(&self, until: SimTime) -> Option<f64> {
        let first = self.points.first()?.0;
        if until < first {
            return None;
        }
        let mut total = 0.0;
        for w in self.points.windows(2) {
            let (t0, v0) = w[0];
            let (t1, _) = w[1];
            if t0 >= until {
                break;
            }
            let end = t1.min(until);
            total += v0 * end.saturating_since(t0).as_secs_f64();
        }
        let (t_last, v_last) = *self.points.last().expect("non-empty");
        if until > t_last {
            total += v_last * until.saturating_since(t_last).as_secs_f64();
        }
        Some(total)
    }

    /// Time-weighted mean from the first record to `until`. `None` if the
    /// series is empty or the window has zero width.
    pub fn time_weighted_mean(&self, until: SimTime) -> Option<f64> {
        let first = self.points.first()?.0;
        let span = until.checked_since(first)?;
        if span.is_zero() {
            return None;
        }
        Some(self.integral(until)? / span.as_secs_f64())
    }

    /// Maximum recorded value; `None` when empty.
    pub fn max_value(&self) -> Option<f64> {
        self.points.iter().map(|&(_, v)| v).fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(m) => m.max(v),
            })
        })
    }

    /// Samples the series at a fixed `interval` from the first record to
    /// `until`, producing `(time, value)` pairs for plotting.
    pub fn sample(&self, interval: SimDuration, until: SimTime) -> Vec<(SimTime, f64)> {
        let Some(&(first, _)) = self.points.first() else {
            return Vec::new();
        };
        assert!(!interval.is_zero(), "sampling interval must be positive");
        let mut out = Vec::new();
        let mut t = first;
        while t <= until {
            if let Some(v) = self.value_at(t) {
                out.push((t, v));
            }
            t += interval;
        }
        out
    }

    /// Iterates over the recorded change points.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.points.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: u64) -> SimTime {
        SimTime::from_secs(v)
    }

    #[test]
    fn empty_series() {
        let ts = TimeSeries::new();
        assert!(ts.is_empty());
        assert_eq!(ts.value_at(s(5)), None);
        assert_eq!(ts.integral(s(5)), None);
        assert_eq!(ts.time_weighted_mean(s(5)), None);
        assert!(ts.sample(SimDuration::from_secs(1), s(3)).is_empty());
    }

    #[test]
    fn step_lookup() {
        let mut ts = TimeSeries::new();
        ts.record(s(1), 10.0);
        ts.record(s(3), 20.0);
        assert_eq!(ts.value_at(SimTime::ZERO), None);
        assert_eq!(ts.value_at(s(1)), Some(10.0));
        assert_eq!(ts.value_at(s(2)), Some(10.0));
        assert_eq!(ts.value_at(s(3)), Some(20.0));
        assert_eq!(ts.value_at(s(100)), Some(20.0));
    }

    #[test]
    fn weighted_mean_matches_hand_calc() {
        let mut ts = TimeSeries::new();
        ts.record(s(0), 1000.0);
        ts.record(s(9), 100.0);
        let avg = ts.time_weighted_mean(s(10)).unwrap();
        assert!((avg - 910.0).abs() < 1e-9);
    }

    #[test]
    fn integral_cuts_at_until() {
        let mut ts = TimeSeries::new();
        ts.record(s(0), 5.0);
        ts.record(s(10), 0.0);
        assert_eq!(ts.integral(s(4)), Some(20.0));
        assert_eq!(ts.integral(s(10)), Some(50.0));
        assert_eq!(ts.integral(s(20)), Some(50.0));
    }

    #[test]
    fn same_instant_overwrites() {
        let mut ts = TimeSeries::new();
        ts.record(s(1), 1.0);
        ts.record(s(1), 2.0);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.value_at(s(1)), Some(2.0));
    }

    #[test]
    fn identical_values_coalesce() {
        let mut ts = TimeSeries::new();
        ts.record(s(1), 7.0);
        ts.record(s(2), 7.0);
        ts.record(s(3), 8.0);
        assert_eq!(ts.len(), 2);
    }

    #[test]
    #[should_panic(expected = "recorded in order")]
    fn out_of_order_panics() {
        let mut ts = TimeSeries::new();
        ts.record(s(5), 1.0);
        ts.record(s(4), 2.0);
    }

    #[test]
    fn max_value_tracks_peak() {
        let mut ts = TimeSeries::new();
        ts.record(s(0), 3.0);
        ts.record(s(1), 9.0);
        ts.record(s(2), 4.0);
        assert_eq!(ts.max_value(), Some(9.0));
    }

    #[test]
    fn sampling_is_regular() {
        let mut ts = TimeSeries::new();
        ts.record(s(0), 1.0);
        ts.record(s(5), 2.0);
        let samples = ts.sample(SimDuration::from_secs(2), s(8));
        assert_eq!(
            samples,
            vec![
                (s(0), 1.0),
                (s(2), 1.0),
                (s(4), 1.0),
                (s(6), 2.0),
                (s(8), 2.0)
            ]
        );
    }

    proptest::proptest! {
        #[test]
        fn prop_mean_bounded_by_extremes(
            vals in proptest::collection::vec(0.0f64..1e6, 1..50),
        ) {
            let mut ts = TimeSeries::new();
            for (i, &v) in vals.iter().enumerate() {
                ts.record(SimTime::from_secs(i as u64), v);
            }
            let until = SimTime::from_secs(vals.len() as u64);
            if let Some(mean) = ts.time_weighted_mean(until) {
                let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                proptest::prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
            }
        }
    }
}
