//! Byte-second memory waste accounting: exact decomposition of
//! integrated resident memory into named occupancy components.
//!
//! The paper's whole argument is about *where* resident memory is
//! wasted — idle keep-alive pages that could live in the pool — so this
//! module gives memory the same causal anatomy [`crate::blame`] gave
//! latency. The platform integrates occupancy over simulated time as a
//! step function: between two consecutive events every byte count is
//! frozen, so charging `bytes × elapsed_micros` per interval is an
//! *exact* integral in integer byte-microseconds, not an approximation.
//!
//! Each interval's charge is split across two independently-conserving
//! sides:
//!
//! * **compute side** — node-local DRAM, partitioned by what holds the
//!   pages: active execution, keep-alive idle (the paper's cold waste),
//!   cold-start init overhead, and the local hot pool;
//! * **pool side** — remote-pool occupancy, partitioned into primary
//!   (first-copy) bytes, redundancy amplification (replicas/parity
//!   beyond the first copy), repair backlog, and in-flight transfer
//!   bytes on the interconnect.
//!
//! The **conservation invariant** mirrors blame's: per recorded step the
//! compute components sum exactly to an independently measured compute
//! integral, and the pool components to an independently measured pool
//! integral. The two measurements come from *different ledgers* than
//! the component charges (page-table counters vs. the pool's own byte
//! ledger), so the check is a real cross-ledger reconciliation, counted
//! — never dropped — and property-tested like blame's.
//!
//! All arithmetic is `u128`: a 1 GiB container idling for one hour is
//! already ~3.9 × 10²¹ byte-µs, past `u64`. Reports convert to f64
//! byte-seconds only at the JSON boundary.

/// The named occupancy components one byte-microsecond is charged to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WasteComponent {
    /// Local pages of a container that is executing a request.
    ActiveExec,
    /// Local pages of an idle keep-alive container — the paper's cold
    /// waste, the byte-seconds FaaSMem exists to reclaim.
    KeepaliveIdle,
    /// Local pages of a container still cold-starting (launching or
    /// initializing).
    InitOverhead,
    /// Local pages pinned in the policy's hot pool, whatever the
    /// container's stage.
    LocalHotPool,
    /// Bytes in flight on the interconnect, integrated over each
    /// transfer's stall window.
    OffloadInflight,
    /// First-copy bytes resident in the remote pool.
    PoolPrimary,
    /// Replica/parity bytes beyond the first copy (the redundancy
    /// premium of a durable fabric).
    RedundancyAmplification,
    /// Bytes queued for background repair after a pool-node loss.
    RepairBacklog,
}

/// Number of waste components; the length of every per-component array.
pub const WASTE_COMPONENTS: usize = 8;

/// Which conservation side a component belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WasteSide {
    /// Node-local DRAM.
    Compute,
    /// Remote pool and interconnect.
    Pool,
}

impl WasteComponent {
    /// Every component, in canonical (reporting) order: the compute
    /// side first, then the pool side.
    pub const ALL: [WasteComponent; WASTE_COMPONENTS] = [
        WasteComponent::ActiveExec,
        WasteComponent::KeepaliveIdle,
        WasteComponent::InitOverhead,
        WasteComponent::LocalHotPool,
        WasteComponent::OffloadInflight,
        WasteComponent::PoolPrimary,
        WasteComponent::RedundancyAmplification,
        WasteComponent::RepairBacklog,
    ];

    /// Stable snake_case name used in JSON exports and query filters.
    pub fn name(self) -> &'static str {
        match self {
            WasteComponent::ActiveExec => "active_exec",
            WasteComponent::KeepaliveIdle => "keepalive_idle",
            WasteComponent::InitOverhead => "init_overhead",
            WasteComponent::LocalHotPool => "local_hot_pool",
            WasteComponent::OffloadInflight => "offload_inflight",
            WasteComponent::PoolPrimary => "pool_primary",
            WasteComponent::RedundancyAmplification => "redundancy_amplification",
            WasteComponent::RepairBacklog => "repair_backlog",
        }
    }

    /// Parses a component from its canonical name.
    pub fn from_name(name: &str) -> Option<WasteComponent> {
        WasteComponent::ALL.into_iter().find(|c| c.name() == name)
    }

    /// Position in [`WasteComponent::ALL`] (and every component array).
    pub fn index(self) -> usize {
        WasteComponent::ALL
            .iter()
            .position(|&c| c == self)
            .expect("component in ALL")
    }

    /// The conservation side this component tiles.
    pub fn side(self) -> WasteSide {
        match self {
            WasteComponent::ActiveExec
            | WasteComponent::KeepaliveIdle
            | WasteComponent::InitOverhead
            | WasteComponent::LocalHotPool => WasteSide::Compute,
            WasteComponent::OffloadInflight
            | WasteComponent::PoolPrimary
            | WasteComponent::RedundancyAmplification
            | WasteComponent::RepairBacklog => WasteSide::Pool,
        }
    }
}

/// Byte-microseconds charged per component — one event interval's
/// delta, or a whole run's (or function's) accumulated ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WasteLedger {
    parts: [u128; WASTE_COMPONENTS],
}

impl WasteLedger {
    /// An all-zero ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds byte-microseconds to one component.
    pub fn charge(&mut self, component: WasteComponent, byte_us: u128) {
        self.parts[component.index()] += byte_us;
    }

    /// The amount charged to one component, in byte-microseconds.
    pub fn get(&self, component: WasteComponent) -> u128 {
        self.parts[component.index()]
    }

    /// Adds every component of `other` into this ledger.
    pub fn merge(&mut self, other: &WasteLedger) {
        for (acc, &part) in self.parts.iter_mut().zip(&other.parts) {
            *acc += part;
        }
    }

    /// Sum of the components on one conservation side.
    pub fn side_total(&self, side: WasteSide) -> u128 {
        WasteComponent::ALL
            .iter()
            .filter(|c| c.side() == side)
            .map(|&c| self.get(c))
            .sum()
    }

    /// Sum of all components.
    pub fn total(&self) -> u128 {
        self.parts.iter().sum()
    }

    /// Raw per-component byte-microsecond values in
    /// [`WasteComponent::ALL`] order.
    pub fn parts(&self) -> &[u128; WASTE_COMPONENTS] {
        &self.parts
    }
}

/// Accumulates per-interval occupancy charges during a run and folds
/// them into a [`WasteReport`] at the end.
///
/// Steps must be recorded in the deterministic event order both drivers
/// replay identically; the accumulator only sums, so the resulting
/// report is a pure function of the run.
#[derive(Debug, Clone, Default)]
pub struct WasteAccumulator {
    ledger: WasteLedger,
    measured_compute: u128,
    measured_pool: u128,
    steps: u64,
    conservation_violations: u64,
}

impl WasteAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one event interval's charges.
    ///
    /// `delta` carries the per-component byte-µs of the interval;
    /// `measured_compute` / `measured_pool` are the same integrals
    /// measured through independent ledgers. Checks that each side's
    /// components sum exactly to its measurement and counts — never
    /// drops — violating steps, so the invariant is observable in the
    /// report and enforceable in tests.
    pub fn record_step(
        &mut self,
        delta: &WasteLedger,
        measured_compute: u128,
        measured_pool: u128,
    ) {
        let compute = delta.side_total(WasteSide::Compute);
        let pool = delta.side_total(WasteSide::Pool);
        if compute != measured_compute || pool != measured_pool {
            self.conservation_violations += 1;
        }
        debug_assert_eq!(
            compute, measured_compute,
            "compute-side components must tile the measured local integral"
        );
        debug_assert_eq!(
            pool, measured_pool,
            "pool-side components must tile the measured pool integral"
        );
        self.ledger.merge(delta);
        self.measured_compute += measured_compute;
        self.measured_pool += measured_pool;
        self.steps += 1;
    }

    /// Number of intervals recorded.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Folds the accumulated charges into a report.
    pub fn report(&self) -> WasteReport {
        WasteReport {
            steps: self.steps,
            conservation_violations: self.conservation_violations,
            compute_byte_us: self.measured_compute,
            pool_byte_us: self.measured_pool,
            components: self.ledger.parts,
        }
    }
}

/// Converts integer byte-microseconds to f64 byte-seconds (the JSON
/// display unit; exactness lives in the integers, not here).
pub fn byte_us_to_byte_secs(byte_us: u128) -> f64 {
    byte_us as f64 / 1e6
}

/// The run-level waste digest. `Copy` so it rides along in the run
/// summary like the fault, durability and blame blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WasteReport {
    /// Event intervals integrated.
    pub steps: u64,
    /// Steps whose components failed to tile their side's measured
    /// integral (zero by contract).
    pub conservation_violations: u64,
    /// Independently measured compute-side integral, byte-µs.
    pub compute_byte_us: u128,
    /// Independently measured pool-side integral, byte-µs.
    pub pool_byte_us: u128,
    /// Per-component byte-µs in [`WasteComponent::ALL`] order.
    pub components: [u128; WASTE_COMPONENTS],
}

impl WasteReport {
    /// A report over zero intervals.
    pub fn empty() -> Self {
        WasteReport {
            steps: 0,
            conservation_violations: 0,
            compute_byte_us: 0,
            pool_byte_us: 0,
            components: [0; WASTE_COMPONENTS],
        }
    }

    /// One component's byte-microseconds.
    pub fn component(&self, component: WasteComponent) -> u128 {
        self.components[component.index()]
    }

    /// One component's byte-seconds (display unit).
    pub fn byte_secs(&self, component: WasteComponent) -> f64 {
        byte_us_to_byte_secs(self.component(component))
    }

    /// One side's measured integral, byte-µs.
    pub fn side_byte_us(&self, side: WasteSide) -> u128 {
        match side {
            WasteSide::Compute => self.compute_byte_us,
            WasteSide::Pool => self.pool_byte_us,
        }
    }

    /// This component's share of its own side's integral, in `[0, 1]`
    /// (0 when the side is empty).
    pub fn share(&self, component: WasteComponent) -> f64 {
        let side = self.side_byte_us(component.side());
        if side == 0 {
            return 0.0;
        }
        self.component(component) as f64 / side as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(parts: &[(WasteComponent, u128)]) -> WasteLedger {
        let mut d = WasteLedger::new();
        for &(c, v) in parts {
            d.charge(c, v);
        }
        d
    }

    #[test]
    fn component_names_roundtrip() {
        for c in WasteComponent::ALL {
            assert_eq!(WasteComponent::from_name(c.name()), Some(c));
            assert_eq!(WasteComponent::ALL[c.index()], c);
        }
        assert_eq!(WasteComponent::from_name("nope"), None);
    }

    #[test]
    fn sides_partition_the_components() {
        let compute = WasteComponent::ALL
            .iter()
            .filter(|c| c.side() == WasteSide::Compute)
            .count();
        let pool = WasteComponent::ALL
            .iter()
            .filter(|c| c.side() == WasteSide::Pool)
            .count();
        assert_eq!(compute + pool, WASTE_COMPONENTS);
        assert_eq!(compute, 4);
    }

    #[test]
    fn ledger_sums_by_side() {
        let d = delta(&[
            (WasteComponent::ActiveExec, 100),
            (WasteComponent::KeepaliveIdle, 400),
            (WasteComponent::PoolPrimary, 70),
            (WasteComponent::RedundancyAmplification, 30),
        ]);
        assert_eq!(d.side_total(WasteSide::Compute), 500);
        assert_eq!(d.side_total(WasteSide::Pool), 100);
        assert_eq!(d.total(), 600);
    }

    #[test]
    fn empty_accumulator_reports_zeros() {
        let report = WasteAccumulator::new().report();
        assert_eq!(report.steps, 0);
        assert_eq!(report.conservation_violations, 0);
        assert_eq!(report.share(WasteComponent::KeepaliveIdle), 0.0);
    }

    #[test]
    fn report_accumulates_and_shares() {
        let mut acc = WasteAccumulator::new();
        acc.record_step(
            &delta(&[
                (WasteComponent::KeepaliveIdle, 3_000),
                (WasteComponent::ActiveExec, 1_000),
                (WasteComponent::PoolPrimary, 500),
            ]),
            4_000,
            500,
        );
        acc.record_step(&delta(&[(WasteComponent::KeepaliveIdle, 1_000)]), 1_000, 0);
        let report = acc.report();
        assert_eq!(report.steps, 2);
        assert_eq!(report.conservation_violations, 0);
        assert_eq!(report.compute_byte_us, 5_000);
        assert_eq!(report.pool_byte_us, 500);
        assert_eq!(report.component(WasteComponent::KeepaliveIdle), 4_000);
        assert_eq!(report.share(WasteComponent::KeepaliveIdle), 0.8);
        assert_eq!(report.share(WasteComponent::PoolPrimary), 1.0);
        assert_eq!(report.byte_secs(WasteComponent::KeepaliveIdle), 0.004);
    }

    #[test]
    fn conservation_violations_are_counted() {
        let mut acc = WasteAccumulator::new();
        let d = delta(&[(WasteComponent::ActiveExec, 90)]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            acc.record_step(&d, 100, 0);
        }));
        if cfg!(debug_assertions) {
            assert!(result.is_err(), "debug build must assert on violation");
        } else {
            assert!(result.is_ok());
            assert_eq!(acc.report().conservation_violations, 1);
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_sides_conserve_independently(
            steps in proptest::collection::vec(
                ((0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40),
                 (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40)), 1..100)
        ) {
            // Conservation in, conservation out: when every step's
            // components are measured consistently per side, the report
            // carries zero violations and each side's component sum
            // equals its measured integral — compute and pool checked
            // separately, so a pool leak can never hide in compute
            // slack (and vice versa).
            let mut acc = WasteAccumulator::new();
            for &((idle, active, hot), (primary, redundant, inflight)) in &steps {
                let d = delta(&[
                    (WasteComponent::KeepaliveIdle, u128::from(idle)),
                    (WasteComponent::ActiveExec, u128::from(active)),
                    (WasteComponent::LocalHotPool, u128::from(hot)),
                    (WasteComponent::PoolPrimary, u128::from(primary)),
                    (WasteComponent::RedundancyAmplification, u128::from(redundant)),
                    (WasteComponent::OffloadInflight, u128::from(inflight)),
                ]);
                acc.record_step(
                    &d,
                    d.side_total(WasteSide::Compute),
                    d.side_total(WasteSide::Pool),
                );
            }
            let report = acc.report();
            proptest::prop_assert_eq!(report.conservation_violations, 0);
            proptest::prop_assert_eq!(report.steps, steps.len() as u64);
            let compute_sum: u128 = WasteComponent::ALL
                .iter()
                .filter(|c| c.side() == WasteSide::Compute)
                .map(|&c| report.component(c))
                .sum();
            let pool_sum: u128 = WasteComponent::ALL
                .iter()
                .filter(|c| c.side() == WasteSide::Pool)
                .map(|&c| report.component(c))
                .sum();
            proptest::prop_assert_eq!(compute_sum, report.compute_byte_us);
            proptest::prop_assert_eq!(pool_sum, report.pool_byte_us);
        }
    }
}
