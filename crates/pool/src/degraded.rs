//! A fault-aware wrapper around [`RdmaLink`].
//!
//! [`DegradedLink`] consults a [`LinkSchedule`] before every transfer:
//! submissions that land in a full-outage window defer to the window's
//! end, and submissions inside a brown-out are serviced at the window's
//! reduced rate. With an empty schedule every call forwards verbatim to
//! the inner link — the wrapper is provably zero-cost when faults are
//! off (see the property test below).

use faasmem_sim::faults::LinkSchedule;
use faasmem_sim::{SimDuration, SimTime};

use crate::link::RdmaLink;

/// One direction of an RDMA link subject to a scheduled fault timeline.
///
/// # Examples
///
/// ```
/// use faasmem_pool::{DegradedLink, RdmaLink};
/// use faasmem_sim::faults::{LinkSchedule, LinkWindow};
/// use faasmem_sim::SimTime;
///
/// let schedule = LinkSchedule::from_windows(vec![LinkWindow {
///     start: SimTime::from_secs(10),
///     end: SimTime::from_secs(20),
///     factor: 0.0, // full outage
/// }]);
/// let mut link = DegradedLink::new(RdmaLink::new(1_000_000, 0), schedule);
/// // Submitted mid-outage: waits out the window, then transfers.
/// let d = link.transfer(SimTime::from_secs(15), 1_000_000);
/// assert_eq!(d.as_secs_f64(), 5.0 + 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct DegradedLink {
    inner: RdmaLink,
    schedule: LinkSchedule,
}

impl DegradedLink {
    /// Wraps a link with a fault schedule. An empty schedule makes the
    /// wrapper behaviourally identical to the bare link.
    pub fn new(inner: RdmaLink, schedule: LinkSchedule) -> Self {
        DegradedLink { inner, schedule }
    }

    /// Wraps a link with no faults scheduled.
    pub fn healthy(inner: RdmaLink) -> Self {
        DegradedLink::new(inner, LinkSchedule::empty())
    }

    /// The fault schedule this link is subject to.
    pub fn schedule(&self) -> &LinkSchedule {
        &self.schedule
    }

    /// The first instant `≥ now` at which a submission would be accepted
    /// for service (i.e. outside any full-outage window). Queueing behind
    /// earlier traffic is separate and charged by [`transfer`].
    ///
    /// [`transfer`]: DegradedLink::transfer
    pub fn available_from(&self, now: SimTime) -> SimTime {
        self.schedule.available_from(now)
    }

    /// Submits a transfer at `now`, deferring past outage windows and
    /// scaling the service rate inside brown-outs. Returns the total
    /// latency the submitter observes (deferral + queueing + service +
    /// base latency).
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> SimDuration {
        if self.schedule.is_empty() {
            return self.inner.transfer(now, bytes);
        }
        let start = self.schedule.available_from(now);
        if start == SimTime::MAX {
            // The link never recovers within simulated time: the
            // transfer never completes. Nothing is queued on the inner
            // link and the submitter observes an unbounded wait; callers
            // that cannot absorb that should gate on [`is_up`] first.
            //
            // [`is_up`]: DegradedLink::is_up
            return SimDuration::MAX;
        }
        let factor = self.schedule.factor_at(start);
        start.saturating_since(now) + self.inner.transfer_at_factor(start, bytes, factor)
    }

    /// `true` when a submission at `now` would be accepted for service
    /// immediately (i.e. `now` is outside every full-outage window).
    pub fn is_up(&self, now: SimTime) -> bool {
        self.schedule.available_from(now) == now
    }

    /// The configured healthy service rate in bytes/second.
    pub fn bytes_per_sec(&self) -> u64 {
        self.inner.bytes_per_sec()
    }

    /// When the link becomes idle given no further traffic.
    pub fn busy_until(&self) -> SimTime {
        self.inner.busy_until()
    }

    /// Lifetime bytes carried.
    pub fn total_bytes(&self) -> u64 {
        self.inner.total_bytes()
    }

    /// Lifetime transfer operations.
    pub fn total_ops(&self) -> u64 {
        self.inner.total_ops()
    }

    /// Average utilisation over `[SimTime::ZERO, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.inner.utilization(now)
    }

    /// Whether no transfer is in service or queued at `now`.
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        self.inner.is_idle_at(now)
    }

    /// Queueing delay a transfer submitted at `now` would see before
    /// its own service time begins.
    pub fn backlog_at(&self, now: SimTime) -> SimDuration {
        self.inner.backlog_at(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasmem_sim::faults::LinkWindow;

    fn outage(start_s: u64, end_s: u64) -> LinkWindow {
        LinkWindow {
            start: SimTime::from_secs(start_s),
            end: SimTime::from_secs(end_s),
            factor: 0.0,
        }
    }

    #[test]
    fn permanent_outage_saturates_instead_of_panicking() {
        let schedule = LinkSchedule::from_windows(vec![LinkWindow {
            start: SimTime::from_secs(1),
            end: SimTime::MAX,
            factor: 0.0,
        }]);
        let mut link = DegradedLink::new(RdmaLink::new(1_000_000, 0), schedule);
        assert!(link.is_up(SimTime::ZERO));
        assert!(!link.is_up(SimTime::from_secs(2)));
        // Submitted into a window that never closes: the transfer never
        // completes and the inner link is left untouched.
        assert_eq!(link.transfer(SimTime::from_secs(2), 4096), SimDuration::MAX);
        assert_eq!(link.total_ops(), 0);
    }

    #[test]
    fn healthy_wrapper_forwards_verbatim() {
        let mut bare = RdmaLink::new(1_000_000, 7);
        let mut wrapped = DegradedLink::healthy(RdmaLink::new(1_000_000, 7));
        for (t, bytes) in [(0u64, 300_000u64), (0, 500_000), (2, 100_000)] {
            let now = SimTime::from_secs(t);
            assert_eq!(bare.transfer(now, bytes), wrapped.transfer(now, bytes));
        }
        assert_eq!(bare.busy_until(), wrapped.busy_until());
        assert_eq!(bare.total_bytes(), wrapped.total_bytes());
        assert_eq!(bare.total_ops(), wrapped.total_ops());
    }

    #[test]
    fn outage_defers_submission() {
        let schedule = LinkSchedule::from_windows(vec![outage(10, 20)]);
        let mut link = DegradedLink::new(RdmaLink::new(1_000_000, 0), schedule);
        assert_eq!(
            link.available_from(SimTime::from_secs(12)),
            SimTime::from_secs(20)
        );
        let d = link.transfer(SimTime::from_secs(12), 1_000_000);
        // 8 s of deferral + 1 s of service.
        assert_eq!(d, SimDuration::from_secs(9));
        // Link time advanced from the window end, not the submission.
        assert_eq!(link.busy_until(), SimTime::from_secs(21));
    }

    #[test]
    fn brownout_scales_service_rate() {
        let schedule = LinkSchedule::from_windows(vec![LinkWindow {
            start: SimTime::from_secs(10),
            end: SimTime::from_secs(100),
            factor: 0.25,
        }]);
        let mut link = DegradedLink::new(RdmaLink::new(1_000_000, 0), schedule);
        // Quarter rate: 1 MB takes 4 s instead of 1 s.
        let d = link.transfer(SimTime::from_secs(10), 1_000_000);
        assert_eq!(d, SimDuration::from_secs(4));
    }

    #[test]
    fn transfers_outside_windows_are_unaffected() {
        let schedule = LinkSchedule::from_windows(vec![outage(10, 20)]);
        let mut degraded = DegradedLink::new(RdmaLink::new(1_000_000, 0), schedule);
        let mut bare = RdmaLink::new(1_000_000, 0);
        let now = SimTime::from_secs(30);
        assert_eq!(degraded.transfer(now, 123_456), bare.transfer(now, 123_456));
    }

    proptest::proptest! {
        // Satellite property: a DegradedLink with an empty fault plan is
        // byte-for-byte equivalent to a bare RdmaLink over arbitrary
        // transfer sequences.
        #[test]
        fn prop_empty_schedule_is_identity(
            submissions in proptest::collection::vec((0u64..5_000_000, 1u64..50_000_000), 1..40),
            rate in 1u64..10_000_000_000,
            base in 0u64..100,
        ) {
            let mut bare = RdmaLink::new(rate, base);
            let mut wrapped = DegradedLink::healthy(RdmaLink::new(rate, base));
            let mut now = SimTime::ZERO;
            for &(gap, bytes) in &submissions {
                now += SimDuration::from_micros(gap);
                proptest::prop_assert_eq!(
                    bare.transfer(now, bytes),
                    wrapped.transfer(now, bytes)
                );
                proptest::prop_assert_eq!(bare.busy_until(), wrapped.busy_until());
            }
            proptest::prop_assert_eq!(bare.total_bytes(), wrapped.total_bytes());
            proptest::prop_assert_eq!(bare.total_ops(), wrapped.total_ops());
        }
    }
}
